"""Time-varying failure schedules: validation, determinism, replay."""

from fractions import Fraction

import pytest

from repro.errors import CapacityValidationError
from repro.core.topology import ClosNetwork
from repro.failures import (
    FailureEvent,
    FailureSchedule,
    fail_middle_switch,
)
from repro.sim import (
    FlowJob,
    MaxMinCongestionControl,
    SimulationError,
    simulate,
)


@pytest.fixture
def clos():
    return ClosNetwork(2)


def _link(clos):
    return next(iter(clos.graph.capacities()))


class TestConstruction:
    def test_events_sorted_by_time(self, clos):
        link = _link(clos)
        schedule = FailureSchedule(
            [
                FailureEvent(5.0, link, Fraction(1)),
                FailureEvent(1.0, link, Fraction(0)),
            ]
        )
        assert [event.time for event in schedule.events()] == [1.0, 5.0]

    def test_negative_time_rejected(self, clos):
        with pytest.raises(CapacityValidationError):
            FailureSchedule([FailureEvent(-1.0, _link(clos), Fraction(0))])

    def test_out_of_range_factor_rejected(self, clos):
        with pytest.raises(CapacityValidationError):
            FailureSchedule([FailureEvent(1.0, _link(clos), Fraction(3, 2))])

    def test_link_flap_shape(self, clos):
        link = _link(clos)
        schedule = FailureSchedule.link_flap(link, down_at=1.0, up_at=2.0)
        assert schedule.trace() == [
            (1.0, repr(link), "0"),
            (2.0, repr(link), "1"),
        ]

    def test_periodic_flap(self, clos):
        schedule = FailureSchedule.link_flap(
            _link(clos), down_at=1.0, up_at=2.0, period=10.0, count=3
        )
        assert [event.time for event in schedule.events()] == [
            1.0, 2.0, 11.0, 12.0, 21.0, 22.0,
        ]

    def test_switch_crash_covers_all_switch_links(self, clos):
        schedule = FailureSchedule.switch_crash(clos, 1, at=3.0)
        healthy = clos.graph.capacities()
        crashed = fail_middle_switch(clos, healthy, 1)
        dead_links = {
            link for link, cap in crashed.items() if cap != healthy[link]
        }
        assert {event.link for event in schedule.events()} == dead_links
        assert all(event.time == 3.0 for event in schedule.events())

    def test_merged_preserves_order(self, clos):
        link = _link(clos)
        first = FailureSchedule.link_flap(link, down_at=5.0, up_at=6.0)
        second = FailureSchedule.link_flap(link, down_at=1.0, up_at=2.0)
        merged = first.merged(second)
        times = [event.time for event in merged.events()]
        assert times == sorted(times)
        assert len(merged) == 4


class TestDeterminism:
    def test_random_flaps_pure_function_of_seed(self, clos):
        one = FailureSchedule.random_flaps(clos, count=6, horizon=50.0, seed=9)
        two = FailureSchedule.random_flaps(clos, count=6, horizon=50.0, seed=9)
        assert one == two
        assert one.trace() == two.trace()

    def test_random_flaps_vary_with_seed(self, clos):
        one = FailureSchedule.random_flaps(clos, count=6, horizon=50.0, seed=1)
        two = FailureSchedule.random_flaps(clos, count=6, horizon=50.0, seed=2)
        assert one.trace() != two.trace()

    def test_roundtrip_through_dict(self, clos):
        schedule = FailureSchedule.random_flaps(
            clos, count=4, horizon=20.0, seed=3, severity=Fraction(1, 4)
        )
        restored = FailureSchedule.from_dict(schedule.to_dict())
        assert restored == schedule
        assert restored.trace() == schedule.trace()


class TestFactorsAt:
    def test_factors_inclusive_at_event_time(self, clos):
        link = _link(clos)
        schedule = FailureSchedule.link_flap(link, down_at=1.0, up_at=2.0)
        assert schedule.factors_at(0.5) == {}
        assert schedule.factors_at(1.0) == {link: Fraction(0)}
        assert schedule.factors_at(1.5) == {link: Fraction(0)}
        assert schedule.factors_at(2.0) == {link: Fraction(1)}

    def test_capacities_at_applies_factor(self, clos):
        link = _link(clos)
        base = clos.graph.capacities()
        schedule = FailureSchedule.link_flap(
            link, down_at=1.0, up_at=2.0, severity=Fraction(1, 2)
        )
        degraded = schedule.capacities_at(1.5, base)
        assert degraded[link] == base[link] / 2
        assert schedule.capacities_at(3.0, base) == base


class TestSimulationReplay:
    def _job(self, clos, size=2.0):
        return FlowJob(
            job_id=0,
            source=clos.source(1, 1),
            dest=clos.destination(3, 1),
            arrival=0.0,
            size=size,
        )

    def test_flap_stalls_the_flow(self, clos):
        # One flow at rate 1; its uplink dies on [1, 2).  Two units of
        # work therefore take exactly 3 time units: run, stall, run.
        job = self._job(clos)
        policy = MaxMinCongestionControl(clos)
        uplink = next(
            link for link in clos.graph.capacities()
            if link[0] == job.source
        )
        schedule = FailureSchedule.link_flap(uplink, down_at=1.0, up_at=2.0)
        result = simulate([job], policy, failure_schedule=schedule)
        assert result.completed[0].completion_time == pytest.approx(3.0)

    def test_no_schedule_means_no_stall(self, clos):
        job = self._job(clos)
        policy = MaxMinCongestionControl(clos)
        result = simulate([job], policy)
        assert result.completed[0].completion_time == pytest.approx(2.0)

    def test_policy_without_hook_is_rejected(self, clos):
        class Oblivious:
            def rates(self, active, remaining, now):
                return {job_id: 1.0 for job_id in active}

        job = self._job(clos)
        schedule = FailureSchedule.link_flap(
            _link(clos), down_at=1.0, up_at=2.0
        )
        with pytest.raises(SimulationError):
            simulate([job], Oblivious(), failure_schedule=schedule)

    def test_permanent_crash_starves(self, clos):
        job = self._job(clos)
        schedule = FailureSchedule.switch_crash(clos, 1, at=1.0).merged(
            FailureSchedule.switch_crash(clos, 2, at=1.0)
        )
        policy = MaxMinCongestionControl(clos)
        with pytest.raises(SimulationError):
            simulate([job], policy, failure_schedule=schedule)
