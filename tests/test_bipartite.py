"""Unit tests for the bipartite multigraph substrate."""

import pytest

from repro.graph.bipartite import BipartiteMultigraph, build_multigraph


class TestConstruction:
    def test_empty(self):
        g = BipartiteMultigraph()
        assert g.num_edges() == 0
        assert g.max_degree() == 0
        assert g.left_nodes == []
        assert g.right_nodes == []

    def test_add_edge_registers_sides(self):
        g = BipartiteMultigraph()
        g.add_edge("u", "v", key="e")
        assert g.left_nodes == ["u"]
        assert g.right_nodes == ["v"]
        assert g.endpoints("e") == ("u", "v")

    def test_parallel_edges(self):
        g = BipartiteMultigraph()
        g.add_edge("u", "v", key="e1")
        g.add_edge("u", "v", key="e2")
        assert g.num_edges() == 2
        assert g.degree("u") == 2
        assert g.degree("v") == 2

    def test_duplicate_key_rejected(self):
        g = BipartiteMultigraph()
        g.add_edge("u", "v", key="e")
        with pytest.raises(ValueError, match="duplicate"):
            g.add_edge("u", "w", key="e")

    def test_side_conflict_rejected(self):
        g = BipartiteMultigraph()
        g.add_edge("u", "v", key="e1")
        with pytest.raises(ValueError, match="side"):
            g.add_edge("v", "w", key="e2")

    def test_build_multigraph(self):
        g = build_multigraph([("a", "x", 1), ("b", "y", 2)])
        assert g.num_edges() == 2
        assert g.endpoints(1) == ("a", "x")


class TestQueries:
    @pytest.fixture
    def graph(self) -> BipartiteMultigraph:
        return build_multigraph(
            [("u1", "v1", "a"), ("u1", "v2", "b"), ("u2", "v1", "c"), ("u1", "v1", "d")]
        )

    def test_degree(self, graph):
        assert graph.degree("u1") == 3
        assert graph.degree("v1") == 3
        assert graph.degree("u2") == 1

    def test_max_degree(self, graph):
        assert graph.max_degree() == 3

    def test_incident(self, graph):
        assert set(graph.incident("u1")) == {"a", "b", "d"}
        assert set(graph.incident("v2")) == {"b"}

    def test_incident_missing_raises(self, graph):
        with pytest.raises(KeyError):
            graph.incident("nope")

    def test_neighbors_distinct(self, graph):
        assert graph.neighbors("u1") == ["v1", "v2"]
        assert graph.neighbors("v1") == ["u1", "u2"]

    def test_edges_preserve_insertion_order(self, graph):
        assert [key for _, _, key in graph.edges()] == ["a", "b", "c", "d"]

    def test_edge_keys(self, graph):
        assert graph.edge_keys == ["a", "b", "c", "d"]

    def test_isolated_nodes_allowed(self):
        g = BipartiteMultigraph()
        g.add_left("lonely")
        g.add_right("also")
        assert g.degree("lonely") == 0
        assert g.max_degree() == 0
