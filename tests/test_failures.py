"""Tests for failure injection and degraded-fabric behavior."""

from fractions import Fraction

import pytest

from repro.core.flows import Flow, FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.nodes import InputSwitch, MiddleSwitch
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.failures import (
    fail_links,
    fail_middle_switch,
    middle_switch_links,
    random_link_failures,
    surviving_network,
)

from tests.helpers import random_flows, random_routing


@pytest.fixture
def clos():
    return ClosNetwork(3)


class TestFailLinks:
    def test_zeroes_capacity(self, clos):
        capacities = clos.graph.capacities()
        link = (InputSwitch(1), MiddleSwitch(1))
        degraded = fail_links(capacities, [link])
        assert degraded[link] == 0
        assert capacities[link] == 1  # original untouched

    def test_unknown_link_rejected(self, clos):
        with pytest.raises(KeyError):
            fail_links(clos.graph.capacities(), [("nope", "nope")])

    def test_flows_on_failed_link_starve(self, clos):
        flows = FlowCollection(
            [Flow(clos.source(1, 1), clos.destination(4, 1))]
        )
        routing = Routing.uniform(clos, flows, 1)
        degraded = fail_links(
            clos.graph.capacities(), [(InputSwitch(1), MiddleSwitch(1))]
        )
        alloc = max_min_fair(routing, degraded)
        assert alloc.rate(flows[0]) == 0

    def test_unaffected_flows_keep_rates(self, clos):
        flows = FlowCollection(
            [
                Flow(clos.source(1, 1), clos.destination(4, 1)),
                Flow(clos.source(2, 1), clos.destination(5, 1)),
            ]
        )
        routing = Routing.from_middles(
            clos, flows, {flows[0]: 1, flows[1]: 2}
        )
        degraded = fail_middle_switch(clos, clos.graph.capacities(), 1)
        alloc = max_min_fair(routing, degraded)
        assert alloc.rate(flows[0]) == 0
        assert alloc.rate(flows[1]) == 1


class TestMiddleSwitchFailure:
    def test_link_inventory(self, clos):
        links = middle_switch_links(clos, 2)
        assert len(links) == 4 * clos.n  # 2n up + 2n down
        assert all(MiddleSwitch(2) in link for link in links)

    def test_fail_middle_switch_zeroes_all(self, clos):
        degraded = fail_middle_switch(clos, clos.graph.capacities(), 1)
        for link in middle_switch_links(clos, 1):
            assert degraded[link] == 0

    def test_invalid_index(self, clos):
        with pytest.raises(ValueError):
            middle_switch_links(clos, 99)


class TestRandomFailures:
    def test_count_and_interior_only(self, clos):
        capacities = clos.graph.capacities()
        degraded, failed = random_link_failures(clos, capacities, 5, seed=0)
        assert len(failed) == 5
        for link in failed:
            assert degraded[link] == 0
            u, v = link
            assert isinstance(u, (InputSwitch, MiddleSwitch))
            assert isinstance(v, (MiddleSwitch,)) or v.kind == "O"

    def test_deterministic(self, clos):
        capacities = clos.graph.capacities()
        _, a = random_link_failures(clos, capacities, 4, seed=3)
        _, b = random_link_failures(clos, capacities, 4, seed=3)
        assert a == b

    def test_too_many_failures(self, clos):
        capacities = clos.graph.capacities()
        with pytest.raises(ValueError):
            random_link_failures(clos, capacities, 10**6)

    def test_degraded_waterfill_still_certified(self, clos):
        """Max-min fairness holds on degraded fabrics too (tol for the
        zero-capacity links' trivial saturation)."""
        from repro.core.bottleneck import is_max_min_fair

        flows = random_flows(clos, 12, seed=1)
        routing = random_routing(clos, flows, seed=1)
        degraded, _ = random_link_failures(
            clos, clos.graph.capacities(), 4, seed=1
        )
        alloc = max_min_fair(routing, degraded)
        assert is_max_min_fair(routing, alloc, degraded)


class TestSurvivingNetwork:
    def test_shrinks_middle_stage(self, clos):
        smaller, index_map = surviving_network(clos, [2])
        assert smaller.num_middles == 2
        assert smaller.n == clos.n
        assert index_map == {1: 1, 2: 3}

    def test_all_failed_rejected(self, clos):
        with pytest.raises(ValueError):
            surviving_network(clos, [1, 2, 3])

    def test_translated_routing_avoids_failure(self, clos):
        from repro.routers.greedy import greedy_least_congested

        flows = random_flows(clos, 10, seed=2)
        smaller, index_map = surviving_network(clos, [1])
        routing_small = greedy_least_congested(smaller, flows)
        translated = {
            flow: index_map[m]
            for flow, m in routing_small.middles(smaller).items()
        }
        assert 1 not in translated.values()
        routing = Routing.from_middles(clos, flows, translated)
        routing.validate(clos.graph)


class TestDegradationExperiment:
    def test_sweep_shape(self):
        from repro.experiments.failure_degradation import middle_failure_sweep

        rows = middle_failure_sweep(n=3, num_flows=20, max_failures=2, seed=0)
        assert [row.failed_middles for row in rows] == [0, 1, 2]
        # rerouting weakly dominates pinning at every level
        for row in rows:
            assert row.rerouted_throughput >= row.pinned_throughput
            assert row.rerouted_min_rate >= row.pinned_min_rate
        # pinned flows through the dead switch starve
        assert rows[1].pinned_min_rate == 0

    def test_max_failures_validation(self):
        from repro.experiments.failure_degradation import middle_failure_sweep

        with pytest.raises(ValueError):
            middle_failure_sweep(n=3, max_failures=3)
