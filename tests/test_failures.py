"""Tests for failure injection and degraded-fabric behavior."""

from fractions import Fraction

import pytest

from repro.core.flows import Flow, FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.nodes import InputSwitch, MiddleSwitch
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.errors import CapacityValidationError, UnknownLinkError
from repro.failures import (
    FailureGroup,
    correlated_groups,
    degrade_links,
    fail_links,
    fail_middle_switch,
    middle_switch_links,
    random_group_failures,
    random_link_failures,
    surviving_network,
)

from tests.helpers import random_flows, random_routing


@pytest.fixture
def clos():
    return ClosNetwork(3)


class TestFailLinks:
    def test_zeroes_capacity(self, clos):
        capacities = clos.graph.capacities()
        link = (InputSwitch(1), MiddleSwitch(1))
        degraded = fail_links(capacities, [link])
        assert degraded[link] == 0
        assert capacities[link] == 1  # original untouched

    def test_unknown_link_rejected(self, clos):
        with pytest.raises(KeyError):
            fail_links(clos.graph.capacities(), [("nope", "nope")])

    def test_all_unknown_links_reported_at_once(self, clos):
        known = next(iter(clos.graph.capacities()))
        with pytest.raises(UnknownLinkError) as excinfo:
            fail_links(
                clos.graph.capacities(), [("a", "b"), known, ("c", "d")]
            )
        assert excinfo.value.links == [("a", "b"), ("c", "d")]
        message = str(excinfo.value)
        assert "('a', 'b')" in message and "('c', 'd')" in message

    def test_flows_on_failed_link_starve(self, clos):
        flows = FlowCollection(
            [Flow(clos.source(1, 1), clos.destination(4, 1))]
        )
        routing = Routing.uniform(clos, flows, 1)
        degraded = fail_links(
            clos.graph.capacities(), [(InputSwitch(1), MiddleSwitch(1))]
        )
        alloc = max_min_fair(routing, degraded)
        assert alloc.rate(flows[0]) == 0

    def test_unaffected_flows_keep_rates(self, clos):
        flows = FlowCollection(
            [
                Flow(clos.source(1, 1), clos.destination(4, 1)),
                Flow(clos.source(2, 1), clos.destination(5, 1)),
            ]
        )
        routing = Routing.from_middles(
            clos, flows, {flows[0]: 1, flows[1]: 2}
        )
        degraded = fail_middle_switch(clos, clos.graph.capacities(), 1)
        alloc = max_min_fair(routing, degraded)
        assert alloc.rate(flows[0]) == 0
        assert alloc.rate(flows[1]) == 1


class TestMiddleSwitchFailure:
    def test_link_inventory(self, clos):
        links = middle_switch_links(clos, 2)
        assert len(links) == 4 * clos.n  # 2n up + 2n down
        assert all(MiddleSwitch(2) in link for link in links)

    def test_fail_middle_switch_zeroes_all(self, clos):
        degraded = fail_middle_switch(clos, clos.graph.capacities(), 1)
        for link in middle_switch_links(clos, 1):
            assert degraded[link] == 0

    def test_invalid_index(self, clos):
        with pytest.raises(ValueError):
            middle_switch_links(clos, 99)


class TestRandomFailures:
    def test_count_and_interior_only(self, clos):
        capacities = clos.graph.capacities()
        degraded, failed = random_link_failures(clos, capacities, 5, seed=0)
        assert len(failed) == 5
        for link in failed:
            assert degraded[link] == 0
            u, v = link
            assert isinstance(u, (InputSwitch, MiddleSwitch))
            assert isinstance(v, (MiddleSwitch,)) or v.kind == "O"

    def test_deterministic(self, clos):
        capacities = clos.graph.capacities()
        _, a = random_link_failures(clos, capacities, 4, seed=3)
        _, b = random_link_failures(clos, capacities, 4, seed=3)
        assert a == b

    def test_too_many_failures(self, clos):
        capacities = clos.graph.capacities()
        with pytest.raises(ValueError):
            random_link_failures(clos, capacities, 10**6)

    def test_negative_count_rejected(self, clos):
        with pytest.raises(CapacityValidationError):
            random_link_failures(clos, clos.graph.capacities(), -2)

    def test_degraded_waterfill_still_certified(self, clos):
        """Max-min fairness holds on degraded fabrics too (tol for the
        zero-capacity links' trivial saturation)."""
        from repro.core.bottleneck import is_max_min_fair

        flows = random_flows(clos, 12, seed=1)
        routing = random_routing(clos, flows, seed=1)
        degraded, _ = random_link_failures(
            clos, clos.graph.capacities(), 4, seed=1
        )
        alloc = max_min_fair(routing, degraded)
        assert is_max_min_fair(routing, alloc, degraded)


class TestBrownouts:
    def test_degrade_scales_exactly(self, clos):
        capacities = clos.graph.capacities()
        link = (InputSwitch(1), MiddleSwitch(1))
        degraded = degrade_links(capacities, {link: Fraction(1, 3)})
        assert degraded[link] == Fraction(1, 3)
        assert capacities[link] == 1  # original untouched

    def test_factor_one_is_identity_zero_is_failure(self, clos):
        capacities = clos.graph.capacities()
        link = (InputSwitch(1), MiddleSwitch(1))
        assert degrade_links(capacities, {link: 1}) == capacities
        assert degrade_links(capacities, {link: 0})[link] == 0

    def test_unknown_link_rejected(self, clos):
        with pytest.raises(UnknownLinkError):
            degrade_links(clos.graph.capacities(), {("a", "b"): 1})

    def test_out_of_range_factor_rejected(self, clos):
        link = (InputSwitch(1), MiddleSwitch(1))
        for factor in (-1, 2, Fraction(3, 2)):
            with pytest.raises(CapacityValidationError):
                degrade_links(clos.graph.capacities(), {link: factor})

    def test_brownout_waterfill_stays_exact(self, clos):
        flows = FlowCollection(
            [Flow(clos.source(1, 1), clos.destination(4, 1))]
        )
        routing = Routing.uniform(clos, flows, 1)
        degraded = degrade_links(
            clos.graph.capacities(),
            {(InputSwitch(1), MiddleSwitch(1)): Fraction(2, 7)},
        )
        alloc = max_min_fair(routing, degraded)
        assert alloc.rate(flows[0]) == Fraction(2, 7)


class TestCorrelatedGroups:
    def test_inventory(self, clos):
        groups = correlated_groups(clos)
        # one per middle switch + one uplink/downlink bundle per ToR
        assert len(groups) == clos.num_middles + 4 * clos.n
        names = {group.name for group in groups}
        assert "middle-1" in names and "uplinks-I1" in names

    def test_group_failure_matches_switch_failure(self, clos):
        capacities = clos.graph.capacities()
        group = next(
            g for g in correlated_groups(clos) if g.name == "middle-2"
        )
        assert fail_links(capacities, group.links) == fail_middle_switch(
            clos, capacities, 2
        )

    def test_random_group_failures_deterministic(self, clos):
        capacities = clos.graph.capacities()
        cap_a, chosen_a = random_group_failures(clos, capacities, 2, seed=5)
        cap_b, chosen_b = random_group_failures(clos, capacities, 2, seed=5)
        assert cap_a == cap_b
        assert [g.name for g in chosen_a] == [g.name for g in chosen_b]

    def test_random_group_brownout_severity(self, clos):
        capacities = clos.graph.capacities()
        degraded, chosen = random_group_failures(
            clos, capacities, 1, seed=0, severity=Fraction(1, 2)
        )
        for link in chosen[0].links:
            assert degraded[link] == capacities[link] / 2

    def test_count_validation(self, clos):
        capacities = clos.graph.capacities()
        with pytest.raises(CapacityValidationError):
            random_group_failures(clos, capacities, -1)
        with pytest.raises(CapacityValidationError):
            random_group_failures(clos, capacities, 10**6)


class TestDegradationMonotonicity:
    """What degrading one link can and cannot do to a max-min allocation.

    The naive property — "degrading a capacity never increases any
    flow's rate" — is FALSE per-flow: if flows A and B share link L1
    (capacity 1) and B also crosses L2, degrading L2 freezes B early,
    which *releases* L1 bandwidth to A and raises A's rate.  The true
    invariants of water-filling under degradation are leximin-wide:

    - the sorted rate vector never lexicographically increases,
    - the minimum rate never increases,
    - flows crossing the degraded link itself never improve.
    """

    def test_leximin_never_improves_under_degradation(self, clos):
        from repro.core.allocation import lex_compare

        for seed in range(20):
            flows = random_flows(clos, 10, seed=seed)
            routing = random_routing(clos, flows, seed=seed)
            capacities = clos.graph.capacities()
            base = max_min_fair(routing, capacities)

            links = interior_links_of(routing)
            link = links[seed % len(links)]
            factor = Fraction(seed % 10, 10)
            degraded = degrade_links(capacities, {link: factor})
            after = max_min_fair(routing, degraded)

            assert (
                lex_compare(after.sorted_vector(), base.sorted_vector()) <= 0
            )
            assert min(after.sorted_vector()) <= min(base.sorted_vector())
            for flow in flows:
                if link in routing.links_of(flow):
                    assert after.rate(flow) <= base.rate(flow)

    def test_naive_per_flow_property_is_false(self):
        """The documented counterexample: degrading B's private link
        RAISES A's rate.  Guards against anyone "strengthening" the
        property test above to the per-flow version."""
        clos = ClosNetwork(2)
        a = Flow(clos.source(1, 1), clos.destination(3, 1))
        b = Flow(clos.source(1, 2), clos.destination(4, 1))
        flows = FlowCollection([a, b])
        routing = Routing.uniform(clos, flows, 1)  # both share (I1, M1)
        capacities = clos.graph.capacities()
        base = max_min_fair(routing, capacities)
        assert base.rate(a) == Fraction(1, 2)

        b_private = (MiddleSwitch(1), clos.output_switches[3])  # (M1, O4)
        degraded = degrade_links(capacities, {b_private: Fraction(1, 10)})
        after = max_min_fair(routing, degraded)
        assert after.rate(b) == Fraction(1, 10)
        assert after.rate(a) == Fraction(9, 10)  # A improved!


def interior_links_of(routing):
    """Every link some flow traverses, deterministically ordered."""
    links = set()
    for flow in routing.flows():
        links.update(routing.links_of(flow))
    return sorted(links, key=repr)


class TestSurvivingNetwork:
    def test_shrinks_middle_stage(self, clos):
        smaller, index_map = surviving_network(clos, [2])
        assert smaller.num_middles == 2
        assert smaller.n == clos.n
        assert index_map == {1: 1, 2: 3}

    def test_all_failed_rejected(self, clos):
        with pytest.raises(ValueError):
            surviving_network(clos, [1, 2, 3])

    def test_translated_routing_avoids_failure(self, clos):
        from repro.routers.greedy import greedy_least_congested

        flows = random_flows(clos, 10, seed=2)
        smaller, index_map = surviving_network(clos, [1])
        routing_small = greedy_least_congested(smaller, flows)
        translated = {
            flow: index_map[m]
            for flow, m in routing_small.middles(smaller).items()
        }
        assert 1 not in translated.values()
        routing = Routing.from_middles(clos, flows, translated)
        routing.validate(clos.graph)


class TestDegradationExperiment:
    def test_sweep_shape(self):
        from repro.experiments.failure_degradation import middle_failure_sweep

        rows = middle_failure_sweep(n=3, num_flows=20, max_failures=2, seed=0)
        assert [row.failed_middles for row in rows] == [0, 1, 2]
        # rerouting weakly dominates pinning at every level
        for row in rows:
            assert row.rerouted_throughput >= row.pinned_throughput
            assert row.rerouted_min_rate >= row.pinned_min_rate
        # pinned flows through the dead switch starve
        assert rows[1].pinned_min_rate == 0

    def test_max_failures_validation(self):
        from repro.experiments.failure_degradation import middle_failure_sweep

        with pytest.raises(ValueError):
            middle_failure_sweep(n=3, max_failures=3)
