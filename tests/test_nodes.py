"""Unit tests for typed node identifiers."""

from repro.core.nodes import (
    Destination,
    InputSwitch,
    MiddleSwitch,
    OutputSwitch,
    Source,
)


class TestIdentity:
    def test_source_not_equal_destination(self):
        assert Source(1, 1) != Destination(1, 1)

    def test_input_not_equal_output_switch(self):
        assert InputSwitch(1) != OutputSwitch(1)

    def test_input_not_equal_middle_switch(self):
        assert InputSwitch(1) != MiddleSwitch(1)

    def test_same_type_same_indices_equal(self):
        assert Source(2, 3) == Source(2, 3)

    def test_hashable_and_distinct_in_sets(self):
        nodes = {Source(1, 1), Destination(1, 1), InputSwitch(1), OutputSwitch(1)}
        assert len(nodes) == 4

    def test_usable_as_dict_keys(self):
        d = {Source(1, 1): "a", Destination(1, 1): "b"}
        assert d[Source(1, 1)] == "a"
        assert d[Destination(1, 1)] == "b"


class TestFields:
    def test_source_fields(self):
        s = Source(3, 2)
        assert s.switch == 3
        assert s.server == 2

    def test_switch_index(self):
        assert MiddleSwitch(4).index == 4

    def test_reprs_match_paper_notation(self):
        assert repr(Source(1, 2)) == "s1^2"
        assert repr(Destination(3, 1)) == "t3^1"
        assert repr(InputSwitch(2)) == "I2"
        assert repr(OutputSwitch(5)) == "O5"
        assert repr(MiddleSwitch(1)) == "M1"
