"""Tests for batched multi-scenario solving (:mod:`repro.core.batched`).

The contract: stacking N independent routings into one block-diagonal
batch changes *nothing* about the answers.

- Float mode is **byte-identical** to solving each instance alone with
  the ``vectorized`` backend (property-tested over random chaos
  instances, which include degenerate routings and adversarial
  capacity maps).
- ``exact=True`` is ``Fraction``-identical to the reference solver.
- ``jobs > 1`` (shared-memory transport, workers writing disjoint
  slices of one output array) is byte-identical to ``jobs=1``.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

from repro.chaos import random_instance
from repro.core.batched import (
    compile_batch,
    solve_max_min_batch,
    waterfill_batch,
)
from repro.core.maxmin import max_min_fair
from repro.core.routing import Routing
from repro.core.solve import solve_max_min
from repro.core.topology import ClosNetwork
from repro.errors import ReproError
from repro.routers.ecmp import ecmp_routing
from repro.workloads.stochastic import uniform_random


def _chaos_pairs(seeds):
    """Solvable (routing, capacities) pairs from the chaos generator.

    Chaos instances include malformed capacity maps the solver rejects
    with typed errors; identity is only defined over the solvable ones.
    """
    pairs = []
    for seed in seeds:
        instance = random_instance(seed)
        try:
            solve_max_min(
                instance.routing, instance.capacities, backend="vectorized"
            )
        except ReproError:
            continue
        pairs.append((instance.routing, instance.capacities))
    return pairs


def _workload_pairs(n=3, scenarios=6, flows=20):
    """Well-behaved ECMP-routed random workloads on one Clos fabric."""
    network = ClosNetwork(n)
    caps = network.graph.capacities()
    pairs = []
    for seed in range(scenarios):
        workload = uniform_random(network, flows, seed=seed)
        pairs.append((ecmp_routing(network, workload, seed=seed), caps))
    return pairs


# ----------------------------------------------------------------------
# Identity properties
# ----------------------------------------------------------------------
def test_batched_bitwise_identical_to_per_instance_chaos():
    pairs = _chaos_pairs(range(24))
    assert len(pairs) >= 8  # the generator must yield real work
    batched = solve_max_min_batch(pairs)
    for (routing, capacities), alloc in zip(pairs, batched):
        single = solve_max_min(routing, capacities, backend="vectorized")
        # dict equality on floats: byte-identical rates, flow for flow
        assert alloc.rates() == single.rates()


def test_batched_bitwise_identical_to_per_instance_workloads():
    pairs = _workload_pairs()
    batched = solve_max_min_batch(pairs)
    for (routing, capacities), alloc in zip(pairs, batched):
        single = solve_max_min(routing, capacities, backend="vectorized")
        assert alloc.rates() == single.rates()


def test_batched_exact_matches_reference():
    pairs = _chaos_pairs(range(12))
    exact = solve_max_min_batch(pairs, exact=True)
    for (routing, capacities), alloc in zip(pairs, exact):
        reference = max_min_fair(routing, capacities)
        assert alloc.rates() == reference.rates()  # Fraction-identical


def test_batched_other_backend_dispatches_per_instance():
    pairs = _workload_pairs(scenarios=3)
    via_batch = solve_max_min_batch(pairs, backend="heap")
    for (routing, capacities), alloc in zip(pairs, via_batch):
        single = solve_max_min(routing, capacities, backend="heap")
        assert alloc.rates() == single.rates()


# ----------------------------------------------------------------------
# Degenerate scenarios
# ----------------------------------------------------------------------
def test_batched_empty_batch():
    assert solve_max_min_batch([]) == []


def test_batched_empty_scenario_sandwich():
    """A flowless scenario between two real ones must not perturb them."""
    pairs = _workload_pairs(scenarios=2)
    sandwich = [pairs[0], (Routing({}), {}), pairs[1]]
    batched = solve_max_min_batch(sandwich)
    assert batched[1].rates() == {}
    for (routing, capacities), alloc in zip(pairs, (batched[0], batched[2])):
        single = solve_max_min(routing, capacities, backend="vectorized")
        assert alloc.rates() == single.rates()


def test_batched_all_empty():
    batched = solve_max_min_batch([(Routing({}), {}), (Routing({}), {})])
    assert [alloc.rates() for alloc in batched] == [{}, {}]


# ----------------------------------------------------------------------
# Range solving (the unit the shared-memory workers execute)
# ----------------------------------------------------------------------
def test_waterfill_batch_range_matches_full_solve():
    pairs = _workload_pairs(scenarios=5)
    batch = compile_batch(pairs)
    full = waterfill_batch(batch).copy()
    out = np.zeros(batch.num_flows, dtype=np.float64)
    for first, last in ((0, 2), (2, 3), (3, 5)):
        waterfill_batch(batch, first=first, last=last, out=out)
    assert out.tobytes() == full.tobytes()


# ----------------------------------------------------------------------
# Shared-memory parallel path
# ----------------------------------------------------------------------
def test_batched_jobs_byte_identical():
    pairs = _workload_pairs(scenarios=8)
    sequential = solve_max_min_batch(pairs, jobs=1)
    parallel = solve_max_min_batch(pairs, jobs=2)
    tiny_chunks = solve_max_min_batch(pairs, jobs=3, chunksize=1)
    for seq, par, tiny in zip(sequential, parallel, tiny_chunks):
        assert par.rates() == seq.rates()
        assert tiny.rates() == seq.rates()


def test_sub_batches_byte_identical_to_unsorted():
    pairs = _workload_pairs(scenarios=8) + _chaos_pairs(range(12))
    reference = solve_max_min_batch(pairs)
    for sub_batches in (2, 3, 8, 64):
        sorted_run = solve_max_min_batch(pairs, sub_batches=sub_batches)
        for ref, alloc in zip(reference, sorted_run):
            assert alloc.rates() == ref.rates()
    combined = solve_max_min_batch(pairs, sub_batches=4, jobs=2)
    for ref, alloc in zip(reference, combined):
        assert alloc.rates() == ref.rates()


def test_sub_batches_degenerate_inputs():
    (single,) = solve_max_min_batch(_workload_pairs(scenarios=1), sub_batches=4)
    (ref,) = solve_max_min_batch(_workload_pairs(scenarios=1))
    assert single.rates() == ref.rates()
    assert solve_max_min_batch([], sub_batches=4) == []


def test_batched_jobs_matches_per_instance_chaos():
    pairs = _chaos_pairs(range(16))
    parallel = solve_max_min_batch(pairs, jobs=2, chunksize=2)
    for (routing, capacities), alloc in zip(pairs, parallel):
        single = solve_max_min(routing, capacities, backend="vectorized")
        assert alloc.rates() == single.rates()


# ----------------------------------------------------------------------
# Validation hooks
# ----------------------------------------------------------------------
def test_batched_passes_full_validation(monkeypatch):
    from repro import validate

    pairs = _workload_pairs(scenarios=3)
    with validate.validation("full"):
        batched = solve_max_min_batch(pairs)
    for (routing, capacities), alloc in zip(pairs, batched):
        single = solve_max_min(routing, capacities, backend="vectorized")
        assert alloc.rates() == single.rates()


# ----------------------------------------------------------------------
# Callers routed through the batch front door
# ----------------------------------------------------------------------
def test_enumeration_batched_allocations_match_sequential():
    from repro.search.enumeration import batched_allocations, enumerate_routings

    network = ClosNetwork(2)
    flows = uniform_random(network, 5, seed=3)
    caps = network.graph.capacities()
    expected = sum(1 for _ in enumerate_routings(network, flows))
    seen = 0
    for routing, alloc in batched_allocations(network, flows, batch_size=4):
        single = solve_max_min(routing, caps, backend="vectorized")
        assert alloc.rates() == single.rates()
        seen += 1
    assert seen == expected


def test_r3_sweep_batched_matches_default():
    from repro.experiments.r3_doom_switch import sweep

    points = ((5, 1), (7, 2))
    default = sweep(points=points)
    batched = sweep(points=points, backend="batched")
    for ref, row in zip(default, batched):
        assert (row.n, row.k, row.num_flows) == (ref.n, ref.k, ref.num_flows)
        assert row.upper_bound_holds and ref.upper_bound_holds
        assert abs(float(row.gain) - float(ref.gain)) <= 1e-9
        assert row.num_degraded == ref.num_degraded


def test_e6_stochastic_batched_matches_default():
    from repro.experiments.ecmp_simulation import stochastic_comparison

    default = stochastic_comparison(n=2, num_flows=8, seeds=(0,))
    batched = stochastic_comparison(
        n=2, num_flows=8, seeds=(0,), backend="batched"
    )
    assert len(batched) == len(default)
    for ref, row in zip(default, batched):
        assert (row.workload, row.router, row.seed) == (
            ref.workload, ref.router, ref.seed
        )
        assert abs(
            float(row.throughput_fraction) - float(ref.throughput_fraction)
        ) <= 1e-9
        assert abs(float(row.min_rate_ratio) - float(ref.min_rate_ratio)) <= 1e-9
        assert row.lex_at_most_macro == ref.lex_at_most_macro


# ----------------------------------------------------------------------
# The fuzz-level group guard
# ----------------------------------------------------------------------
def test_chaos_batched_cross_check_clean():
    from repro.chaos import batched_cross_check

    instances = [random_instance(seed) for seed in range(10)]
    assert batched_cross_check(instances) == []
