"""Tests for planted-gadget workloads and their experiments."""

from fractions import Fraction

import pytest

from repro.core.objectives import macro_switch_max_min
from repro.workloads.planted import planted_figure_2, planted_theorem_4_3


class TestPlantedTheorem43:
    def test_gadget_flows_come_first(self):
        instance = planted_theorem_4_3(3, num_background=10, seed=0)
        gadget_count = len(instance.gadget.flows)
        assert instance.flows.flows[:gadget_count] == list(instance.gadget.flows)
        assert len(instance.background) == 10

    def test_background_avoids_gadget_switches(self):
        instance = planted_theorem_4_3(3, num_background=25, seed=1)
        reserved = set(range(1, 5))  # switches 1..n+1 for n=3
        for flow in instance.background:
            assert flow.source.switch not in reserved
            assert flow.dest.switch not in reserved

    def test_gadget_macro_rates_unchanged_by_background(self):
        """Background shares no server links with the gadget, so the
        macro-switch rates of the gadget flows are exactly Lemma 4.4's."""
        from repro.core.theorems import theorem_4_3 as predict

        instance = planted_theorem_4_3(3, num_background=20, seed=2)
        prediction = predict(3)
        macro = macro_switch_max_min(instance.macro, instance.flows)
        for type_name in ("type1", "type2", "type3"):
            for flow in instance.gadget.types[type_name]:
                assert macro.rate(flow) == prediction.macro_rates[type_name]

    def test_zero_background(self):
        instance = planted_theorem_4_3(3, num_background=0, seed=0)
        assert len(instance.flows) == len(instance.gadget.flows)

    def test_deterministic(self):
        a = planted_theorem_4_3(3, num_background=10, seed=5)
        b = planted_theorem_4_3(3, num_background=10, seed=5)
        assert a.flows.flows == b.flows.flows


class TestPlantedFigure2:
    def test_background_avoids_gadget_switches(self):
        instance = planted_figure_2(3, k=4, num_background=15, seed=0)
        for flow in instance.background:
            assert flow.source.switch not in {1, 2}
            assert flow.dest.switch not in {1, 2}

    def test_gadget_rates_invariant(self):
        instance = planted_figure_2(3, k=4, num_background=15, seed=0)
        macro = macro_switch_max_min(instance.macro, instance.flows)
        for flow in instance.gadget.flows:
            assert macro.rate(flow) == Fraction(1, 5)  # 1/(k+1)


class TestExperiments:
    def test_starvation_rows(self):
        from repro.experiments.planted_gadgets import planted_starvation

        rows = planted_starvation(background_levels=(0, 10), seed=0)
        assert len(rows) == 4  # 2 levels x 2 routers
        ecmp_rows = [row for row in rows if row.router == "ecmp"]
        # background on disjoint servers does not change the macro rate
        assert all(row.macro_rate == 1 for row in rows)
        # and the type-3 flow's fate under ECMP is insensitive to it
        # (shared links are interior, and background never rides them in
        # this embedding since it avoids the gadget's output switches)
        assert len({row.ratio for row in ecmp_rows}) <= 2

    def test_price_of_fairness_dilution(self):
        from repro.experiments.planted_gadgets import planted_price_of_fairness

        rows = planted_price_of_fairness(
            k=8, background_levels=(0, 20), seed=0
        )
        assert rows[0].gadget_rate_each == rows[1].gadget_rate_each
        # the global ratio moves toward 1 as background dilutes the gadget
        assert rows[1].ratio > rows[0].ratio
