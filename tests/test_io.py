"""Tests for scenario serialization (round-trips and malformed input)."""

import json
from fractions import Fraction

import pytest

from repro.core.flows import Flow, FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.io.serialize import Scenario, ScenarioError

from tests.helpers import random_flows, random_routing


@pytest.fixture
def scenario():
    clos = ClosNetwork(2)
    flows = random_flows(clos, 6, seed=0)
    routing = random_routing(clos, flows, seed=0)
    allocation = max_min_fair(routing, clos.graph.capacities())
    return Scenario(clos, flows, routing=routing, allocation=allocation)


class TestRoundTrip:
    def test_flows_roundtrip(self, scenario):
        loaded = Scenario.from_json(scenario.to_json())
        assert list(loaded.flows) == list(scenario.flows)
        assert loaded.network.n == scenario.network.n

    def test_routing_roundtrip(self, scenario):
        loaded = Scenario.from_json(scenario.to_json())
        original = scenario.routing.middles(scenario.network)
        recovered = loaded.routing.middles(loaded.network)
        assert {repr(f): m for f, m in original.items()} == {
            repr(f): m for f, m in recovered.items()
        }

    def test_allocation_roundtrip_exact(self, scenario):
        loaded = Scenario.from_json(scenario.to_json())
        for original_flow, loaded_flow in zip(scenario.flows, loaded.flows):
            assert scenario.allocation.rate(original_flow) == loaded.allocation.rate(
                loaded_flow
            )
            assert isinstance(loaded.allocation.rate(loaded_flow), Fraction)

    def test_recomputation_matches(self, scenario):
        """Water-filling on the loaded scenario reproduces the saved rates."""
        loaded = Scenario.from_json(scenario.to_json())
        recomputed = max_min_fair(
            loaded.routing, loaded.network.graph.capacities()
        )
        for flow in loaded.flows:
            assert recomputed.rate(flow) == loaded.allocation.rate(flow)

    def test_file_roundtrip(self, scenario, tmp_path):
        path = tmp_path / "scenario.json"
        scenario.save(str(path))
        loaded = Scenario.load(str(path))
        assert len(loaded.flows) == len(scenario.flows)

    def test_optional_fields_absent(self):
        clos = ClosNetwork(2)
        flows = FlowCollection([Flow(clos.source(1, 1), clos.destination(3, 1))])
        loaded = Scenario.from_json(Scenario(clos, flows).to_json())
        assert loaded.routing is None
        assert loaded.allocation is None

    def test_middle_count_preserved(self):
        clos = ClosNetwork(2, middle_count=4)
        flows = FlowCollection([Flow(clos.source(1, 1), clos.destination(3, 1))])
        loaded = Scenario.from_json(Scenario(clos, flows).to_json())
        assert loaded.network.num_middles == 4

    def test_parallel_flow_tags_preserved(self):
        clos = ClosNetwork(2)
        flows = FlowCollection()
        flows.add_pair(clos.source(1, 1), clos.destination(3, 1), count=3)
        loaded = Scenario.from_json(Scenario(clos, flows).to_json())
        assert sorted(f.tag for f in loaded.flows) == [0, 1, 2]


class TestMalformedInput:
    def test_wrong_format(self):
        with pytest.raises(ScenarioError, match="format"):
            Scenario.from_dict({"format": "other", "version": 1})

    def test_wrong_version(self):
        with pytest.raises(ScenarioError, match="version"):
            Scenario.from_dict({"format": "repro-scenario", "version": 99})

    def test_invalid_json(self):
        with pytest.raises(ScenarioError, match="JSON"):
            Scenario.from_json("{not json")

    def test_missing_header(self):
        with pytest.raises(ScenarioError, match="header"):
            Scenario.from_dict({"format": "repro-scenario", "version": 1})

    def test_malformed_flow(self):
        document = {
            "format": "repro-scenario",
            "version": 1,
            "n": 2,
            "flows": [{"src": [1], "dst": [3, 1]}],
        }
        with pytest.raises(ScenarioError, match="flow entry"):
            Scenario.from_dict(document)

    def test_flow_index_out_of_range(self, scenario):
        document = scenario.to_dict()
        document["routing"]["99"] = 1
        with pytest.raises(ScenarioError, match="out of range"):
            Scenario.from_dict(document)

    def test_malformed_rate(self, scenario):
        document = scenario.to_dict()
        first_key = next(iter(document["allocation"]))
        document["allocation"][first_key] = "one third"
        with pytest.raises(ScenarioError, match="rate"):
            Scenario.from_dict(document)

    def test_partial_allocation_rejected(self, scenario):
        document = scenario.to_dict()
        first_key = next(iter(document["allocation"]))
        del document["allocation"][first_key]
        with pytest.raises(ScenarioError, match="every flow"):
            Scenario.from_dict(document)

    def test_out_of_topology_flow_rejected(self):
        document = {
            "format": "repro-scenario",
            "version": 1,
            "n": 2,
            "flows": [{"src": [9, 1], "dst": [3, 1], "tag": 0}],
        }
        with pytest.raises(ValueError):
            Scenario.from_dict(document)

    def test_document_is_valid_json(self, scenario):
        json.loads(scenario.to_json())  # must not raise


class TestAtomicDurability:
    """Crash-simulation tests for the fsync-before-rename contract: a
    write interrupted at any point must leave the previous file intact,
    and a completed write must have fsynced both the data and the
    directory entry so it survives power loss."""

    def test_crash_before_rename_leaves_original_intact(
        self, tmp_path, monkeypatch
    ):
        import os

        from repro.io.serialize import read_json, write_json_atomic

        target = tmp_path / "state.json"
        write_json_atomic(str(target), {"value": 1})

        def crash(src, dst):
            raise OSError("simulated power loss before rename")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError):
            write_json_atomic(str(target), {"value": 2})
        monkeypatch.undo()
        assert read_json(str(target)) == {"value": 1}

    def test_json_write_fsyncs_file_and_directory(
        self, tmp_path, monkeypatch
    ):
        import os

        from repro.io.serialize import write_json_atomic

        real_fsync = os.fsync
        synced = []

        def record(fd):
            synced.append(os.fstat(fd).st_mode)
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", record)
        write_json_atomic(str(tmp_path / "state.json"), {"value": 1})
        import stat

        kinds = {stat.S_ISDIR(mode) for mode in synced}
        assert kinds == {True, False}  # the temp file AND its directory

    def test_jsonl_write_fsyncs_file_and_directory(
        self, tmp_path, monkeypatch
    ):
        import os
        import stat

        from repro.io.serialize import write_jsonl_atomic

        real_fsync = os.fsync
        synced = []

        def record(fd):
            synced.append(os.fstat(fd).st_mode)
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", record)
        write_jsonl_atomic(
            str(tmp_path / "rows.jsonl"), [{"row": 1}, {"row": 2}]
        )
        kinds = {stat.S_ISDIR(mode) for mode in synced}
        assert kinds == {True, False}

    def test_directory_fsync_failure_is_tolerated(
        self, tmp_path, monkeypatch
    ):
        # Some filesystems refuse to fsync a directory fd; durability
        # degrades but the write must still succeed.
        import os

        from repro.io.serialize import read_json, write_json_atomic

        real_open = os.open

        def refuse_dir(path, flags, *args, **kwargs):
            if os.path.isdir(path):
                raise OSError("directory fds not supported (simulated)")
            return real_open(path, flags, *args, **kwargs)

        monkeypatch.setattr(os, "open", refuse_dir)
        target = tmp_path / "state.json"
        write_json_atomic(str(target), {"value": 3})
        monkeypatch.undo()
        assert read_json(str(target)) == {"value": 3}
