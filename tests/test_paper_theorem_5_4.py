"""Paper reproduction — Theorem 5.4 / Example 5.3 (R3).

Upper bound ``T^{T-MmF} ≤ 2 T^MmF`` (exactly, by exhaustive search on
small instances; via the chain of lemmas on hypothesis-generated ones)
and the tightness construction driven by the Doom-Switch algorithm.
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.doom_switch import doom_switch
from repro.core.flows import FlowCollection
from repro.core.objectives import macro_switch_max_min, throughput_max_min_fair
from repro.core.theorems import theorem_5_4 as predict
from repro.core.throughput import max_throughput_value
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.workloads.adversarial import example_5_3, theorem_5_4

from tests.helpers import random_flows


class TestExample53:
    def test_macro_max_min_nine_halves(self):
        instance = example_5_3()
        alloc = macro_switch_max_min(instance.macro, instance.flows)
        assert set(alloc.rates().values()) == {Fraction(1, 2)}
        assert alloc.throughput() == Fraction(9, 2)

    def test_doom_switch_reaches_five(self):
        instance = example_5_3()
        result = doom_switch(instance.clos, instance.flows)
        assert result.allocation.throughput() == 5

    def test_type1_rates_rise_to_two_thirds(self):
        instance = example_5_3()
        result = doom_switch(instance.clos, instance.flows)
        for f in instance.types["type1"]:
            assert result.allocation.rate(f) == Fraction(2, 3)

    def test_type2_rates_fall_to_one_third(self):
        instance = example_5_3()
        result = doom_switch(instance.clos, instance.flows)
        for f in instance.types["type2"]:
            assert result.allocation.rate(f) == Fraction(1, 3)

    def test_type1_matched_on_distinct_middles(self):
        """'the algorithm, for instance, assigns type 1 flow ... to M_j'."""
        instance = example_5_3()
        result = doom_switch(instance.clos, instance.flows)
        middles = result.routing.middles(instance.clos)
        type1_middles = [middles[f] for f in instance.types["type1"]]
        assert len(set(type1_middles)) == len(type1_middles)

    def test_type2_all_on_the_doom_switch(self):
        instance = example_5_3()
        result = doom_switch(instance.clos, instance.flows)
        middles = result.routing.middles(instance.clos)
        assert {middles[f] for f in instance.types["type2"]} == {
            result.doom_switch
        }


class TestTightness:
    @pytest.mark.parametrize(
        "n,k", [(5, 1), (7, 1), (7, 4), (9, 1), (9, 8), (11, 3), (13, 16)]
    )
    def test_measured_matches_prediction(self, n, k):
        instance = theorem_5_4(n, k)
        prediction = predict(n, k)
        macro = macro_switch_max_min(instance.macro, instance.flows)
        assert macro.throughput() == prediction.macro_max_min_throughput
        result = doom_switch(instance.clos, instance.flows)
        assert result.allocation.throughput() == prediction.doom_throughput
        for f in instance.types["type1"]:
            assert result.allocation.rate(f) == prediction.type1_rate
        for f in instance.types["type2"]:
            assert result.allocation.rate(f) == prediction.type2_rate

    def test_gain_approaches_two(self):
        gains = []
        for n, k in ((5, 4), (9, 8), (13, 16), (21, 32), (31, 64)):
            instance = theorem_5_4(n, k)
            macro = macro_switch_max_min(instance.macro, instance.flows)
            result = doom_switch(instance.clos, instance.flows)
            gains.append(result.allocation.throughput() / macro.throughput())
        assert gains == sorted(gains)
        assert all(g < 2 for g in gains)
        assert gains[-1] > Fraction(9, 5)  # within 10% of the bound

    def test_epsilon_matches_formula(self):
        for n, k in ((7, 1), (9, 5), (11, 2)):
            instance = theorem_5_4(n, k)
            macro = macro_switch_max_min(instance.macro, instance.flows)
            result = doom_switch(instance.clos, instance.flows)
            gain = result.allocation.throughput() / macro.throughput()
            epsilon = 1 - gain / 2
            assert epsilon == Fraction(k + n, (n - 1) * (k + 2))

    def test_doubling_zeroes_most_rates_in_the_limit(self):
        """'doubling the throughput requires zeroing the rates of most
        flows': the doomed flows' total share vanishes as k grows."""
        shares = []
        for k in (1, 8, 64):
            instance = theorem_5_4(9, k)
            result = doom_switch(instance.clos, instance.flows)
            doomed_rate = sum(result.allocation.rate(f) for f in result.doomed)
            shares.append(doomed_rate / result.allocation.throughput())
        assert shares == sorted(shares, reverse=True)
        # per-flow doomed rate tends to zero
        instance = theorem_5_4(9, 64)
        result = doom_switch(instance.clos, instance.flows)
        assert max(
            result.allocation.rate(f) for f in result.doomed
        ) == Fraction(2, 64 * 8)


class TestUpperBound:
    """T^{T-MmF} ≤ 2 T^MmF for every collection of flows."""

    @pytest.mark.parametrize("seed", range(5))
    def test_exact_on_small_instances(self, seed):
        clos = ClosNetwork(2)
        ms = MacroSwitch(2)
        flows = random_flows(clos, 5, seed=seed)
        t_mmf = macro_switch_max_min(ms, flows).throughput()
        optimal = throughput_max_min_fair(clos, flows)
        assert optimal.allocation.throughput() <= 2 * t_mmf

    @pytest.mark.parametrize("seed", range(5))
    def test_doom_switch_respects_bound(self, seed):
        """The lower-bounding algorithm also never exceeds 2x."""
        clos = ClosNetwork(3)
        ms = MacroSwitch(3)
        flows = random_flows(clos, 20, seed=seed)
        t_mmf = macro_switch_max_min(ms, flows).throughput()
        result = doom_switch(clos, flows)
        assert result.allocation.throughput() <= 2 * t_mmf

    def test_proof_chain_on_adversarial_instances(self):
        """T^{T-MmF} ≤ T^{T-MT} = T^MT ≤ 2 T^MmF, each link measured."""
        for n, k in ((5, 1), (7, 2)):
            instance = theorem_5_4(n, k)
            macro = macro_switch_max_min(instance.macro, instance.flows)
            t_mt = max_throughput_value(instance.flows)
            result = doom_switch(instance.clos, instance.flows)
            assert result.allocation.throughput() <= t_mt
            assert t_mt <= 2 * macro.throughput()

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_hypothesis_bound_via_doom_switch(self, data):
        n = data.draw(st.integers(1, 3), label="n")
        clos = ClosNetwork(n)
        ms = MacroSwitch(n)
        num_flows = data.draw(st.integers(1, 10), label="num_flows")
        flows = FlowCollection()
        for _ in range(num_flows):
            i = data.draw(st.integers(1, 2 * n))
            j = data.draw(st.integers(1, n))
            oi = data.draw(st.integers(1, 2 * n))
            oj = data.draw(st.integers(1, n))
            flows.add_pair(clos.source(i, j), clos.destination(oi, oj))
        t_mmf = macro_switch_max_min(ms, flows).throughput()
        result = doom_switch(clos, flows)
        assert result.allocation.throughput() <= 2 * t_mmf
