"""Tests for the command-line driver."""

import pytest

import repro.cli as cli
from repro.cli import DESCRIPTIONS, EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_options(self):
        args = build_parser().parse_args(["run", "e2", "--ks", "1,2"])
        assert args.command == "run"
        assert args.experiment == "e2"
        assert args.ks == "1,2"

    def test_every_experiment_has_description(self):
        assert set(EXPERIMENTS) == set(DESCRIPTIONS)

    def test_resilience_flags(self):
        args = build_parser().parse_args(
            [
                "run", "all",
                "--timeout", "30",
                "--retries", "2",
                "--backoff", "0.1",
                "--manifest", "sweep.json",
            ]
        )
        assert args.timeout == 30.0
        assert args.retries == 2
        assert args.backoff == 0.1
        assert args.manifest == "sweep.json"
        assert args.keep_going is True  # the default

    def test_fail_fast_flag(self):
        args = build_parser().parse_args(["run", "all", "--fail-fast"])
        assert args.keep_going is False

    def test_keep_going_and_fail_fast_conflict(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "all", "--keep-going", "--fail-fast"]
            )

    def test_resume_flag(self):
        args = build_parser().parse_args(["run", "all", "--resume", "m.json"])
        assert args.resume == "m.json"


class TestMain:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "e1" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "e99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_e1(self, capsys):
        assert main(["run", "e1"]) == 0
        out = capsys.readouterr().out
        assert "matches paper: True" in out

    def test_run_e2_with_custom_ks(self, capsys):
        assert main(["run", "e2", "--ks", "1,3"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 3.4" in out
        assert "3/4" in out  # k = 1 ratio

    def test_run_e3_small(self, capsys):
        assert main(["run", "e3", "--sizes", "3"]) == 0
        out = capsys.readouterr().out
        assert "False" in out  # unsplittable infeasible

    def test_run_e4_small(self, capsys):
        assert main(["run", "e4", "--sizes", "3"]) == 0
        out = capsys.readouterr().out
        assert "1/3" in out

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "E1"]) == 0


@pytest.fixture
def fake_experiments(monkeypatch):
    """Three tiny experiments, the middle one broken."""
    ran = []

    def ok(name):
        def experiment(args):
            ran.append(name)
            print(f"{name} result table")

        return experiment

    def bad(args):
        ran.append("e_bad")
        raise RuntimeError("solver exploded")

    fakes = {"e_ok1": ok("e_ok1"), "e_bad": bad, "e_ok2": ok("e_ok2")}
    monkeypatch.setattr(cli, "EXPERIMENTS", fakes)
    return ran


class TestResilientRun:
    def test_run_all_keeps_going_and_exits_nonzero(
        self, capsys, fake_experiments
    ):
        assert main(["run", "all"]) == 1
        captured = capsys.readouterr()
        # the failure did not stop the sweep
        assert fake_experiments == ["e_ok1", "e_bad", "e_ok2"]
        assert "e_ok1 result table" in captured.out
        assert "e_ok2 result table" in captured.out
        # pass/fail summary table plus the error on stderr
        assert "run summary" in captured.out
        assert "FAILED" in captured.out
        assert "solver exploded" in captured.err

    def test_fail_fast_stops_the_sweep(self, capsys, fake_experiments):
        assert main(["run", "all", "--fail-fast"]) == 1
        assert fake_experiments == ["e_ok1", "e_bad"]

    def test_all_green_sweep_exits_zero(self, capsys, monkeypatch):
        monkeypatch.setattr(
            cli, "EXPERIMENTS", {"e_a": lambda args: print("fine")}
        )
        assert main(["run", "all"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_single_timeout_flag_engages_runner(self, capsys, monkeypatch):
        import time

        monkeypatch.setattr(
            cli, "EXPERIMENTS", {"e_hang": lambda args: time.sleep(5)}
        )
        assert main(["run", "e_hang", "--timeout", "0.1"]) == 1
        assert "timeout" in capsys.readouterr().err

    def test_manifest_then_resume_is_byte_identical(self, capsys, tmp_path):
        manifest = str(tmp_path / "e1.json")
        assert main(["run", "e1", "--manifest", manifest]) == 0
        first = capsys.readouterr().out
        assert "matches paper: True" in first

        assert main(["run", "e1", "--resume", manifest]) == 0
        assert capsys.readouterr().out == first


@pytest.fixture
def obs_off():
    """Leave the process-wide observability switch off after the test."""
    from repro import obs

    yield
    obs.reset()
    obs.disable()


class TestProfileCommand:
    def test_parser_accepts_profile_options(self):
        args = build_parser().parse_args(
            ["profile", "e1", "--trace", "t.jsonl", "--no-memory"]
        )
        assert args.command == "profile"
        assert args.experiment == "e1"
        assert args.trace == "t.jsonl"
        assert args.memory is False

    def test_profile_prints_span_tree_and_counters(self, capsys, obs_off):
        assert main(["profile", "e1", "--no-memory"]) == 0
        out = capsys.readouterr().out
        assert "span tree" in out
        assert "profile:e1" in out
        assert "maxmin.water_fill" in out
        assert "maxmin.rounds" in out

    def test_profile_writes_trace_jsonl(self, capsys, obs_off, tmp_path):
        from repro.io.serialize import read_jsonl

        trace = str(tmp_path / "e1.jsonl")
        assert main(["profile", "e1", "--no-memory", "--trace", trace]) == 0
        documents = read_jsonl(trace)
        assert documents[0]["name"] == "profile:e1"

    def test_profile_leaves_observability_off(self, capsys, obs_off):
        from repro import obs

        assert main(["profile", "e1", "--no-memory"]) == 0
        assert obs.enabled() is False

    def test_profile_unknown_experiment_errors(self, capsys):
        assert main(["profile", "e99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err


class TestStatsCommand:
    def test_stats_on_traced_manifest(
        self, capsys, obs_off, monkeypatch, tmp_path
    ):
        monkeypatch.setenv("REPRO_OBS", "0")  # manifest flag set explicitly
        from repro import obs

        obs.reset()
        obs.enable()
        manifest = str(tmp_path / "e1.json")
        assert main(["run", "e1", "--manifest", manifest]) == 0
        obs.disable()
        capsys.readouterr()

        assert main(["stats", manifest]) == 0
        out = capsys.readouterr().out
        assert "e1" in out
        assert "maxmin.rounds" in out

    def test_stats_on_untraced_manifest_hints(self, capsys, tmp_path):
        manifest = str(tmp_path / "e1.json")
        assert main(["run", "e1", "--manifest", manifest]) == 0
        capsys.readouterr()

        assert main(["stats", manifest]) == 0
        assert "REPRO_OBS=1" in capsys.readouterr().out

    def test_stats_missing_manifest_errors(self, capsys, tmp_path):
        assert main(["stats", str(tmp_path / "nope.json")]) == 2


@pytest.fixture
def quarantine_dir(monkeypatch, tmp_path):
    directory = tmp_path / "quarantine"
    monkeypatch.setenv("REPRO_QUARANTINE_DIR", str(directory))
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)
    from repro.validate import set_validation_level

    set_validation_level(None)
    yield directory
    set_validation_level(None)


class TestValidateFlag:
    def test_validate_flag_sets_level(self, capsys, quarantine_dir):
        from repro.validate import validation_level

        assert main(["--validate", "full", "list"]) == 0
        assert validation_level() == "full"

    def test_parser_rejects_unknown_level(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--validate", "paranoid", "list"])


class TestFuzzCommand:
    def test_clean_fuzz_exits_zero(self, capsys, quarantine_dir):
        code = main(["fuzz", "--seeds", "3", "--no-churn"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 failure(s)" in out

    def test_corrupt_backend_exits_nonzero(
        self, capsys, quarantine_dir, monkeypatch
    ):
        import repro.core.fastmaxmin as fastmaxmin_module

        original = fastmaxmin_module.max_min_fair_fast

        def skewed(routing, capacities):
            allocation = original(routing, capacities)
            rates = allocation.rates()
            victim = next(iter(rates))
            rates[victim] = rates[victim] * 3 + 0.25
            return type(allocation)(rates)

        monkeypatch.setattr(fastmaxmin_module, "max_min_fair_fast", skewed)
        code = main(
            ["fuzz", "--seeds", "2", "--backends", "heap", "--no-churn"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "heap" in captured.err
        assert list(quarantine_dir.glob("*.json"))


class TestReplayCommand:
    def test_missing_bundle_exits_two(self, capsys, quarantine_dir):
        code = main(["replay", str(quarantine_dir / "nope.json")])
        assert code == 2
        assert "cannot load bundle" in capsys.readouterr().err

    def test_healthy_bundle_exits_zero(self, capsys, quarantine_dir, clos2):
        from repro.quarantine import write_bundle
        from tests.helpers import random_flows, random_routing

        flows = random_flows(clos2, 5, seed=1)
        routing = random_routing(clos2, flows, seed=1)
        path = write_bundle(
            routing, clos2.graph.capacities(), "falsealarm",
            "reference", True,
        )
        code = main(["replay", path])
        out = capsys.readouterr().out
        assert code == 0
        assert "does not reproduce" in out

    def test_reproducing_bundle_exits_one_and_minimizes(
        self, capsys, quarantine_dir, clos2, monkeypatch
    ):
        pytest.importorskip("numpy")
        import repro.core.vectorized as vectorized_module
        from repro.validate import validation

        original = vectorized_module.waterfill

        def doubled(compiled, caps):
            with validation("off"):
                rates = original(compiled, caps)
            return rates * 2.0

        monkeypatch.setattr(vectorized_module, "waterfill", doubled)
        from repro.core.solve import solve_max_min
        from repro.validate import validation
        from tests.helpers import random_flows, random_routing

        flows = random_flows(clos2, 5, seed=8)
        routing = random_routing(clos2, flows, seed=8)
        with validation("full"):
            solve_max_min(
                routing, clos2.graph.capacities(),
                backend="auto", exact=False,
            )
        bundles = list(quarantine_dir.glob("q-certificate-*.json"))
        assert len(bundles) == 1
        code = main(["replay", str(bundles[0])])
        out = capsys.readouterr().out
        assert code == 1
        assert "still fails" in out
        assert "minimized to 1 flow(s)" in out
