"""Tests for the command-line driver."""

import pytest

from repro.cli import DESCRIPTIONS, EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_with_options(self):
        args = build_parser().parse_args(["run", "e2", "--ks", "1,2"])
        assert args.command == "run"
        assert args.experiment == "e2"
        assert args.ks == "1,2"

    def test_every_experiment_has_description(self):
        assert set(EXPERIMENTS) == set(DESCRIPTIONS)


class TestMain:
    def test_list_prints_all_ids(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_no_command_lists(self, capsys):
        assert main([]) == 0
        assert "e1" in capsys.readouterr().out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "e99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_e1(self, capsys):
        assert main(["run", "e1"]) == 0
        out = capsys.readouterr().out
        assert "matches paper: True" in out

    def test_run_e2_with_custom_ks(self, capsys):
        assert main(["run", "e2", "--ks", "1,3"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 3.4" in out
        assert "3/4" in out  # k = 1 ratio

    def test_run_e3_small(self, capsys):
        assert main(["run", "e3", "--sizes", "3"]) == 0
        out = capsys.readouterr().out
        assert "False" in out  # unsplittable infeasible

    def test_run_e4_small(self, capsys):
        assert main(["run", "e4", "--sizes", "3"]) == 0
        out = capsys.readouterr().out
        assert "1/3" in out

    def test_run_is_case_insensitive(self, capsys):
        assert main(["run", "E1"]) == 0
