"""Tests for the step-level proof instrumentation."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flows import FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.proofcheck import theorem_3_4_chain, theorem_5_4_chain
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.workloads.adversarial import theorem_3_4, theorem_5_4

from tests.helpers import random_flows, random_routing


class TestTheorem34Chain:
    def test_example_3_3_quantities(self):
        """The worked example's numbers appear in the chain."""
        instance = theorem_3_4(1, 1)
        chain = theorem_3_4_chain(instance.macro, instance.flows)
        assert chain.t_max_min == Fraction(3, 2)
        assert chain.t_max_throughput == 2
        assert chain.all_steps_hold
        # τ_{s_2^1} = 1/2 + 1/2 = 1 (two flows leave s_2^1)
        s21 = instance.macro.source(2, 1)
        assert chain.tau_source[s21] == 1

    def test_adversarial_k_sweep(self):
        for k in (1, 4, 16):
            instance = theorem_3_4(1, k)
            chain = theorem_3_4_chain(instance.macro, instance.flows)
            assert chain.all_steps_hold
            assert chain.t_max_min == 1 + Fraction(1, k + 1)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_instances_every_step(self, seed):
        clos = ClosNetwork(3)
        ms = MacroSwitch(3)
        flows = random_flows(clos, 20, seed=seed)
        chain = theorem_3_4_chain(ms, flows)
        assert chain.step_flow_conservation
        assert chain.step_matching_subsums
        assert chain.step_bottleneck_pairs
        assert chain.step_final_bound
        assert chain.all_steps_hold

    def test_matched_pair_totals_at_least_one(self):
        clos = ClosNetwork(2)
        ms = MacroSwitch(2)
        flows = random_flows(clos, 12, seed=0)
        chain = theorem_3_4_chain(ms, flows)
        assert all(total >= 1 for total in chain.matched_pair_totals.values())

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_hypothesis_chain(self, data):
        n = data.draw(st.integers(1, 2), label="n")
        ms = MacroSwitch(n)
        num_flows = data.draw(st.integers(1, 10), label="num_flows")
        flows = FlowCollection()
        for _ in range(num_flows):
            i = data.draw(st.integers(1, 2 * n))
            j = data.draw(st.integers(1, n))
            oi = data.draw(st.integers(1, 2 * n))
            oj = data.draw(st.integers(1, n))
            flows.add_pair(ms.source(i, j), ms.destination(oi, oj))
        assert theorem_3_4_chain(ms, flows).all_steps_hold


class TestTheorem54Chain:
    def test_doom_switch_allocation(self):
        from repro.core.doom_switch import doom_switch

        instance = theorem_5_4(7, 2)
        result = doom_switch(instance.clos, instance.flows)
        chain = theorem_5_4_chain(
            instance.clos, instance.flows, result.allocation
        )
        assert chain.all_steps_hold
        assert chain.t_allocation == 5  # n - 2

    @pytest.mark.parametrize("seed", range(4))
    def test_random_routings(self, seed):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 8, seed=seed)
        routing = random_routing(clos, flows, seed=seed)
        allocation = max_min_fair(routing, clos.graph.capacities())
        chain = theorem_5_4_chain(clos, flows, allocation)
        assert chain.step_allocation_below_mt
        assert chain.step_mt_below_twice_mmf
        assert chain.all_steps_hold
