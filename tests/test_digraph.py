"""Unit tests for the directed-graph substrate."""

import pytest

from repro.graph.digraph import INFINITE_CAPACITY, DiGraph


class TestConstruction:
    def test_empty_graph(self):
        g = DiGraph()
        assert g.num_nodes() == 0
        assert g.num_links() == 0
        assert g.nodes == []
        assert g.links == []

    def test_add_node_idempotent(self):
        g = DiGraph()
        g.add_node("a")
        g.add_node("a")
        assert g.num_nodes() == 1

    def test_add_link_adds_endpoints(self):
        g = DiGraph()
        g.add_link("a", "b")
        assert g.has_node("a")
        assert g.has_node("b")
        assert g.has_link("a", "b")
        assert not g.has_link("b", "a")

    def test_default_capacity_is_one(self):
        g = DiGraph()
        g.add_link("a", "b")
        assert g.capacity("a", "b") == 1

    def test_explicit_capacity(self):
        g = DiGraph()
        g.add_link("a", "b", capacity=7)
        assert g.capacity("a", "b") == 7

    def test_infinite_capacity(self):
        g = DiGraph()
        g.add_link("a", "b", capacity=INFINITE_CAPACITY)
        assert g.capacity("a", "b") == float("inf")

    def test_readd_link_overwrites_capacity(self):
        g = DiGraph()
        g.add_link("a", "b", capacity=1)
        g.add_link("a", "b", capacity=3)
        assert g.capacity("a", "b") == 3
        assert g.num_links() == 1

    def test_remove_link(self):
        g = DiGraph()
        g.add_link("a", "b")
        g.remove_link("a", "b")
        assert not g.has_link("a", "b")
        assert g.has_node("a")

    def test_remove_missing_link_raises(self):
        g = DiGraph()
        g.add_node("a")
        with pytest.raises(KeyError):
            g.remove_link("a", "b")


class TestQueries:
    @pytest.fixture
    def diamond(self) -> DiGraph:
        g = DiGraph()
        g.add_link("s", "a")
        g.add_link("s", "b")
        g.add_link("a", "t")
        g.add_link("b", "t")
        return g

    def test_successors(self, diamond):
        assert sorted(diamond.successors("s")) == ["a", "b"]

    def test_predecessors(self, diamond):
        assert sorted(diamond.predecessors("t")) == ["a", "b"]

    def test_degrees(self, diamond):
        assert diamond.out_degree("s") == 2
        assert diamond.in_degree("s") == 0
        assert diamond.in_degree("t") == 2
        assert diamond.out_degree("t") == 0

    def test_capacity_of_missing_link_raises(self, diamond):
        with pytest.raises(KeyError):
            diamond.capacity("s", "t")

    def test_capacities_returns_copy(self, diamond):
        caps = diamond.capacities()
        caps[("s", "a")] = 99
        assert diamond.capacity("s", "a") == 1

    def test_contains(self, diamond):
        assert "s" in diamond
        assert "zz" not in diamond

    def test_missing_node_queries_raise(self, diamond):
        with pytest.raises(KeyError):
            list(diamond.successors("zz"))


class TestPaths:
    @pytest.fixture
    def chain(self) -> DiGraph:
        g = DiGraph()
        g.add_link("a", "b")
        g.add_link("b", "c")
        return g

    def test_valid_path(self, chain):
        assert chain.is_path(["a", "b", "c"])

    def test_single_node_path(self, chain):
        assert chain.is_path(["a"])

    def test_single_missing_node_path(self, chain):
        assert not chain.is_path(["zz"])

    def test_empty_path_invalid(self, chain):
        assert not chain.is_path([])

    def test_broken_path(self, chain):
        assert not chain.is_path(["a", "c"])

    def test_reversed_path_invalid(self, chain):
        assert not chain.is_path(["c", "b", "a"])

    def test_path_links(self, chain):
        assert chain.path_links(["a", "b", "c"]) == [("a", "b"), ("b", "c")]

    def test_path_links_invalid_raises(self, chain):
        with pytest.raises(ValueError):
            chain.path_links(["a", "c"])
