"""Tests for :mod:`repro.core.streaming` — incremental max-min
water-filling under flow churn.

The load-bearing property: after *every* prefix of a random
arrival/departure sequence, the streaming solver's rates are
bit-identical (float mode) to a from-scratch vectorized solve of the
same flow set, and ``Fraction``-identical (exact mode) to the reference
solver.  Plus the PR 6 ``incidence_stale`` regression class (a
finite↔infinite capacity flip), validation edges, and the
``stream-mismatch`` quarantine path.
"""

import random

import pytest

from repro.core.flows import Flow
from repro.core.routing import Routing
from repro.errors import UnboundedRateError, UnknownLinkError

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")

INF = float("inf")


def random_fabric(seed, n_nodes=10, n_links=36):
    rng = random.Random(seed)
    nodes = [f"v{i}" for i in range(n_nodes)]
    caps = {}
    while len(caps) < n_links:
        a, b = rng.sample(nodes, 2)
        caps[(a, b)] = rng.choice([0.5, 1.0, 2.0, 3.0, INF])
    return nodes, caps


def random_path(rng, nodes, caps):
    """A simple path with at least one finite link, or ``None``."""
    for _ in range(200):
        path = [rng.choice(nodes)]
        links = []
        for _ in range(rng.randint(1, 4)):
            onward = [b for (a, b) in caps if a == path[-1] and b not in path]
            if not onward:
                break
            nxt = rng.choice(onward)
            links.append((path[-1], nxt))
            path.append(nxt)
        if links and any(caps[link] != INF for link in links):
            return tuple(path)
    return None


def churn_step(rng, solver, live, counter, nodes, caps, p_remove=0.45):
    """Stage 1–3 random arrivals/departures; returns the event count."""
    staged = 0
    for _ in range(rng.randint(1, 3)):
        if live and rng.random() < p_remove:
            flow = rng.choice(sorted(live, key=repr))
            solver.remove(flow)
            del live[flow]
            staged += 1
        else:
            path = random_path(rng, nodes, caps)
            if path is None:
                continue
            flow = Flow(path[0], path[-1], tag=f"f{next(counter)}")
            solver.add(flow, path)
            live[flow] = path
            staged += 1
    return staged


def counter_gen():
    i = 0
    while True:
        yield i
        i += 1


@needs_numpy
class TestBitIdentity:
    """Streaming float rates must equal from-scratch vectorized rates
    bit-for-bit after every solve of a churn sequence."""

    @pytest.mark.parametrize("seed", [0, 7, 23])
    @pytest.mark.parametrize("checkpoint_every", [1, 3, 16])
    def test_prefixes_match_from_scratch(self, seed, checkpoint_every):
        from repro.core.streaming import StreamingMaxMin
        from repro.core.vectorized import max_min_fair_vectorized

        nodes, caps = random_fabric(seed)
        rng = random.Random(seed + 1)
        solver = StreamingMaxMin(caps, checkpoint_every=checkpoint_every)
        live, ids = {}, counter_gen()
        for step in range(60):
            churn_step(rng, solver, live, ids, nodes, caps)
            if not live:
                continue
            rates = solver.solve()
            fresh = max_min_fair_vectorized(Routing(dict(live)), caps)
            for flow in live:
                assert rates[flow] == fresh.rate(flow), (
                    f"seed {seed} step {step}: {flow} diverged "
                    f"({rates[flow]!r} != {fresh.rate(flow)!r})"
                )

    def test_aggressive_compaction_stays_identical(self):
        from repro.core.streaming import StreamingMaxMin
        from repro.core.vectorized import max_min_fair_vectorized

        nodes, caps = random_fabric(3)
        rng = random.Random(4)
        solver = StreamingMaxMin(
            caps, checkpoint_every=2, max_dead_fraction=0.0
        )
        live, ids = {}, counter_gen()
        for step in range(50):
            churn_step(rng, solver, live, ids, nodes, caps, p_remove=0.5)
            if not live:
                continue
            rates = solver.solve()
            fresh = max_min_fair_vectorized(Routing(dict(live)), caps)
            for flow in live:
                assert rates[flow] == fresh.rate(flow), step


class TestExactMode:
    @pytest.mark.skipif(not HAVE_NUMPY, reason="fabric helper uses float caps")
    def test_prefixes_match_reference_exactly(self):
        from repro.core.solve import solve_max_min
        from repro.core.streaming import StreamingMaxMin

        nodes, caps = random_fabric(11)
        rng = random.Random(12)
        solver = StreamingMaxMin(caps, exact=True, checkpoint_every=2)
        live, ids = {}, counter_gen()
        for step in range(40):
            churn_step(rng, solver, live, ids, nodes, caps)
            if not live:
                continue
            rates = solver.solve()
            reference = solve_max_min(
                Routing(dict(live)), caps, backend="reference", exact=True
            )
            for flow in live:
                assert rates[flow] == reference.rate(flow), step


@needs_numpy
class TestCapacityChurn:
    """The PR 6 ``incidence_stale`` class: flipping a link between
    finite and infinite must recompile, value brownouts must not."""

    def test_finite_infinite_flip(self):
        from repro.core.streaming import StreamingMaxMin
        from repro.core.vectorized import max_min_fair_vectorized

        nodes, caps = random_fabric(21)
        caps = dict(caps)
        flip = next(link for link, cap in caps.items() if cap != INF)
        rng = random.Random(22)
        solver = StreamingMaxMin(caps, checkpoint_every=4)
        live, ids = {}, counter_gen()
        for step in range(45):
            churn_step(rng, solver, live, ids, nodes, caps, p_remove=0.3)
            if step == 15:  # total failure modeled as infinite capacity
                caps[flip] = INF
                solver.set_capacities(caps)
                survivors = {
                    flow: path
                    for flow, path in live.items()
                    if any(
                        caps[link] != INF for link in zip(path, path[1:])
                    )
                }
                for flow in list(live):
                    if flow not in survivors:
                        solver.remove(flow)
                live = survivors
            if step == 30:  # recovery
                caps[flip] = 1.0
                solver.set_capacities(caps)
            if not live:
                continue
            rates = solver.solve()
            fresh = max_min_fair_vectorized(Routing(dict(live)), caps)
            for flow in live:
                assert rates[flow] == fresh.rate(flow), step

    def test_value_only_change_needs_no_recompile(self):
        from repro.core.streaming import StreamingMaxMin
        from repro.core.vectorized import max_min_fair_vectorized

        caps = {("a", "b"): 2.0, ("b", "c"): 4.0}
        flows = [Flow("a", "c", tag=str(i)) for i in range(3)]
        solver = StreamingMaxMin(caps)
        for flow in flows:
            solver.add(flow, ("a", "b", "c"))
        solver.solve()
        recompiles = solver.stats["recompiles"]
        caps = {("a", "b"): 1.0, ("b", "c"): 4.0}
        solver.set_capacities(caps)
        rates = solver.solve()
        assert solver.stats["recompiles"] == recompiles
        fresh = max_min_fair_vectorized(
            Routing({flow: ("a", "b", "c") for flow in flows}), caps
        )
        for flow in flows:
            assert rates[flow] == fresh.rate(flow)

    def test_value_change_then_remove_in_same_batch(self):
        """Regression: a value-only capacity change forces a full solve
        without a recompile; if that batch also stages a remove, the
        apply path must compute the link delta *before* killing the
        removed flow's slot."""
        from repro.core.streaming import StreamingMaxMin
        from repro.core.vectorized import max_min_fair_vectorized

        caps = {("a", "b"): 2.0, ("b", "c"): 4.0}
        flows = [Flow("a", "c", tag=str(i)) for i in range(3)]
        solver = StreamingMaxMin(caps)
        for flow in flows:
            solver.add(flow, ("a", "b", "c"))
        solver.solve()
        caps = {("a", "b"): 1.0, ("b", "c"): 4.0}
        solver.set_capacities(caps)
        solver.remove(flows[0])
        solver.add(Flow("a", "c", tag="3"), ("a", "b", "c"))
        rates = solver.solve()
        live = {flow: ("a", "b", "c") for flow in flows[1:]}
        live[Flow("a", "c", tag="3")] = ("a", "b", "c")
        fresh = max_min_fair_vectorized(Routing(dict(live)), caps)
        for flow in live:
            assert rates[flow] == fresh.rate(flow)


@needs_numpy
class TestMutationEdges:
    CAPS = {("a", "b"): 1.0, ("b", "c"): 2.0, ("c", "d"): INF}

    def make(self, **kwargs):
        from repro.core.streaming import StreamingMaxMin

        return StreamingMaxMin(self.CAPS, **kwargs)

    def test_duplicate_add_rejected(self):
        solver = self.make()
        flow = Flow("a", "b")
        solver.add(flow, ("a", "b"))
        with pytest.raises(ValueError, match="already tracked"):
            solver.add(flow, ("a", "b"))
        solver.solve()
        with pytest.raises(ValueError, match="already tracked"):
            solver.add(flow, ("a", "b"))

    def test_unknown_remove_rejected(self):
        solver = self.make()
        with pytest.raises(KeyError):
            solver.remove(Flow("a", "b"))

    def test_remove_then_readd_same_batch(self):
        solver = self.make()
        flow = Flow("a", "b")
        solver.add(flow, ("a", "b"))
        solver.solve()
        solver.remove(flow)
        solver.add(flow, ("a", "b"))  # departure then re-arrival
        assert solver.solve()[flow] == 1.0

    def test_add_cancelled_by_remove_within_batch(self):
        solver = self.make()
        flow = Flow("a", "b")
        solver.add(flow, ("a", "b"))
        solver.remove(flow)
        assert len(solver) == 0
        assert solver.solve() == {}

    def test_unknown_link_rejected(self):
        solver = self.make()
        with pytest.raises(UnknownLinkError):
            solver.add(Flow("a", "z"), ("a", "z"))

    def test_unbounded_path_rejected(self):
        solver = self.make()
        with pytest.raises(UnboundedRateError):
            solver.add(Flow("c", "d"), ("c", "d"))

    def test_short_path_rejected(self):
        solver = self.make()
        with pytest.raises(ValueError, match=">= 2 nodes"):
            solver.add(Flow("a", "a"), ("a",))

    def test_module_entry_matches_backend_dispatch(self):
        from repro.core.solve import solve_max_min
        from repro.core.streaming import streaming_max_min

        routing = Routing(
            {
                Flow("a", "c", tag="0"): ("a", "b", "c"),
                Flow("a", "b", tag="1"): ("a", "b"),
            }
        )
        alloc = streaming_max_min(routing, self.CAPS)
        via_dispatch = solve_max_min(routing, self.CAPS, backend="streaming")
        for flow in routing.flows():
            assert alloc.rate(flow) == via_dispatch.rate(flow)


@needs_numpy
class TestShadowMismatch:
    """A forced disagreement must quarantine the event prefix under
    reason ``stream-mismatch``, answer with the reference rates, and
    force the next solve full."""

    def test_mismatch_quarantined(self, tmp_path, monkeypatch):
        from repro.core.streaming import StreamingMaxMin
        from repro.core.topology import ClosNetwork

        clos = ClosNetwork(2)
        caps = clos.graph.capacities()
        solver = StreamingMaxMin(
            caps, shadow=1.0, quarantine_dir=str(tmp_path)
        )
        flows = [
            Flow(clos.source(1, 1), clos.destination(3, 1), tag=str(i))
            for i in range(2)
        ]
        for flow in flows:
            solver.add(
                flow, clos.path_via(flow.source, flow.dest, 1)
            )
        clean = solver.solve()
        assert solver.stats["shadow_checks"] == 1
        assert solver.stats["mismatches"] == 0

        wrong = {flow: rate * 2.0 for flow, rate in clean.items()}
        monkeypatch.setattr(
            solver, "_solve_float", lambda adds, removes: wrong
        )
        answered = solver.solve()
        assert solver.stats["mismatches"] == 1
        # Degraded gracefully: the reference rates, not the wrong ones.
        assert answered == clean
        assert solver._full_needed
        bundle = solver.last_bundle
        assert bundle is not None

        import json

        with open(bundle, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["reason"] == "stream-mismatch"
        text = json.dumps(data["failures"])
        assert "event[0]" in text and "add" in text

    def test_clean_solves_not_quarantined(self, tmp_path):
        from repro.core.streaming import StreamingMaxMin

        caps = {("a", "b"): 3.0}
        solver = StreamingMaxMin(
            caps, shadow=1.0, quarantine_dir=str(tmp_path)
        )
        for i in range(3):
            solver.add(Flow("a", "b", tag=str(i)), ("a", "b"))
            solver.solve()
        assert solver.stats["shadow_checks"] == 3
        assert solver.stats["mismatches"] == 0
        assert solver.last_bundle is None
        assert list(tmp_path.iterdir()) == []


@needs_numpy
class TestCounters:
    def test_patched_and_fullsolve_counters(self):
        from repro import obs
        from repro.core.streaming import StreamingMaxMin

        caps = {("a", "b"): 1.0, ("c", "d"): 2.0}
        obs.enable(memory=False)
        try:
            obs.reset()
            solver = StreamingMaxMin(caps)
            solver.add(Flow("a", "b", tag="0"), ("a", "b"))
            solver.add(Flow("a", "b", tag="1"), ("a", "b"))
            solver.solve()  # first solve is always full: one 0.5 round
            # A disjoint arrival whose level (2.0) sits above every
            # stored round can only extend the bottleneck sequence, so
            # this solve patches the suffix instead of starting over.
            solver.add(Flow("c", "d", tag="2"), ("c", "d"))
            rates = solver.solve()
            assert rates[Flow("c", "d", tag="2")] == 2.0
            snapshot = obs.metrics_snapshot()
        finally:
            obs.reset()
            obs.disable()
        assert snapshot.get("solver.stream.fullsolve", 0) >= 1
        assert snapshot.get("solver.stream.patched", 0) >= 1
        assert solver.stats["patched"] >= 1

    def test_stats_shape(self):
        from repro.core.streaming import StreamingMaxMin

        solver = StreamingMaxMin({("a", "b"): 1.0})
        assert set(solver.stats) == {
            "solves",
            "patched",
            "fullsolve",
            "recompiles",
            "shadow_checks",
            "mismatches",
        }
