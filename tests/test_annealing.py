"""Tests for multi-start and annealed routing search."""

import pytest

from repro.core.allocation import lex_compare
from repro.core.bottleneck import is_max_min_fair
from repro.core.objectives import lex_max_min_fair, throughput_max_min_fair
from repro.core.topology import ClosNetwork
from repro.search.annealing import anneal, multi_start

from tests.helpers import random_flows


@pytest.fixture
def clos():
    return ClosNetwork(2)


class TestMultiStart:
    def test_validation(self, clos):
        flows = random_flows(clos, 3, seed=0)
        with pytest.raises(ValueError):
            multi_start(clos, flows, starts=0)

    @pytest.mark.parametrize("objective", ["lex", "throughput"])
    def test_result_is_valid_max_min(self, clos, objective):
        flows = random_flows(clos, 6, seed=1)
        routing, allocation = multi_start(
            clos, flows, objective=objective, starts=3, seed=1
        )
        assert is_max_min_fair(routing, allocation, clos.graph.capacities())

    @pytest.mark.parametrize("seed", range(3))
    def test_bounded_by_exact_optimum(self, clos, seed):
        flows = random_flows(clos, 5, seed=seed)
        _, lex_alloc = multi_start(clos, flows, objective="lex", starts=4, seed=seed)
        exact = lex_max_min_fair(clos, flows)
        assert (
            lex_compare(
                exact.allocation.sorted_vector(), lex_alloc.sorted_vector()
            )
            >= 0
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_more_starts_never_worse(self, clos, seed):
        flows = random_flows(clos, 6, seed=seed)
        _, one = multi_start(clos, flows, objective="throughput", starts=1, seed=seed)
        _, many = multi_start(clos, flows, objective="throughput", starts=5, seed=seed)
        assert many.throughput() >= one.throughput()

    def test_deterministic(self, clos):
        flows = random_flows(clos, 5, seed=2)
        _, a = multi_start(clos, flows, starts=3, seed=7)
        _, b = multi_start(clos, flows, starts=3, seed=7)
        assert a.sorted_vector() == b.sorted_vector()


class TestAnneal:
    def test_validation(self, clos):
        flows = random_flows(clos, 3, seed=0)
        with pytest.raises(ValueError):
            anneal(clos, flows, steps=-1)
        with pytest.raises(ValueError):
            anneal(clos, flows, cooling=1.5)

    @pytest.mark.parametrize("objective", ["lex", "throughput"])
    def test_result_is_valid_max_min(self, clos, objective):
        flows = random_flows(clos, 6, seed=3)
        routing, allocation = anneal(
            clos, flows, objective=objective, steps=60, seed=3
        )
        assert is_max_min_fair(routing, allocation, clos.graph.capacities())

    @pytest.mark.parametrize("seed", range(3))
    def test_bounded_by_exact_throughput_optimum(self, clos, seed):
        flows = random_flows(clos, 5, seed=seed)
        _, alloc = anneal(clos, flows, objective="throughput", steps=80, seed=seed)
        exact = throughput_max_min_fair(clos, flows)
        assert alloc.throughput() <= exact.allocation.throughput()

    def test_zero_steps_reduces_to_hill_climb(self, clos):
        flows = random_flows(clos, 5, seed=4)
        routing, allocation = anneal(clos, flows, steps=0, seed=4)
        from repro.search.local_search import is_local_optimum

        assert is_local_optimum(clos, routing, objective="lex")

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_exact_on_small_instances(self, clos, seed):
        """With a modest budget annealing usually reaches the true lex
        optimum on these tiny instances; assert it at least matches the
        single-start hill climb."""
        from repro.routers.ecmp import random_routing
        from repro.search.local_search import improve_routing

        flows = random_flows(clos, 5, seed=seed)
        start = random_routing(clos, flows, seed=seed)
        _, hill = improve_routing(clos, start, objective="lex")
        _, annealed = anneal(clos, flows, objective="lex", steps=120, seed=seed)
        # not strictly guaranteed in general, but stable for these seeds
        assert (
            lex_compare(annealed.sorted_vector(), hill.sorted_vector()) >= 0
        )
