"""Paper reproduction — Figure 1 / Example 2.3, claim by claim."""

from fractions import Fraction

import pytest

from repro.core.allocation import lex_compare
from repro.core.bottleneck import bottleneck_links, certify_max_min_fair
from repro.core.maxmin import max_min_fair
from repro.core.nodes import InputSwitch, MiddleSwitch, OutputSwitch
from repro.core.objectives import lex_max_min_fair, macro_switch_max_min
from repro.core.theorems import example_2_3_sorted_vectors
from repro.workloads.adversarial import example_2_3, example_2_3_routings


@pytest.fixture(scope="module")
def instance():
    return example_2_3()


@pytest.fixture(scope="module")
def macro_alloc(instance):
    return macro_switch_max_min(instance.macro, instance.flows)


class TestMacroSwitchDerivation:
    """The example's step-by-step macro-switch reasoning."""

    def test_type1_rates_third(self, instance, macro_alloc):
        for f in instance.types["type1"]:
            assert macro_alloc.rate(f) == Fraction(1, 3)

    def test_type1_bottleneck_is_source_link(self, instance, macro_alloc):
        """'each type 1 flow is ... bottlenecked on s_1^2 I_1'."""
        from repro.core.routing import Routing

        routing = Routing.for_macro_switch(instance.macro, instance.flows)
        capacities = instance.macro.graph.capacities()
        source_link = (instance.macro.source(1, 2), InputSwitch(1))
        for f in instance.types["type1"]:
            assert bottleneck_links(routing, macro_alloc, capacities, f) == [
                source_link
            ]

    def test_type2_rates_two_thirds(self, instance, macro_alloc):
        for f in instance.types["type2"]:
            assert macro_alloc.rate(f) == Fraction(2, 3)

    def test_type2_bottlenecks_on_destination_links(self, instance, macro_alloc):
        from repro.core.routing import Routing

        routing = Routing.for_macro_switch(instance.macro, instance.flows)
        capacities = instance.macro.graph.capacities()
        for f in instance.types["type2"]:
            links = bottleneck_links(routing, macro_alloc, capacities, f)
            assert links == [(OutputSwitch(f.dest.switch), f.dest)]

    def test_type3_rate_one_with_both_bottlenecks(self, instance, macro_alloc):
        from repro.core.routing import Routing

        (type3,) = instance.types["type3"]
        assert macro_alloc.rate(type3) == 1
        routing = Routing.for_macro_switch(instance.macro, instance.flows)
        capacities = instance.macro.graph.capacities()
        links = bottleneck_links(routing, macro_alloc, capacities, type3)
        assert len(links) == 2  # both its server links

    def test_sorted_vector(self, macro_alloc):
        expected = example_2_3_sorted_vectors()["macro_switch"]
        assert macro_alloc.sorted_vector() == expected


class TestClosRoutings:
    """The example's two contrasted routings in C_2."""

    def test_routing_a_vector(self, instance):
        routing_a, _ = example_2_3_routings(instance)
        alloc = max_min_fair(routing_a, instance.clos.graph.capacities())
        assert alloc.sorted_vector() == example_2_3_sorted_vectors()["routing_a"]

    def test_routing_a_type3_bottleneck_transfers_inside(self, instance):
        """'the type 3 flow transfers its bottleneck to I_1 M_1'."""
        routing_a, _ = example_2_3_routings(instance)
        capacities = instance.clos.graph.capacities()
        alloc = max_min_fair(routing_a, capacities)
        (type3,) = instance.types["type3"]
        assert alloc.rate(type3) == Fraction(2, 3)
        links = bottleneck_links(routing_a, alloc, capacities, type3)
        assert links == [(InputSwitch(1), MiddleSwitch(1))]

    def test_routing_b_vector(self, instance):
        _, routing_b = example_2_3_routings(instance)
        alloc = max_min_fair(routing_b, instance.clos.graph.capacities())
        assert alloc.sorted_vector() == example_2_3_sorted_vectors()["routing_b"]

    def test_routing_b_type2_bottleneck_transfers(self, instance):
        """'the type 2 flow (s_2^2, t_2^2) now transfers its bottleneck to
        M_2 O_2, thus decreasing its rate to 1/3'."""
        _, routing_b = example_2_3_routings(instance)
        capacities = instance.clos.graph.capacities()
        alloc = max_min_fair(routing_b, capacities)
        type2_b = instance.types["type2"][1]  # (s_2^2, t_2^2)
        assert alloc.rate(type2_b) == Fraction(1, 3)
        links = bottleneck_links(routing_b, alloc, capacities, type2_b)
        assert (MiddleSwitch(2), OutputSwitch(2)) in links

    def test_routing_b_type3_recovers_full_rate(self, instance):
        _, routing_b = example_2_3_routings(instance)
        alloc = max_min_fair(routing_b, instance.clos.graph.capacities())
        (type3,) = instance.types["type3"]
        assert alloc.rate(type3) == 1

    def test_both_routings_certified_max_min(self, instance):
        capacities = instance.clos.graph.capacities()
        for routing in example_2_3_routings(instance):
            alloc = max_min_fair(routing, capacities)
            assert certify_max_min_fair(routing, alloc, capacities) is None


class TestLexicographicOrdering:
    """'the sorted vector ... for the first routing is greater in
    lexicographic order than ... for the second routing; the sorted vector
    of the max-min fair allocation in the macro-switch is greater than the
    latter two.'"""

    def test_macro_beats_routing_a(self, instance, macro_alloc):
        routing_a, _ = example_2_3_routings(instance)
        alloc_a = max_min_fair(routing_a, instance.clos.graph.capacities())
        assert (
            lex_compare(macro_alloc.sorted_vector(), alloc_a.sorted_vector()) > 0
        )

    def test_routing_a_beats_routing_b(self, instance):
        routing_a, routing_b = example_2_3_routings(instance)
        capacities = instance.clos.graph.capacities()
        alloc_a = max_min_fair(routing_a, capacities)
        alloc_b = max_min_fair(routing_b, capacities)
        assert lex_compare(alloc_a.sorted_vector(), alloc_b.sorted_vector()) > 0

    def test_routing_a_is_globally_lex_optimal(self, instance):
        """Beyond the paper: routing A attains the exact lex-max-min."""
        result = lex_max_min_fair(instance.clos, instance.flows)
        routing_a, _ = example_2_3_routings(instance)
        alloc_a = max_min_fair(routing_a, instance.clos.graph.capacities())
        assert (
            lex_compare(
                result.allocation.sorted_vector(), alloc_a.sorted_vector()
            )
            == 0
        )
