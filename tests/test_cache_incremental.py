"""Tests for the solver performance layer: fingerprints, the allocation
cache, and incremental move evaluation.

The load-bearing property: max-min fair allocations are *unique* per
routing, so the incremental evaluator and the cache must reproduce a
full :func:`~repro.core.maxmin.max_min_fair` solve exactly —
``Fraction``-identical in exact mode, within float tolerance otherwise.
"""

from __future__ import annotations

import random
from fractions import Fraction

import pytest

from repro.core.cache import AllocationCache
from repro.core.flows import Flow, FlowCollection
from repro.core.incremental import Move, MoveEvaluator, delta_max_min_fair
from repro.core.maxmin import max_min_fair
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.errors import UnknownFlowError
from repro.workloads.stochastic import uniform_random


def _random_instance(n: int, num_flows: int, seed: int):
    clos = ClosNetwork(n)
    flows = uniform_random(clos, num_flows, seed=seed)
    rng = random.Random(seed)
    middles = {flow: rng.randint(1, n) for flow in flows}
    return clos, flows, Routing.from_middles(clos, flows, middles)


# ----------------------------------------------------------------------
# Fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_is_insertion_order_independent():
    clos, flows, routing = _random_instance(2, 6, seed=0)
    paths = {flow: routing.path(flow) for flow in routing.flows()}
    reversed_paths = dict(reversed(list(paths.items())))
    assert Routing(paths).fingerprint() == Routing(reversed_paths).fingerprint()


def test_fingerprint_distinguishes_routings():
    clos, flows, routing = _random_instance(2, 6, seed=1)
    middles = routing.middles(clos)
    flow = next(iter(middles))
    moved = dict(middles)
    moved[flow] = 2 if middles[flow] == 1 else 1
    other = Routing.from_middles(clos, flows, moved)
    assert routing.fingerprint() != other.fingerprint()


def test_candidate_fingerprint_matches_moved_routing():
    clos, flows, routing = _random_instance(3, 8, seed=2)
    evaluator = MoveEvaluator(clos, routing)
    middles = routing.middles(clos)
    for flow in list(middles)[:4]:
        for m in range(1, clos.num_middles + 1):
            moved = dict(middles)
            moved[flow] = m
            expected = Routing.from_middles(clos, flows, moved).fingerprint()
            assert evaluator.candidate_fingerprint(flow, m) == expected


# ----------------------------------------------------------------------
# AllocationCache
# ----------------------------------------------------------------------
def test_cache_hits_and_misses():
    clos, flows, routing = _random_instance(2, 5, seed=3)
    cache = AllocationCache()
    capacities = cache.capacities_for(clos)
    first = cache.solve(routing, capacities)
    second = cache.solve(routing, capacities)
    assert first is second
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1


def test_cache_separates_exact_and_float():
    clos, flows, routing = _random_instance(2, 5, seed=4)
    cache = AllocationCache()
    capacities = cache.capacities_for(clos)
    exact = cache.solve(routing, capacities, exact=True)
    approx = cache.solve(routing, capacities, exact=False)
    assert exact is not approx
    assert cache.stats()["misses"] == 2
    assert isinstance(exact.sorted_vector()[0], Fraction)
    assert isinstance(approx.sorted_vector()[0], float)


def test_cache_evicts_least_recently_used():
    clos, flows, routing = _random_instance(2, 4, seed=5)
    cache = AllocationCache(maxsize=2)
    capacities = cache.capacities_for(clos)
    middles = routing.middles(clos)
    routings = []
    for flow in list(middles)[:2]:  # two distinct single-flow flips
        moved = dict(middles)
        moved[flow] = 2 if middles[flow] == 1 else 1
        routings.append(Routing.from_middles(clos, flows, moved))
    cache.solve(routing, capacities)
    cache.solve(routings[0], capacities)
    cache.solve(routings[1], capacities)  # evicts the first entry
    assert len(cache) == 2
    assert cache.stats()["evictions"] == 1
    cache.solve(routing, capacities)  # miss again: it was evicted
    assert cache.stats()["misses"] == 4


def test_capacities_for_is_stable_per_network():
    clos = ClosNetwork(2)
    cache = AllocationCache()
    assert cache.capacities_for(clos) is cache.capacities_for(clos)
    assert cache.capacities_for(clos) == clos.graph.capacities()


# ----------------------------------------------------------------------
# Incremental evaluation: exact identity with full solves
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(6))
def test_evaluate_is_fraction_identical_to_full_solve(seed):
    clos, flows, routing = _random_instance(3, 10, seed=seed)
    capacities = clos.graph.capacities()
    evaluator = MoveEvaluator(clos, routing, capacities=capacities)
    middles = routing.middles(clos)
    rng = random.Random(seed + 100)
    for _ in range(8):
        flow = rng.choice(list(middles))
        m = rng.randint(1, clos.num_middles)
        moved = dict(middles)
        moved[flow] = m
        expected = max_min_fair(
            Routing.from_middles(clos, flows, moved), capacities
        )
        actual = evaluator.evaluate(flow, m)
        assert actual.sorted_vector() == expected.sorted_vector()
        for f in flows:
            assert actual.rate(f) == expected.rate(f)
            assert isinstance(actual.rate(f), Fraction)


@pytest.mark.parametrize("seed", range(3))
def test_apply_walk_stays_consistent(seed):
    clos, flows, routing = _random_instance(3, 8, seed=seed)
    capacities = clos.graph.capacities()
    cache = AllocationCache()
    evaluator = MoveEvaluator(
        clos, routing, capacities=capacities, cache=cache
    )
    rng = random.Random(seed)
    for _ in range(10):
        flow = rng.choice(list(evaluator.middles))
        m = rng.randint(1, clos.num_middles)
        evaluator.apply(flow, m)
        snapshot = evaluator.routing()
        assert evaluator.fingerprint() == snapshot.fingerprint()
        expected = max_min_fair(snapshot, capacities)
        actual = evaluator.base_allocation()
        assert actual.sorted_vector() == expected.sorted_vector()


def test_float_mode_within_tolerance():
    clos, flows, routing = _random_instance(3, 10, seed=7)
    capacities = clos.graph.capacities()
    evaluator = MoveEvaluator(clos, routing, capacities=capacities, exact=False)
    middles = routing.middles(clos)
    rng = random.Random(7)
    for _ in range(6):
        flow = rng.choice(list(middles))
        m = rng.randint(1, clos.num_middles)
        moved = dict(middles)
        moved[flow] = m
        expected = max_min_fair(
            Routing.from_middles(clos, flows, moved), capacities, exact=False
        )
        actual = evaluator.evaluate(flow, m)
        for f in flows:
            assert actual.rate(f) == pytest.approx(expected.rate(f), abs=1e-9)


def test_delta_max_min_fair_wrapper():
    clos, flows, routing = _random_instance(2, 6, seed=8)
    capacities = clos.graph.capacities()
    middles = routing.middles(clos)
    flow = next(iter(middles))
    target = 2 if middles[flow] == 1 else 1
    moved = dict(middles)
    moved[flow] = target
    expected = max_min_fair(
        Routing.from_middles(clos, flows, moved), capacities
    )
    actual = delta_max_min_fair(clos, routing, Move(flow, target))
    assert actual.sorted_vector() == expected.sorted_vector()


def test_evaluate_leaves_base_untouched():
    clos, flows, routing = _random_instance(2, 6, seed=9)
    evaluator = MoveEvaluator(clos, routing)
    before = evaluator.base_allocation().sorted_vector()
    middles = routing.middles(clos)
    flow = next(iter(middles))
    evaluator.evaluate(flow, 2 if middles[flow] == 1 else 1)
    assert evaluator.base_allocation().sorted_vector() == before
    assert evaluator.routing().fingerprint() == routing.fingerprint()


def test_unknown_flow_rejected():
    clos = ClosNetwork(2)
    flows = FlowCollection([Flow(clos.source(1, 1), clos.destination(2, 1))])
    routing = Routing.from_middles(clos, flows, {flows[0]: 1})
    evaluator = MoveEvaluator(clos, routing)
    stranger = Flow(clos.source(2, 1), clos.destination(1, 1))
    with pytest.raises(UnknownFlowError):
        evaluator.evaluate(stranger, 1)
    with pytest.raises(UnknownFlowError):
        evaluator.apply(stranger, 1)


def test_evaluator_cache_shared_across_consumers():
    clos, flows, routing = _random_instance(2, 6, seed=11)
    cache = AllocationCache()
    capacities = cache.capacities_for(clos)
    first = MoveEvaluator(clos, routing, capacities=capacities, cache=cache)
    first.base_allocation()
    second = MoveEvaluator(clos, routing, capacities=capacities, cache=cache)
    assert second.base_allocation() is first.base_allocation()
    assert cache.stats()["hits"] >= 2
