"""The typed exception hierarchy, and that every solver/router entry
point raises a :class:`ReproError` subclass — never a bare builtin or a
silent wrong answer — on infeasible routings, disconnected flows, and
malformed capacities."""

import pytest

from repro.errors import (
    CapacityValidationError,
    DisconnectedFlowError,
    ExperimentError,
    InfeasibleRoutingError,
    ReproError,
    StepFailedError,
    StepTimeoutError,
    UnboundedRateError,
    UnknownFlowError,
    UnknownLinkError,
)
from repro.core.flows import Flow, FlowCollection
from repro.core.fastmaxmin import max_min_fair_fast
from repro.core.maxmin import max_min_fair
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork, MacroSwitch

from tests.helpers import random_flows


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for cls in (
            CapacityValidationError,
            DisconnectedFlowError,
            ExperimentError,
            InfeasibleRoutingError,
            StepFailedError,
            StepTimeoutError,
            UnboundedRateError,
            UnknownFlowError,
            UnknownLinkError,
        ):
            assert issubclass(cls, ReproError)

    def test_backwards_compatible_builtin_parents(self):
        # Code written before the typed hierarchy caught builtins.
        assert issubclass(CapacityValidationError, ValueError)
        assert issubclass(InfeasibleRoutingError, ValueError)
        assert issubclass(UnknownLinkError, KeyError)
        assert issubclass(UnknownFlowError, KeyError)
        assert issubclass(UnboundedRateError, ValueError)

    def test_unknown_link_message_is_not_keyerror_quoted(self):
        error = UnknownLinkError([("a", "b")])
        assert str(error) == "unknown links: [('a', 'b')]"

    def test_repro_import_surface(self):
        import repro

        assert repro.ReproError is ReproError
        assert repro.CapacityValidationError is CapacityValidationError


@pytest.fixture
def clos():
    return ClosNetwork(2)


def _one_flow_routing(clos):
    flows = FlowCollection([Flow(clos.source(1, 1), clos.destination(3, 1))])
    return flows, Routing.uniform(clos, flows, 1)


class TestSolverEntryPoints:
    def test_maxmin_missing_links_all_reported(self, clos):
        flows, routing = _one_flow_routing(clos)
        with pytest.raises(UnknownLinkError) as excinfo:
            max_min_fair(routing, {})
        assert len(excinfo.value.links) == 4  # every traversed link named

    def test_maxmin_negative_capacity(self, clos):
        flows, routing = _one_flow_routing(clos)
        capacities = clos.graph.capacities()
        capacities[next(iter(routing.links_of(flows[0])))] = -1
        with pytest.raises(CapacityValidationError):
            max_min_fair(routing, capacities)

    def test_maxmin_non_numeric_capacity(self, clos):
        flows, routing = _one_flow_routing(clos)
        capacities = clos.graph.capacities()
        capacities[routing.links_of(flows[0])[0]] = "fast"
        with pytest.raises(CapacityValidationError):
            max_min_fair(routing, capacities)

    def test_fastmaxmin_missing_links(self, clos):
        flows, routing = _one_flow_routing(clos)
        with pytest.raises(UnknownLinkError):
            max_min_fair_fast(routing, {})

    def test_fastmaxmin_negative_capacity(self, clos):
        flows, routing = _one_flow_routing(clos)
        capacities = clos.graph.capacities()
        capacities[routing.links_of(flows[0])[0]] = -0.5
        with pytest.raises(CapacityValidationError):
            max_min_fair_fast(routing, capacities)

    def test_unbounded_rate_is_typed(self, clos):
        flows, routing = _one_flow_routing(clos)
        infinite = {
            link: float("inf")
            for link in routing.flows_per_link()
        }
        with pytest.raises(UnboundedRateError):
            max_min_fair(routing, infinite)


class TestRoutingEntryPoints:
    def test_from_middles_unassigned_flow(self, clos):
        flows = FlowCollection(
            [Flow(clos.source(1, 1), clos.destination(3, 1))]
        )
        with pytest.raises(InfeasibleRoutingError):
            Routing.from_middles(clos, flows, {})

    def test_from_middles_bad_middle_index(self, clos):
        flows = FlowCollection(
            [Flow(clos.source(1, 1), clos.destination(3, 1))]
        )
        with pytest.raises(InfeasibleRoutingError):
            Routing.from_middles(clos, flows, {flows[0]: 99})

    def test_path_unknown_flow(self, clos):
        flows, routing = _one_flow_routing(clos)
        outsider = Flow(clos.source(2, 1), clos.destination(4, 1))
        with pytest.raises(UnknownFlowError):
            routing.path(outsider)

    def test_reassigned_unknown_flow(self, clos):
        flows, routing = _one_flow_routing(clos)
        outsider = Flow(clos.source(2, 1), clos.destination(4, 1))
        with pytest.raises(UnknownFlowError):
            routing.reassigned(clos, outsider, 1)

    def test_foreign_endpoints_rejected_at_path_construction(self, clos):
        from repro.core.nodes import Destination, Source

        with pytest.raises(InfeasibleRoutingError):
            clos.path_via(Source(99, 1), Destination(1, 1), 1)
        with pytest.raises(InfeasibleRoutingError):
            MacroSwitch(2).path(Source(99, 1), Destination(1, 1))


class TestRouterEntryPoints:
    def test_routers_reject_foreign_flows(self, clos):
        from repro.core.nodes import Destination, Source
        from repro.routers import (
            ecmp_routing,
            greedy_least_congested,
            random_routing,
            two_choice_routing,
        )

        big = ClosNetwork(4)
        foreign = FlowCollection(
            [Flow(big.source(7, 1), big.destination(7, 1))]
        )
        demands = {foreign[0]: 1}
        for router in (
            lambda: ecmp_routing(clos, foreign),
            lambda: random_routing(clos, foreign),
            lambda: greedy_least_congested(clos, foreign, demands=demands),
            lambda: two_choice_routing(clos, foreign, demands=demands),
        ):
            with pytest.raises(InfeasibleRoutingError):
                router()

    def test_greedy_missing_demand(self, clos):
        from repro.routers import greedy_least_congested

        flows = FlowCollection(
            [Flow(clos.source(1, 1), clos.destination(3, 1))]
        )
        with pytest.raises(InfeasibleRoutingError):
            greedy_least_congested(clos, flows, demands={})

    def test_two_choice_bad_choices(self, clos):
        from repro.routers import two_choice_routing

        with pytest.raises(InfeasibleRoutingError):
            two_choice_routing(clos, FlowCollection(), choices=0)

    def test_resilient_router_strict_disconnection(self, clos):
        from repro.failures import fail_middle_switch, route_with_failures

        flows = FlowCollection(
            [Flow(clos.source(1, 1), clos.destination(3, 1))]
        )
        capacities = clos.graph.capacities()
        for m in range(1, clos.num_middles + 1):
            capacities = fail_middle_switch(clos, capacities, m)
        with pytest.raises(DisconnectedFlowError) as excinfo:
            route_with_failures(clos, flows, capacities, strict=True)
        assert excinfo.value.flows == [flows[0]]


class TestFailureEntryPoints:
    def test_fail_links_reports_every_unknown_link(self, clos):
        from repro.failures import fail_links

        good = list(clos.graph.capacities())[0]
        with pytest.raises(UnknownLinkError) as excinfo:
            fail_links(
                clos.graph.capacities(), [("x", "y"), good, ("p", "q")]
            )
        assert excinfo.value.links == [("x", "y"), ("p", "q")]

    def test_negative_failure_count(self, clos):
        from repro.failures import random_link_failures

        with pytest.raises(CapacityValidationError):
            random_link_failures(clos, clos.graph.capacities(), -1)

    def test_all_middles_failed_is_disconnection(self, clos):
        from repro.failures import surviving_network

        with pytest.raises(DisconnectedFlowError):
            surviving_network(clos, range(1, clos.num_middles + 1))

    def test_degrade_rejects_out_of_range_factor(self, clos):
        from repro.failures import degrade_links

        capacities = clos.graph.capacities()
        link = next(iter(capacities))
        with pytest.raises(CapacityValidationError):
            degrade_links(capacities, {link: 2})


class TestLargeEntryPointsStayHealthy:
    def test_random_instances_raise_nothing(self, clos):
        """Typed validation must not reject legitimate inputs."""
        from repro.routers import greedy_least_congested

        flows = random_flows(clos, 10, seed=5)
        routing = greedy_least_congested(clos, flows)
        allocation = max_min_fair(routing, clos.graph.capacities())
        assert min(allocation.sorted_vector()) > 0
