"""Tests for the multirate-rearrangeability subsystem."""

from fractions import Fraction

import pytest

from repro.core.allocation import Allocation, is_feasible
from repro.core.flows import Flow, FlowCollection
from repro.core.objectives import macro_switch_max_min
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.rearrange.first_fit import first_fit_decreasing, split_first_fit
from repro.rearrange.minimize import (
    conjectured_worst_case,
    known_lower_bound,
    known_upper_bound,
    minimum_middles_exact,
    minimum_middles_heuristic,
)
from repro.workloads.adversarial import theorem_4_2
from repro.workloads.stochastic import permutation, uniform_random

from tests.helpers import random_flows


class TestExpandedTopology:
    def test_middle_count_decoupled_from_n(self):
        clos = ClosNetwork(2, middle_count=5)
        assert clos.n == 2
        assert clos.num_middles == 5
        assert len(clos.middle_switches) == 5
        assert len(clos.sources) == 8  # unchanged

    def test_paths_one_per_middle(self):
        clos = ClosNetwork(2, middle_count=4)
        paths = clos.paths(clos.source(1, 1), clos.destination(3, 1))
        assert len(paths) == 4

    def test_default_equals_n(self):
        assert ClosNetwork(3).num_middles == 3

    def test_invalid_middle_count(self):
        with pytest.raises(ValueError):
            ClosNetwork(2, middle_count=0)

    def test_middle_index_range_follows_count(self):
        clos = ClosNetwork(2, middle_count=4)
        assert clos.middle(4).index == 4
        with pytest.raises(ValueError):
            clos.middle(5)


class TestFirstFit:
    def test_routes_trivial_demands(self):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 6, seed=0)
        demands = {f: Fraction(1, 100) for f in flows}
        routing = first_fit_decreasing(clos, flows, demands)
        assert routing is not None
        assert is_feasible(routing, Allocation(demands), clos.graph.capacities())

    def test_rejects_server_overload(self):
        clos = ClosNetwork(2)
        flows = FlowCollection()
        pair = flows.add_pair(clos.source(1, 1), clos.destination(3, 1), count=2)
        demands = {f: Fraction(3, 4) for f in pair}
        assert first_fit_decreasing(clos, flows, demands) is None
        assert split_first_fit(clos, flows, demands) is None

    def test_returns_none_when_middles_insufficient(self):
        clos = ClosNetwork(3)
        instance = theorem_4_2(3)
        demands = macro_switch_max_min(instance.macro, instance.flows).rates()
        assert first_fit_decreasing(clos, instance.flows, demands) is None

    def test_split_routes_unit_flows_disjointly(self):
        clos = ClosNetwork(3)
        flows = permutation(clos, seed=0)
        demands = {f: Fraction(1) for f in flows}
        routing = split_first_fit(clos, flows, demands)
        assert routing is not None
        for _, members in routing.flows_per_link().items():
            assert len(members) == 1

    @pytest.mark.parametrize("seed", range(4))
    def test_results_always_feasible(self, seed):
        clos = ClosNetwork(3, middle_count=5)
        flows = random_flows(ClosNetwork(3), 12, seed=seed)
        demands = macro_switch_max_min(MacroSwitch(3), flows).rates()
        for heuristic in (first_fit_decreasing, split_first_fit):
            routing = heuristic(clos, flows, demands)
            if routing is not None:
                assert is_feasible(
                    routing, Allocation(demands), clos.graph.capacities()
                )


class TestMinimumMiddles:
    def test_theorem_4_2_needs_exactly_four(self):
        """The paper's instance: unroutable at m = 3 (Theorem 4.2),
        routable at m = 4 — one extra middle switch repairs it."""
        instance = theorem_4_2(3)
        demands = macro_switch_max_min(instance.macro, instance.flows).rates()
        result = minimum_middles_exact(3, instance.flows, demands)
        assert result.num_middles == 4
        assert is_feasible(
            result.routing, Allocation(demands), result.network.graph.capacities()
        )

    def test_heuristic_upper_bounds_exact(self):
        instance = theorem_4_2(3)
        demands = macro_switch_max_min(instance.macro, instance.flows).rates()
        exact = minimum_middles_exact(3, instance.flows, demands)
        heuristic = minimum_middles_heuristic(3, instance.flows, demands)
        assert heuristic.num_middles >= exact.num_middles

    @pytest.mark.parametrize("seed", range(3))
    def test_random_macro_allocations_within_conjecture(self, seed):
        clos = ClosNetwork(3)
        flows = uniform_random(clos, 12, seed=seed)
        demands = macro_switch_max_min(MacroSwitch(3), flows).rates()
        result = minimum_middles_exact(3, flows, demands)
        assert result.num_middles <= conjectured_worst_case(3)

    def test_single_flow_needs_one_middle(self):
        clos = ClosNetwork(2)
        f = Flow(clos.source(1, 1), clos.destination(3, 1))
        flows = FlowCollection([f])
        result = minimum_middles_exact(2, flows, {f: Fraction(1)})
        assert result.num_middles == 1

    def test_infeasible_demands_raise(self):
        clos = ClosNetwork(2)
        flows = FlowCollection()
        pair = flows.add_pair(clos.source(1, 1), clos.destination(3, 1), count=2)
        demands = {f: Fraction(1) for f in pair}  # server link overloaded
        with pytest.raises(ValueError):
            minimum_middles_exact(2, flows, demands, max_middles=4)


class TestLiteratureBounds:
    def test_bound_values(self):
        assert conjectured_worst_case(3) == 5
        assert known_upper_bound(3) == 7
        assert known_lower_bound(4) == 5

    def test_bound_ordering(self):
        for n in range(2, 20):
            assert known_lower_bound(n) <= conjectured_worst_case(n)
            assert conjectured_worst_case(n) <= known_upper_bound(n) + 1
