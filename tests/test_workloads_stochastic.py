"""Tests for the stochastic workload generators."""

import pytest

from repro.core.topology import ClosNetwork
from repro.workloads.stochastic import (
    elephant_mice,
    hotspot,
    incast,
    permutation,
    rack_local,
    uniform_random,
)


@pytest.fixture
def clos():
    return ClosNetwork(3)


class TestUniformRandom:
    def test_count(self, clos):
        assert len(uniform_random(clos, 25, seed=0)) == 25

    def test_deterministic(self, clos):
        a = uniform_random(clos, 25, seed=1)
        b = uniform_random(clos, 25, seed=1)
        assert a.flows == b.flows

    def test_seed_changes_output(self, clos):
        a = uniform_random(clos, 25, seed=1)
        b = uniform_random(clos, 25, seed=2)
        assert a.flows != b.flows

    def test_endpoints_belong_to_network(self, clos):
        flows = uniform_random(clos, 30, seed=3)
        sources = set(clos.sources)
        dests = set(clos.destinations)
        for f in flows:
            assert f.source in sources
            assert f.dest in dests

    def test_zero_flows(self, clos):
        assert len(uniform_random(clos, 0, seed=0)) == 0


class TestPermutation:
    def test_one_flow_per_server(self, clos):
        flows = permutation(clos, seed=0)
        assert len(flows) == len(clos.sources)

    def test_sources_distinct(self, clos):
        flows = permutation(clos, seed=0)
        sources = [f.source for f in flows]
        assert len(set(sources)) == len(sources)

    def test_destinations_distinct(self, clos):
        flows = permutation(clos, seed=0)
        dests = [f.dest for f in flows]
        assert len(set(dests)) == len(dests)

    def test_max_throughput_equals_flow_count(self, clos):
        """A permutation is its own perfect matching."""
        from repro.core.throughput import max_throughput_value

        flows = permutation(clos, seed=5)
        assert max_throughput_value(flows) == len(flows)


class TestHotspot:
    def test_count_and_determinism(self, clos):
        a = hotspot(clos, 40, seed=0)
        b = hotspot(clos, 40, seed=0)
        assert len(a) == 40
        assert a.flows == b.flows

    def test_skew_concentrates_destinations(self, clos):
        flows = hotspot(clos, 200, skew=2.5, seed=1)
        by_dest = flows.by_destination()
        counts = sorted((len(v) for v in by_dest.values()), reverse=True)
        # the hottest destination receives far more than an equal share
        assert counts[0] > 200 / len(clos.destinations) * 3

    def test_invalid_skew(self, clos):
        with pytest.raises(ValueError):
            hotspot(clos, 10, skew=0)


class TestIncast:
    def test_single_destination(self, clos):
        flows = incast(clos, fan_in=8, seed=0)
        dests = {f.dest for f in flows}
        assert len(dests) == 1
        assert len(flows) == 8

    def test_distinct_sources(self, clos):
        flows = incast(clos, fan_in=8, seed=0)
        sources = [f.source for f in flows]
        assert len(set(sources)) == 8

    def test_explicit_destination(self, clos):
        target = clos.destination(1, 1)
        flows = incast(clos, fan_in=4, dest=target, seed=0)
        assert all(f.dest == target for f in flows)

    def test_fan_in_too_large(self, clos):
        with pytest.raises(ValueError):
            incast(clos, fan_in=len(clos.sources) + 1)

    def test_incast_max_min_rates(self, clos):
        """All incast flows share the destination link equally."""
        from fractions import Fraction

        from repro.core.objectives import macro_switch_max_min
        from repro.core.topology import MacroSwitch

        flows = incast(clos, fan_in=6, seed=0)
        alloc = macro_switch_max_min(MacroSwitch(clos.n), flows)
        assert set(alloc.rates().values()) == {Fraction(1, 6)}


class TestElephantMice:
    def test_partition(self, clos):
        flows, elephants, mice = elephant_mice(clos, 4, 10, seed=0)
        assert len(elephants) == 4
        assert len(mice) == 10
        assert len(flows) == 14
        assert set(elephants) | set(mice) == set(flows)

    def test_elephants_pairwise_disjoint(self, clos):
        _, elephants, _ = elephant_mice(clos, 5, 0, seed=1)
        assert len({f.source for f in elephants}) == 5
        assert len({f.dest for f in elephants}) == 5

    def test_elephants_inserted_first(self, clos):
        flows, elephants, _ = elephant_mice(clos, 3, 5, seed=2)
        assert flows.flows[:3] == elephants

    def test_too_many_elephants(self, clos):
        with pytest.raises(ValueError):
            elephant_mice(clos, len(clos.sources) + 1, 0)


class TestRackLocal:
    def test_count_and_determinism(self, clos):
        a = rack_local(clos, 30, locality=0.5, seed=1)
        b = rack_local(clos, 30, locality=0.5, seed=1)
        assert len(a) == 30
        assert a.flows == b.flows

    def test_full_locality_stays_in_rack(self, clos):
        flows = rack_local(clos, 40, locality=1.0, seed=0)
        assert all(f.source.switch == f.dest.switch for f in flows)

    def test_zero_locality_always_crosses(self, clos):
        flows = rack_local(clos, 40, locality=0.0, seed=0)
        assert all(f.source.switch != f.dest.switch for f in flows)

    def test_intermediate_locality_mixes(self, clos):
        flows = rack_local(clos, 200, locality=0.7, seed=2)
        local = sum(1 for f in flows if f.source.switch == f.dest.switch)
        assert 0.55 < local / 200 < 0.85

    def test_invalid_locality(self, clos):
        with pytest.raises(ValueError):
            rack_local(clos, 10, locality=1.5)
