"""Tests for the flow-level simulator and service policies."""

import math

import pytest

from repro.core.topology import ClosNetwork
from repro.sim.flowsim import SimulationError, fct_stats, simulate
from repro.sim.jobs import FlowJob, incast_burst, poisson_workload
from repro.sim.policies import (
    MatchingScheduler,
    MaxMinCongestionControl,
    ProcessorSharing,
)


@pytest.fixture
def clos():
    return ClosNetwork(2)


def _job(clos, jid, i, j, oi, oj, arrival=0.0, size=1.0):
    return FlowJob(jid, clos.source(i, j), clos.destination(oi, oj), arrival, size)


class TestSingleJob:
    def test_full_rate_service(self, clos):
        job = _job(clos, 0, 1, 1, 3, 1, size=2.5)
        result = simulate([job], MaxMinCongestionControl(clos))
        assert len(result.completed) == 1
        done = result.completed[0]
        assert done.duration == pytest.approx(2.5)
        assert done.slowdown == pytest.approx(1.0)
        assert result.work_done == pytest.approx(2.5)

    def test_arrival_offset_respected(self, clos):
        job = _job(clos, 0, 1, 1, 3, 1, arrival=4.0, size=1.0)
        result = simulate([job], MaxMinCongestionControl(clos))
        assert result.completed[0].completion_time == pytest.approx(5.0)
        assert result.completed[0].duration == pytest.approx(1.0)

    def test_scheduler_single_job(self, clos):
        job = _job(clos, 0, 1, 1, 3, 1, size=3.0)
        result = simulate([job], MatchingScheduler(clos))
        assert result.completed[0].duration == pytest.approx(3.0)


class TestContention:
    def test_two_jobs_share_source_under_maxmin(self, clos):
        jobs = [
            _job(clos, 0, 1, 1, 3, 1, size=1.0),
            _job(clos, 1, 1, 1, 4, 1, size=1.0),
        ]
        result = simulate(jobs, MaxMinCongestionControl(clos))
        # both run at 1/2 until one finishes... equal sizes: both at t=2
        times = sorted(c.completion_time for c in result.completed)
        assert times == pytest.approx([2.0, 2.0])

    def test_shorter_job_frees_capacity(self, clos):
        jobs = [
            _job(clos, 0, 1, 1, 3, 1, size=1.0),
            _job(clos, 1, 1, 1, 4, 1, size=2.0),
        ]
        result = simulate(jobs, MaxMinCongestionControl(clos))
        by_id = {c.job.job_id: c for c in result.completed}
        # both at 1/2 until job 0 finishes at t=2; job 1 then has 1 left
        # at full rate -> t=3
        assert by_id[0].completion_time == pytest.approx(2.0)
        assert by_id[1].completion_time == pytest.approx(3.0)

    def test_scheduler_serializes_conflicting_jobs(self, clos):
        jobs = [
            _job(clos, 0, 1, 1, 3, 1, size=1.0),
            _job(clos, 1, 1, 1, 4, 1, size=2.0),
        ]
        result = simulate(jobs, MatchingScheduler(clos))
        by_id = {c.job.job_id: c for c in result.completed}
        # SRPT: job 0 first (size 1), then job 1: completions at 1 and 3.
        assert by_id[0].completion_time == pytest.approx(1.0)
        assert by_id[1].completion_time == pytest.approx(3.0)

    def test_non_conflicting_jobs_run_concurrently_under_scheduler(self, clos):
        jobs = [
            _job(clos, 0, 1, 1, 3, 1, size=2.0),
            _job(clos, 1, 2, 1, 4, 1, size=2.0),
        ]
        result = simulate(jobs, MatchingScheduler(clos))
        times = [c.completion_time for c in result.completed]
        assert times == pytest.approx([2.0, 2.0])


class TestIncastClosedForm:
    """The E8 closed forms: fan_in unit jobs into one destination."""

    @pytest.mark.parametrize("fan_in", [2, 4, 8])
    def test_maxmin_finishes_all_at_fan_in(self, fan_in):
        clos = ClosNetwork(2)
        jobs = incast_burst(clos, fan_in=fan_in, seed=0)
        result = simulate(jobs, MaxMinCongestionControl(clos))
        stats = fct_stats(result)
        assert stats.mean_fct == pytest.approx(fan_in)
        assert stats.max_slowdown == pytest.approx(fan_in)

    @pytest.mark.parametrize("fan_in", [2, 4, 8])
    def test_scheduler_mean_is_arithmetic_series(self, fan_in):
        clos = ClosNetwork(2)
        jobs = incast_burst(clos, fan_in=fan_in, seed=0)
        result = simulate(jobs, MatchingScheduler(clos))
        stats = fct_stats(result)
        assert stats.mean_fct == pytest.approx((fan_in + 1) / 2)

    def test_fct_ratio_tends_to_two(self):
        clos = ClosNetwork(2)
        ratios = []
        for fan_in in (2, 4, 8):
            jobs = incast_burst(clos, fan_in=fan_in, seed=0)
            fair = fct_stats(simulate(jobs, MaxMinCongestionControl(clos)))
            sched = fct_stats(simulate(jobs, MatchingScheduler(clos)))
            ratios.append(fair.mean_fct / sched.mean_fct)
        assert ratios == sorted(ratios)
        assert ratios[-1] == pytest.approx(16 / 9)
        assert all(r < 2 for r in ratios)


class TestConservation:
    @pytest.mark.parametrize("policy_name", ["maxmin", "scheduler", "ps"])
    def test_all_work_delivered(self, clos, policy_name):
        jobs = poisson_workload(clos, rate=2.0, horizon=15.0, seed=7)
        policy = {
            "maxmin": MaxMinCongestionControl(clos),
            "scheduler": MatchingScheduler(clos),
            "ps": ProcessorSharing(clos),
        }[policy_name]
        result = simulate(jobs, policy)
        assert not result.unfinished
        assert result.work_done == pytest.approx(sum(j.size for j in jobs))

    @pytest.mark.parametrize("policy_name", ["maxmin", "scheduler"])
    def test_completions_never_precede_arrivals(self, clos, policy_name):
        jobs = poisson_workload(clos, rate=3.0, horizon=10.0, seed=8)
        policy = (
            MaxMinCongestionControl(clos)
            if policy_name == "maxmin"
            else MatchingScheduler(clos)
        )
        result = simulate(jobs, policy)
        for done in result.completed:
            assert done.completion_time >= done.job.arrival - 1e-9
            assert done.duration >= done.job.size - 1e-6  # unit capacity

    def test_max_time_reports_unfinished(self, clos):
        job = _job(clos, 0, 1, 1, 3, 1, size=100.0)
        result = simulate([job], MaxMinCongestionControl(clos), max_time=1.0)
        assert result.unfinished == [job]
        assert result.completed == []

    def test_max_events_guard(self, clos):
        jobs = poisson_workload(clos, rate=2.0, horizon=10.0, seed=9)
        with pytest.raises(SimulationError):
            simulate(jobs, MaxMinCongestionControl(clos), max_events=2)


class TestFCTStats:
    def test_empty_raises(self, clos):
        result = simulate([], MaxMinCongestionControl(clos))
        with pytest.raises(ValueError):
            fct_stats(result)

    def test_statistics_fields(self, clos):
        jobs = [
            _job(clos, 0, 1, 1, 3, 1, size=1.0),
            _job(clos, 1, 2, 1, 4, 1, size=3.0),
        ]
        stats = fct_stats(simulate(jobs, MaxMinCongestionControl(clos)))
        assert stats.count == 2
        assert stats.mean_fct == pytest.approx(2.0)
        assert stats.mean_slowdown == pytest.approx(1.0)


class TestPolicyDetails:
    def test_maxmin_pins_flows_once(self, clos):
        policy = MaxMinCongestionControl(clos, router="ecmp")
        jobs = {0: _job(clos, 0, 1, 1, 3, 1)}
        policy.rates(jobs, {0: 1.0})
        pinned = dict(policy._pinned)
        policy.rates(jobs, {0: 0.5})
        assert policy._pinned == pinned

    def test_least_loaded_router_balances(self, clos):
        policy = MaxMinCongestionControl(clos, router="least_loaded")
        jobs = {
            0: _job(clos, 0, 1, 1, 3, 1),
            1: _job(clos, 1, 1, 2, 3, 2),
        }
        policy.rates(jobs, {0: 1.0, 1: 1.0})
        assert sorted(policy._pinned.values()) == [1, 2]

    def test_unknown_router_rejected(self, clos):
        policy = MaxMinCongestionControl(clos, router="nope")
        with pytest.raises(ValueError):
            policy.rates({0: _job(clos, 0, 1, 1, 3, 1)}, {0: 1.0})

    def test_scheduler_rates_are_unit(self, clos):
        policy = MatchingScheduler(clos)
        active = {
            0: _job(clos, 0, 1, 1, 3, 1),
            1: _job(clos, 1, 1, 1, 4, 1),  # conflicts on source
        }
        rates = policy.rates(active, {0: 1.0, 1: 1.0})
        assert sum(rates.values()) == 1.0
        assert set(rates.values()) == {1.0}

    def test_scheduler_srpt_prefers_short_job(self, clos):
        policy = MatchingScheduler(clos, srpt=True)
        active = {
            0: _job(clos, 0, 1, 1, 3, 1),
            1: _job(clos, 1, 1, 1, 4, 1),
        }
        rates = policy.rates(active, {0: 5.0, 1: 0.5})
        assert list(rates) == [1]

    def test_ps_shares_destination(self, clos):
        policy = ProcessorSharing(clos)
        active = {
            0: _job(clos, 0, 1, 1, 3, 1),
            1: _job(clos, 1, 2, 1, 3, 1),
            2: _job(clos, 2, 2, 2, 4, 1),
        }
        rates = policy.rates(active, {0: 1.0, 1: 1.0, 2: 1.0})
        assert rates[0] == pytest.approx(0.5)
        assert rates[1] == pytest.approx(0.5)
        assert rates[2] == pytest.approx(1.0)


class TestReroutingPolicy:
    def test_invalid_interval(self, clos):
        from repro.sim.policies import ReroutingCongestionControl

        with pytest.raises(ValueError):
            ReroutingCongestionControl(clos, interval=0)

    def test_single_job_unaffected(self, clos):
        from repro.sim.policies import ReroutingCongestionControl

        job = _job(clos, 0, 1, 1, 3, 1, size=2.0)
        result = simulate([job], ReroutingCongestionControl(clos, interval=0.5))
        assert result.completed[0].duration == pytest.approx(2.0)

    def test_rerouting_fixes_ecmp_collision(self, clos):
        """Two flows ECMP-collided onto one middle switch get separated
        at the first re-route epoch, halving their completion time."""
        from repro.sim.policies import (
            MaxMinCongestionControl,
            ReroutingCongestionControl,
        )

        jobs = [
            _job(clos, 0, 1, 1, 3, 1, size=4.0),
            _job(clos, 1, 1, 2, 3, 2, size=4.0),
        ]
        pinned_policy = MaxMinCongestionControl(clos, router="ecmp", seed=0)
        # force a collision by checking which seeds collide
        seed = 0
        while True:
            probe = MaxMinCongestionControl(clos, router="ecmp", seed=seed)
            probe.rates({0: jobs[0], 1: jobs[1]}, {0: 4.0, 1: 4.0})
            if len(set(probe._pinned.values())) == 1:
                break
            seed += 1
        pinned = fct_stats(
            simulate(jobs, MaxMinCongestionControl(clos, router="ecmp", seed=seed))
        )
        rerouted = fct_stats(
            simulate(jobs, ReroutingCongestionControl(clos, interval=0.1, seed=seed))
        )
        assert pinned.mean_fct == pytest.approx(8.0)
        # the collision persists only until the first re-route epoch
        # (0.1 time units at half rate => 0.05 extra per flow)
        assert rerouted.mean_fct == pytest.approx(4.05)

    def test_work_conservation(self, clos):
        from repro.sim.policies import ReroutingCongestionControl

        jobs = poisson_workload(clos, rate=2.0, horizon=10.0, seed=11)
        result = simulate(jobs, ReroutingCongestionControl(clos, interval=0.5))
        assert not result.unfinished
        assert result.work_done == pytest.approx(sum(j.size for j in jobs))

    def test_rerouting_never_hurts_on_average(self, clos):
        from repro.experiments.fct_scheduling import rerouting_comparison

        rows = rerouting_comparison(n=2, rate=3.0, horizon=15.0, intervals=(0.5,))
        pinned = [r for r in rows if r.interval == float("inf")][0]
        rerouted = [r for r in rows if r.interval == 0.5][0]
        assert rerouted.mean_fct <= pinned.mean_fct * 1.05


class TestIncidenceStaleness:
    """The vectorized policy's compiled incidence freezes finite-link
    membership; a capacity event that flips a link between finite and
    infinite must force a recompile, and plain brownouts (values change,
    membership does not) must refresh the capacity vector."""

    pytest.importorskip("numpy")

    def _degraded_equal(self, schedule, jobs, clos, seed=0):
        reference = simulate(
            jobs,
            MaxMinCongestionControl(clos, seed=seed),
            failure_schedule=schedule,
        )
        vectorized = simulate(
            jobs,
            MaxMinCongestionControl(clos, seed=seed, backend="vectorized"),
            failure_schedule=schedule,
        )
        ref_times = sorted(
            (c.job.job_id, c.completion_time) for c in reference.completed
        )
        vec_times = sorted(
            (c.job.job_id, c.completion_time) for c in vectorized.completed
        )
        assert len(ref_times) == len(vec_times)
        for (rid, rt), (vid, vt) in zip(ref_times, vec_times):
            assert rid == vid
            assert rt == pytest.approx(vt, abs=1e-9)

    def test_brownout_schedule_matches_reference(self, clos):
        from fractions import Fraction

        from repro.failures.schedule import FailureSchedule

        jobs = poisson_workload(clos, rate=2.0, horizon=6.0, seed=5)
        schedule = FailureSchedule.random_flaps(
            clos, count=3, horizon=4.0, seed=5, severity=Fraction(1, 4)
        )
        self._degraded_equal(schedule, jobs, clos, seed=5)

    def test_full_kill_schedule_matches_reference(self, clos):
        from repro.failures.schedule import FailureSchedule

        jobs = poisson_workload(clos, rate=2.0, horizon=6.0, seed=9)
        schedule = FailureSchedule.random_flaps(
            clos, count=2, horizon=4.0, seed=9, severity=0
        )
        self._degraded_equal(schedule, jobs, clos, seed=9)

    def test_incidence_stale_detects_membership_flips(self, clos):
        from repro.core.vectorized import compile_routing, incidence_stale
        from repro.core.flows import FlowCollection
        from repro.core.routing import Routing

        flows = FlowCollection()
        flows.add_pair(clos.sources[0], clos.destinations[0])
        routing = Routing.from_middles(clos, flows, {flows[0]: 1})
        capacities = clos.graph.capacities()
        compiled = compile_routing(routing, capacities)

        # Same membership, different values: not stale.
        browned = {link: cap / 2 for link, cap in capacities.items()}
        assert not incidence_stale(compiled, browned)

        # A compiled-finite link going infinite: stale.
        flipped = dict(capacities)
        flipped[routing.links_of(flows[0])[0]] = float("inf")
        assert incidence_stale(compiled, flipped)

    def test_incidence_stale_detects_infinite_becoming_finite(self, clos):
        from repro.core.vectorized import compile_routing, incidence_stale
        from repro.core.flows import FlowCollection
        from repro.core.routing import Routing

        flows = FlowCollection()
        flows.add_pair(clos.sources[0], clos.destinations[0])
        routing = Routing.from_middles(clos, flows, {flows[0]: 1})
        capacities = clos.graph.capacities()
        victim = routing.links_of(flows[0])[0]
        capacities[victim] = float("inf")
        compiled = compile_routing(routing, capacities)
        assert victim in compiled.infinite_links

        capacities[victim] = 1
        assert incidence_stale(compiled, capacities)

    def test_policy_recompiles_on_membership_flip(self, clos):
        # Consult once (freezing the incidence), then swap in a capacity
        # map where a traversed link went infinite — the policy must
        # recompile rather than water-fill over the stale membership.
        jobs = {
            0: _job(clos, 0, 1, 1, 3, 1, size=4.0),
            1: _job(clos, 1, 1, 1, 3, 1, size=4.0),
        }
        remaining = {0: 4.0, 1: 4.0}
        policy = MaxMinCongestionControl(clos, backend="vectorized")
        before = policy.rates(jobs, remaining)
        assert before[0] == pytest.approx(0.5)

        # Both jobs share the s1^1 server uplink; make it unconstrained.
        uplink = (clos.sources[0], clos.input_switches[0])
        assert uplink in policy._capacities
        policy._capacities = dict(policy._capacities)
        policy._capacities[uplink] = float("inf")
        policy._caps_version += 1

        after = policy.rates(jobs, remaining)
        reference = MaxMinCongestionControl(clos)
        reference._pinned = dict(policy._pinned)
        reference._capacities = policy._capacities
        expected = reference.rates(jobs, remaining)
        assert after[0] == pytest.approx(expected[0])
        assert after[1] == pytest.approx(expected[1])

    def test_policy_recompiles_when_infinite_link_becomes_finite(self, clos):
        # The dangerous direction: a link that was infinite at compile
        # time is *absent* from the incidence arrays, so if it later
        # becomes finite its constraint would be silently ignored
        # without a recompile — jobs would be served above capacity.
        # Same source, different destinations, pinned to *different*
        # middles: the server uplink is the only link the two jobs
        # share, so its constraint alone decides the rates.
        jobs = {
            0: _job(clos, 0, 1, 1, 3, 1, size=4.0),
            1: _job(clos, 1, 1, 1, 4, 1, size=4.0),
        }
        remaining = {0: 4.0, 1: 4.0}
        uplink = (clos.sources[0], clos.input_switches[0])

        policy = MaxMinCongestionControl(clos, backend="vectorized")
        policy._pinned = {0: 1, 1: 2}
        policy._capacities = dict(policy._capacities)
        policy._capacities[uplink] = float("inf")
        policy._caps_version += 1
        before = policy.rates(jobs, remaining)
        assert before[0] == pytest.approx(1.0)  # uplink unconstrained

        policy._capacities = dict(policy._capacities)
        policy._capacities[uplink] = 1
        policy._caps_version += 1
        after = policy.rates(jobs, remaining)
        # Both jobs share the now-finite unit uplink: 1/2 each.  A stale
        # incidence would keep serving above the restored capacity.
        assert after[0] + after[1] == pytest.approx(1.0)
        assert after[0] == pytest.approx(0.5)
