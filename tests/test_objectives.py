"""Tests for the exact routing-objective solvers (Definitions 2.4 / 2.5)."""

from fractions import Fraction

import pytest

from repro.core.allocation import lex_compare
from repro.core.flows import Flow, FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.objectives import (
    lex_max_min_fair,
    macro_switch_max_min,
    throughput_max_min_fair,
)
from repro.core.routing import Routing, all_middle_assignments
from repro.core.topology import ClosNetwork, MacroSwitch

from tests.helpers import random_flows


class TestMacroSwitchMaxMin:
    def test_unique_and_deterministic(self):
        ms = MacroSwitch(2)
        flows = FlowCollection()
        flows.add_pair(ms.source(1, 1), ms.destination(1, 1), count=2)
        a1 = macro_switch_max_min(ms, flows)
        a2 = macro_switch_max_min(ms, flows)
        assert a1.rates() == a2.rates()

    def test_matches_direct_water_filling(self):
        ms = MacroSwitch(2)
        flows = random_flows(ClosNetwork(2), 8, seed=0)
        direct = max_min_fair(
            Routing.for_macro_switch(ms, flows), ms.graph.capacities()
        )
        assert macro_switch_max_min(ms, flows).rates() == direct.rates()


class TestLexMaxMin:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            lex_max_min_fair(ClosNetwork(2), FlowCollection())

    def test_single_flow_full_rate(self):
        clos = ClosNetwork(2)
        f = Flow(clos.source(1, 1), clos.destination(3, 1))
        result = lex_max_min_fair(clos, FlowCollection([f]))
        assert result.allocation.rate(f) == 1

    def test_spreads_conflicting_flows(self):
        """Two flows sharing only ToR switches get disjoint middles."""
        clos = ClosNetwork(2)
        flows = FlowCollection()
        f1 = flows.add(Flow(clos.source(1, 1), clos.destination(3, 1)))
        f2 = flows.add(Flow(clos.source(1, 2), clos.destination(3, 2)))
        result = lex_max_min_fair(clos, flows)
        assert result.allocation.rate(f1) == 1
        assert result.allocation.rate(f2) == 1
        middles = result.routing.middles(clos)
        assert middles[f1] != middles[f2]

    def test_symmetry_reduction_is_lossless(self):
        """Optimal sorted vector identical with and without pruning.

        (The solvers may stop early on reaching the macro-switch bound,
        so only the optima — not the examined counts — are comparable.)
        """
        clos = ClosNetwork(2)
        flows = random_flows(clos, 5, seed=11)
        with_symmetry = lex_max_min_fair(clos, flows, use_symmetry=True)
        without = lex_max_min_fair(clos, flows, use_symmetry=False)
        assert (
            with_symmetry.allocation.sorted_vector()
            == without.allocation.sorted_vector()
        )

    def test_macro_bound_early_exit(self):
        """Instances whose macro vector is attainable stop early."""
        from repro.search.enumeration import routing_space_size

        clos = ClosNetwork(2)
        flows = FlowCollection()
        f1 = flows.add(Flow(clos.source(1, 1), clos.destination(3, 1)))
        f2 = flows.add(Flow(clos.source(1, 2), clos.destination(3, 2)))
        f3 = flows.add(Flow(clos.source(2, 1), clos.destination(4, 1)))
        result = lex_max_min_fair(clos, flows)
        assert result.allocation.sorted_vector() == [1, 1, 1]
        assert result.examined < routing_space_size(3, 2, use_symmetry=True)

    @pytest.mark.parametrize("seed", range(4))
    def test_dominates_every_routing(self, seed):
        """Definition 2.4 verbatim: lex-max over all n^F routings."""
        clos = ClosNetwork(2)
        flows = random_flows(clos, 4, seed=seed)
        optimal = lex_max_min_fair(clos, flows)
        capacities = clos.graph.capacities()
        for assignment in all_middle_assignments(flows, clos.n):
            routing = Routing.from_middles(clos, flows, assignment)
            alloc = max_min_fair(routing, capacities)
            assert (
                lex_compare(
                    optimal.allocation.sorted_vector(), alloc.sorted_vector()
                )
                >= 0
            )

    def test_never_exceeds_macro_switch(self):
        """§2.3: the macro-switch sorted vector lex-dominates L-MmF."""
        clos = ClosNetwork(2)
        ms = MacroSwitch(2)
        for seed in range(4):
            flows = random_flows(clos, 5, seed=seed)
            macro = macro_switch_max_min(ms, flows)
            network = lex_max_min_fair(clos, flows)
            assert (
                lex_compare(
                    macro.sorted_vector(),
                    network.allocation.sorted_vector(),
                )
                >= 0
            )


class TestThroughputMaxMin:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            throughput_max_min_fair(ClosNetwork(2), FlowCollection())

    @pytest.mark.parametrize("seed", range(4))
    def test_dominates_every_routing(self, seed):
        """Definition 2.5 verbatim: max throughput over all routings."""
        clos = ClosNetwork(2)
        flows = random_flows(clos, 4, seed=seed)
        optimal = throughput_max_min_fair(clos, flows)
        capacities = clos.graph.capacities()
        for assignment in all_middle_assignments(flows, clos.n):
            routing = Routing.from_middles(clos, flows, assignment)
            alloc = max_min_fair(routing, capacities)
            assert optimal.allocation.throughput() >= alloc.throughput()

    def test_at_least_lex_max_min_throughput(self):
        """T-MmF maximizes throughput, so it ≥ the lex optimum's throughput."""
        clos = ClosNetwork(2)
        for seed in range(4):
            flows = random_flows(clos, 5, seed=seed)
            lex = lex_max_min_fair(clos, flows)
            thr = throughput_max_min_fair(clos, flows)
            assert thr.allocation.throughput() >= lex.allocation.throughput()

    def test_allocation_is_max_min_for_its_routing(self):
        """Definition 2.5: the allocation must still be per-routing max-min."""
        from repro.core.bottleneck import is_max_min_fair

        clos = ClosNetwork(2)
        flows = random_flows(clos, 5, seed=2)
        result = throughput_max_min_fair(clos, flows)
        assert is_max_min_fair(
            result.routing, result.allocation, clos.graph.capacities()
        )

    def test_symmetry_reduction_is_lossless(self):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 5, seed=3)
        with_symmetry = throughput_max_min_fair(clos, flows, use_symmetry=True)
        without = throughput_max_min_fair(clos, flows, use_symmetry=False)
        assert (
            with_symmetry.allocation.throughput()
            == without.allocation.throughput()
        )

    def test_stop_at_max_throughput_flag(self):
        """Early exit at T^MT gives the same optimal throughput, faster."""
        clos = ClosNetwork(2)
        flows = random_flows(clos, 5, seed=1)
        full = throughput_max_min_fair(clos, flows)
        early = throughput_max_min_fair(clos, flows, stop_at_max_throughput=True)
        # the break fires only at T^MT, which upper-bounds the optimum,
        # so the early variant's *throughput* is always exact (only the
        # lexicographic tie-break refinement may differ)
        assert early.allocation.throughput() == full.allocation.throughput()
        assert early.examined <= full.examined

    def test_upper_bound_against_macro_on_example_2_3(self):
        """Theorem 5.4's upper bound on the exactly solvable instance.

        (The strict T-MmF > T^MmF case needs the n = 7 Figure 4 gadget,
        whose routing space is beyond exhaustive search; the Doom-Switch
        witness in the experiments covers it.)"""
        from repro.workloads.adversarial import example_2_3

        small = example_2_3()
        macro = macro_switch_max_min(small.macro, small.flows)
        thr = throughput_max_min_fair(small.clos, small.flows)
        assert thr.allocation.throughput() <= 2 * macro.throughput()
