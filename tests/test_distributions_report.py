"""Tests for distribution helpers and the report generator."""

from fractions import Fraction

import pytest

from repro.analysis.distributions import (
    empirical_cdf,
    fraction_at_most,
    percentile,
    percentile_table,
    text_histogram,
)
from repro.core.allocation import Allocation
from repro.core.flows import Flow
from repro.core.nodes import Destination, Source
from repro.report import generate_report, write_report


class TestEmpiricalCdf:
    def test_empty(self):
        assert empirical_cdf([]) == []

    def test_breakpoints(self):
        points = empirical_cdf([1.0, 1.0, 2.0])
        assert points == [(1.0, pytest.approx(2 / 3)), (2.0, 1.0)]

    def test_last_point_reaches_one(self):
        points = empirical_cdf([3.0, 1.0, 2.0, 2.0])
        assert points[-1][1] == 1.0

    def test_monotone(self):
        points = empirical_cdf([5, 3, 1, 4, 1, 5])
        fractions = [f for _, f in points]
        assert fractions == sorted(fractions)


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4], 50) == 2
        assert percentile([1, 2, 3], 50) == 2

    def test_extremes(self):
        assert percentile([1, 2, 3], 100) == 3
        assert percentile([1, 2, 3], 1) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 0)
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_table(self):
        flows = [Flow(Source(1, 1), Destination(1, 1), tag=i) for i in range(4)]
        alloc = Allocation(
            {flows[i]: Fraction(i + 1, 4) for i in range(4)}
        )
        table = percentile_table(alloc, qs=(50, 100))
        assert table[50] == pytest.approx(0.5)
        assert table[100] == pytest.approx(1.0)


class TestFractionAtMost:
    def test_values(self):
        values = [1, 2, 3, 4]
        assert fraction_at_most(values, 2) == 0.5
        assert fraction_at_most(values, 0) == 0.0
        assert fraction_at_most(values, 4) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            fraction_at_most([], 1)


class TestTextHistogram:
    def test_bins_and_counts(self):
        out = text_histogram([0.1, 0.1, 0.9], bins=2, width=4)
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].endswith("2")
        assert lines[1].endswith("1")

    def test_degenerate_single_value(self):
        out = text_histogram([0.5, 0.5], bins=3)
        assert "2" in out
        assert "\n" not in out

    def test_validation(self):
        with pytest.raises(ValueError):
            text_histogram([])
        with pytest.raises(ValueError):
            text_histogram([1.0], bins=0)


class TestReport:
    def test_small_report_structure(self):
        text = generate_report(["e1", "e3"])
        assert "# Reproduction report" in text
        assert "## e1" in text
        assert "## e3" in text
        assert "matches paper: True" in text
        assert "all experiments completed" in text

    def test_unknown_id_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            generate_report(["e99"])

    def test_write_report(self, tmp_path):
        path = tmp_path / "report.md"
        returned = write_report(str(path), ["e1"])
        assert returned == str(path)
        assert "Example 2.3" in path.read_text()

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "r.md"
        assert main(["report", "-o", str(path), "--only", "e1"]) == 0
        assert path.exists()
        assert "wrote" in capsys.readouterr().out


class TestReportFailurePath:
    def test_failing_experiment_reported_not_fatal(self, monkeypatch):
        """A crashing experiment becomes a FAILED section, not an exception."""
        import repro.cli as cli
        from repro.report import generate_report

        def boom(args):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(cli.EXPERIMENTS, "e1", boom)
        text = generate_report(["e1"])
        assert "**FAILED**" in text
        assert "synthetic failure" in text
        assert "FAILED: e1" in text
