"""Tests for routing-space enumeration and local search."""

import pytest

from repro.core.allocation import lex_compare
from repro.core.flows import Flow, FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.objectives import lex_max_min_fair, throughput_max_min_fair
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.search.enumeration import (
    all_assignments,
    canonical_assignments,
    enumerate_routings,
    routing_space_size,
)
from repro.search.local_search import improve_routing, is_local_optimum
from repro.workloads.adversarial import lemma_4_6_routing, theorem_4_3

from tests.helpers import random_flows, random_routing


class TestEnumeration:
    def test_empty_yields_empty_assignment(self):
        assert list(canonical_assignments(FlowCollection(), 3)) == [{}]
        assert list(all_assignments(FlowCollection(), 3)) == [{}]

    def test_counts_match_formula(self):
        clos = ClosNetwork(3)
        flows = random_flows(clos, 4, seed=0)
        full = list(all_assignments(flows, 3))
        reduced = list(canonical_assignments(flows, 3))
        assert len(full) == routing_space_size(4, 3, use_symmetry=False) == 81
        assert len(reduced) == routing_space_size(4, 3, use_symmetry=True)
        assert len(reduced) < len(full)

    def test_canonical_assignments_are_restricted_growth(self):
        clos = ClosNetwork(3)
        flows = random_flows(clos, 4, seed=1)
        order = list(flows)
        for assignment in canonical_assignments(flows, 3):
            highest = 0
            for f in order:
                assert assignment[f] <= highest + 1
                highest = max(highest, assignment[f])

    def test_every_orbit_has_a_representative(self):
        """Each full assignment is a middle-switch relabeling of some
        canonical one."""
        clos = ClosNetwork(2)
        flows = random_flows(clos, 3, seed=2)
        order = list(flows)

        def canonical_form(assignment):
            relabel = {}
            form = []
            for f in order:
                m = assignment[f]
                if m not in relabel:
                    relabel[m] = len(relabel) + 1
                form.append(relabel[m])
            return tuple(form)

        canon = {
            canonical_form(a) for a in canonical_assignments(flows, 2)
        }
        for assignment in all_assignments(flows, 2):
            assert canonical_form(assignment) in canon

    def test_enumerate_routings_yields_routings(self):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 3, seed=3)
        for routing in enumerate_routings(clos, flows):
            routing.validate(clos.graph)

    def test_routing_space_size_edge_cases(self):
        assert routing_space_size(0, 3, use_symmetry=True) == 1
        assert routing_space_size(0, 3, use_symmetry=False) == 1
        assert routing_space_size(1, 5, use_symmetry=True) == 1
        assert routing_space_size(2, 5, use_symmetry=True) == 2
        assert routing_space_size(3, 2, use_symmetry=True) == 4


class TestLocalSearch:
    def test_already_optimal_stays(self):
        clos = ClosNetwork(2)
        flows = FlowCollection()
        f1 = flows.add(Flow(clos.source(1, 1), clos.destination(3, 1)))
        f2 = flows.add(Flow(clos.source(1, 2), clos.destination(3, 2)))
        routing = Routing.from_middles(clos, flows, {f1: 1, f2: 2})
        improved, alloc = improve_routing(clos, routing, objective="lex")
        assert alloc.sorted_vector() == [1, 1]
        assert is_local_optimum(clos, improved, objective="lex")

    def test_improves_bad_start(self):
        clos = ClosNetwork(2)
        flows = FlowCollection()
        f1 = flows.add(Flow(clos.source(1, 1), clos.destination(3, 1)))
        f2 = flows.add(Flow(clos.source(1, 2), clos.destination(3, 2)))
        bad = Routing.uniform(clos, flows, 1)
        assert not is_local_optimum(clos, bad, objective="lex")
        _, alloc = improve_routing(clos, bad, objective="lex")
        assert alloc.sorted_vector() == [1, 1]

    @pytest.mark.parametrize("objective", ["lex", "throughput"])
    def test_result_is_local_optimum(self, objective):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 6, seed=4)
        start = random_routing(clos, flows, seed=4)
        routing, _ = improve_routing(clos, start, objective=objective)
        assert is_local_optimum(clos, routing, objective=objective)

    @pytest.mark.parametrize("seed", range(3))
    def test_never_worse_than_start(self, seed):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 6, seed=seed)
        start = random_routing(clos, flows, seed=seed)
        capacities = clos.graph.capacities()
        start_alloc = max_min_fair(start, capacities)
        _, lex_alloc = improve_routing(clos, start, objective="lex")
        assert (
            lex_compare(lex_alloc.sorted_vector(), start_alloc.sorted_vector())
            >= 0
        )
        _, thr_alloc = improve_routing(clos, start, objective="throughput")
        assert thr_alloc.throughput() >= start_alloc.throughput()

    @pytest.mark.parametrize("seed", range(3))
    def test_bounded_by_exact_optimum(self, seed):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 5, seed=seed)
        start = random_routing(clos, flows, seed=seed)
        _, lex_local = improve_routing(clos, start, objective="lex")
        lex_exact = lex_max_min_fair(clos, flows)
        assert (
            lex_compare(
                lex_exact.allocation.sorted_vector(), lex_local.sorted_vector()
            )
            >= 0
        )
        _, thr_local = improve_routing(clos, start, objective="throughput")
        thr_exact = throughput_max_min_fair(clos, flows)
        assert thr_exact.allocation.throughput() >= thr_local.throughput()

    def test_max_rounds_caps_work(self):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 6, seed=5)
        start = Routing.uniform(clos, flows, 1)
        routing, _ = improve_routing(clos, start, objective="lex", max_rounds=1)
        # at most one move applied
        moves = sum(
            1
            for f in flows
            if routing.middles(clos)[f] != start.middles(clos)[f]
        )
        assert moves <= 1

    def test_unknown_objective_rejected(self):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 2, seed=6)
        start = Routing.uniform(clos, flows, 1)
        with pytest.raises(ValueError, match="objective"):
            improve_routing(clos, start, objective="nope")

    def test_lemma_4_6_routing_is_lex_local_optimum(self):
        """The paper's posited optimum survives single-flow probing."""
        instance = theorem_4_3(3)
        routing = lemma_4_6_routing(instance)
        assert is_local_optimum(instance.clos, routing, objective="lex")

    def test_improvement_callback_invoked(self):
        clos = ClosNetwork(2)
        flows = FlowCollection()
        flows.add(Flow(clos.source(1, 1), clos.destination(3, 1)))
        flows.add(Flow(clos.source(1, 2), clos.destination(3, 2)))
        bad = Routing.uniform(clos, flows, 1)
        calls = []
        improve_routing(
            clos,
            bad,
            objective="lex",
            on_improvement=lambda r, a: calls.append(a.throughput()),
        )
        assert calls  # at least one improvement recorded
