"""Tests for the micro-batching stream loop and pod sharding.

The contract under test: ``simulate_stream(batch_window=0)`` *is*
:func:`repro.sim.flowsim.simulate`; the ``streaming`` policy backend is
byte-identical to ``vectorized`` at every consult (so whole-simulation
results match exactly); batching trades rate staleness for throughput
but never loses work; and with one pod the sharded loop reduces exactly
to the unsharded one.
"""

import pytest

pytest.importorskip("numpy")

from repro import obs
from repro.core.topology import ClosNetwork
from repro.sim.flowsim import SimulationError, simulate
from repro.sim.jobs import FlowJob, poisson_workload
from repro.sim.policies import MaxMinCongestionControl
from repro.sim.stream import (
    middle_pools,
    pod_of_switch,
    simulate_sharded,
    simulate_stream,
)
from repro.workloads.stochastic import churn_workload


@pytest.fixture
def clos():
    return ClosNetwork(2)


def _job(clos, jid, i, j, oi, oj, arrival=0.0, size=1.0):
    return FlowJob(
        jid, clos.source(i, j), clos.destination(oi, oj), arrival, size
    )


class TestWindowZeroIdentity:
    """``batch_window=0`` delegates to the per-event loop outright."""

    def test_byte_identical_to_simulate(self, clos):
        jobs = poisson_workload(clos, rate=2.0, horizon=10.0, seed=3)
        policy_a = MaxMinCongestionControl(clos, backend="streaming")
        policy_b = MaxMinCongestionControl(clos, backend="streaming")
        assert simulate_stream(jobs, policy_a, batch_window=0.0) == simulate(
            jobs, policy_b
        )

    def test_streaming_policy_matches_vectorized(self, clos):
        jobs = poisson_workload(clos, rate=3.0, horizon=10.0, seed=5)
        streamed = simulate(
            jobs, MaxMinCongestionControl(clos, backend="streaming")
        )
        vectorized = simulate(
            jobs, MaxMinCongestionControl(clos, backend="vectorized")
        )
        assert streamed == vectorized

    def test_streaming_policy_matches_under_failures(self, clos):
        """PR 6's staleness hazard, now for the streaming backend: a
        failure schedule flips links finite<->infinite mid-run and the
        solver must re-derive membership rather than patch over it."""
        from fractions import Fraction

        from repro.failures.schedule import FailureSchedule

        jobs = poisson_workload(clos, rate=2.0, horizon=6.0, seed=5)
        schedule = FailureSchedule.random_flaps(
            clos, count=3, horizon=4.0, seed=5, severity=Fraction(1, 4)
        )
        streamed = simulate(
            jobs,
            MaxMinCongestionControl(clos, seed=5, backend="streaming"),
            failure_schedule=schedule,
        )
        vectorized = simulate(
            jobs,
            MaxMinCongestionControl(clos, seed=5, backend="vectorized"),
            failure_schedule=schedule,
        )
        assert streamed == vectorized

    def test_streaming_policy_matches_under_full_kill(self, clos):
        from repro.failures.schedule import FailureSchedule

        jobs = poisson_workload(clos, rate=2.0, horizon=6.0, seed=9)
        schedule = FailureSchedule.random_flaps(
            clos, count=2, horizon=4.0, seed=9, severity=0
        )
        streamed = simulate(
            jobs,
            MaxMinCongestionControl(clos, seed=9, backend="streaming"),
            failure_schedule=schedule,
        )
        vectorized = simulate(
            jobs,
            MaxMinCongestionControl(clos, seed=9, backend="vectorized"),
            failure_schedule=schedule,
        )
        assert streamed == vectorized


class TestBatchedConservation:
    def test_all_work_delivered(self, clos):
        jobs = churn_workload(clos, rate=20.0, horizon=4.0, seed=2)
        policy = MaxMinCongestionControl(clos, backend="streaming")
        result = simulate_stream(jobs, policy, batch_window=0.05)
        assert not result.unfinished
        assert len(result.completed) == len(jobs)
        assert result.work_done == pytest.approx(sum(j.size for j in jobs))

    def test_completions_never_precede_arrivals(self, clos):
        jobs = churn_workload(clos, rate=15.0, horizon=4.0, seed=4)
        policy = MaxMinCongestionControl(clos, backend="streaming")
        result = simulate_stream(jobs, policy, batch_window=0.1)
        for done in result.completed:
            assert done.completion_time >= done.job.arrival - 1e-9

    def test_staleness_is_bounded(self, clos):
        """A batched single job still finishes in ~size time: the first
        consult happens within one window of its arrival."""
        job = _job(clos, 0, 1, 1, 3, 1, size=2.0)
        policy = MaxMinCongestionControl(clos, backend="streaming")
        result = simulate_stream([job], policy, batch_window=0.25)
        assert len(result.completed) == 1
        assert result.completed[0].completion_time <= 2.0 + 0.25 + 1e-9

    def test_max_events_guard(self, clos):
        jobs = churn_workload(clos, rate=10.0, horizon=5.0, seed=6)
        policy = MaxMinCongestionControl(clos, backend="streaming")
        with pytest.raises(SimulationError):
            simulate_stream(jobs, policy, batch_window=0.05, max_events=2)


class TestSharding:
    def test_one_pod_reduces_to_stream(self, clos):
        jobs = churn_workload(clos, rate=20.0, horizon=3.0, pods=1, seed=7)
        policy = MaxMinCongestionControl(
            clos, backend="streaming", middle_pool=tuple(
                range(1, clos.num_middles + 1)
            )
        )
        unsharded = simulate_stream(jobs, policy, batch_window=0.05)
        sharded = simulate_sharded(
            clos, jobs, pods=1, batch_window=0.05, seed=0
        )
        assert sharded == unsharded

    def test_sharded_conserves_work(self):
        clos = ClosNetwork(4)
        jobs = churn_workload(clos, rate=30.0, horizon=3.0, pods=2, seed=8)
        result = simulate_sharded(clos, jobs, pods=2, batch_window=0.05)
        assert not result.unfinished
        assert result.work_done == pytest.approx(sum(j.size for j in jobs))

    def test_cross_pod_job_rejected(self):
        clos = ClosNetwork(4)
        # switch 1 is pod 0, switch 8 is pod 1 under pods=2.
        job = FlowJob(0, clos.source(1, 1), clos.destination(8, 1), 0.0, 1.0)
        with pytest.raises(SimulationError, match="crosses pods"):
            simulate_sharded(clos, [job], pods=2, batch_window=0.05)

    def test_pod_of_switch_partitions(self):
        # 8 ToR switches into 2 pods: 1-4 -> 0, 5-8 -> 1.
        assert [pod_of_switch(s, 8, 2) for s in range(1, 9)] == [
            0, 0, 0, 0, 1, 1, 1, 1,
        ]

    def test_middle_pools_partition(self):
        pools = middle_pools(4, 2)
        assert pools == [(1, 2), (3, 4)]
        assert middle_pools(3, 1) == [(1, 2, 3)]
        with pytest.raises(ValueError):
            middle_pools(2, 3)


class TestBatchSizeHistogram:
    def test_histogram_observed(self, clos):
        obs.reset()
        obs.enable()
        try:
            jobs = churn_workload(clos, rate=20.0, horizon=3.0, seed=9)
            policy = MaxMinCongestionControl(clos, backend="streaming")
            simulate_stream(jobs, policy, batch_window=0.1)
            snap = obs.metrics_snapshot()
        finally:
            obs.disable()
            obs.reset()
        batch = snap["sim.batch_size"]
        assert batch["count"] >= 1
        assert batch["max"] >= 1
