"""Tests for König edge coloring, including Kempe-chain stress cases."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coloring.konig import (
    ColoringError,
    color_classes,
    edge_coloring,
    is_proper_coloring,
)
from repro.graph.bipartite import BipartiteMultigraph, build_multigraph


class TestSmallCases:
    def test_empty_graph(self):
        assert edge_coloring(BipartiteMultigraph()) == {}

    def test_single_edge_one_color(self):
        g = build_multigraph([("u", "v", "e")])
        assert edge_coloring(g) == {"e": 0}

    def test_star_uses_degree_colors(self):
        g = build_multigraph([("u", f"v{i}", i) for i in range(4)])
        colors = edge_coloring(g)
        assert sorted(colors.values()) == [0, 1, 2, 3]

    def test_parallel_edges_distinct_colors(self):
        g = build_multigraph([("u", "v", 1), ("u", "v", 2), ("u", "v", 3)])
        colors = edge_coloring(g)
        assert len(set(colors.values())) == 3

    def test_cycle_two_colors(self):
        # Even cycle u1-v1-u2-v2-u1: degree 2, two colors suffice.
        g = build_multigraph(
            [("u1", "v1", 1), ("u2", "v1", 2), ("u2", "v2", 3), ("u1", "v2", 4)]
        )
        colors = edge_coloring(g)
        assert is_proper_coloring(g, colors)
        assert len(set(colors.values())) == 2

    def test_kempe_chain_triggered(self):
        # Force a conflict: after coloring a path, a closing edge needs a flip.
        g = build_multigraph(
            [
                ("u1", "v1", "a"),
                ("u2", "v1", "b"),
                ("u2", "v2", "c"),
                ("u3", "v2", "d"),
                ("u3", "v1", "e"),
            ]
        )
        colors = edge_coloring(g)
        assert is_proper_coloring(g, colors)
        assert max(colors.values()) < g.max_degree()

    def test_too_few_colors_rejected(self):
        g = build_multigraph([("u", "v1", 1), ("u", "v2", 2)])
        with pytest.raises(ColoringError):
            edge_coloring(g, num_colors=1)

    def test_extra_colors_allowed(self):
        g = build_multigraph([("u", "v", 1)])
        colors = edge_coloring(g, num_colors=5)
        assert is_proper_coloring(g, colors)

    def test_color_classes_grouping(self):
        colors = {"a": 0, "b": 1, "c": 0}
        classes = color_classes(colors)
        assert classes == {0: ["a", "c"], 1: ["b"]}


class TestIsProperColoring:
    def test_accepts_valid(self):
        g = build_multigraph([("u", "v1", 1), ("u", "v2", 2)])
        assert is_proper_coloring(g, {1: 0, 2: 1})

    def test_rejects_conflict(self):
        g = build_multigraph([("u", "v1", 1), ("u", "v2", 2)])
        assert not is_proper_coloring(g, {1: 0, 2: 0})

    def test_rejects_missing_edges(self):
        g = build_multigraph([("u", "v1", 1), ("u", "v2", 2)])
        assert not is_proper_coloring(g, {1: 0})


class TestRandomized:
    @pytest.mark.parametrize("seed", range(25))
    def test_random_multigraphs_proper_with_max_degree_colors(self, seed):
        rng = random.Random(seed)
        g = BipartiteMultigraph()
        for key in range(rng.randint(1, 50)):
            g.add_edge(
                ("u", rng.randint(1, 8)), ("v", rng.randint(1, 8)), key=key
            )
        colors = edge_coloring(g)
        assert is_proper_coloring(g, colors)
        assert max(colors.values()) < g.max_degree()

    def test_dense_regular_case(self):
        # Complete bipartite K_{5,5}: degree 5, exactly 5 colors.
        g = build_multigraph(
            [(f"u{i}", f"v{j}", (i, j)) for i in range(5) for j in range(5)]
        )
        colors = edge_coloring(g)
        assert is_proper_coloring(g, colors)
        assert len(set(colors.values())) == 5


@st.composite
def multigraphs(draw):
    num_left = draw(st.integers(1, 6))
    num_right = draw(st.integers(1, 6))
    edges = draw(
        st.lists(
            st.tuples(st.integers(1, num_left), st.integers(1, num_right)),
            max_size=30,
        )
    )
    g = BipartiteMultigraph()
    for key, (u, v) in enumerate(edges):
        g.add_edge(("u", u), ("v", v), key=key)
    return g


class TestHypothesis:
    @settings(max_examples=80, deadline=None)
    @given(multigraphs())
    def test_konig_theorem(self, g):
        """Max-degree colors always suffice and the coloring is proper."""
        colors = edge_coloring(g)
        assert is_proper_coloring(g, colors)
        if g.num_edges():
            assert max(colors.values()) < g.max_degree()

    @settings(max_examples=40, deadline=None)
    @given(multigraphs())
    def test_color_classes_are_matchings(self, g):
        """Each color class is a matching in the multigraph."""
        colors = edge_coloring(g)
        for _, keys in color_classes(colors).items():
            lefts = [g.endpoints(k)[0] for k in keys]
            rights = [g.endpoints(k)[1] for k in keys]
            assert len(set(lefts)) == len(lefts)
            assert len(set(rights)) == len(rights)
