"""Tests for the power-of-two-choices router."""

import pytest

from repro.core.topology import ClosNetwork
from repro.routers.ecmp import random_routing
from repro.routers.greedy import macro_switch_demands
from repro.routers.two_choice import two_choice_routing
from repro.routers.congestion_local_search import max_congestion
from repro.workloads.stochastic import uniform_random


@pytest.fixture
def clos():
    return ClosNetwork(4)


class TestBasics:
    def test_routes_every_flow(self, clos):
        flows = uniform_random(clos, 30, seed=0)
        routing = two_choice_routing(clos, flows)
        assert len(routing) == 30
        routing.validate(clos.graph)

    def test_deterministic_given_seed(self, clos):
        flows = uniform_random(clos, 20, seed=0)
        a = two_choice_routing(clos, flows, seed=5).middles(clos)
        b = two_choice_routing(clos, flows, seed=5).middles(clos)
        assert a == b

    def test_invalid_choices(self, clos):
        flows = uniform_random(clos, 5, seed=0)
        with pytest.raises(ValueError):
            two_choice_routing(clos, flows, choices=0)

    def test_choices_capped_at_middles(self, clos):
        flows = uniform_random(clos, 10, seed=0)
        routing = two_choice_routing(clos, flows, choices=99)
        routing.validate(clos.graph)


class TestLoadBalancing:
    @pytest.mark.parametrize("seed", range(4))
    def test_two_choices_beat_one_on_average(self, clos, seed):
        """The power-of-two-choices effect: sampled placement beats blind."""
        flows = uniform_random(clos, 60, seed=seed)
        demands = macro_switch_demands(clos, flows)
        one = two_choice_routing(clos, flows, demands=demands, choices=1, seed=seed)
        two = two_choice_routing(clos, flows, demands=demands, choices=2, seed=seed)
        assert max_congestion(clos, two, demands) <= max_congestion(
            clos, one, demands
        )

    def test_more_choices_never_hurt_much(self, clos):
        flows = uniform_random(clos, 60, seed=7)
        demands = macro_switch_demands(clos, flows)
        congestions = [
            max_congestion(
                clos,
                two_choice_routing(
                    clos, flows, demands=demands, choices=d, seed=7
                ),
                demands,
            )
            for d in (1, 2, 4)
        ]
        assert congestions[2] <= congestions[0]

    def test_single_choice_is_random_like(self, clos):
        """choices=1 spreads flows roughly uniformly (it samples blindly)."""
        flows = uniform_random(clos, 100, seed=3)
        routing = two_choice_routing(clos, flows, choices=1, seed=3)
        used = set(routing.middles(clos).values())
        assert len(used) == clos.num_middles
