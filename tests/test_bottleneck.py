"""Tests for the bottleneck property (Lemma 2.2) as a fairness certificate."""

from fractions import Fraction

import pytest

from repro.core.allocation import Allocation
from repro.core.bottleneck import (
    bottleneck_links,
    certify_max_min_fair,
    flows_without_bottleneck,
    is_max_min_fair,
    link_loads,
)
from repro.core.flows import Flow, FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork, MacroSwitch


@pytest.fixture
def shared_link_instance():
    """Two flows sharing one Clos path; max-min gives 1/2 each."""
    clos = ClosNetwork(1)
    flows = FlowCollection()
    pair = flows.add_pair(clos.source(1, 1), clos.destination(2, 1), count=2)
    routing = Routing.uniform(clos, flows, 1)
    return clos, flows, routing, pair


class TestLinkLoads:
    def test_loads_accumulate(self, shared_link_instance):
        clos, flows, routing, pair = shared_link_instance
        alloc = Allocation({pair[0]: Fraction(1, 4), pair[1]: Fraction(1, 2)})
        loads = link_loads(routing, alloc)
        for link in routing.links_of(pair[0]):
            assert loads[link] == Fraction(3, 4)

    def test_empty_routing(self):
        assert link_loads(Routing({}), Allocation({})) == {}


class TestBottleneckLinks:
    def test_fair_split_bottlenecks_everywhere(self, shared_link_instance):
        clos, flows, routing, pair = shared_link_instance
        alloc = Allocation({pair[0]: Fraction(1, 2), pair[1]: Fraction(1, 2)})
        capacities = clos.graph.capacities()
        links = bottleneck_links(routing, alloc, capacities, pair[0])
        assert len(links) == 4  # the whole shared path is saturated

    def test_unsaturated_links_not_bottlenecks(self, shared_link_instance):
        clos, flows, routing, pair = shared_link_instance
        alloc = Allocation({pair[0]: Fraction(1, 4), pair[1]: Fraction(1, 4)})
        capacities = clos.graph.capacities()
        assert bottleneck_links(routing, alloc, capacities, pair[0]) == []

    def test_smaller_flow_has_no_bottleneck_on_shared_link(
        self, shared_link_instance
    ):
        clos, flows, routing, pair = shared_link_instance
        # saturated link, but pair[0] is not the max-rate flow on it
        alloc = Allocation({pair[0]: Fraction(1, 4), pair[1]: Fraction(3, 4)})
        capacities = clos.graph.capacities()
        assert bottleneck_links(routing, alloc, capacities, pair[0]) == []
        assert len(bottleneck_links(routing, alloc, capacities, pair[1])) == 4

    def test_infinite_links_never_bottlenecks(self):
        ms = MacroSwitch(1)
        f = Flow(ms.source(1, 1), ms.destination(2, 1))
        flows = FlowCollection([f])
        routing = Routing.for_macro_switch(ms, flows)
        alloc = max_min_fair(routing, ms.graph.capacities())
        links = bottleneck_links(routing, alloc, ms.graph.capacities(), f)
        # only the two (saturated) server links qualify
        assert len(links) == 2
        assert all(ms.graph.capacity(*link) == 1 for link in links)


class TestIsMaxMinFair:
    def test_accepts_water_filling_output(self, shared_link_instance):
        clos, flows, routing, pair = shared_link_instance
        capacities = clos.graph.capacities()
        alloc = max_min_fair(routing, capacities)
        assert is_max_min_fair(routing, alloc, capacities)
        assert certify_max_min_fair(routing, alloc, capacities) is None

    def test_rejects_underallocation(self, shared_link_instance):
        clos, flows, routing, pair = shared_link_instance
        capacities = clos.graph.capacities()
        low = Allocation({pair[0]: Fraction(1, 4), pair[1]: Fraction(1, 4)})
        assert not is_max_min_fair(routing, low, capacities)
        report = certify_max_min_fair(routing, low, capacities)
        assert "without a bottleneck" in report

    def test_rejects_unfair_allocation(self, shared_link_instance):
        """Max throughput but not max-min: one flow starves."""
        clos, flows, routing, pair = shared_link_instance
        capacities = clos.graph.capacities()
        unfair = Allocation({pair[0]: Fraction(1), pair[1]: Fraction(0)})
        assert not is_max_min_fair(routing, unfair, capacities)

    def test_rejects_infeasible(self, shared_link_instance):
        clos, flows, routing, pair = shared_link_instance
        capacities = clos.graph.capacities()
        over = Allocation({pair[0]: Fraction(1), pair[1]: Fraction(1)})
        assert not is_max_min_fair(routing, over, capacities)
        report = certify_max_min_fair(routing, over, capacities)
        assert "infeasible" in report

    def test_flows_without_bottleneck_lists_offenders(
        self, shared_link_instance
    ):
        clos, flows, routing, pair = shared_link_instance
        capacities = clos.graph.capacities()
        # Saturated path (3/4 + 1/4 = 1): the max-rate flow has a
        # bottleneck, the smaller one does not.
        partial = Allocation({pair[0]: Fraction(3, 4), pair[1]: Fraction(1, 4)})
        missing = flows_without_bottleneck(routing, partial, capacities)
        assert missing == [pair[1]]


class TestPaperCertificates:
    def test_lemma_4_6_posited_allocation_certified(self):
        """The paper's Lemma 4.6 Step-1 claim, checked the paper's way."""
        from repro.core.theorems import theorem_4_3 as predict
        from repro.workloads.adversarial import lemma_4_6_routing, theorem_4_3

        instance = theorem_4_3(3)
        prediction = predict(3)
        routing = lemma_4_6_routing(instance)
        rates = {}
        for type_name in ("type1", "type2a", "type2b", "type3"):
            key = "type2" if type_name.startswith("type2") else type_name
            for flow in instance.types[type_name]:
                rates[flow] = prediction.lex_max_min_rates[key]
        posited = Allocation(rates)
        capacities = instance.clos.graph.capacities()
        assert is_max_min_fair(routing, posited, capacities)

    def test_float_tolerance_path(self):
        """Float allocations certify with a tolerance."""
        clos = ClosNetwork(2)
        flows = FlowCollection()
        flows.add_pair(clos.source(1, 1), clos.destination(3, 1), count=3)
        routing = Routing.uniform(clos, flows, 1)
        capacities = clos.graph.capacities()
        alloc = max_min_fair(routing, capacities, exact=False)
        assert is_max_min_fair(routing, alloc, capacities, tol=1e-9)
