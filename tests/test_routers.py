"""Tests for the data-center routing algorithms (§6)."""

from fractions import Fraction

import pytest

from repro.core.maxmin import max_min_fair
from repro.core.objectives import macro_switch_max_min
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.routers.congestion_local_search import (
    local_search_congestion,
    max_congestion,
)
from repro.routers.ecmp import ecmp_routing, random_routing
from repro.routers.greedy import greedy_least_congested, macro_switch_demands
from repro.workloads.stochastic import permutation, uniform_random

from tests.helpers import random_flows


@pytest.fixture
def clos():
    return ClosNetwork(3)


class TestECMP:
    def test_routes_every_flow(self, clos):
        flows = uniform_random(clos, 20, seed=0)
        routing = ecmp_routing(clos, flows)
        assert len(routing) == 20
        routing.validate(clos.graph)

    def test_deterministic_given_seed(self, clos):
        flows = uniform_random(clos, 20, seed=0)
        a = ecmp_routing(clos, flows, seed=7).middles(clos)
        b = ecmp_routing(clos, flows, seed=7).middles(clos)
        assert a == b

    def test_seed_changes_hashes(self, clos):
        flows = uniform_random(clos, 30, seed=0)
        a = ecmp_routing(clos, flows, seed=1).middles(clos)
        b = ecmp_routing(clos, flows, seed=2).middles(clos)
        assert a != b

    def test_order_independence(self, clos):
        """ECMP hashes flow identity, so presentation order is irrelevant."""
        from repro.core.flows import FlowCollection

        flows = uniform_random(clos, 10, seed=3)
        reversed_flows = FlowCollection(reversed(flows.flows))
        a = ecmp_routing(clos, flows, seed=0).middles(clos)
        b = ecmp_routing(clos, reversed_flows, seed=0).middles(clos)
        assert a == b

    def test_spreads_over_middles(self, clos):
        flows = uniform_random(clos, 120, seed=0)
        middles = ecmp_routing(clos, flows).middles(clos)
        used = set(middles.values())
        assert used == {1, 2, 3}

    def test_random_routing_valid(self, clos):
        flows = uniform_random(clos, 15, seed=1)
        routing = random_routing(clos, flows, seed=1)
        routing.validate(clos.graph)


class TestGreedy:
    def test_routes_every_flow(self, clos):
        flows = uniform_random(clos, 20, seed=0)
        routing = greedy_least_congested(clos, flows)
        assert len(routing) == 20
        routing.validate(clos.graph)

    def test_deterministic(self, clos):
        flows = uniform_random(clos, 20, seed=0)
        a = greedy_least_congested(clos, flows).middles(clos)
        b = greedy_least_congested(clos, flows).middles(clos)
        assert a == b

    def test_permutation_traffic_perfectly_spread(self, clos):
        """On permutation traffic greedy must find a congestion-1 routing
        is not guaranteed, but it must keep per-link demand ≤ 1 achievable
        ... we check it at least achieves macro rates for every flow."""
        flows = permutation(clos, seed=0)
        routing = greedy_least_congested(clos, flows)
        alloc = max_min_fair(routing, clos.graph.capacities())
        macro = macro_switch_max_min(MacroSwitch(clos.n), flows)
        for f in flows:
            assert alloc.rate(f) == macro.rate(f)

    def test_demands_default_to_macro_rates(self, clos):
        flows = uniform_random(clos, 12, seed=2)
        demands = macro_switch_demands(clos, flows)
        macro = macro_switch_max_min(MacroSwitch(clos.n), flows)
        assert demands == macro.rates()

    def test_beats_worst_case_single_switch(self, clos):
        flows = uniform_random(clos, 30, seed=3)
        demands = macro_switch_demands(clos, flows)
        greedy = greedy_least_congested(clos, flows, demands=demands)
        uniform = Routing.uniform(clos, flows, 1)
        assert max_congestion(clos, greedy, demands) <= max_congestion(
            clos, uniform, demands
        )


class TestCongestionLocalSearch:
    def test_improves_or_matches_start(self, clos):
        flows = uniform_random(clos, 25, seed=0)
        demands = macro_switch_demands(clos, flows)
        start = Routing.uniform(clos, flows, 1)
        result = local_search_congestion(clos, flows, initial=start, demands=demands)
        assert max_congestion(clos, result, demands) <= max_congestion(
            clos, start, demands
        )

    def test_greedy_warm_start(self, clos):
        flows = uniform_random(clos, 25, seed=1)
        demands = macro_switch_demands(clos, flows)
        greedy = greedy_least_congested(clos, flows, demands=demands)
        result = local_search_congestion(
            clos, flows, initial=greedy, demands=demands
        )
        assert max_congestion(clos, result, demands) <= max_congestion(
            clos, greedy, demands
        )

    def test_default_initial_is_single_switch(self, clos):
        flows = uniform_random(clos, 6, seed=2)
        result = local_search_congestion(clos, flows, max_rounds=0)
        assert result.middles(clos) == {f: 1 for f in flows}

    def test_max_congestion_empty(self, clos):
        from repro.core.flows import FlowCollection

        routing = Routing({})
        assert max_congestion(clos, routing, {}) == 0


class TestRouterComparison:
    def test_congestion_aware_beats_ecmp_on_average(self, clos):
        """The §6 claim, statistically: greedy ≤ ECMP max congestion."""
        wins = ties = losses = 0
        for seed in range(6):
            flows = uniform_random(clos, 30, seed=seed)
            demands = macro_switch_demands(clos, flows)
            g = max_congestion(
                clos, greedy_least_congested(clos, flows, demands=demands), demands
            )
            e = max_congestion(clos, ecmp_routing(clos, flows, seed=seed), demands)
            if g < e:
                wins += 1
            elif g == e:
                ties += 1
            else:
                losses += 1
        assert wins + ties > losses

    def test_greedy_approaches_macro_rates_stochastically(self, clos):
        """§6: congestion-aware routing approximates macro-switch rates
        well on stochastic inputs (mean per-flow ratio near 1)."""
        flows = uniform_random(clos, 30, seed=4)
        routing = greedy_least_congested(clos, flows)
        alloc = max_min_fair(routing, clos.graph.capacities())
        macro = macro_switch_max_min(MacroSwitch(clos.n), flows)
        ratios = [
            float(alloc.rate(f) / macro.rate(f))
            for f in flows
            if macro.rate(f) > 0
        ]
        assert sum(ratios) / len(ratios) > 0.9
