"""Tests for the cross-process telemetry pipeline and its front ends.

Covers payload serialize/merge round trips, the `parallel_map` shipping
contract (jobs>1 counter totals identical to jobs=1, silence when
disabled), sampling/ring bounds, the Chrome/Prometheus exporters, the
`bench diff` attribution math, and the disabled-mode overhead guard.
"""

import json
import time
from fractions import Fraction

import pytest

from repro import obs
from repro.cli import main
from repro.obs.export import aggregate_spans, chrome_trace, prometheus_text
from repro.obs.pipeline import (
    TelemetryPayload,
    capture_payload,
    merge_payloads,
    run_with_telemetry,
    worker_config,
)
from repro.obs.trace import Span
from repro.parallel import parallel_map


@pytest.fixture
def observing():
    """Observability on for the test, fully reset around it."""
    obs.reset()
    obs.enable()
    yield
    obs.reset()
    obs.disable()
    from repro.obs.state import STATE

    STATE.sample = 1.0
    STATE.ring = 0


@pytest.fixture
def dark():
    """Observability off (the default) with clean state."""
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


def _instrumented_task(x):
    """Module-level (picklable) worker: bumps one of each instrument."""
    obs.counter("test.pipeline.work").inc(x)
    obs.gauge("test.pipeline.last").set(x)
    obs.histogram("test.pipeline.sizes").observe(Fraction(1, x))
    with obs.trace_span("test.task", x=x):
        pass
    return x * 2


def _payload_for(values, pid):
    """A payload as a worker with the given observations would ship it."""
    obs.reset()
    for x in values:
        _instrumented_task(x)
    payload = capture_payload()
    payload.pid = pid
    obs.reset()
    return payload


class TestPayloadRoundTrip:
    def test_to_dict_from_dict_survives_json(self, observing):
        payload = _payload_for([2, 3], pid=7)
        document = json.loads(json.dumps(payload.to_dict()))
        rebuilt = TelemetryPayload.from_dict(document)
        assert rebuilt.pid == 7
        assert rebuilt.metrics == payload.metrics
        assert rebuilt.spans == payload.spans
        # exact rationals survived the trip as "p/q" strings
        assert rebuilt.metrics["gauges"]["test.pipeline.last"] == 3
        buckets = rebuilt.metrics["histograms"]["test.pipeline.sizes"][
            "buckets"
        ]
        assert ["1/3", 1] in buckets and ["1/2", 1] in buckets

    def test_from_dict_rejects_foreign_documents(self):
        with pytest.raises(ValueError):
            TelemetryPayload.from_dict({"format": "something-else"})

    def test_run_with_telemetry_returns_result_and_payload(self, dark):
        result, document = run_with_telemetry(
            _instrumented_task, (True, False, 1.0, 0), 5
        )
        assert result == 10
        payload = TelemetryPayload.from_dict(document)
        assert payload.metrics["counters"]["test.pipeline.work"] == 5
        assert [s["name"] for s in payload.spans] == ["test.task"]
        # the shipped config was restored... into this process; undo it
        obs.disable()

    def test_worker_config_mirrors_state(self, observing):
        from repro.obs.state import STATE

        STATE.sample = 0.5
        STATE.ring = 9
        assert worker_config() == (True, False, 0.5, 9)


class TestMergeSemantics:
    def test_counters_sum_exactly(self, observing):
        merged = merge_payloads(
            [_payload_for([2], pid=1), _payload_for([3, 4], pid=2)]
        )
        snap = merged.snapshot()
        assert snap["test.pipeline.work"] == 9
        hist = snap["test.pipeline.sizes"]
        assert hist["count"] == 3
        assert hist["sum"] == "13/12"  # 1/2 + 1/3 + 1/4, exactly
        assert hist["min"] == "1/4"
        assert hist["max"] == "1/2"

    def test_gauges_are_last_write_tagged(self, observing):
        merged = merge_payloads(
            [_payload_for([2], pid=1), _payload_for([3], pid=2)]
        )
        assert merged.snapshot()["test.pipeline.last"] == 3
        assert merged.gauge_sources["test.pipeline.last"] == 1  # worker:1

    def test_spans_reparent_under_worker_roots(self, observing):
        merged = merge_payloads(
            [
                _payload_for([2], pid=11),
                _payload_for([3], pid=22),
                _payload_for([4], pid=11),
            ]
        )
        assert [r.name for r in merged.worker_roots] == [
            "worker:0",
            "worker:1",
        ]
        first, second = merged.worker_roots
        assert first.attrs == {"pid": 11, "tasks": 2}
        assert [c.name for c in first.children] == ["test.task", "test.task"]
        assert [c.attrs["x"] for c in first.children] == [2, 4]
        assert second.attrs["tasks"] == 1

    def test_absorb_folds_into_global_state(self, observing):
        merged = merge_payloads([_payload_for([2], pid=1)])
        obs.counter("test.pipeline.work").inc(10)
        merged.absorb()
        assert obs.metrics_snapshot()["test.pipeline.work"] == 12
        roots = obs.tracer().collect()
        assert [r.name for r in roots] == ["worker:0"]

    def test_absorb_attaches_under_open_span(self, observing):
        merged = merge_payloads([_payload_for([2], pid=1)])
        with obs.trace_span("profile:e4"):
            merged.absorb()
        (root,) = obs.tracer().collect()
        assert [c.name for c in root.children] == ["worker:0"]

    def test_histogram_overflow_merges_count_and_sum(self, observing):
        from repro.obs.metrics import MetricsRegistry

        state = {
            "counters": {},
            "gauges": {},
            "histograms": {
                "h": {
                    "count": 3,
                    "sum": 60,
                    "min": 10,
                    "max": 30,
                    "buckets": [[10, 1], [20, 1]],
                    "overflow": 1,  # the 30 lost its bucket
                }
            },
        }
        registry = MetricsRegistry()
        registry.absorb_state(state)
        hist = registry.histogram("h")
        assert hist.count == 3
        assert hist.total == 60
        assert hist.overflow == 1
        assert hist.minimum == 10 and hist.maximum == 30


class TestParallelShipping:
    def test_parallel_counters_match_sequential(self, observing):
        tasks = [2, 3, 4, 5]
        seq = parallel_map(_instrumented_task, tasks, jobs=1)
        seq_snap = obs.metrics_snapshot()
        obs.reset()

        par = parallel_map(_instrumented_task, tasks, jobs=2)
        par_snap = obs.metrics_snapshot()
        roots = obs.tracer().collect()

        assert par == seq
        assert par_snap == seq_snap
        workers = [r for r in roots if r.name.startswith("worker:")]
        assert workers, "worker span forests were not shipped"
        assert sum(r.attrs["tasks"] for r in workers) == len(tasks)
        leaf_names = {
            c.name for worker in workers for c in worker.children
        }
        assert leaf_names == {"test.task"}

    def test_disabled_mode_ships_nothing(self, dark):
        results = parallel_map(_instrumented_task, [2, 3], jobs=2)
        assert results == [4, 6]
        assert obs.metrics_snapshot() == {}
        assert obs.tracer().collect() == []


class TestSamplingAndRing:
    def test_sampling_keeps_deterministic_fraction(self, observing):
        obs.enable(sample=0.5)
        for _ in range(10):
            with obs.trace_span("root"):
                pass
        roots = obs.tracer().collect()
        assert len(roots) == 5
        assert obs.tracer().sampled_out == 5

    def test_sampled_roots_keep_complete_trees(self, observing):
        obs.enable(sample=0.5)
        for _ in range(4):
            with obs.trace_span("root"):
                with obs.trace_span("child"):
                    pass
        roots = obs.tracer().collect()
        assert len(roots) == 2
        assert all(
            [c.name for c in root.children] == ["child"] for root in roots
        )

    def test_ring_bounds_retained_roots(self, observing):
        obs.enable(ring=3)
        for index in range(5):
            with obs.trace_span(f"root{index}"):
                pass
        roots = obs.tracer().collect()
        assert [r.name for r in roots] == ["root2", "root3", "root4"]
        assert obs.tracer().ring_dropped == 2

    def test_env_parsing(self, monkeypatch):
        from repro.obs.state import _ring_size, _sample_rate

        monkeypatch.setenv("REPRO_OBS_SAMPLE", "0.25")
        monkeypatch.setenv("REPRO_OBS_RING", "128")
        assert _sample_rate() == 0.25
        assert _ring_size() == 128
        monkeypatch.setenv("REPRO_OBS_SAMPLE", "2.5")
        assert _sample_rate() == 1.0  # clamped
        monkeypatch.setenv("REPRO_OBS_SAMPLE", "bogus")
        monkeypatch.setenv("REPRO_OBS_RING", "-4")
        assert _sample_rate() == 1.0
        assert _ring_size() == 0


def _validate_trace_events(document):
    """Structural validation against the trace_event format contract."""
    assert isinstance(document, dict)
    events = document["traceEvents"]
    assert isinstance(events, list) and events
    for event in events:
        assert isinstance(event["name"], str)
        assert event["ph"] in ("X", "M")
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert isinstance(event["ts"], int) and event["ts"] >= 0
            assert isinstance(event["dur"], int) and event["dur"] >= 0
        else:
            assert event["name"] == "process_name"
            assert isinstance(event["args"]["name"], str)
        if "args" in event:
            json.dumps(event["args"])  # JSON-safe


class TestExporters:
    def _forest(self):
        with obs.trace_span("outer", flows=Fraction(1, 3)):
            with obs.trace_span("inner"):
                time.sleep(0.001)
        worker = Span("worker:0", {"pid": 999, "tasks": 1})
        child = Span("test.task", {})
        child.duration = 0.5
        worker.children.append(child)
        worker.duration = 0.5
        return obs.tracer().collect() + [worker]

    def test_chrome_trace_validates_and_separates_pids(self, observing):
        document = chrome_trace(self._forest(), process_name="repro e4")
        _validate_trace_events(document)
        events = document["traceEvents"]
        names = {
            event["args"]["name"]
            for event in events
            if event["ph"] == "M"
        }
        assert names == {"repro e4", "worker:0 (os pid 999)"}
        pids = {event["pid"] for event in events if event["ph"] == "X"}
        assert pids == {0, 1}
        # children are laid out inside their parent's interval
        outer = next(e for e in events if e["name"] == "outer")
        inner = next(e for e in events if e["name"] == "inner")
        assert outer["ts"] <= inner["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
        # Fraction attributes were stringified
        assert outer["args"]["flows"] == "1/3"

    def test_chrome_trace_file_is_valid_json(self, observing, tmp_path):
        from repro.obs.export import write_chrome_trace

        path = write_chrome_trace(
            str(tmp_path / "trace.json"), self._forest()
        )
        with open(path, "r", encoding="utf-8") as handle:
            _validate_trace_events(json.load(handle))

    def test_prometheus_text_format(self):
        snapshot = {
            "maxmin.rounds": 143,
            "sim.load": "2/3",
            "sim.active_jobs": {
                "count": 4,
                "sum": 10,
                "p50": 2,
                "p90": 4,
                "p99": 4,
            },
        }
        kinds = {"maxmin.rounds": "counter", "sim.load": "gauge"}
        text = prometheus_text(snapshot, kinds)
        lines = text.strip().splitlines()
        assert "# TYPE repro_maxmin_rounds counter" in lines
        assert "repro_maxmin_rounds 143.0" in lines
        assert "# TYPE repro_sim_load gauge" in lines
        assert "repro_sim_load 0.6666666666666666" in lines
        assert "# TYPE repro_sim_active_jobs summary" in lines
        assert 'repro_sim_active_jobs{quantile="0.5"} 2.0' in lines
        assert "repro_sim_active_jobs_sum 10.0" in lines
        assert "repro_sim_active_jobs_count 4.0" in lines

    def test_aggregate_spans_partitions_self_time(self):
        root = Span("a", {})
        root.duration = 1.0
        child = Span("b", {})
        child.duration = 0.6
        root.children.append(child)
        table = aggregate_spans([root])
        assert table["a"]["cum_s"] == 1.0
        assert table["a"]["self_s"] == pytest.approx(0.4)
        assert table["b"]["self_s"] == pytest.approx(0.6)


def _bench_doc(median, spans):
    return {
        "format": "repro-bench",
        "version": 1,
        "scenarios": {
            "vectorized_waterfill": {
                "wall_s_best": median,
                "wall_s_median": median,
                "repeat": 3,
                "metrics": {},
                "spans": spans,
            }
        },
    }


class TestBenchDiff:
    def test_attribution_finds_injected_slowdown(self):
        from repro.bench import diff_attribution

        base = _bench_doc(
            1.0,
            {
                "csr.compile": {"count": 1, "cum_s": 0.4, "self_s": 0.4},
                "waterfill": {"count": 1, "cum_s": 0.55, "self_s": 0.55},
            },
        )
        # inject a synthetic 0.5s slowdown into csr.compile
        curr = _bench_doc(
            1.5,
            {
                "csr.compile": {"count": 1, "cum_s": 0.9, "self_s": 0.9},
                "waterfill": {"count": 1, "cum_s": 0.56, "self_s": 0.56},
            },
        )
        (row,) = diff_attribution(base, curr)
        assert row["delta_s"] == pytest.approx(0.5)
        top = row["spans"][0]
        assert top["span"] == "csr.compile"
        assert top["share"] >= 0.90

    def test_attribution_separates_one_sided_spans(self):
        from repro.bench import diff_attribution, format_attribution

        # An --engine A/B: the two runs share "policy.consult" but the
        # engines' own spans exist on one side only.  Those must not be
        # attributed as movers (their "delta" would be the whole span).
        base = _bench_doc(
            1.0,
            {
                "sim.object": {"count": 1, "cum_s": 0.7, "self_s": 0.7},
                "policy.consult": {"count": 5, "cum_s": 0.2, "self_s": 0.2},
            },
        )
        curr = _bench_doc(
            0.4,
            {
                "sim.array": {"count": 1, "cum_s": 0.15, "self_s": 0.15},
                "policy.consult": {"count": 5, "cum_s": 0.18, "self_s": 0.18},
            },
        )
        (row,) = diff_attribution(base, curr)
        assert [s["span"] for s in row["spans"]] == ["policy.consult"]
        assert row["only_baseline"] == [{"span": "sim.object", "self_s": 0.7}]
        assert row["only_current"] == [{"span": "sim.array", "self_s": 0.15}]
        text = format_attribution([row])
        assert "sim.object" in text and "baseline only" in text
        assert "sim.array" in text and "current only" in text
        assert "no span breakdown" not in text

    def test_diff_command_end_to_end(self, tmp_path, capsys):
        base = _bench_doc(
            1.0, {"csr.compile": {"count": 1, "cum_s": 0.4, "self_s": 0.4}}
        )
        curr = _bench_doc(
            1.2, {"csr.compile": {"count": 1, "cum_s": 0.6, "self_s": 0.6}}
        )
        a = tmp_path / "BENCH_a.json"
        b = tmp_path / "BENCH_b.json"
        a.write_text(json.dumps(base))
        b.write_text(json.dumps(curr))
        assert main(["bench", "diff", str(a), str(b)]) == 0
        out = capsys.readouterr().out
        assert "vectorized_waterfill" in out
        assert "csr.compile" in out
        assert "% of delta" in out

    def test_diff_command_rejects_non_bench_files(self, tmp_path, capsys):
        bad = tmp_path / "nope.json"
        bad.write_text("{}")
        assert main(["bench", "diff", str(bad), str(bad)]) == 2

    def test_plain_bench_parser_still_works(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["bench", "--repeat", "2"])
        assert args.command == "bench"
        assert getattr(args, "bench_action", None) is None


class TestCliFrontEnds:
    def test_profile_export_chrome_validates(
        self, observing, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        assert (
            main(
                [
                    "profile",
                    "e1",
                    "--no-memory",
                    "--export",
                    "chrome",
                    "--export",
                    "prom",
                    "--export-prefix",
                    str(tmp_path / "out"),
                ]
            )
            == 0
        )
        with open(tmp_path / "out.trace.json", encoding="utf-8") as handle:
            _validate_trace_events(json.load(handle))
        prom = (tmp_path / "out.prom").read_text()
        assert "# TYPE repro_maxmin_rounds counter" in prom

    def test_top_command_ranks_by_self_time(
        self, observing, tmp_path, capsys
    ):
        with obs.trace_span("outer"):
            with obs.trace_span("inner"):
                time.sleep(0.001)
        path = str(tmp_path / "trace.jsonl")
        obs.write_trace_jsonl(path, obs.tracer().collect())
        assert main(["top", path]) == 0
        out = capsys.readouterr().out
        assert "outer" in out and "inner" in out
        assert "self" in out

    def test_top_command_missing_file(self, tmp_path, capsys):
        assert main(["top", str(tmp_path / "missing.jsonl")]) == 2

    def test_stats_degrades_without_traces(self, dark, tmp_path, capsys):
        import io

        from repro.runner import ResilientRunner, RunManifest

        path = str(tmp_path / "sweep.json")
        runner = ResilientRunner(
            manifest=RunManifest(path), stream=io.StringIO()
        )
        runner.run({"s1": lambda: None})
        assert main(["stats", path]) == 0
        out = capsys.readouterr().out
        assert "no span traces embedded" in out
        assert "wall (span)" not in out  # degraded to the real columns


class TestOverheadGuard:
    def test_disabled_instrumentation_under_five_percent(self, dark):
        """Disabled-mode flag checks cost <5% of an exact solve."""
        from repro.core.maxmin import max_min_fair
        from repro.core.topology import ClosNetwork
        from repro.routers.ecmp import ecmp_routing
        from repro.workloads.stochastic import uniform_random

        clos = ClosNetwork(4)
        flows = uniform_random(clos, 120, seed=0)
        routing = ecmp_routing(clos, flows)
        capacities = clos.graph.capacities()

        walls = []
        for _ in range(3):
            start = time.perf_counter()
            max_min_fair(routing, capacities, exact=True)
            walls.append(time.perf_counter() - start)
        solve_wall = min(walls)

        # Count the instrument firings an enabled solve performs:
        # counter bumps (one per reported unit) and span opens.
        obs.enable()
        obs.reset()
        max_min_fair(routing, capacities, exact=True)
        snapshot = obs.metrics_snapshot()
        span_ops = sum(
            1 for root in obs.tracer().collect() for _ in root.walk()
        )
        counter_ops = sum(
            value for value in snapshot.values() if isinstance(value, int)
        )
        obs.reset()
        obs.disable()

        # Price one disabled counter bump / span open per loop iteration.
        probe = obs.counter("test.overhead.probe")
        iterations = 200_000
        start = time.perf_counter()
        for _ in range(iterations):
            probe.inc()
        counter_cost = (time.perf_counter() - start) / iterations
        start = time.perf_counter()
        for _ in range(iterations):
            with obs.trace_span("test.overhead.span"):
                pass
        span_cost = (time.perf_counter() - start) / iterations

        overhead = counter_ops * counter_cost + span_ops * span_cost
        assert overhead < 0.05 * solve_wall, (
            f"disabled instrumentation ~{overhead * 1e3:.3f}ms "
            f"({counter_ops} counter ops, {span_ops} span ops) "
            f"vs solve {solve_wall * 1e3:.1f}ms"
        )


class TestFlowsimHistogram:
    def test_active_jobs_histogram_populated(self, observing):
        from repro.core.topology import ClosNetwork
        from repro.sim.flowsim import simulate
        from repro.sim.jobs import FlowJob
        from repro.sim.policies import MaxMinCongestionControl

        clos = ClosNetwork(1)
        jobs = [
            FlowJob(0, clos.source(1, 1), clos.destination(2, 1), 0.0, 2.0),
            FlowJob(1, clos.source(2, 1), clos.destination(1, 1), 0.5, 1.0),
        ]
        obs.reset()
        simulate(jobs, MaxMinCongestionControl(clos))
        snap = obs.metrics_snapshot()
        hist = snap["sim.active_jobs"]
        assert hist["count"] == snap["sim.events"]
        assert set(hist) >= {"p50", "p90", "p99", "mean"}
        assert hist["max"] >= 1
