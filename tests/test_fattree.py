"""Tests for the k-ary fat-tree topology and its generic-machinery fit."""

import pytest

from repro.core.allocation import Allocation, is_feasible
from repro.core.bottleneck import certify_max_min_fair
from repro.core.maxmin import max_min_fair
from repro.core.routing import Routing
from repro.topologies.fattree import (
    AggSwitch,
    CoreSwitch,
    EdgeSwitch,
    FatTree,
    Host,
    ecmp_fat_tree_routing,
    host_macro_graph,
)


@pytest.fixture
def ft4():
    return FatTree(4)


class TestStructure:
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_component_counts(self, k):
        tree = FatTree(k)
        assert len(tree.hosts) == k**3 // 4
        assert len(tree.edge_switches) == k * k // 2
        assert len(tree.agg_switches) == k * k // 2
        assert len(tree.core_switches) == k * k // 4

    def test_link_count(self, ft4):
        k = 4
        hosts = k**3 // 4
        edge_agg = k * (k // 2) * (k // 2)
        agg_core = k * (k // 2) * (k // 2)
        # each adjacency contributes two directed links
        assert ft4.graph.num_links() == 2 * (hosts + edge_agg + agg_core)

    def test_unit_capacities(self, ft4):
        assert all(c == 1 for c in ft4.graph.capacities().values())

    def test_core_connects_every_pod(self, ft4):
        core = CoreSwitch(0, 0)
        pods = {agg.pod for agg in ft4.graph.successors(core)}
        assert pods == set(range(4))

    def test_odd_arity_rejected(self):
        with pytest.raises(ValueError):
            FatTree(3)
        with pytest.raises(ValueError):
            FatTree(0)


class TestPaths:
    def test_same_edge_single_path(self, ft4):
        src, dst = Host(0, 0, 0), Host(0, 0, 1)
        paths = ft4.paths(src, dst)
        assert len(paths) == 1
        assert paths[0] == (src, EdgeSwitch(0, 0), dst)

    def test_same_pod_half_k_paths(self, ft4):
        src, dst = Host(0, 0, 0), Host(0, 1, 0)
        paths = ft4.paths(src, dst)
        assert len(paths) == 2
        for path in paths:
            assert isinstance(path[2], AggSwitch)
            assert ft4.graph.is_path(path)

    def test_cross_pod_quarter_k_squared_paths(self, ft4):
        src, dst = Host(0, 0, 0), Host(3, 1, 1)
        paths = ft4.paths(src, dst)
        assert len(paths) == 4
        for path in paths:
            assert isinstance(path[3], CoreSwitch)
            assert ft4.graph.is_path(path)

    def test_paths_are_distinct(self, ft4):
        src, dst = Host(0, 0, 0), Host(2, 0, 0)
        paths = ft4.paths(src, dst)
        assert len(set(paths)) == len(paths)

    def test_num_paths_matches(self, ft4):
        pairs = [
            (Host(0, 0, 0), Host(0, 0, 1)),
            (Host(0, 0, 0), Host(0, 1, 0)),
            (Host(0, 0, 0), Host(1, 0, 0)),
        ]
        for src, dst in pairs:
            assert ft4.num_paths(src, dst) == len(ft4.paths(src, dst))

    def test_self_pair_rejected(self, ft4):
        with pytest.raises(ValueError):
            ft4.paths(Host(0, 0, 0), Host(0, 0, 0))

    def test_cross_pod_paths_interior_disjoint(self, ft4):
        """The (k/2)² cross-pod paths pairwise share only endpoints' links."""
        src, dst = Host(0, 0, 0), Host(1, 0, 0)
        paths = ft4.paths(src, dst)
        interiors = [set(zip(p[1:-1], p[2:-1])) for p in paths]
        for i in range(len(interiors)):
            for j in range(i + 1, len(interiors)):
                shared = interiors[i] & interiors[j]
                # paths through the same agg share the edge-agg hop only
                for u, v in shared:
                    assert isinstance(u, EdgeSwitch) or isinstance(v, EdgeSwitch)


class TestGenericMachineryFit:
    def test_water_filling_on_fat_tree(self, ft4):
        flows = [
            (Host(0, 0, 0), Host(1, 0, 0), 0),
            (Host(0, 0, 1), Host(1, 0, 1), 1),
        ]
        paths = ecmp_fat_tree_routing(ft4, flows, seed=0)
        routing = Routing(paths)
        capacities = ft4.graph.capacities()
        alloc = max_min_fair(routing, capacities)
        assert is_feasible(routing, alloc, capacities)
        assert certify_max_min_fair(routing, alloc, capacities) is None

    def test_single_flow_full_rate(self, ft4):
        flows = [(Host(0, 0, 0), Host(3, 1, 1), 0)]
        routing = Routing(ecmp_fat_tree_routing(ft4, flows))
        alloc = max_min_fair(routing, ft4.graph.capacities())
        assert alloc.rate(flows[0]) == 1

    def test_ecmp_deterministic_and_valid(self, ft4):
        flows = [
            (Host(p, e, h), Host((p + 1) % 4, e, h), p * 4 + e * 2 + h)
            for p in range(4)
            for e in range(2)
            for h in range(2)
        ]
        a = ecmp_fat_tree_routing(ft4, flows, seed=1)
        b = ecmp_fat_tree_routing(ft4, flows, seed=1)
        assert a == b
        for flow, path in a.items():
            assert ft4.graph.is_path(path)
            assert path[0] == flow[0]
            assert path[-1] == flow[1]

    def test_ecmp_uses_multiple_paths(self, ft4):
        src = Host(0, 0, 0)
        dst = Host(2, 1, 1)
        flows = [(src, dst, tag) for tag in range(40)]
        paths = set(ecmp_fat_tree_routing(ft4, flows, seed=0).values())
        assert len(paths) > 1  # hashing spreads parallel flows


class TestHostMacroGraph:
    def test_star_shape(self, ft4):
        graph, macro_path = host_macro_graph(ft4)
        assert graph.num_links() == 2 * len(ft4.hosts)
        path = macro_path(Host(0, 0, 0), Host(1, 0, 0))
        assert graph.is_path(path)

    def test_access_capacity_binds(self, ft4):
        graph, macro_path = host_macro_graph(ft4)
        src = Host(0, 0, 0)
        flows = {
            (src, dst, tag): macro_path(src, dst)
            for tag, dst in enumerate(ft4.hosts[4:8])
        }
        routing = Routing(flows)
        alloc = max_min_fair(routing, graph.capacities())
        # four flows share the source access link
        assert all(rate == pytest.approx(0.25) for rate in
                   [float(r) for r in alloc.rates().values()])

    def test_host_as_both_endpoints_has_independent_capacity(self, ft4):
        """Full-duplex: h sending at 1 and receiving at 1 is feasible."""
        graph, macro_path = host_macro_graph(ft4)
        h, other = Host(0, 0, 0), Host(1, 0, 0)
        flows = {
            (h, other, 0): macro_path(h, other),
            (other, h, 1): macro_path(other, h),
        }
        routing = Routing(flows)
        alloc = max_min_fair(routing, graph.capacities())
        assert all(r == 1 for r in alloc.rates().values())
