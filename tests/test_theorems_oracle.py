"""Tests for the closed-form theorem oracle (`repro.core.theorems`)."""

from fractions import Fraction

import pytest

from repro.core import theorems


class TestTheorem34:
    def test_k1_values(self):
        p = theorems.theorem_3_4(1)
        assert p.max_throughput == 2
        assert p.max_min_throughput == Fraction(3, 2)
        assert p.ratio == Fraction(3, 4)
        assert p.per_flow_rate == Fraction(1, 2)

    def test_ratio_tends_to_half(self):
        ratios = [theorems.theorem_3_4(k).ratio for k in (1, 10, 100, 1000)]
        assert ratios == sorted(ratios, reverse=True)
        assert ratios[-1] - Fraction(1, 2) < Fraction(1, 1000)

    def test_ratio_always_above_half(self):
        for k in range(1, 50):
            assert theorems.theorem_3_4(k).ratio > Fraction(1, 2)

    def test_epsilon_formula(self):
        for k in (1, 5, 9):
            p = theorems.theorem_3_4(k)
            assert p.max_min_throughput == Fraction(1, 2) * (1 + p.epsilon) * (
                p.max_throughput
            )

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            theorems.theorem_3_4(0)


class TestTheorem43:
    def test_n3_rates(self):
        p = theorems.theorem_4_3(3)
        assert p.macro_rates == {
            "type1": Fraction(1, 4),
            "type2": Fraction(1, 3),
            "type3": Fraction(1),
        }
        assert p.lex_max_min_rates["type3"] == Fraction(1, 3)
        assert p.starvation_factor == Fraction(1, 3)

    def test_starvation_is_one_over_n(self):
        for n in range(3, 12):
            assert theorems.theorem_4_3(n).starvation_factor == Fraction(1, n)

    def test_only_type3_differs(self):
        p = theorems.theorem_4_3(5)
        assert p.macro_rates["type1"] == p.lex_max_min_rates["type1"]
        assert p.macro_rates["type2"] == p.lex_max_min_rates["type2"]
        assert p.macro_rates["type3"] != p.lex_max_min_rates["type3"]

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            theorems.theorem_4_3(2)

    def test_theorem_4_2_macro_rates(self):
        rates = theorems.theorem_4_2_macro_rates(3)
        assert rates == {
            "type1": Fraction(1),
            "type2": Fraction(1, 3),
            "type3": Fraction(1),
        }
        with pytest.raises(ValueError):
            theorems.theorem_4_2_macro_rates(2)


class TestTheorem54:
    def test_example_5_3_point(self):
        p = theorems.theorem_5_4(7, 1)
        assert p.macro_max_min_throughput == Fraction(9, 2)
        assert p.doom_throughput == 5
        assert p.type1_rate == Fraction(2, 3)
        assert p.type2_rate == Fraction(1, 3)

    def test_doom_throughput_formula_n_minus_2(self):
        for n, k in ((5, 1), (7, 2), (9, 1), (11, 5)):
            assert theorems.theorem_5_4(n, k).doom_throughput == n - 2

    def test_gain_below_two_and_grows(self):
        gains = [theorems.theorem_5_4(n, n).gain for n in (5, 9, 13, 21)]
        assert all(g < 2 for g in gains)
        assert gains == sorted(gains)

    def test_epsilon_limit(self):
        assert theorems.theorem_5_4_epsilon_limit(7) == Fraction(1, 6)
        # epsilon decreases toward the limit as k grows
        eps = [theorems.theorem_5_4(7, k).epsilon for k in (1, 10, 100)]
        assert eps == sorted(eps, reverse=True)
        assert eps[-1] > theorems.theorem_5_4_epsilon_limit(7)

    def test_epsilon_matches_paper_formula(self):
        for n, k in ((7, 1), (9, 3), (11, 2)):
            p = theorems.theorem_5_4(n, k)
            assert p.epsilon == Fraction(k + n, (n - 1) * (k + 2))

    def test_n3_degenerate_case(self):
        """For n = 3 the doom allocation equals the macro one."""
        p = theorems.theorem_5_4(3, 1)
        assert p.doom_throughput == p.macro_max_min_throughput
        assert p.type1_rate == p.macro_rate

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            theorems.theorem_5_4(4, 1)  # even n
        with pytest.raises(ValueError):
            theorems.theorem_5_4(7, 0)
        with pytest.raises(ValueError):
            theorems.theorem_5_4_epsilon_limit(2)


class TestExample23Vectors:
    def test_vectors_have_six_components(self):
        vectors = theorems.example_2_3_sorted_vectors()
        assert all(len(v) == 6 for v in vectors.values())

    def test_lexicographic_chain(self):
        from repro.core.allocation import lex_compare

        vectors = theorems.example_2_3_sorted_vectors()
        assert lex_compare(vectors["macro_switch"], vectors["routing_a"]) > 0
        assert lex_compare(vectors["routing_a"], vectors["routing_b"]) > 0

    def test_bounds_constants(self):
        assert theorems.LOWER_BOUND_R1 == Fraction(1, 2)
        assert theorems.UPPER_BOUND_R3 == 2
