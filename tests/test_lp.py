"""Tests for the LP substrate (max throughput, progressive filling, feasibility)."""

from fractions import Fraction

import pytest

from repro.core.allocation import Allocation, is_feasible
from repro.core.flows import Flow, FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.objectives import macro_switch_max_min
from repro.core.routing import Routing
from repro.core.throughput import max_throughput_value
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.lp.feasibility import find_feasible_routing, splittable_feasible
from repro.lp.maxthroughput import max_throughput_lp, max_throughput_lp_macro
from repro.lp.progressive_filling import max_min_fair_lp

from tests.helpers import random_flows, random_routing


class TestMaxThroughputLP:
    def test_empty(self):
        value, alloc = max_throughput_lp(Routing({}), {})
        assert value == 0.0
        assert len(alloc) == 0

    def test_single_flow(self):
        clos = ClosNetwork(1)
        f = Flow(clos.source(1, 1), clos.destination(2, 1))
        routing = Routing.uniform(clos, FlowCollection([f]), 1)
        value, alloc = max_throughput_lp(routing, clos.graph.capacities())
        assert abs(value - 1.0) < 1e-9
        assert abs(alloc.rate(f) - 1.0) < 1e-9

    def test_shared_bottleneck(self):
        clos = ClosNetwork(1)
        flows = FlowCollection()
        flows.add_pair(clos.source(1, 1), clos.destination(2, 1), count=3)
        routing = Routing.uniform(clos, flows, 1)
        value, alloc = max_throughput_lp(routing, clos.graph.capacities())
        assert abs(value - 1.0) < 1e-9
        assert is_feasible(routing, alloc, clos.graph.capacities(), tol=1e-8)

    @pytest.mark.parametrize("seed", range(4))
    def test_fixed_routing_lp_at_least_max_min(self, seed):
        """For a fixed routing, max throughput ≥ the max-min throughput."""
        clos = ClosNetwork(2)
        flows = random_flows(clos, 8, seed=seed)
        routing = random_routing(clos, flows, seed)
        value, _ = max_throughput_lp(routing, clos.graph.capacities())
        mmf = max_min_fair(routing, clos.graph.capacities())
        assert value >= float(mmf.throughput()) - 1e-8

    def test_macro_lp_empty(self):
        assert max_throughput_lp_macro(FlowCollection()) == 0.0

    @pytest.mark.parametrize("seed", range(4))
    def test_macro_lp_integrality(self, seed):
        clos = ClosNetwork(3)
        flows = random_flows(clos, 20, seed=seed)
        assert abs(
            max_throughput_lp_macro(flows) - max_throughput_value(flows)
        ) < 1e-7


class TestProgressiveFillingLP:
    def test_empty(self):
        assert len(max_min_fair_lp(Routing({}), {})) == 0

    def test_single_level(self):
        clos = ClosNetwork(1)
        flows = FlowCollection()
        flows.add_pair(clos.source(1, 1), clos.destination(2, 1), count=4)
        routing = Routing.uniform(clos, flows, 1)
        alloc = max_min_fair_lp(routing, clos.graph.capacities())
        for f in flows:
            assert abs(alloc.rate(f) - 0.25) < 1e-7

    def test_two_levels(self):
        ms = MacroSwitch(2)
        flows = FlowCollection()
        shared = flows.add_pair(ms.source(1, 1), ms.destination(1, 1), count=2)
        lone = flows.add(Flow(ms.source(2, 1), ms.destination(2, 1)))
        routing = Routing.for_macro_switch(ms, flows)
        alloc = max_min_fair_lp(routing, ms.graph.capacities())
        for f in shared:
            assert abs(alloc.rate(f) - 0.5) < 1e-7
        assert abs(alloc.rate(lone) - 1.0) < 1e-7

    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_with_water_filling(self, seed):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 7, seed=seed)
        routing = random_routing(clos, flows, seed)
        capacities = clos.graph.capacities()
        exact = max_min_fair(routing, capacities)
        lp = max_min_fair_lp(routing, capacities)
        for f in flows:
            assert abs(float(exact.rate(f)) - lp.rate(f)) < 1e-6


class TestFeasibilitySearch:
    def test_trivial_demands_feasible(self):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 6, seed=0)
        demands = {f: Fraction(1, 100) for f in flows}
        routing = find_feasible_routing(clos, flows, demands)
        assert routing is not None
        assert is_feasible(
            routing, Allocation(demands), clos.graph.capacities()
        )

    def test_unit_demands_feasible_when_disjoint(self):
        clos = ClosNetwork(2)
        flows = FlowCollection()
        flows.add_pair(clos.source(1, 1), clos.destination(3, 1))
        flows.add_pair(clos.source(1, 2), clos.destination(3, 2))
        demands = {f: Fraction(1) for f in flows}
        assert find_feasible_routing(clos, flows, demands) is not None

    def test_server_link_overload_rejected_upfront(self):
        """Two unit flows into one destination server can never be routed."""
        clos = ClosNetwork(2)
        flows = FlowCollection()
        flows.add_pair(clos.source(1, 1), clos.destination(3, 1))
        flows.add_pair(clos.source(3, 1), clos.destination(3, 1))
        demands = {f: Fraction(1) for f in flows}
        assert find_feasible_routing(clos, flows, demands) is None

    def test_fractional_demands_feasible_across_switch_pairs(self):
        clos = ClosNetwork(2)
        flows = FlowCollection()
        flows.add_pair(clos.source(1, 1), clos.destination(3, 1))
        flows.add_pair(clos.source(1, 2), clos.destination(3, 2))
        flows.add_pair(clos.source(2, 1), clos.destination(4, 1))
        demands = {f: Fraction(2, 3) for f in flows}
        routing = find_feasible_routing(clos, flows, demands)
        assert routing is not None
        assert is_feasible(
            routing, Allocation(demands), clos.graph.capacities()
        )

    def test_theorem_4_2_instance_infeasible(self):
        from repro.workloads.adversarial import theorem_4_2

        instance = theorem_4_2(3)
        demands = macro_switch_max_min(instance.macro, instance.flows).rates()
        assert find_feasible_routing(instance.clos, instance.flows, demands) is None

    def test_symmetry_off_agrees_on_infeasible(self):
        from repro.workloads.adversarial import theorem_4_2

        instance = theorem_4_2(3)
        demands = macro_switch_max_min(instance.macro, instance.flows).rates()
        assert (
            find_feasible_routing(
                instance.clos, instance.flows, demands, use_symmetry=False
            )
            is None
        )

    def test_lemma_4_6_demands_feasible(self):
        from repro.core.theorems import theorem_4_3 as predict
        from repro.workloads.adversarial import theorem_4_3

        instance = theorem_4_3(3)
        prediction = predict(3)
        demands = {}
        for type_name in ("type1", "type2a", "type2b", "type3"):
            key = "type2" if type_name.startswith("type2") else type_name
            for f in instance.types[type_name]:
                demands[f] = prediction.lex_max_min_rates[key]
        routing = find_feasible_routing(instance.clos, instance.flows, demands)
        assert routing is not None
        assert is_feasible(
            routing, Allocation(demands), instance.clos.graph.capacities()
        )


class TestSplittableFeasibility:
    def test_empty_feasible(self):
        clos = ClosNetwork(2)
        assert splittable_feasible(clos, FlowCollection(), {})

    def test_server_link_violation_detected(self):
        clos = ClosNetwork(2)
        flows = FlowCollection()
        pair = flows.add_pair(clos.source(1, 1), clos.destination(3, 1), count=2)
        demands = {pair[0]: Fraction(3, 4), pair[1]: Fraction(3, 4)}
        assert not splittable_feasible(clos, flows, demands)

    def test_macro_rates_always_splittable(self):
        """The classic demand-satisfaction property (§1): any macro-switch
        max-min rates are splittably routable."""
        clos = ClosNetwork(3)
        ms = MacroSwitch(3)
        for seed in range(3):
            flows = random_flows(clos, 15, seed=seed)
            demands = macro_switch_max_min(ms, flows).rates()
            assert splittable_feasible(clos, flows, demands)

    def test_theorem_4_2_gap(self):
        """Splittable yes + unsplittable no = the paper's point."""
        from repro.workloads.adversarial import theorem_4_2

        instance = theorem_4_2(3)
        demands = macro_switch_max_min(instance.macro, instance.flows).rates()
        assert splittable_feasible(instance.clos, instance.flows, demands)
        assert find_feasible_routing(instance.clos, instance.flows, demands) is None
