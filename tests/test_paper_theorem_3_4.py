"""Paper reproduction — Theorem 3.4 (R1): the price of fairness.

Both halves of the theorem: the universal lower bound
``T^MmF ≥ T^MT / 2`` (checked on adversarial, stochastic and
hypothesis-generated inputs) and the tightness construction
(``T^MmF = (1 + ε) T^MT / 2`` with ``ε = 1/(k+1)``).
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flows import FlowCollection
from repro.core.objectives import macro_switch_max_min
from repro.core.theorems import theorem_3_4 as predict
from repro.core.throughput import max_throughput_value
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.workloads.adversarial import theorem_3_4
from repro.workloads.stochastic import hotspot, incast, permutation, uniform_random

from tests.helpers import random_flows


class TestExample33:
    """Figure 2 with k = 1, exactly as worked in the example."""

    def test_max_throughput_two(self):
        instance = theorem_3_4(1, 1)
        assert max_throughput_value(instance.flows) == 2

    def test_max_min_all_rates_half(self):
        instance = theorem_3_4(1, 1)
        alloc = macro_switch_max_min(instance.macro, instance.flows)
        assert set(alloc.rates().values()) == {Fraction(1, 2)}

    def test_max_min_throughput_three_halves(self):
        instance = theorem_3_4(1, 1)
        alloc = macro_switch_max_min(instance.macro, instance.flows)
        assert alloc.throughput() == Fraction(3, 2)

    def test_quarter_of_throughput_lost(self):
        from repro.analysis.metrics import price_of_fairness

        instance = theorem_3_4(1, 1)
        t_mmf = macro_switch_max_min(instance.macro, instance.flows).throughput()
        t_mt = max_throughput_value(instance.flows)
        assert price_of_fairness(t_mmf, Fraction(t_mt)) == Fraction(1, 4)


class TestTightness:
    """The k-parameterized construction drives the ratio to 1/2."""

    @pytest.mark.parametrize("k", [1, 2, 5, 10, 50, 200])
    def test_measured_equals_predicted(self, k):
        instance = theorem_3_4(1, k)
        prediction = predict(k)
        t_mmf = macro_switch_max_min(instance.macro, instance.flows).throughput()
        t_mt = max_throughput_value(instance.flows)
        assert t_mt == prediction.max_throughput
        assert t_mmf == prediction.max_min_throughput

    @pytest.mark.parametrize("k", [1, 2, 5, 10])
    def test_all_flows_rate_one_over_k_plus_one(self, k):
        instance = theorem_3_4(1, k)
        alloc = macro_switch_max_min(instance.macro, instance.flows)
        assert set(alloc.rates().values()) == {Fraction(1, k + 1)}

    def test_ratio_monotonically_approaches_half(self):
        ratios = []
        for k in (1, 2, 4, 8, 16, 32):
            instance = theorem_3_4(1, k)
            t_mmf = macro_switch_max_min(
                instance.macro, instance.flows
            ).throughput()
            ratios.append(t_mmf / max_throughput_value(instance.flows))
        assert ratios == sorted(ratios, reverse=True)
        assert all(r > Fraction(1, 2) for r in ratios)
        assert ratios[-1] - Fraction(1, 2) < Fraction(1, 30)

    def test_construction_embeds_in_larger_networks(self):
        """The theorem is stated 'for every macro-switch MS_n'."""
        for n in (1, 2, 4):
            instance = theorem_3_4(n, 3)
            prediction = predict(3)
            t_mmf = macro_switch_max_min(
                instance.macro, instance.flows
            ).throughput()
            assert t_mmf == prediction.max_min_throughput


class TestUniversalLowerBound:
    """T^MmF ≥ T^MT / 2 for *every* collection of flows."""

    @pytest.mark.parametrize("seed", range(8))
    def test_on_random_flows(self, seed):
        clos = ClosNetwork(3)
        ms = MacroSwitch(3)
        flows = random_flows(clos, 30, seed=seed)
        t_mmf = macro_switch_max_min(ms, flows).throughput()
        assert 2 * t_mmf >= max_throughput_value(flows)

    @pytest.mark.parametrize(
        "maker",
        [
            lambda c: uniform_random(c, 40, seed=1),
            lambda c: permutation(c, seed=1),
            lambda c: hotspot(c, 40, seed=1),
            lambda c: incast(c, fan_in=10, seed=1),
        ],
        ids=["uniform", "permutation", "hotspot", "incast"],
    )
    def test_on_stochastic_families(self, maker):
        clos = ClosNetwork(3)
        ms = MacroSwitch(3)
        flows = maker(clos)
        t_mmf = macro_switch_max_min(ms, flows).throughput()
        assert 2 * t_mmf >= max_throughput_value(flows)

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_hypothesis(self, data):
        n = data.draw(st.integers(1, 3), label="n")
        ms = MacroSwitch(n)
        num_flows = data.draw(st.integers(1, 12), label="num_flows")
        flows = FlowCollection()
        for _ in range(num_flows):
            i = data.draw(st.integers(1, 2 * n))
            j = data.draw(st.integers(1, n))
            oi = data.draw(st.integers(1, 2 * n))
            oj = data.draw(st.integers(1, n))
            flows.add_pair(ms.source(i, j), ms.destination(oi, oj))
        t_mmf = macro_switch_max_min(ms, flows).throughput()
        assert 2 * t_mmf >= max_throughput_value(flows)
