"""Tests for the paper's adversarial constructions (structure, not rates —
the rate claims live in the test_paper_* modules)."""

import pytest

from repro.core.allocation import Allocation, is_feasible
from repro.core.nodes import MiddleSwitch
from repro.workloads.adversarial import (
    example_2_3,
    example_2_3_routings,
    example_5_3,
    lemma_4_6_routing,
    theorem_3_4,
    theorem_4_2,
    theorem_4_3,
    theorem_5_4,
)


class TestExample23:
    def test_flow_counts(self):
        instance = example_2_3()
        assert len(instance.flows) == 6
        assert len(instance.types["type1"]) == 3
        assert len(instance.types["type2"]) == 2
        assert len(instance.types["type3"]) == 1

    def test_type1_share_source(self):
        instance = example_2_3()
        sources = {f.source for f in instance.types["type1"]}
        assert len(sources) == 1

    def test_network_size(self):
        instance = example_2_3()
        assert instance.clos.n == 2
        assert instance.macro.n == 2

    def test_routings_differ_only_on_one_flow(self):
        instance = example_2_3()
        routing_a, routing_b = example_2_3_routings(instance)
        middles_a = routing_a.middles(instance.clos)
        middles_b = routing_b.middles(instance.clos)
        differing = [f for f in instance.flows if middles_a[f] != middles_b[f]]
        assert len(differing) == 1
        assert differing[0] == instance.types["type1"][1]  # (s_1^2, t_2^1)

    def test_routings_valid(self):
        instance = example_2_3()
        for routing in example_2_3_routings(instance):
            routing.validate(instance.clos.graph)


class TestTheorem34:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_flow_counts(self, k):
        instance = theorem_3_4(1, k)
        assert len(instance.types["type1"]) == 2
        assert len(instance.types["type2"]) == k
        assert len(instance.flows) == k + 2

    def test_type2_flows_parallel(self):
        instance = theorem_3_4(1, 4)
        pairs = {(f.source, f.dest) for f in instance.types["type2"]}
        assert len(pairs) == 1

    def test_type2_collides_with_both_type1(self):
        instance = theorem_3_4(1, 1)
        (type2,) = instance.types["type2"]
        type1_sources = {f.source for f in instance.types["type1"]}
        type1_dests = {f.dest for f in instance.types["type1"]}
        assert type2.source in type1_sources
        assert type2.dest in type1_dests

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            theorem_3_4(1, 0)

    def test_larger_network_sizes(self):
        instance = theorem_3_4(3, 2)
        assert instance.clos.n == 3
        assert len(instance.flows) == 4


class TestFigure3Constructions:
    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_theorem_4_2_counts(self, n):
        instance = theorem_4_2(n)
        assert len(instance.types["type1"]) == n * (n - 1)
        assert len(instance.types["type2a"]) == n
        assert len(instance.types["type2b"]) == n * (n - 1)
        assert len(instance.types["type3"]) == 1

    @pytest.mark.parametrize("n", [3, 4])
    def test_theorem_4_3_counts(self, n):
        instance = theorem_4_3(n)
        assert len(instance.types["type1"]) == (n + 1) * n * (n - 1)
        assert len(instance.types["type2"]) == n * n
        assert len(instance.types["type3"]) == 1

    def test_type2b_fan_in(self):
        """n type-2.b flows enter each of O_{n+1}'s first n−1 destinations."""
        n = 3
        instance = theorem_4_2(n)
        by_dest = {}
        for f in instance.types["type2b"]:
            by_dest.setdefault(f.dest, []).append(f)
        assert len(by_dest) == n - 1
        assert all(len(fs) == n for fs in by_dest.values())
        assert all(d.switch == n + 1 for d in by_dest)

    def test_type3_isolated_endpoints(self):
        instance = theorem_4_2(3)
        (type3,) = instance.types["type3"]
        others = [f for f in instance.flows if f != type3]
        assert all(f.source != type3.source for f in others)
        assert all(f.dest != type3.dest for f in others)

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            theorem_4_2(2)
        with pytest.raises(ValueError):
            theorem_4_3(2)

    @pytest.mark.parametrize("n", [3, 4])
    def test_lemma_4_6_routing_valid_and_feasible_at_posited_rates(self, n):
        from repro.core.theorems import theorem_4_3 as predict

        instance = theorem_4_3(n)
        routing = lemma_4_6_routing(instance)
        routing.validate(instance.clos.graph)
        prediction = predict(n)
        rates = {}
        for type_name in ("type1", "type2a", "type2b", "type3"):
            key = "type2" if type_name.startswith("type2") else type_name
            for f in instance.types[type_name]:
                rates[f] = prediction.lex_max_min_rates[key]
        assert is_feasible(
            routing, Allocation(rates), instance.clos.graph.capacities()
        )

    def test_lemma_4_6_type3_on_middle_n(self):
        instance = theorem_4_3(3)
        routing = lemma_4_6_routing(instance)
        (type3,) = instance.types["type3"]
        assert routing.middle_of(instance.clos, type3) == MiddleSwitch(3)

    def test_lemma_4_6_type2_per_input_switch(self):
        """All type-2 flows leaving I_i ride M_i (Claim 4.5's structure)."""
        instance = theorem_4_3(3)
        routing = lemma_4_6_routing(instance)
        for f in instance.types["type2"]:
            assert routing.middle_of(instance.clos, f).index == f.source.switch


class TestTheorem54:
    @pytest.mark.parametrize("n,k", [(3, 1), (7, 1), (9, 3)])
    def test_flow_counts(self, n, k):
        instance = theorem_5_4(n, k)
        assert len(instance.types["type1"]) == n - 1
        assert len(instance.types["type2"]) == k * (n - 1) // 2
        assert len(instance.flows) == (n - 1) + k * (n - 1) // 2

    def test_all_flows_same_switch_pair(self):
        instance = theorem_5_4(7, 2)
        assert all(f.source.switch == 1 for f in instance.flows)
        assert all(f.dest.switch == 1 for f in instance.flows)

    def test_type2_connects_adjacent_gadget_servers(self):
        instance = theorem_5_4(7, 1)
        for f in instance.types["type2"]:
            assert f.source.server % 2 == 0
            assert f.dest.server == f.source.server - 1

    def test_even_n_rejected(self):
        with pytest.raises(ValueError):
            theorem_5_4(6, 1)

    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            theorem_5_4(7, 0)

    def test_example_5_3_is_n7_k1(self):
        instance = example_5_3()
        assert instance.clos.n == 7
        assert len(instance.types["type1"]) == 6
        assert len(instance.types["type2"]) == 3
