"""Unit tests for routings and middle-switch assignments."""

import pytest

from repro.core.flows import Flow, FlowCollection
from repro.core.nodes import MiddleSwitch
from repro.core.routing import Routing, all_middle_assignments
from repro.core.topology import ClosNetwork, MacroSwitch

from tests.helpers import random_flows


@pytest.fixture
def clos():
    return ClosNetwork(2)


@pytest.fixture
def two_flows(clos):
    return FlowCollection(
        [
            Flow(clos.source(1, 1), clos.destination(3, 1)),
            Flow(clos.source(1, 2), clos.destination(3, 2)),
        ]
    )


class TestConstructors:
    def test_from_middles(self, clos, two_flows):
        f1, f2 = list(two_flows)
        routing = Routing.from_middles(clos, two_flows, {f1: 1, f2: 2})
        assert routing.middle_of(clos, f1) == MiddleSwitch(1)
        assert routing.middle_of(clos, f2) == MiddleSwitch(2)

    def test_from_middles_missing_flow_raises(self, clos, two_flows):
        f1, _ = list(two_flows)
        with pytest.raises(ValueError, match="no middle switch"):
            Routing.from_middles(clos, two_flows, {f1: 1})

    def test_uniform(self, clos, two_flows):
        routing = Routing.uniform(clos, two_flows, 2)
        for f in two_flows:
            assert routing.middle_of(clos, f) == MiddleSwitch(2)

    def test_macro_switch_routing(self, two_flows):
        ms = MacroSwitch(2)
        routing = Routing.for_macro_switch(ms, two_flows)
        for f in two_flows:
            assert routing.path(f)[0] == f.source
            assert routing.path(f)[-1] == f.dest
            assert len(routing.path(f)) == 4

    def test_len_and_contains(self, clos, two_flows):
        routing = Routing.uniform(clos, two_flows, 1)
        assert len(routing) == 2
        assert two_flows[0] in routing
        outsider = Flow(clos.source(2, 1), clos.destination(2, 1))
        assert outsider not in routing


class TestQueries:
    def test_middles_roundtrip(self, clos, two_flows):
        f1, f2 = list(two_flows)
        middles = {f1: 2, f2: 1}
        routing = Routing.from_middles(clos, two_flows, middles)
        assert routing.middles(clos) == middles

    def test_links_of(self, clos, two_flows):
        f1, _ = list(two_flows)
        routing = Routing.uniform(clos, two_flows, 1)
        links = routing.links_of(f1)
        assert len(links) == 4
        assert links[0] == (f1.source, clos.input_switches[0])

    def test_flows_per_link_shared_source_link(self, clos):
        # two parallel flows share every link of their common path
        flows = FlowCollection()
        flows.add_pair(clos.source(1, 1), clos.destination(3, 1), count=2)
        routing = Routing.uniform(clos, flows, 1)
        loads = routing.flows_per_link()
        for link, members in loads.items():
            assert len(members) == 2

    def test_validate_passes_for_consistent_routing(self, clos, two_flows):
        routing = Routing.uniform(clos, two_flows, 1)
        routing.validate(clos.graph)  # should not raise

    def test_validate_rejects_foreign_path(self, clos, two_flows):
        f1, f2 = list(two_flows)
        bad_paths = {
            f1: clos.path_via(f1.source, f1.dest, 1),
            # path belongs to f1's endpoints, not f2's
            f2: clos.path_via(f1.source, f1.dest, 1),
        }
        routing = Routing(bad_paths)
        with pytest.raises(ValueError, match="endpoints"):
            routing.validate(clos.graph)


class TestReassigned:
    def test_moves_single_flow(self, clos, two_flows):
        f1, f2 = list(two_flows)
        routing = Routing.uniform(clos, two_flows, 1)
        moved = routing.reassigned(clos, f1, 2)
        assert moved.middle_of(clos, f1) == MiddleSwitch(2)
        assert moved.middle_of(clos, f2) == MiddleSwitch(1)

    def test_original_untouched(self, clos, two_flows):
        f1, _ = list(two_flows)
        routing = Routing.uniform(clos, two_flows, 1)
        routing.reassigned(clos, f1, 2)
        assert routing.middle_of(clos, f1) == MiddleSwitch(1)

    def test_unknown_flow_raises(self, clos, two_flows):
        routing = Routing.uniform(clos, two_flows, 1)
        outsider = Flow(clos.source(2, 1), clos.destination(2, 1))
        with pytest.raises(KeyError):
            routing.reassigned(clos, outsider, 1)


class TestAllMiddleAssignments:
    def test_counts(self, clos, two_flows):
        assignments = list(all_middle_assignments(two_flows, clos.n))
        assert len(assignments) == clos.n ** len(two_flows)

    def test_all_distinct(self, clos, two_flows):
        assignments = list(all_middle_assignments(two_flows, clos.n))
        as_tuples = {tuple(sorted((repr(f), m) for f, m in a.items())) for a in assignments}
        assert len(as_tuples) == len(assignments)

    def test_empty_collection(self):
        assert list(all_middle_assignments(FlowCollection(), 3)) == [{}]

    def test_random_instance_counts(self, clos):
        flows = random_flows(clos, 3, seed=7)
        assert len(list(all_middle_assignments(flows, 2))) == 8
