"""Paper reproduction — Theorem 4.2 / Example 4.1 (R2, part 1).

The macro-switch max-min rates of the Figure 3 construction cannot be
replicated by *any* Clos routing (certified by exhaustive search), while
splittable routing carries them trivially — and we also re-derive the
two structural conditions the example's argument rests on.
"""

from fractions import Fraction

import pytest

from repro.core.allocation import lex_compare
from repro.core.objectives import lex_max_min_fair, macro_switch_max_min
from repro.core.theorems import theorem_4_2_macro_rates
from repro.lp.feasibility import find_feasible_routing, splittable_feasible
from repro.workloads.adversarial import theorem_4_2


@pytest.fixture(scope="module")
def instance():
    return theorem_4_2(3)


@pytest.fixture(scope="module")
def macro_alloc(instance):
    return macro_switch_max_min(instance.macro, instance.flows)


class TestMacroRates:
    def test_per_type_rates(self, instance, macro_alloc):
        expected = theorem_4_2_macro_rates(3)
        for type_name in ("type1", "type2", "type3"):
            for f in instance.types[type_name]:
                assert macro_alloc.rate(f) == expected[type_name]


class TestInfeasibility:
    def test_no_feasible_routing_n3(self, instance, macro_alloc):
        """The theorem's core claim, by exhaustive certified search."""
        routing = find_feasible_routing(
            instance.clos, instance.flows, macro_alloc.rates()
        )
        assert routing is None

    def test_no_feasible_routing_n4(self):
        instance = theorem_4_2(4)
        macro = macro_switch_max_min(instance.macro, instance.flows)
        assert (
            find_feasible_routing(instance.clos, instance.flows, macro.rates())
            is None
        )

    def test_splittable_relaxation_is_feasible(self, instance, macro_alloc):
        """Unsplittability is the culprit: the LP relaxation says yes."""
        assert splittable_feasible(
            instance.clos, instance.flows, macro_alloc.rates()
        )

    def test_type1_and_type2_alone_are_routable(self, instance, macro_alloc):
        """Dropping the type-3 flow restores feasibility — the example's
        argument pins the conflict on the last flow's n middle options."""
        from repro.core.flows import FlowCollection

        (type3,) = instance.types["type3"]
        without = FlowCollection(f for f in instance.flows if f != type3)
        demands = {f: macro_alloc.rate(f) for f in without}
        assert (
            find_feasible_routing(instance.clos, without, demands) is not None
        )


class TestExampleConditions:
    """The two routing conditions derived in Example 4.1."""

    def test_condition_1_type2_must_share_one_middle(self, instance, macro_alloc):
        """Type-1 flows at rate 1 occupy n−1 middle links of each input
        switch entirely, so all type-2 flows of that switch share the
        remaining one: mixing a unit-rate type-1 with any type-2 flow
        overloads the link."""
        assert macro_alloc.rate(instance.types["type1"][0]) == 1
        assert macro_alloc.rate(instance.types["type2a"][0]) == Fraction(1, 3)
        # 1 + 1/3 > capacity 1: the mix is immediately infeasible.
        assert 1 + Fraction(1, 3) > 1

    def test_condition_2_different_switches_different_middles(self, instance):
        """Two input switches' type-2 sets on one middle overload
        M_m O_{n+1}: 2 (1 − 1/n) > 1 for n ≥ 3."""
        n = instance.clos.n
        assert 2 * (1 - Fraction(1, n)) > 1


class TestLexMaxMinConsequence:
    def test_macro_strictly_beats_lex_max_min_on_small_instance(self):
        """a^MmF↑ > a^{L-MmF}↑ — checked exhaustively on a C_2-sized
        analogue (the theorem's n ≥ 3 instance is beyond exhaustive
        search, but §2.3's dominance plus the infeasibility above yields
        the strict inequality; here we exhibit strictness concretely)."""
        from repro.workloads.adversarial import example_2_3

        instance = example_2_3()
        macro = macro_switch_max_min(instance.macro, instance.flows)
        lex = lex_max_min_fair(instance.clos, instance.flows)
        assert (
            lex_compare(
                macro.sorted_vector(), lex.allocation.sorted_vector()
            )
            > 0
        )
