"""Tests for trace-file workloads, average throughput, and scale sanity."""

import io

import pytest

from repro.core.bottleneck import certify_max_min_fair
from repro.core.maxmin import max_min_fair
from repro.core.topology import ClosNetwork
from repro.sim.flowsim import average_throughput, simulate
from repro.sim.jobs import incast_burst
from repro.sim.policies import MatchingScheduler, MaxMinCongestionControl
from repro.workloads.stochastic import uniform_random
from repro.workloads.trace import TraceError, load_trace, save_trace


@pytest.fixture
def clos():
    return ClosNetwork(2)


class TestLoadTrace:
    def test_basic_parse(self, clos):
        flows = load_trace(io.StringIO("1,1,3,1\n2,2,4,2\n"), clos)
        assert len(flows) == 2
        assert flows[0].source == clos.source(1, 1)
        assert flows[1].dest == clos.destination(4, 2)

    def test_comments_and_blank_lines(self, clos):
        text = "# header\n\n1,1,3,1  # inline comment\n\n"
        flows = load_trace(io.StringIO(text), clos)
        assert len(flows) == 1

    def test_duplicate_rows_become_parallel_flows(self, clos):
        flows = load_trace(io.StringIO("1,1,3,1\n1,1,3,1\n"), clos)
        assert [f.tag for f in flows] == [0, 1]

    def test_field_count_validation(self, clos):
        with pytest.raises(TraceError, match="4 comma-separated"):
            load_trace(io.StringIO("1,1,3\n"), clos)

    def test_non_integer_rejected(self, clos):
        with pytest.raises(TraceError, match="non-integer"):
            load_trace(io.StringIO("1,1,3,x\n"), clos)

    def test_out_of_range_endpoint(self, clos):
        with pytest.raises(TraceError, match="line 1"):
            load_trace(io.StringIO("9,1,3,1\n"), clos)

    def test_file_roundtrip(self, clos, tmp_path):
        original = uniform_random(clos, 12, seed=0)
        path = tmp_path / "trace.csv"
        save_trace(original, str(path))
        loaded = load_trace(str(path), clos)
        assert [
            (f.source, f.dest) for f in loaded
        ] == [(f.source, f.dest) for f in original]

    def test_stream_roundtrip(self, clos):
        original = uniform_random(clos, 8, seed=1)
        buffer = io.StringIO()
        save_trace(original, buffer)
        buffer.seek(0)
        loaded = load_trace(buffer, clos)
        assert len(loaded) == len(original)


class TestAverageThroughput:
    def test_incast_scheduler_beats_fairness(self):
        """§7 R1's throughput-over-time claim: same work, shorter
        makespan under scheduling => higher average throughput."""
        clos = ClosNetwork(2)
        jobs = incast_burst(clos, fan_in=6, seed=0)
        fair = simulate(jobs, MaxMinCongestionControl(clos))
        sched = simulate(jobs, MatchingScheduler(clos))
        # same destination link serialized either way: equal makespan,
        # equal average throughput — the gain is purely in mean FCT...
        assert average_throughput(sched) == pytest.approx(
            average_throughput(fair)
        )

    def test_source_diverse_burst_scheduler_wins(self):
        """When flows conflict pairwise (not all on one link), the
        scheduler finishes the batch sooner => higher avg throughput."""
        from repro.sim.jobs import FlowJob

        clos = ClosNetwork(2)
        # two source-conflicting pairs: fairness halves everyone; the
        # scheduler runs a perfect matching at rate 1 each round.
        jobs = [
            FlowJob(0, clos.source(1, 1), clos.destination(3, 1), 0.0, 1.0),
            FlowJob(1, clos.source(1, 1), clos.destination(4, 1), 0.0, 1.0),
            FlowJob(2, clos.source(2, 1), clos.destination(3, 2), 0.0, 1.0),
            FlowJob(3, clos.source(2, 1), clos.destination(4, 2), 0.0, 1.0),
        ]
        fair = simulate(jobs, MaxMinCongestionControl(clos))
        sched = simulate(jobs, MatchingScheduler(clos))
        assert average_throughput(sched) >= average_throughput(fair)

    def test_zero_time_rejected(self):
        from repro.sim.flowsim import SimulationResult

        with pytest.raises(ValueError):
            average_throughput(SimulationResult([], [], 0.0, 0.0))


class TestScaleSanity:
    def test_c8_large_workload_certified(self):
        from repro.routers.ecmp import ecmp_routing

        clos = ClosNetwork(8)
        flows = uniform_random(clos, 600, seed=0)
        routing = ecmp_routing(clos, flows)
        capacities = clos.graph.capacities()
        alloc = max_min_fair(routing, capacities, exact=False)
        assert certify_max_min_fair(routing, alloc, capacities, tol=1e-9) is None

    def test_fat_tree_k8_structure(self):
        from repro.topologies.fattree import FatTree

        tree = FatTree(8)
        assert len(tree.hosts) == 128
        assert len(tree.core_switches) == 16
        src, dst = tree.hosts[0], tree.hosts[-1]
        assert tree.num_paths(src, dst) == 16

    def test_exact_waterfill_moderate_scale(self):
        from tests.helpers import random_routing

        clos = ClosNetwork(5)
        flows = uniform_random(clos, 200, seed=1)
        routing = random_routing(clos, flows, seed=1)
        alloc = max_min_fair(routing, clos.graph.capacities(), exact=True)
        assert len(alloc) == 200
