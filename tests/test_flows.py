"""Unit tests for flows, flow collections, and demand multigraphs."""

import pytest

from repro.core.flows import Flow, FlowCollection
from repro.core.nodes import Destination, InputSwitch, OutputSwitch, Source
from repro.core.topology import ClosNetwork


@pytest.fixture
def clos():
    return ClosNetwork(2)


class TestFlow:
    def test_fields(self):
        f = Flow(Source(1, 2), Destination(3, 1), tag=4)
        assert f.source == Source(1, 2)
        assert f.dest == Destination(3, 1)
        assert f.tag == 4

    def test_default_tag_zero(self):
        assert Flow(Source(1, 1), Destination(1, 1)).tag == 0

    def test_parallel_flows_distinct(self):
        a = Flow(Source(1, 1), Destination(1, 1), tag=0)
        b = Flow(Source(1, 1), Destination(1, 1), tag=1)
        assert a != b
        assert len({a, b}) == 2


class TestFlowCollection:
    def test_empty(self):
        assert len(FlowCollection()) == 0
        assert list(FlowCollection()) == []

    def test_add_and_iterate_in_order(self, clos):
        f1 = Flow(clos.source(1, 1), clos.destination(1, 1))
        f2 = Flow(clos.source(2, 1), clos.destination(2, 1))
        flows = FlowCollection([f1, f2])
        assert list(flows) == [f1, f2]
        assert flows[0] == f1

    def test_duplicate_rejected(self, clos):
        f = Flow(clos.source(1, 1), clos.destination(1, 1))
        flows = FlowCollection([f])
        with pytest.raises(ValueError, match="duplicate"):
            flows.add(f)

    def test_add_pair_auto_tags(self, clos):
        flows = FlowCollection()
        added = flows.add_pair(clos.source(1, 1), clos.destination(1, 1), count=3)
        assert [f.tag for f in added] == [0, 1, 2]

    def test_add_pair_continues_tags(self, clos):
        flows = FlowCollection()
        flows.add_pair(clos.source(1, 1), clos.destination(1, 1), count=2)
        more = flows.add_pair(clos.source(1, 1), clos.destination(1, 1), count=2)
        assert [f.tag for f in more] == [2, 3]

    def test_from_pairs_tags_duplicates(self, clos):
        s, t = clos.source(1, 1), clos.destination(1, 1)
        flows = FlowCollection.from_pairs([(s, t), (s, t), (s, t)])
        assert len(flows) == 3
        assert sorted(f.tag for f in flows) == [0, 1, 2]

    def test_contains(self, clos):
        f = Flow(clos.source(1, 1), clos.destination(1, 1))
        flows = FlowCollection([f])
        assert f in flows
        assert Flow(clos.source(1, 2), clos.destination(1, 1)) not in flows

    def test_flows_returns_copy(self, clos):
        f = Flow(clos.source(1, 1), clos.destination(1, 1))
        flows = FlowCollection([f])
        flows.flows.clear()  # mutating the returned copy must not leak
        assert len(flows) == 1


class TestGroupings:
    @pytest.fixture
    def flows(self, clos):
        collection = FlowCollection()
        collection.add_pair(clos.source(1, 1), clos.destination(1, 1), count=2)
        collection.add_pair(clos.source(1, 1), clos.destination(2, 1))
        collection.add_pair(clos.source(2, 2), clos.destination(2, 1))
        return collection

    def test_by_source(self, flows, clos):
        groups = flows.by_source()
        assert len(groups[clos.source(1, 1)]) == 3
        assert len(groups[clos.source(2, 2)]) == 1

    def test_by_destination(self, flows, clos):
        groups = flows.by_destination()
        assert len(groups[clos.destination(1, 1)]) == 2
        assert len(groups[clos.destination(2, 1)]) == 2

    def test_by_switch_pair(self, flows):
        groups = flows.by_switch_pair()
        assert len(groups[(1, 1)]) == 2
        assert len(groups[(1, 2)]) == 1
        assert len(groups[(2, 2)]) == 1


class TestDemandGraphs:
    def test_gms_structure(self, clos):
        flows = FlowCollection()
        flows.add_pair(clos.source(1, 1), clos.destination(1, 1), count=2)
        g = flows.demand_graph_ms()
        assert g.num_edges() == 2
        assert g.degree(clos.source(1, 1)) == 2
        # edges keyed by flows themselves
        assert set(g.edge_keys) == set(flows)

    def test_gc_aggregates_by_switch(self, clos):
        flows = FlowCollection()
        # two flows from different servers of the same input switch
        flows.add_pair(clos.source(1, 1), clos.destination(2, 1))
        flows.add_pair(clos.source(1, 2), clos.destination(2, 2))
        g = flows.demand_graph_clos()
        assert g.degree(InputSwitch(1)) == 2
        assert g.degree(OutputSwitch(2)) == 2

    def test_gc_degree_bound_for_full_fanout(self, clos):
        # Each input switch has n servers; a permutation-style workload
        # gives G^C degree at most n... here: one flow per server.
        flows = FlowCollection()
        for j in range(1, clos.n + 1):
            flows.add_pair(clos.source(1, j), clos.destination(j, 1))
        g = flows.demand_graph_clos()
        assert g.degree(InputSwitch(1)) == clos.n
