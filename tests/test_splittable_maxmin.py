"""Tests for splittable max-min fairness (§1's equivalence premise)."""

import pytest

from repro.core.flows import Flow, FlowCollection
from repro.core.objectives import macro_switch_max_min
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.lp.splittable_maxmin import splittable_max_min_fair

from tests.helpers import random_flows


class TestBasics:
    def test_empty(self):
        clos = ClosNetwork(2)
        assert len(splittable_max_min_fair(clos, FlowCollection())) == 0

    def test_single_flow_full_rate(self):
        clos = ClosNetwork(2)
        flows = FlowCollection([Flow(clos.source(1, 1), clos.destination(3, 1))])
        alloc = splittable_max_min_fair(clos, flows)
        assert alloc.rate(flows[0]) == pytest.approx(1.0)

    def test_shared_source_splits_evenly(self):
        clos = ClosNetwork(2)
        flows = FlowCollection()
        pair = flows.add_pair(clos.source(1, 1), clos.destination(3, 1), count=3)
        alloc = splittable_max_min_fair(clos, flows)
        for f in pair:
            assert alloc.rate(f) == pytest.approx(1 / 3)


class TestMacroEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_instances(self, seed):
        """§1's premise: splittable C_n == MS_n, exactly."""
        clos = ClosNetwork(2)
        flows = random_flows(clos, 9, seed=seed)
        macro = macro_switch_max_min(MacroSwitch(2), flows)
        split = splittable_max_min_fair(clos, flows)
        for f in flows:
            assert split.rate(f) == pytest.approx(float(macro.rate(f)), abs=1e-6)

    def test_interior_heavy_instance(self):
        """Flows forced through the same switch pair still reach macro
        rates when splittable (the unsplittable 1/2 collision vanishes)."""
        clos = ClosNetwork(2)
        flows = FlowCollection()
        f1 = flows.add(Flow(clos.source(1, 1), clos.destination(3, 1)))
        f2 = flows.add(Flow(clos.source(1, 2), clos.destination(3, 2)))
        split = splittable_max_min_fair(clos, flows)
        assert split.rate(f1) == pytest.approx(1.0)
        assert split.rate(f2) == pytest.approx(1.0)

    def test_theorem_4_3_type3_recovers(self):
        from repro.workloads.adversarial import theorem_4_3

        instance = theorem_4_3(3)
        split = splittable_max_min_fair(instance.clos, instance.flows)
        (type3,) = instance.types["type3"]
        assert split.rate(type3) == pytest.approx(1.0, abs=1e-6)
        # the other types keep their macro rates too
        macro = macro_switch_max_min(instance.macro, instance.flows)
        for f in instance.flows:
            assert split.rate(f) == pytest.approx(float(macro.rate(f)), abs=1e-6)

    def test_oversubscribed_fabric_breaks_equivalence(self):
        """With a thinned interior even splittable flows fall below
        macro rates — the equivalence needs full bisection (E15 x E16)."""
        from fractions import Fraction

        clos = ClosNetwork(2, interior_capacity=Fraction(1, 4))
        flows = FlowCollection()
        f1 = flows.add(Flow(clos.source(1, 1), clos.destination(3, 1)))
        split = splittable_max_min_fair(clos, flows)
        # 2 middle paths x 1/4 capacity = 1/2 total
        assert split.rate(f1) == pytest.approx(0.5)
