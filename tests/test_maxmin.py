"""Tests for the water-filling max-min fair allocator (Definition 2.1).

Correctness is checked four independent ways:

1. hand-derived allocations on small instances (incl. the paper's);
2. the bottleneck property (Lemma 2.2) on every output — a complete
   certificate of max-min fairness;
3. lexicographic dominance over randomly generated feasible allocations;
4. agreement with the LP-based progressive-filling solver.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import Allocation, is_feasible, lex_compare
from repro.core.bottleneck import certify_max_min_fair, is_max_min_fair
from repro.core.flows import Flow, FlowCollection
from repro.core.maxmin import UnboundedRateError, max_min_fair
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.graph.digraph import DiGraph

from tests.helpers import random_flows, random_routing


class TestSmallCases:
    def test_empty(self):
        routing = Routing({})
        assert max_min_fair(routing, {}).flows() == []

    def test_single_flow_gets_capacity(self):
        clos = ClosNetwork(1)
        f = Flow(clos.source(1, 1), clos.destination(2, 1))
        routing = Routing.uniform(clos, FlowCollection([f]), 1)
        alloc = max_min_fair(routing, clos.graph.capacities())
        assert alloc.rate(f) == 1

    def test_equal_split_on_shared_link(self):
        clos = ClosNetwork(1)
        flows = FlowCollection()
        pair = flows.add_pair(clos.source(1, 1), clos.destination(2, 1), count=3)
        routing = Routing.uniform(clos, flows, 1)
        alloc = max_min_fair(routing, clos.graph.capacities())
        for f in pair:
            assert alloc.rate(f) == Fraction(1, 3)

    def test_two_level_waterfill(self):
        # Figure 2 shape: s2 sends two flows, one shares t1 with s1's flow.
        ms = MacroSwitch(1)
        flows = FlowCollection()
        f_a = flows.add(Flow(ms.source(1, 1), ms.destination(1, 1)))
        f_b = flows.add(Flow(ms.source(2, 1), ms.destination(2, 1)))
        f_c = flows.add(Flow(ms.source(2, 1), ms.destination(1, 1)))
        routing = Routing.for_macro_switch(ms, flows)
        alloc = max_min_fair(routing, ms.graph.capacities())
        assert alloc.rate(f_c) == Fraction(1, 2)
        assert alloc.rate(f_a) == Fraction(1, 2)
        assert alloc.rate(f_b) == Fraction(1, 2)

    def test_asymmetric_levels(self):
        # Three flows leave s1; one of them alone enters t2 — after the
        # source saturates at 1/3 nobody can rise further on this topology
        # except flows not sharing the source.
        ms = MacroSwitch(2)
        flows = FlowCollection()
        shared = flows.add_pair(ms.source(1, 1), ms.destination(1, 1), count=3)
        lone = flows.add(Flow(ms.source(2, 1), ms.destination(2, 1)))
        routing = Routing.for_macro_switch(ms, flows)
        alloc = max_min_fair(routing, ms.graph.capacities())
        for f in shared:
            assert alloc.rate(f) == Fraction(1, 3)
        assert alloc.rate(lone) == 1

    def test_interior_bottleneck_in_clos(self):
        # Two flows from different sources forced through one middle link.
        clos = ClosNetwork(2)
        flows = FlowCollection()
        f1 = flows.add(Flow(clos.source(1, 1), clos.destination(3, 1)))
        f2 = flows.add(Flow(clos.source(1, 2), clos.destination(3, 2)))
        routing = Routing.uniform(clos, flows, 1)  # both on M_1
        alloc = max_min_fair(routing, clos.graph.capacities())
        assert alloc.rate(f1) == Fraction(1, 2)
        assert alloc.rate(f2) == Fraction(1, 2)
        # Moving one flow to M_2 frees both.
        moved = routing.reassigned(clos, f2, 2)
        alloc2 = max_min_fair(moved, clos.graph.capacities())
        assert alloc2.rate(f1) == 1
        assert alloc2.rate(f2) == 1

    def test_unbounded_flow_raises(self):
        graph = DiGraph()
        graph.add_link("a", "b", capacity=float("inf"))
        ms = MacroSwitch(1)
        f = Flow(ms.source(1, 1), ms.destination(1, 1))
        routing = Routing({f: ("a", "b")})
        with pytest.raises(UnboundedRateError):
            max_min_fair(routing, graph.capacities())


class TestNumericModes:
    def test_exact_mode_returns_fractions(self):
        clos = ClosNetwork(1)
        flows = FlowCollection()
        flows.add_pair(clos.source(1, 1), clos.destination(2, 1), count=3)
        routing = Routing.uniform(clos, flows, 1)
        alloc = max_min_fair(routing, clos.graph.capacities(), exact=True)
        assert all(isinstance(r, Fraction) for r in alloc.rates().values())

    def test_float_mode_returns_floats(self):
        clos = ClosNetwork(1)
        flows = FlowCollection()
        flows.add_pair(clos.source(1, 1), clos.destination(2, 1), count=3)
        routing = Routing.uniform(clos, flows, 1)
        alloc = max_min_fair(routing, clos.graph.capacities(), exact=False)
        assert all(isinstance(r, float) for r in alloc.rates().values())

    @pytest.mark.parametrize("seed", range(5))
    def test_modes_agree(self, seed):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 10, seed)
        routing = random_routing(clos, flows, seed)
        exact = max_min_fair(routing, clos.graph.capacities(), exact=True)
        approx = max_min_fair(routing, clos.graph.capacities(), exact=False)
        for f in flows:
            assert abs(float(exact.rate(f)) - approx.rate(f)) < 1e-9


class TestInvariants:
    @pytest.mark.parametrize("seed", range(10))
    def test_feasible_and_bottlenecked(self, seed):
        clos = ClosNetwork(3)
        flows = random_flows(clos, 15, seed)
        routing = random_routing(clos, flows, seed)
        capacities = clos.graph.capacities()
        alloc = max_min_fair(routing, capacities)
        assert is_feasible(routing, alloc, capacities)
        assert certify_max_min_fair(routing, alloc, capacities) is None

    @pytest.mark.parametrize("seed", range(10))
    def test_macro_switch_feasible_and_bottlenecked(self, seed):
        clos = ClosNetwork(3)
        ms = MacroSwitch(3)
        flows = random_flows(clos, 15, seed)
        routing = Routing.for_macro_switch(ms, flows)
        capacities = ms.graph.capacities()
        alloc = max_min_fair(routing, capacities)
        assert is_feasible(routing, alloc, capacities)
        assert certify_max_min_fair(routing, alloc, capacities) is None

    @pytest.mark.parametrize("seed", range(8))
    def test_lex_dominates_random_feasible_allocations(self, seed):
        """No feasible allocation lex-exceeds the water-filling output."""
        clos = ClosNetwork(2)
        flows = random_flows(clos, 8, seed)
        routing = random_routing(clos, flows, seed)
        capacities = clos.graph.capacities()
        optimal = max_min_fair(routing, capacities)
        rng = random.Random(seed)
        for _ in range(30):
            # random feasible allocation: scale random rates down until
            # every finite link satisfies its capacity
            raw = {f: Fraction(rng.randint(0, 100), 100) for f in flows}
            loads = {}
            for f in flows:
                for link in routing.links_of(f):
                    loads[link] = loads.get(link, Fraction(0)) + raw[f]
            overload = max(
                (
                    loads[link] / capacities[link]
                    for link in loads
                    if capacities[link] != float("inf")
                ),
                default=Fraction(0),
            )
            if overload > 1:
                raw = {f: r / overload for f, r in raw.items()}
            candidate = Allocation(raw)
            assert is_feasible(routing, candidate, capacities)
            assert (
                lex_compare(
                    optimal.sorted_vector(), candidate.sorted_vector()
                )
                >= 0
            )

    @pytest.mark.parametrize("seed", range(6))
    def test_single_rate_increase_infeasible_or_hurts_smaller(self, seed):
        """Raising any flow's rate breaks feasibility unless another flow
        with no greater rate is cut — the definitional max-min property."""
        clos = ClosNetwork(2)
        flows = random_flows(clos, 8, seed)
        routing = random_routing(clos, flows, seed)
        capacities = clos.graph.capacities()
        alloc = max_min_fair(routing, capacities)
        bump = Fraction(1, 1000)
        for f in flows:
            raised = dict(alloc.rates())
            raised[f] = raised[f] + bump
            # keeping everyone else fixed must violate some capacity,
            # because f has a saturated bottleneck link
            assert not is_feasible(routing, Allocation(raised), capacities)


class TestAgainstLP:
    @pytest.mark.parametrize("seed", range(4))
    def test_agrees_with_progressive_filling_lp(self, seed):
        from repro.lp.progressive_filling import max_min_fair_lp

        clos = ClosNetwork(2)
        flows = random_flows(clos, 6, seed)
        routing = random_routing(clos, flows, seed)
        capacities = clos.graph.capacities()
        exact = max_min_fair(routing, capacities)
        lp = max_min_fair_lp(routing, capacities)
        for f in flows:
            assert abs(float(exact.rate(f)) - lp.rate(f)) < 1e-6


@settings(max_examples=30, deadline=None)
@given(st.data())
def test_hypothesis_waterfill_certificate(data):
    """Any routing of any flow collection yields a certified max-min
    allocation (Lemma 2.2 iff-direction exercised end-to-end)."""
    n = data.draw(st.integers(1, 3), label="n")
    clos = ClosNetwork(n)
    num_flows = data.draw(st.integers(1, 10), label="num_flows")
    flows = FlowCollection()
    for _ in range(num_flows):
        i = data.draw(st.integers(1, 2 * n))
        j = data.draw(st.integers(1, n))
        oi = data.draw(st.integers(1, 2 * n))
        oj = data.draw(st.integers(1, n))
        flows.add_pair(clos.source(i, j), clos.destination(oi, oj))
    middles = {
        f: data.draw(st.integers(1, n), label="middle") for f in flows
    }
    routing = Routing.from_middles(clos, flows, middles)
    capacities = clos.graph.capacities()
    alloc = max_min_fair(routing, capacities)
    assert is_max_min_fair(routing, alloc, capacities)
