"""Tests for the invariant certifiers in ``repro.validate``.

The mutation tests are the heart: take a certified-correct max-min
allocation and break it three ways — overfill a link, starve a flow,
break a tie — then check each corruption is caught at the level that
should see it (overfill at ``cheap``, all three at ``full``).
"""

import os
from fractions import Fraction

import pytest

from repro.core.allocation import Allocation
from repro.core.cache import AllocationCache
from repro.core.incremental import MoveEvaluator
from repro.core.maxmin import max_min_fair
from repro.core.solve import BACKENDS, EXACT_BACKENDS, solve_max_min
from repro.core.topology import ClosNetwork
from repro.errors import BackendUnavailableError, CertificateError
from repro.validate import (
    ENV_VAR,
    allocation_failures,
    default_tolerance,
    rate_disagreements,
    set_validation_level,
    validate_allocation,
    validation,
    validation_level,
)

from tests.helpers import random_flows, random_routing


@pytest.fixture(autouse=True)
def clean_level(monkeypatch):
    """Each test starts with no override and no REPRO_VALIDATE."""
    monkeypatch.delenv(ENV_VAR, raising=False)
    set_validation_level(None)
    yield
    set_validation_level(None)


@pytest.fixture
def instance(clos2):
    """A certified-correct exact instance: routing, capacities, rates."""
    flows = random_flows(clos2, 8, seed=3)
    routing = random_routing(clos2, flows, seed=3)
    capacities = clos2.graph.capacities()
    with validation("off"):
        allocation = max_min_fair(routing, capacities, exact=True)
    return routing, capacities, allocation


class TestLevelResolution:
    def test_default_is_off(self):
        assert validation_level() == "off"

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "cheap")
        assert validation_level() == "cheap"

    def test_override_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "cheap")
        set_validation_level("full")
        assert validation_level() == "full"

    def test_context_manager_restores(self):
        set_validation_level("cheap")
        with validation("full"):
            assert validation_level() == "full"
        assert validation_level() == "cheap"

    def test_bad_env_value_raises(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "paranoid")
        with pytest.raises(ValueError, match="unknown validation level"):
            validation_level()

    def test_bad_override_raises(self):
        with pytest.raises(ValueError, match="unknown validation level"):
            set_validation_level("verbose")


class TestCorrectAllocationsCertify:
    def test_exact_reference_passes_full(self, instance):
        routing, capacities, allocation = instance
        assert allocation_failures(
            routing, capacities, allocation, level="full"
        ) == []

    def test_off_level_skips_everything(self, instance):
        routing, capacities, _ = instance
        garbage = Allocation({f: Fraction(10**6) for f in routing.flows()})
        assert allocation_failures(routing, capacities, garbage) == []

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_backend_certifies_at_full(self, clos3, backend):
        flows = random_flows(clos3, 12, seed=11)
        routing = random_routing(clos3, flows, seed=11)
        capacities = clos3.graph.capacities()
        exact = backend in EXACT_BACKENDS
        try:
            with validation("full"):
                allocation = solve_max_min(
                    routing, capacities, backend=backend,
                    exact=True if exact else False,
                )
        except BackendUnavailableError:
            pytest.skip(f"{backend} unavailable")
        assert len(allocation) == len(flows)

    def test_cache_hit_certifies_at_full(self, clos2):
        flows = random_flows(clos2, 6, seed=5)
        routing = random_routing(clos2, flows, seed=5)
        capacities = clos2.graph.capacities()
        cache = AllocationCache()
        with validation("full"):
            first = cache.solve(routing, capacities)
            again = cache.solve(routing, capacities)  # hit, re-certified
        assert first.rates() == again.rates()
        assert cache.stats()["hits"] == 1

    def test_incremental_moves_certify_at_full(self, clos3):
        flows = random_flows(clos3, 9, seed=7)
        routing = random_routing(clos3, flows, seed=7)
        evaluator = MoveEvaluator(
            clos3, routing, clos3.graph.capacities()
        )
        flow = routing.flows()[0]
        target = next(
            m for m in range(1, clos3.n + 1)
            if m != routing.middles(clos3)[flow]
        )
        with validation("full"):
            evaluator.evaluate(flow, target)


class TestMutationsAreCaught:
    """Corrupt a correct allocation; the certifier must notice."""

    def _mutate(self, allocation, flow, new_rate):
        rates = allocation.rates()
        rates[flow] = new_rate
        return Allocation(rates)

    def test_overfilled_link_caught_at_cheap(self, instance):
        routing, capacities, allocation = instance
        victim = routing.flows()[0]
        corrupt = self._mutate(
            allocation, victim, allocation.rate(victim) + 1
        )
        failures = allocation_failures(
            routing, capacities, corrupt, level="cheap"
        )
        assert any("overloaded" in f for f in failures)

    def test_overfilled_link_caught_at_full(self, instance):
        routing, capacities, allocation = instance
        victim = routing.flows()[0]
        corrupt = self._mutate(
            allocation, victim, allocation.rate(victim) + 1
        )
        assert allocation_failures(
            routing, capacities, corrupt, level="full"
        )

    def test_starved_flow_passes_cheap_caught_at_full(self, instance):
        routing, capacities, allocation = instance
        victim = routing.flows()[0]
        corrupt = self._mutate(
            allocation, victim, allocation.rate(victim) / 2
        )
        # Still feasible — cheap sees nothing wrong.
        assert allocation_failures(
            routing, capacities, corrupt, level="cheap"
        ) == []
        failures = allocation_failures(
            routing, capacities, corrupt, level="full"
        )
        assert any("no bottleneck" in f for f in failures)

    def test_broken_tie_caught_at_full(self, clos2):
        # Two parallel flows share one path; shifting rate between them
        # keeps every link load identical (cheap passes) but the loser
        # is no longer maximal on its saturated links.
        from repro.core.flows import FlowCollection
        from repro.core.routing import Routing

        network = ClosNetwork(2)
        collection = FlowCollection()
        pair = collection.add_pair(
            network.sources[0], network.destinations[0], count=2
        )
        routing = Routing.from_middles(
            network, collection, {f: 1 for f in collection}
        )
        capacities = network.graph.capacities()
        with validation("off"):
            fair = max_min_fair(routing, capacities, exact=True)
        a, b = pair
        assert fair.rate(a) == fair.rate(b)
        delta = Fraction(1, 8)
        skewed = Allocation(
            {
                a: fair.rate(a) + delta,
                b: fair.rate(b) - delta,
            }
        )
        assert allocation_failures(
            routing, capacities, skewed, level="cheap"
        ) == []
        failures = allocation_failures(
            routing, capacities, skewed, level="full"
        )
        assert any("no bottleneck" in f for f in failures)

    def test_missing_rate_caught(self, instance):
        routing, capacities, allocation = instance
        rates = allocation.rates()
        rates.pop(routing.flows()[0])
        failures = allocation_failures(
            routing, capacities, Allocation(rates), level="cheap"
        )
        assert any("no rate assigned" in f for f in failures)

    def test_nan_and_negative_rates_caught(self, instance):
        # Allocation's constructor rejects negatives, but backends that
        # hand raw rate dicts to the certifier (the incremental
        # evaluator, the numpy kernel) bypass it — so the structural
        # certifier must catch these itself.
        from repro.validate import structure_failures

        routing, capacities, allocation = instance
        first, second = routing.flows()[:2]
        rates = allocation.rates()
        rates[first] = float("nan")
        rates[second] = -0.5
        failures = structure_failures(
            routing.flows_per_link(),
            {f: routing.links_of(f) for f in routing.flows()},
            rates,
            capacities,
            level="cheap",
            tol=0.0,
        )
        assert any("NaN" in f for f in failures)
        assert any("negative" in f for f in failures)

    def test_validate_allocation_raises_certificate_error(self, instance):
        routing, capacities, allocation = instance
        victim = routing.flows()[0]
        corrupt = self._mutate(
            allocation, victim, allocation.rate(victim) + 1
        )
        with pytest.raises(CertificateError) as info:
            validate_allocation(
                routing, capacities, corrupt,
                level="cheap", context="test.mutation",
            )
        assert info.value.context == "test.mutation"
        assert info.value.failures

    def test_solver_entry_point_catches_injected_corruption(
        self, clos2, monkeypatch
    ):
        # End to end: corrupt the reference water-fill and check the
        # in-solver hook (not just the standalone function) fires.
        import repro.core.maxmin as maxmin_module

        original = maxmin_module._fill

        def corrupt_fill(flows, link_flows, flow_links, rates, *rest):
            rounds = original(
                flows, link_flows, flow_links, rates, *rest
            )
            victim = next(iter(rates))
            rates[victim] = rates[victim] + 1
            return rounds

        monkeypatch.setattr(maxmin_module, "_fill", corrupt_fill)
        flows = random_flows(clos2, 5, seed=2)
        routing = random_routing(clos2, flows, seed=2)
        with validation("cheap"):
            with pytest.raises(CertificateError):
                max_min_fair(routing, clos2.graph.capacities(), exact=True)


class TestTolerances:
    def test_default_tolerance_exact_is_zero(self):
        assert default_tolerance({1: Fraction(1, 3), 2: 1}) == 0.0

    def test_default_tolerance_float_is_loose(self):
        assert default_tolerance({1: 0.5}) > 0

    def test_float_rounding_not_flagged(self, clos3):
        # A healthy float solve certifies at full despite rounding.
        flows = random_flows(clos3, 10, seed=13)
        routing = random_routing(clos3, flows, seed=13)
        capacities = clos3.graph.capacities()
        with validation("off"):
            allocation = max_min_fair(routing, capacities, exact=False)
        assert allocation_failures(
            routing, capacities, allocation, level="full"
        ) == []

    def test_huge_capacities_relative_tolerance(self, clos2):
        # 1e12-scale capacities: absolute float error on a link load can
        # exceed any fixed absolute tolerance, but the relative band
        # must still accept a healthy solve.
        flows = random_flows(clos2, 8, seed=17)
        routing = random_routing(clos2, flows, seed=17)
        capacities = {
            link: cap * (10**12)
            for link, cap in clos2.graph.capacities().items()
        }
        with validation("off"):
            allocation = max_min_fair(routing, capacities, exact=False)
        assert allocation_failures(
            routing, capacities, allocation, level="full"
        ) == []


class TestRateDisagreements:
    def test_agreement_is_empty(self):
        assert rate_disagreements({1: 0.5}, {1: 0.5}) == []

    def test_close_floats_agree(self):
        assert rate_disagreements({1: 0.5}, {1: 0.5 + 1e-9}) == []

    def test_real_gap_reported(self):
        assert rate_disagreements({1: 0.5}, {1: 0.7})

    def test_exact_mode_is_strict(self):
        left = {1: Fraction(1, 3)}
        right = {1: Fraction(1, 3) + Fraction(1, 10**12)}
        assert rate_disagreements(left, right, tol=0.0)

    def test_missing_flows_reported(self):
        diffs = rate_disagreements({1: 0.5, 2: 0.5}, {1: 0.5})
        assert any("missing" in d for d in diffs)

    def test_relative_scaling_on_huge_rates(self):
        # 1e12 ± 1 is agreement at the default relative tolerance.
        assert rate_disagreements({1: 1e12}, {1: 1e12 + 1.0}) == []
