"""Property tests for the ``vectorized`` and ``quotient`` backends.

The two contracts from the backend design:

- ``quotient_max_min`` returns rates **identical** (``Fraction``
  equality, not approximate) to the exact reference solver on any
  instance — symmetry reduction is an optimization, never a relaxation;
- ``waterfill`` agrees with the heap float solver to within 1e-12 on
  random float instances.

Plus the ``solve_max_min`` dispatch surface: backend names, exact-mode
mismatches, and the numpy-missing error path.
"""

import pytest
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.fastmaxmin import max_min_fair_fast
from repro.core.flows import FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.quotient import build_quotient, quotient_max_min
from repro.core.routing import Routing
from repro.core.solve import BACKENDS, EXACT_BACKENDS, solve_max_min
from repro.core.topology import ClosNetwork
from repro.errors import BackendUnavailableError, UnboundedRateError
from repro.workloads.adversarial import lemma_4_6_routing, theorem_4_3

from tests.helpers import random_flows, random_routing

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the image bakes numpy in
    HAVE_NUMPY = False

needs_numpy = pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")


@st.composite
def clos_instances(draw, max_n=3, max_flows=12):
    """A Clos network with random flows and a random routing."""
    n = draw(st.integers(1, max_n), label="n")
    clos = ClosNetwork(n)
    num_flows = draw(st.integers(1, max_flows), label="num_flows")
    flows = FlowCollection()
    for _ in range(num_flows):
        i = draw(st.integers(1, 2 * n))
        j = draw(st.integers(1, n))
        oi = draw(st.integers(1, 2 * n))
        oj = draw(st.integers(1, n))
        flows.add_pair(clos.source(i, j), clos.destination(oi, oj))
    middles = {f: draw(st.integers(1, n), label="middle") for f in flows}
    return clos, Routing.from_middles(clos, flows, middles)


class TestQuotientExactIdentity:
    @settings(max_examples=60, deadline=None)
    @given(clos_instances())
    def test_identical_to_reference_on_random_clos(self, instance):
        """Fraction-for-Fraction identity on arbitrary routings."""
        clos, routing = instance
        capacities = clos.graph.capacities()
        reference = max_min_fair(routing, capacities, exact=True)
        quotient = quotient_max_min(routing, capacities)
        assert len(quotient) == len(reference)
        for flow in routing.flows():
            rate = quotient.rate(flow)
            assert isinstance(rate, Fraction)
            assert rate == reference.rate(flow)

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_identical_on_theorem_4_3(self, n):
        """The adversarial construction — and the symmetry pays off."""
        instance = theorem_4_3(n)
        capacities = instance.clos.graph.capacities()
        routing = lemma_4_6_routing(instance)
        reference = max_min_fair(routing, capacities, exact=True)
        q = build_quotient(routing, capacities)
        alloc = quotient_max_min(routing, capacities, quotient=q)
        for flow in routing.flows():
            assert alloc.rate(flow) == reference.rate(flow)
        # Color refinement must actually collapse the instance: the
        # construction has O(n³) flows but O(1) orbit types.
        assert len(q.flow_classes) < len(routing)

    def test_prebuilt_quotient_reused(self):
        clos = ClosNetwork(2)
        routing = random_routing(clos, random_flows(clos, 8, seed=1), seed=1)
        capacities = clos.graph.capacities()
        q = build_quotient(routing, capacities)
        direct = quotient_max_min(routing, capacities)
        reused = quotient_max_min(routing, capacities, quotient=q)
        assert direct.rates() == reused.rates()

    def test_empty_routing(self):
        assert len(quotient_max_min(Routing({}), {})) == 0

    def test_unbounded_flow_raises(self):
        clos = ClosNetwork(1)
        routing = random_routing(clos, random_flows(clos, 2, seed=0), seed=0)
        infinite = {
            link: float("inf") for link in clos.graph.capacities()
        }
        with pytest.raises(UnboundedRateError):
            quotient_max_min(routing, infinite)


@needs_numpy
class TestVectorizedAgreement:
    @settings(max_examples=60, deadline=None)
    @given(clos_instances())
    def test_agrees_with_heap_within_1e12(self, instance):
        clos, routing = instance
        capacities = clos.graph.capacities()
        heap = max_min_fair_fast(routing, capacities)
        from repro.core.vectorized import max_min_fair_vectorized

        vectorized = max_min_fair_vectorized(routing, capacities)
        for flow in routing.flows():
            assert vectorized.rate(flow) == pytest.approx(
                heap.rate(flow), abs=1e-12
            )

    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_on_dense_instances(self, seed):
        """Hundreds of flows over Clos(3) — the kernel's target regime."""
        clos = ClosNetwork(3)
        routing = random_routing(
            clos, random_flows(clos, 400, seed=seed), seed=seed
        )
        capacities = clos.graph.capacities()
        heap = max_min_fair_fast(routing, capacities)
        from repro.core.vectorized import max_min_fair_vectorized

        vectorized = max_min_fair_vectorized(routing, capacities)
        for flow in routing.flows():
            assert vectorized.rate(flow) == pytest.approx(
                heap.rate(flow), abs=1e-12
            )

    def test_compiled_incidence_reusable_across_capacities(self):
        """One compile, many capacity vectors — the flowsim usage."""
        from repro.core.vectorized import (
            capacity_vector,
            compile_routing,
            max_min_fair_vectorized,
            waterfill,
        )

        clos = ClosNetwork(2)
        routing = random_routing(clos, random_flows(clos, 20, seed=3), seed=3)
        capacities = clos.graph.capacities()
        compiled = compile_routing(routing, capacities)

        degraded = dict(capacities)
        some_link = compiled.links[0]
        degraded[some_link] = float(capacities[some_link]) / 2
        for caps in (capacities, degraded):
            reused = max_min_fair_vectorized(routing, caps, compiled=compiled)
            fresh = max_min_fair_vectorized(routing, caps)
            assert reused.rates() == fresh.rates()
            rates = waterfill(compiled, capacity_vector(compiled, caps))
            assert list(rates) == [
                reused.rate(flow) for flow in compiled.flows
            ]

    def test_unbounded_flow_raises(self):
        from repro.core.vectorized import compile_routing

        clos = ClosNetwork(1)
        routing = random_routing(clos, random_flows(clos, 2, seed=0), seed=0)
        infinite = {
            link: float("inf") for link in clos.graph.capacities()
        }
        with pytest.raises(UnboundedRateError):
            compile_routing(routing, infinite)


class TestSolveDispatch:
    def test_unknown_backend(self):
        clos = ClosNetwork(1)
        routing = random_routing(clos, random_flows(clos, 2, seed=0), seed=0)
        with pytest.raises(ValueError, match="unknown backend"):
            solve_max_min(routing, clos.graph.capacities(), backend="magic")

    @pytest.mark.parametrize("backend", ["heap", "vectorized"])
    def test_float_backend_rejects_exact(self, backend):
        clos = ClosNetwork(1)
        routing = random_routing(clos, random_flows(clos, 2, seed=0), seed=0)
        with pytest.raises(ValueError, match="float"):
            solve_max_min(
                routing, clos.graph.capacities(), backend=backend, exact=True
            )

    def test_quotient_rejects_float_mode(self):
        clos = ClosNetwork(1)
        routing = random_routing(clos, random_flows(clos, 2, seed=0), seed=0)
        with pytest.raises(ValueError, match="exact"):
            solve_max_min(
                routing, clos.graph.capacities(), backend="quotient",
                exact=False,
            )

    def test_all_backends_agree(self):
        clos = ClosNetwork(2)
        routing = random_routing(clos, random_flows(clos, 15, seed=7), seed=7)
        capacities = clos.graph.capacities()
        reference = solve_max_min(routing, capacities, backend="reference")
        for backend in BACKENDS:
            if backend in ("vectorized", "streaming") and not HAVE_NUMPY:
                continue
            alloc = solve_max_min(routing, capacities, backend=backend)
            for flow in routing.flows():
                if backend in EXACT_BACKENDS:
                    assert alloc.rate(flow) == reference.rate(flow)
                else:
                    assert alloc.rate(flow) == pytest.approx(
                        float(reference.rate(flow)), abs=1e-12
                    )

    def test_vectorized_unavailable_without_numpy(self, monkeypatch):
        """The numpy-missing path raises the typed error, not ImportError."""
        import repro.core.vectorized as vectorized

        monkeypatch.setattr(vectorized, "_np", None)
        clos = ClosNetwork(1)
        routing = random_routing(clos, random_flows(clos, 2, seed=0), seed=0)
        with pytest.raises(BackendUnavailableError):
            vectorized.max_min_fair_vectorized(
                routing, clos.graph.capacities()
            )
