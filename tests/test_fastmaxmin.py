"""Tests for the heap-accelerated water-filling implementation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bottleneck import is_max_min_fair
from repro.core.fastmaxmin import max_min_fair_fast
from repro.core.flows import Flow, FlowCollection
from repro.core.maxmin import UnboundedRateError, max_min_fair
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.graph.digraph import DiGraph

from tests.helpers import random_flows, random_routing


class TestAgainstReference:
    def test_empty(self):
        assert len(max_min_fair_fast(Routing({}), {})) == 0

    def test_single_flow(self):
        clos = ClosNetwork(1)
        f = Flow(clos.source(1, 1), clos.destination(2, 1))
        routing = Routing.uniform(clos, FlowCollection([f]), 1)
        alloc = max_min_fair_fast(routing, clos.graph.capacities())
        assert alloc.rate(f) == pytest.approx(1.0)

    @pytest.mark.parametrize("seed", range(10))
    def test_agrees_with_reference_on_clos(self, seed):
        clos = ClosNetwork(3)
        flows = random_flows(clos, 25, seed)
        routing = random_routing(clos, flows, seed)
        capacities = clos.graph.capacities()
        reference = max_min_fair(routing, capacities, exact=False)
        fast = max_min_fair_fast(routing, capacities)
        for f in flows:
            assert fast.rate(f) == pytest.approx(reference.rate(f), abs=1e-12)

    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_on_macro_switch(self, seed):
        ms = MacroSwitch(3)
        flows = random_flows(ClosNetwork(3), 20, seed)
        routing = Routing.for_macro_switch(ms, flows)
        capacities = ms.graph.capacities()
        reference = max_min_fair(routing, capacities, exact=False)
        fast = max_min_fair_fast(routing, capacities)
        for f in flows:
            assert fast.rate(f) == pytest.approx(reference.rate(f), abs=1e-12)

    @pytest.mark.parametrize("seed", range(5))
    def test_output_certified_max_min(self, seed):
        clos = ClosNetwork(3)
        flows = random_flows(clos, 20, seed)
        routing = random_routing(clos, flows, seed)
        capacities = clos.graph.capacities()
        alloc = max_min_fair_fast(routing, capacities)
        assert is_max_min_fair(routing, alloc, capacities, tol=1e-9)

    def test_unbounded_flow_raises(self):
        graph = DiGraph()
        graph.add_link("a", "b", capacity=float("inf"))
        ms = MacroSwitch(1)
        f = Flow(ms.source(1, 1), ms.destination(1, 1))
        routing = Routing({f: ("a", "b")})
        with pytest.raises(UnboundedRateError):
            max_min_fair_fast(routing, graph.capacities())

    def test_large_instance_smoke(self):
        clos = ClosNetwork(8)
        flows = random_flows(clos, 500, seed=1)
        routing = random_routing(clos, flows, seed=1)
        capacities = clos.graph.capacities()
        reference = max_min_fair(routing, capacities, exact=False)
        fast = max_min_fair_fast(routing, capacities)
        worst = max(abs(fast.rate(f) - reference.rate(f)) for f in flows)
        assert worst < 1e-10

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_hypothesis_equivalence(self, data):
        n = data.draw(st.integers(1, 3), label="n")
        clos = ClosNetwork(n)
        num_flows = data.draw(st.integers(1, 12), label="num_flows")
        flows = FlowCollection()
        for _ in range(num_flows):
            i = data.draw(st.integers(1, 2 * n))
            j = data.draw(st.integers(1, n))
            oi = data.draw(st.integers(1, 2 * n))
            oj = data.draw(st.integers(1, n))
            flows.add_pair(clos.source(i, j), clos.destination(oi, oj))
        middles = {f: data.draw(st.integers(1, n)) for f in flows}
        routing = Routing.from_middles(clos, flows, middles)
        capacities = clos.graph.capacities()
        reference = max_min_fair(routing, capacities, exact=False)
        fast = max_min_fair_fast(routing, capacities)
        for f in flows:
            assert fast.rate(f) == pytest.approx(reference.rate(f), abs=1e-12)


class TestDegradedFabrics:
    def test_zero_capacity_links_freeze_flows_at_zero(self):
        """Composition with failure injection: the heap variant handles
        failed (capacity-0) links identically to the reference."""
        from repro.core.nodes import InputSwitch, MiddleSwitch
        from repro.failures import fail_links

        clos = ClosNetwork(2)
        f1 = Flow(clos.source(1, 1), clos.destination(3, 1))
        f2 = Flow(clos.source(2, 1), clos.destination(4, 1))
        flows = FlowCollection([f1, f2])
        routing = Routing.from_middles(clos, flows, {f1: 1, f2: 2})
        degraded = fail_links(
            clos.graph.capacities(), [(InputSwitch(1), MiddleSwitch(1))]
        )
        fast = max_min_fair_fast(routing, degraded)
        reference = max_min_fair(routing, degraded, exact=False)
        assert fast.rate(f1) == reference.rate(f1) == 0.0
        assert fast.rate(f2) == reference.rate(f2) == 1.0

    def test_fractional_capacities(self):
        from fractions import Fraction

        clos = ClosNetwork(2, interior_capacity=Fraction(1, 2))
        f1 = Flow(clos.source(1, 1), clos.destination(3, 1))
        flows = FlowCollection([f1])
        routing = Routing.uniform(clos, flows, 1)
        fast = max_min_fair_fast(routing, clos.graph.capacities())
        assert fast.rate(f1) == pytest.approx(0.5)
