"""Tests for maximum-throughput allocations (Lemmas 3.2 and 5.2)."""

from fractions import Fraction

import pytest

from repro.coloring.konig import ColoringError
from repro.core.allocation import is_feasible
from repro.core.flows import Flow, FlowCollection
from repro.core.throughput import (
    link_disjoint_routing,
    max_throughput_allocation,
    max_throughput_value,
    maximum_throughput_matching,
    throughput_max_throughput,
)
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.lp.maxthroughput import max_throughput_lp_macro

from tests.helpers import random_flows


class TestLemma32:
    def test_single_flow(self):
        ms = MacroSwitch(1)
        flows = FlowCollection([Flow(ms.source(1, 1), ms.destination(1, 1))])
        assert max_throughput_value(flows) == 1
        alloc = max_throughput_allocation(flows)
        assert alloc.throughput() == 1

    def test_parallel_flows_admit_one(self):
        ms = MacroSwitch(1)
        flows = FlowCollection()
        flows.add_pair(ms.source(1, 1), ms.destination(1, 1), count=5)
        assert max_throughput_value(flows) == 1

    def test_example_3_3(self):
        """Figure 2: type-1 flows admitted, type-2 flow rejected."""
        from repro.workloads.adversarial import theorem_3_4

        instance = theorem_3_4(1, 1)
        alloc = max_throughput_allocation(instance.flows)
        assert alloc.throughput() == 2
        type2 = instance.types["type2"][0]
        assert alloc.rate(type2) == 0
        for f in instance.types["type1"]:
            assert alloc.rate(f) == 1

    def test_rates_are_zero_one(self):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 12, seed=3)
        alloc = max_throughput_allocation(flows)
        assert set(alloc.rates().values()) <= {Fraction(0), Fraction(1)}

    def test_matching_is_a_matching(self):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 12, seed=4)
        matched = maximum_throughput_matching(flows)
        sources = [f.source for f in matched]
        dests = [f.dest for f in matched]
        assert len(set(sources)) == len(sources)
        assert len(set(dests)) == len(dests)

    @pytest.mark.parametrize("seed", range(6))
    def test_agrees_with_lp_relaxation(self, seed):
        """Bipartite matching LP integrality: combinatorial == LP optimum."""
        clos = ClosNetwork(2)
        flows = random_flows(clos, 14, seed=seed)
        combinatorial = max_throughput_value(flows)
        lp = max_throughput_lp_macro(flows)
        assert abs(lp - combinatorial) < 1e-7

    @pytest.mark.parametrize("seed", range(6))
    def test_throughput_at_least_max_min(self, seed):
        """T^MT ≥ T^MmF by definition of maximum throughput."""
        from repro.core.objectives import macro_switch_max_min

        clos = ClosNetwork(2)
        ms = MacroSwitch(2)
        flows = random_flows(clos, 10, seed=seed)
        t_mt = max_throughput_value(flows)
        t_mmf = macro_switch_max_min(ms, flows).throughput()
        assert t_mt >= t_mmf


class TestLemma52:
    def test_permutation_traffic_fully_routable(self):
        """One flow per server pairing routes link-disjointly at rate 1."""
        from repro.workloads.stochastic import permutation

        clos = ClosNetwork(3)
        flows = permutation(clos, seed=0)
        routing, alloc = throughput_max_throughput(clos, flows)
        assert alloc.throughput() == len(flows)  # perfect matching
        assert is_feasible(routing, alloc, clos.graph.capacities())

    @pytest.mark.parametrize("seed", range(5))
    def test_t_mt_equals_t_tmt(self, seed):
        clos = ClosNetwork(3)
        flows = random_flows(clos, 25, seed=seed)
        routing, alloc = throughput_max_throughput(clos, flows)
        assert alloc.throughput() == max_throughput_value(flows)
        assert is_feasible(routing, alloc, clos.graph.capacities())

    def test_matched_flows_rate_one_others_zero(self):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 10, seed=1)
        matched = maximum_throughput_matching(flows)
        _, alloc = throughput_max_throughput(clos, flows)
        for f in flows:
            assert alloc.rate(f) == (1 if f in matched else 0)

    def test_link_disjoint_routing_is_link_disjoint(self):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 10, seed=2)
        matched_map = maximum_throughput_matching(flows)
        matched = FlowCollection(f for f in flows if f in matched_map)
        routing = link_disjoint_routing(clos, matched)
        for link, members in routing.flows_per_link().items():
            # interior links carry at most one matched flow; server links
            # also at most one (it's a matching on servers)
            assert len(members) == 1

    def test_overloaded_demand_graph_rejected(self):
        """G^C degree above n cannot be colored with n colors."""
        clos = ClosNetwork(2)
        flows = FlowCollection()
        # 3 flows out of input switch 1's servers exceed n = 2 colors
        flows.add_pair(clos.source(1, 1), clos.destination(3, 1))
        flows.add_pair(clos.source(1, 1), clos.destination(3, 2))
        flows.add_pair(clos.source(1, 2), clos.destination(4, 1))
        with pytest.raises(ColoringError):
            link_disjoint_routing(clos, flows)
