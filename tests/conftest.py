"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Tuple

import pytest

from repro.core.flows import Flow, FlowCollection
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork, MacroSwitch


@pytest.fixture
def clos2() -> ClosNetwork:
    return ClosNetwork(2)


@pytest.fixture
def clos3() -> ClosNetwork:
    return ClosNetwork(3)


@pytest.fixture
def macro2() -> MacroSwitch:
    return MacroSwitch(2)


@pytest.fixture
def macro3() -> MacroSwitch:
    return MacroSwitch(3)


def random_flows(
    network: ClosNetwork, num_flows: int, seed: int
) -> FlowCollection:
    """Uniform random flows on ``network`` (deterministic given seed)."""
    rng = random.Random(seed)
    flows = FlowCollection()
    for _ in range(num_flows):
        source = rng.choice(network.sources)
        dest = rng.choice(network.destinations)
        flows.add_pair(source, dest)
    return flows


def random_routing(
    network: ClosNetwork, flows: FlowCollection, seed: int
) -> Routing:
    """Uniform random middle-switch assignment."""
    rng = random.Random(seed)
    middles = {flow: rng.randint(1, network.n) for flow in flows}
    return Routing.from_middles(network, flows, middles)


def single_flow(network) -> Tuple[FlowCollection, Flow]:
    """One flow between the first source and first destination."""
    flow = Flow(network.sources[0], network.destinations[0])
    return FlowCollection([flow]), flow


def frac(numerator: int, denominator: int = 1) -> Fraction:
    return Fraction(numerator, denominator)


def exact_vector(values: List[Tuple[int, int]]) -> List[Fraction]:
    """Build [Fraction(p, q), ...] from (p, q) pairs."""
    return [Fraction(p, q) for p, q in values]
