"""Unit and property tests for allocations and lexicographic order."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    Allocation,
    is_feasible,
    lex_compare,
    lex_greater_or_equal,
    link_utilizations,
)
from repro.core.flows import Flow, FlowCollection
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork, MacroSwitch


@pytest.fixture
def clos():
    return ClosNetwork(2)


def _flow(clos, i=1, j=1, oi=1, oj=1, tag=0):
    return Flow(clos.source(i, j), clos.destination(oi, oj), tag)


class TestAllocation:
    def test_negative_rate_rejected(self, clos):
        with pytest.raises(ValueError, match="negative"):
            Allocation({_flow(clos): -1})

    def test_zero_rate_allowed(self, clos):
        a = Allocation({_flow(clos): 0})
        assert a.throughput() == 0

    def test_throughput_sums(self, clos):
        a = Allocation(
            {_flow(clos): Fraction(1, 3), _flow(clos, tag=1): Fraction(2, 3)}
        )
        assert a.throughput() == 1

    def test_sorted_vector_ascending(self, clos):
        a = Allocation(
            {
                _flow(clos): Fraction(2, 3),
                _flow(clos, tag=1): Fraction(1, 3),
                _flow(clos, tag=2): Fraction(1, 2),
            }
        )
        assert a.sorted_vector() == [Fraction(1, 3), Fraction(1, 2), Fraction(2, 3)]

    def test_rates_copy(self, clos):
        f = _flow(clos)
        a = Allocation({f: 1})
        a.rates()[f] = 99
        assert a.rate(f) == 1

    def test_as_float(self, clos):
        a = Allocation({_flow(clos): Fraction(1, 3)}).as_float()
        assert isinstance(a.rate(_flow(clos)), float)

    def test_getitem_and_contains(self, clos):
        f = _flow(clos)
        a = Allocation({f: 1})
        assert a[f] == 1
        assert f in a
        assert _flow(clos, tag=9) not in a


class TestLexCompare:
    def test_equal(self):
        assert lex_compare([1, 2], [1, 2]) == 0

    def test_first_component_decides(self):
        assert lex_compare([1, 5], [2, 0]) == -1
        assert lex_compare([2, 0], [1, 5]) == 1

    def test_later_component_decides(self):
        assert lex_compare([1, 3], [1, 2]) == 1

    def test_prefix_is_smaller(self):
        assert lex_compare([1], [1, 2]) == -1
        assert lex_compare([1, 2], [1]) == 1

    def test_exact_fractions(self):
        assert lex_compare([Fraction(1, 3)], [Fraction(1, 3)]) == 0
        assert lex_compare([Fraction(1, 3)], [Fraction(1, 3) + Fraction(1, 10**12)]) == -1

    def test_tolerance(self):
        assert lex_compare([0.3333333], [1 / 3], tol=1e-6) == 0
        assert lex_compare([0.3333333], [1 / 3], tol=1e-9) == -1

    def test_greater_or_equal(self):
        assert lex_greater_or_equal([2], [1])
        assert lex_greater_or_equal([1], [1])
        assert not lex_greater_or_equal([0], [1])

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 5), max_size=6),
        st.lists(st.integers(0, 5), max_size=6),
    )
    def test_antisymmetry(self, a, b):
        assert lex_compare(a, b) == -lex_compare(b, a)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(0, 5), max_size=6))
    def test_reflexive(self, a):
        assert lex_compare(a, a) == 0

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.integers(0, 3), max_size=4),
        st.lists(st.integers(0, 3), max_size=4),
        st.lists(st.integers(0, 3), max_size=4),
    )
    def test_transitivity(self, a, b, c):
        if lex_compare(a, b) >= 0 and lex_compare(b, c) >= 0:
            assert lex_compare(a, c) >= 0


class TestFeasibility:
    def test_feasible_simple(self, clos):
        f = _flow(clos, oi=3)
        flows = FlowCollection([f])
        routing = Routing.uniform(clos, flows, 1)
        assert is_feasible(routing, Allocation({f: 1}), clos.graph.capacities())

    def test_overload_detected(self, clos):
        flows = FlowCollection()
        pair = flows.add_pair(clos.source(1, 1), clos.destination(3, 1), count=2)
        routing = Routing.uniform(clos, flows, 1)
        alloc = Allocation({pair[0]: Fraction(2, 3), pair[1]: Fraction(2, 3)})
        assert not is_feasible(routing, alloc, clos.graph.capacities())

    def test_exactly_at_capacity_is_feasible(self, clos):
        flows = FlowCollection()
        pair = flows.add_pair(clos.source(1, 1), clos.destination(3, 1), count=2)
        routing = Routing.uniform(clos, flows, 1)
        alloc = Allocation({pair[0]: Fraction(1, 2), pair[1]: Fraction(1, 2)})
        assert is_feasible(routing, alloc, clos.graph.capacities())

    def test_infinite_links_never_bind(self):
        ms = MacroSwitch(1)
        flows = FlowCollection()
        # Two flows from different sources to different destinations share
        # only the infinite interior link I1->O1.
        f1 = flows.add(Flow(ms.source(1, 1), ms.destination(1, 1)))
        f2 = flows.add(Flow(ms.source(2, 1), ms.destination(2, 1)))
        routing = Routing.for_macro_switch(ms, flows)
        alloc = Allocation({f1: 1, f2: 1})
        assert is_feasible(routing, alloc, ms.graph.capacities())

    def test_tolerance_allows_rounding(self, clos):
        flows = FlowCollection()
        pair = flows.add_pair(clos.source(1, 1), clos.destination(3, 1), count=2)
        routing = Routing.uniform(clos, flows, 1)
        alloc = Allocation({pair[0]: 0.5 + 1e-12, pair[1]: 0.5})
        assert not is_feasible(routing, alloc, clos.graph.capacities())
        assert is_feasible(routing, alloc, clos.graph.capacities(), tol=1e-9)


class TestLinkUtilizations:
    def test_utilizations(self, clos):
        f = _flow(clos, oi=3)
        flows = FlowCollection([f])
        routing = Routing.uniform(clos, flows, 1)
        utils = link_utilizations(
            routing, Allocation({f: Fraction(1, 2)}), clos.graph.capacities()
        )
        assert all(u == Fraction(1, 2) for u in utils.values())
        assert len(utils) == 4

    def test_infinite_links_excluded(self):
        ms = MacroSwitch(1)
        f = Flow(ms.source(1, 1), ms.destination(2, 1))
        routing = Routing.for_macro_switch(ms, FlowCollection([f]))
        utils = link_utilizations(routing, Allocation({f: 1}), ms.graph.capacities())
        assert len(utils) == 2  # only the two server links
