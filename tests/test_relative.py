"""Tests for relative-max-min fairness (§7's proposed objective)."""

from fractions import Fraction

import pytest

from repro.core.allocation import Allocation, lex_compare
from repro.core.flows import Flow, FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.objectives import lex_max_min_fair, macro_switch_max_min
from repro.core.relative import (
    floor_of_routing,
    improve_routing_relative,
    ratio_vector,
    relative_max_min_fair,
)
from repro.core.routing import Routing, all_middle_assignments
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.workloads.adversarial import example_2_3, lemma_4_6_routing, theorem_4_3

from tests.helpers import random_flows


class TestRatioVector:
    def test_sorted_ascending(self):
        clos = ClosNetwork(2)
        f1 = Flow(clos.source(1, 1), clos.destination(3, 1))
        f2 = Flow(clos.source(1, 2), clos.destination(3, 2))
        network_alloc = Allocation({f1: Fraction(1, 2), f2: Fraction(1)})
        macro_alloc = Allocation({f1: Fraction(1), f2: Fraction(1)})
        assert ratio_vector(network_alloc, macro_alloc) == [
            Fraction(1, 2),
            Fraction(1),
        ]

    def test_zero_macro_rate_skipped(self):
        clos = ClosNetwork(2)
        f1 = Flow(clos.source(1, 1), clos.destination(3, 1))
        f2 = Flow(clos.source(1, 2), clos.destination(3, 2))
        network_alloc = Allocation({f1: 1, f2: 1})
        macro_alloc = Allocation({f1: 0, f2: 1})
        assert ratio_vector(network_alloc, macro_alloc) == [1]

    def test_all_zero_macro_raises(self):
        clos = ClosNetwork(2)
        f1 = Flow(clos.source(1, 1), clos.destination(3, 1))
        with pytest.raises(ValueError):
            ratio_vector(Allocation({f1: 1}), Allocation({f1: 0}))


class TestExactSolver:
    def test_empty_raises(self):
        with pytest.raises(ValueError):
            relative_max_min_fair(ClosNetwork(2), FlowCollection())

    def test_single_flow_floor_one(self):
        clos = ClosNetwork(2)
        flows = FlowCollection([Flow(clos.source(1, 1), clos.destination(3, 1))])
        result = relative_max_min_fair(clos, flows)
        assert result.floor == 1

    def test_example_2_3_floor_beats_lex(self):
        """On Figure 1's instance relative-max-min achieves floor 3/4,
        strictly better than lex-max-min's 2/3 — the objectives differ."""
        instance = example_2_3()
        macro = macro_switch_max_min(instance.macro, instance.flows)
        result = relative_max_min_fair(
            instance.clos, instance.flows, macro_allocation=macro
        )
        assert result.floor == Fraction(3, 4)
        lex = lex_max_min_fair(instance.clos, instance.flows)
        lex_floor = ratio_vector(lex.allocation, macro)[0]
        assert lex_floor == Fraction(2, 3)
        assert result.floor > lex_floor

    @pytest.mark.parametrize("seed", range(3))
    def test_dominates_every_routing(self, seed):
        """Definition check: the optimum's ratio vector lex-dominates all."""
        clos = ClosNetwork(2)
        flows = random_flows(clos, 4, seed=seed)
        macro = macro_switch_max_min(MacroSwitch(2), flows)
        optimum = relative_max_min_fair(clos, flows, macro_allocation=macro)
        capacities = clos.graph.capacities()
        for assignment in all_middle_assignments(flows, clos.n):
            routing = Routing.from_middles(clos, flows, assignment)
            alloc = max_min_fair(routing, capacities)
            ratios = ratio_vector(alloc, macro)
            assert lex_compare(optimum.ratio_vector, ratios) >= 0

    def test_symmetry_reduction_lossless(self):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 5, seed=9)
        with_sym = relative_max_min_fair(clos, flows, use_symmetry=True)
        without = relative_max_min_fair(clos, flows, use_symmetry=False)
        assert with_sym.ratio_vector == without.ratio_vector
        assert with_sym.examined < without.examined

    def test_floor_never_exceeds_one_sided_bound(self):
        """The floor is at most 1: no routing can give every flow more
        than its macro-switch rate (macro lex-dominates all)."""
        clos = ClosNetwork(2)
        for seed in range(3):
            flows = random_flows(clos, 5, seed=seed)
            result = relative_max_min_fair(clos, flows)
            assert result.floor <= 1


class TestLocalSearch:
    def test_never_worse_than_start(self):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 6, seed=1)
        macro = macro_switch_max_min(MacroSwitch(2), flows)
        start = Routing.uniform(clos, flows, 1)
        start_floor = floor_of_routing(clos, start, macro)
        improved = improve_routing_relative(clos, start, macro)
        assert improved.floor >= start_floor

    def test_bounded_by_exact_optimum(self):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 5, seed=2)
        macro = macro_switch_max_min(MacroSwitch(2), flows)
        exact = relative_max_min_fair(clos, flows, macro_allocation=macro)
        local = improve_routing_relative(
            clos, Routing.uniform(clos, flows, 1), macro
        )
        assert lex_compare(exact.ratio_vector, local.ratio_vector) >= 0

    def test_max_rounds_zero_is_identity(self):
        clos = ClosNetwork(2)
        flows = random_flows(clos, 4, seed=3)
        macro = macro_switch_max_min(MacroSwitch(2), flows)
        start = Routing.uniform(clos, flows, 1)
        result = improve_routing_relative(clos, start, macro, max_rounds=0)
        assert result.routing.middles(clos) == start.middles(clos)

    def test_theorem_4_3_floor_escapes_one_over_n(self):
        """The E9 headline: relative-max-min re-balancing lifts the floor
        of the Theorem 4.3 instance from 1/3 to 3/4 — starvation is a
        property of the lex objective, not (only) of the topology."""
        instance = theorem_4_3(3)
        macro = macro_switch_max_min(instance.macro, instance.flows)
        lex_routing = lemma_4_6_routing(instance)
        assert floor_of_routing(instance.clos, lex_routing, macro) == Fraction(1, 3)
        improved = improve_routing_relative(
            instance.clos, lex_routing, macro, max_rounds=50
        )
        assert improved.floor == Fraction(3, 4)


class TestFloorConjecture:
    """Empirical finding of this reproduction (the §7 open question).

    On the Theorem 4.3 construction, relative-max-min local search
    achieves floor n/(n+1) — attained simultaneously by the type-3 flow
    and the type-2 flows it trades against — by breaking Claim 4.5's
    rigid structure: one type-1 group splits across middles and the
    type-2.b flows spread unevenly (n, n−1, …, 1 per middle), leaving
    the type-3 flow's exit link lightly loaded.  Since n/(n+1) → 1, the
    macro abstraction is *asymptotically achievable in the relative
    sense* on the very family that starves lex-max-min to 1/n.
    """

    @pytest.mark.parametrize("n", [3, 4])
    def test_floor_is_n_over_n_plus_one(self, n):
        from repro.core.objectives import macro_switch_max_min as msm
        from repro.workloads.adversarial import (
            lemma_4_6_routing as l46,
            theorem_4_3 as t43,
        )

        instance = t43(n)
        macro = msm(instance.macro, instance.flows)
        result = improve_routing_relative(
            instance.clos, l46(instance), macro, max_rounds=60
        )
        assert result.floor == Fraction(n, n + 1)

    def test_floor_attained_by_type3_and_sacrificed_type2(self):
        from repro.core.objectives import macro_switch_max_min as msm
        from repro.workloads.adversarial import (
            lemma_4_6_routing as l46,
            theorem_4_3 as t43,
        )

        instance = t43(3)
        macro = msm(instance.macro, instance.flows)
        result = improve_routing_relative(
            instance.clos, l46(instance), macro, max_rounds=60
        )
        (type3,) = instance.types["type3"]
        assert result.allocation.rate(type3) / macro.rate(type3) == Fraction(3, 4)
        type2_ratios = {
            result.allocation.rate(f) / macro.rate(f)
            for f in instance.types["type2"]
        }
        assert Fraction(3, 4) in type2_ratios  # the trade's other side
        # type-1 flows keep their macro rates fully
        for f in instance.types["type1"]:
            assert result.allocation.rate(f) == macro.rate(f)
