"""Tests for the chaos fuzzing harness (``repro.chaos``)."""

import pytest

from repro.chaos import (
    ChaosInstance,
    churn_snapshots,
    cross_check,
    fuzz,
    random_instance,
)
from repro.core.maxmin import max_min_fair
from repro.errors import CertificateError
from repro.validate import set_validation_level, validation

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the image bakes numpy in
    HAVE_NUMPY = False


@pytest.fixture(autouse=True)
def clean_state(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)
    monkeypatch.setenv("REPRO_QUARANTINE_DIR", str(tmp_path / "quarantine"))
    set_validation_level(None)
    yield
    set_validation_level(None)


class TestGeneration:
    def test_deterministic(self):
        first = random_instance(7)
        second = random_instance(7)
        assert first.name == second.name
        assert first.routing.fingerprint() == second.routing.fingerprint()
        assert first.capacities == second.capacities

    def test_seeds_vary_the_shape(self):
        names = {random_instance(seed).name for seed in range(30)}
        assert len(names) > 5  # sizes, shapes, and mutations all vary

    def test_instances_are_solvable(self):
        # Every generated instance must at least be accepted by the
        # exact reference solver under the full certificate.
        for seed in range(10):
            instance = random_instance(seed)
            with validation("full"):
                max_min_fair(
                    instance.routing, instance.capacities, exact=True
                )

    def test_churn_snapshots_deterministic(self):
        first = churn_snapshots(3)
        second = churn_snapshots(3)
        assert len(first) == len(second)
        assert [i.name for i in first] == [i.name for i in second]
        assert all(
            a.routing.fingerprint() == b.routing.fingerprint()
            and a.capacities == b.capacities
            for a, b in zip(first, second)
        )

    def test_churn_snapshots_capture_degraded_capacities(self):
        # Across a few seeds, at least one brownout snapshot must show a
        # capacity below its healthy value — otherwise the churn stream
        # is not exercising the failure path at all.
        degraded = False
        for seed in range(6):
            for snapshot in churn_snapshots(seed):
                if any(c != 1 for c in snapshot.capacities.values()):
                    degraded = True
        assert degraded


class TestCrossCheck:
    def test_healthy_backends_agree(self):
        for seed in (0, 1, 2):
            assert cross_check(random_instance(seed)) == []

    def test_corrupt_backend_detected_and_quarantined(
        self, clos2, monkeypatch, tmp_path
    ):
        import repro.core.fastmaxmin as fastmaxmin_module

        original = fastmaxmin_module.max_min_fair_fast

        def skewed(routing, capacities):
            allocation = original(routing, capacities)
            rates = allocation.rates()
            victim = next(iter(rates))
            rates[victim] = rates[victim] * 3 + 0.25
            return type(allocation)(rates)

        monkeypatch.setattr(
            fastmaxmin_module, "max_min_fair_fast", skewed
        )
        instance = random_instance(0)
        failures = cross_check(instance, backends=["heap"])
        assert failures
        assert all(f["backend"] == "heap" for f in failures)
        assert all(f["bundle"] for f in failures)
        kinds = {f["kind"] for f in failures}
        assert kinds <= {"certificate", "disagreement"}

    def test_error_mismatch_detected(self, monkeypatch):
        import repro.core.fastmaxmin as fastmaxmin_module
        from repro.errors import UnboundedRateError

        def refuses(routing, capacities):
            raise UnboundedRateError("injected refusal")

        monkeypatch.setattr(
            fastmaxmin_module, "max_min_fair_fast", refuses
        )
        failures = cross_check(random_instance(0), backends=["heap"])
        assert len(failures) == 1
        assert failures[0]["kind"] == "error-mismatch"


class TestFuzz:
    def test_clean_run_reports_zero_failures(self):
        report = fuzz(4, churn_every=0)
        assert report.seeds == 4
        assert report.instances == 4
        assert report.failures == []
        assert report.bundles == []

    def test_churn_adds_instances(self):
        without = fuzz(2, churn_every=0)
        with_churn = fuzz(2, churn_every=1)
        assert with_churn.instances > without.instances

    def test_negative_seeds_rejected(self):
        with pytest.raises(ValueError, match="seeds"):
            fuzz(-1)

    def test_corrupt_backend_fails_the_run(self, monkeypatch):
        import repro.core.fastmaxmin as fastmaxmin_module
        from repro.errors import UnboundedRateError

        def refuses(routing, capacities):
            raise UnboundedRateError("injected refusal")

        monkeypatch.setattr(
            fastmaxmin_module, "max_min_fair_fast", refuses
        )
        report = fuzz(2, backends=["heap"], churn_every=0)
        assert report.failures
        assert report.bundles  # every failure quarantined for replay
