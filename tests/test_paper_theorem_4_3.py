"""Paper reproduction — Theorem 4.3 (R2, part 2): 1/n starvation.

We verify each stepping stone the proof uses:

- Lemma 4.4 (macro-switch rates) by direct water-filling;
- Claim 4.5 (the integer-solutions argument) by enumeration, plus its
  second condition on a feasibility witness;
- Lemma 4.6 Step 1 (the posited allocation is max-min fair for the
  constructed routing) via the bottleneck certificate;
- Lemma 4.6 Step 2's *necessary* condition (no single-flow move
  improves the sorted vector) via local search;
- the headline 1/n factor across network sizes.
"""

from fractions import Fraction

import pytest

from repro.core.bottleneck import certify_max_min_fair
from repro.core.maxmin import max_min_fair
from repro.core.objectives import macro_switch_max_min
from repro.core.theorems import theorem_4_3 as predict
from repro.experiments.r2_starvation import claim_4_5_integer_solutions
from repro.search.local_search import is_local_optimum
from repro.workloads.adversarial import lemma_4_6_routing, theorem_4_3


@pytest.fixture(scope="module", params=[3, 4, 5])
def sized(request):
    n = request.param
    instance = theorem_4_3(n)
    return n, instance


class TestLemma44:
    def test_macro_rates(self, sized):
        n, instance = sized
        prediction = predict(n)
        alloc = macro_switch_max_min(instance.macro, instance.flows)
        for f in instance.types["type1"]:
            assert alloc.rate(f) == prediction.macro_rates["type1"]
        for f in instance.types["type2"]:
            assert alloc.rate(f) == prediction.macro_rates["type2"]
        (type3,) = instance.types["type3"]
        assert alloc.rate(type3) == 1

    def test_macro_allocation_certified(self, sized):
        from repro.core.routing import Routing

        _, instance = sized
        routing = Routing.for_macro_switch(instance.macro, instance.flows)
        capacities = instance.macro.graph.capacities()
        alloc = max_min_fair(routing, capacities)
        assert certify_max_min_fair(routing, alloc, capacities) is None


class TestClaim45:
    @pytest.mark.parametrize("n", [3, 4, 5, 7, 10])
    def test_only_two_integer_solutions(self, n):
        """x/(n+1) + y/n = 1 admits exactly (0, n) and (n+1, 0)."""
        assert claim_4_5_integer_solutions(n) == [(0, n), (n + 1, 0)]

    def test_condition_2_on_witness_routing(self, sized):
        """On the Lemma 4.6 routing, each middle switch carries exactly
        n−1 type-2.b flows (Claim 4.5's second condition)."""
        n, instance = sized
        routing = lemma_4_6_routing(instance)
        counts = {m: 0 for m in range(1, n + 1)}
        for f in instance.types["type2b"]:
            counts[routing.middle_of(instance.clos, f).index] += 1
        assert all(count == n - 1 for count in counts.values())

    def test_condition_1_on_witness_routing(self, sized):
        """Per (input switch, middle): either n+1 type-1 and no type-2
        flows, or 0 type-1 and n type-2 flows."""
        n, instance = sized
        routing = lemma_4_6_routing(instance)
        per_cell = {}
        for f in instance.types["type1"]:
            cell = (f.source.switch, routing.middle_of(instance.clos, f).index)
            x, y = per_cell.get(cell, (0, 0))
            per_cell[cell] = (x + 1, y)
        for f in instance.types["type2"]:
            cell = (f.source.switch, routing.middle_of(instance.clos, f).index)
            x, y = per_cell.get(cell, (0, 0))
            per_cell[cell] = (x, y + 1)
        for (i, m), (x, y) in per_cell.items():
            if i <= n:  # the type-3 flow's switch n+1 is exempt
                assert (x, y) in {(n + 1, 0), (0, n)}, (i, m, x, y)


class TestLemma46:
    def test_step1_posited_allocation_is_max_min_for_routing(self, sized):
        n, instance = sized
        prediction = predict(n)
        routing = lemma_4_6_routing(instance)
        capacities = instance.clos.graph.capacities()
        alloc = max_min_fair(routing, capacities)
        for f in instance.types["type1"]:
            assert alloc.rate(f) == prediction.lex_max_min_rates["type1"]
        for f in instance.types["type2"]:
            assert alloc.rate(f) == prediction.lex_max_min_rates["type2"]
        (type3,) = instance.types["type3"]
        assert alloc.rate(type3) == prediction.lex_max_min_rates["type3"]
        assert certify_max_min_fair(routing, alloc, capacities) is None

    def test_type3_bottleneck_moves_inside(self, sized):
        """'its bottleneck link in the Clos network is M_n O_{n+1}'."""
        from repro.core.bottleneck import bottleneck_links
        from repro.core.nodes import MiddleSwitch, OutputSwitch

        n, instance = sized
        routing = lemma_4_6_routing(instance)
        capacities = instance.clos.graph.capacities()
        alloc = max_min_fair(routing, capacities)
        (type3,) = instance.types["type3"]
        links = bottleneck_links(routing, alloc, capacities, type3)
        assert links == [(MiddleSwitch(n), OutputSwitch(n + 1))]

    def test_step2_necessary_condition_local_optimality(self):
        """No single-flow reroute lex-improves the posited optimum
        (n = 3 only: each probe is a full water-filling)."""
        instance = theorem_4_3(3)
        routing = lemma_4_6_routing(instance)
        assert is_local_optimum(instance.clos, routing, objective="lex")


class TestHeadline:
    def test_starvation_factor_one_over_n(self, sized):
        n, instance = sized
        macro = macro_switch_max_min(instance.macro, instance.flows)
        alloc = max_min_fair(
            lemma_4_6_routing(instance), instance.clos.graph.capacities()
        )
        (type3,) = instance.types["type3"]
        assert alloc.rate(type3) / macro.rate(type3) == Fraction(1, n)

    def test_starvation_worsens_with_size(self):
        factors = []
        for n in (3, 5, 7):
            instance = theorem_4_3(n)
            macro = macro_switch_max_min(instance.macro, instance.flows)
            alloc = max_min_fair(
                lemma_4_6_routing(instance), instance.clos.graph.capacities()
            )
            (type3,) = instance.types["type3"]
            factors.append(alloc.rate(type3) / macro.rate(type3))
        assert factors == sorted(factors, reverse=True)
        assert factors[-1] == Fraction(1, 7)


class TestClaim45Exhaustive:
    def test_all_feasible_routings_satisfy_both_conditions(self):
        """Claim 4.5 verified over the COMPLETE set of feasible routings
        (modulo interior-preserving symmetries) at n = 3 — at this size
        exactly one canonical routing carries the macro rates at all."""
        from repro.experiments.r2_starvation import claim_4_5_all_routings

        verification = claim_4_5_all_routings(3)
        assert verification.exhausted
        assert verification.num_routings == 1
        assert verification.condition_1_holds
        assert verification.condition_2_holds
