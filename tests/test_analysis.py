"""Tests for metrics and reporting helpers."""

from fractions import Fraction

import pytest

from repro.analysis.metrics import (
    compare_to_macro,
    jain_fairness_index,
    price_of_fairness,
    relative_max_min_floor,
    summarize_rates,
    throughput_gain,
)
from repro.analysis.reporting import format_cell, format_series, format_table
from repro.core.allocation import Allocation
from repro.core.flows import Flow
from repro.core.nodes import Destination, Source


def _flows(count):
    return [Flow(Source(1, 1), Destination(1, 1), tag=i) for i in range(count)]


class TestPriceOfFairness:
    def test_no_loss(self):
        assert price_of_fairness(Fraction(2), Fraction(2)) == 0

    def test_quarter_loss(self):
        # Example 3.3: T^MmF = 3/2, T^MT = 2.
        assert price_of_fairness(Fraction(3, 2), Fraction(2)) == Fraction(1, 4)

    def test_zero_max_throughput(self):
        assert price_of_fairness(Fraction(0), Fraction(0)) == 0


class TestThroughputGain:
    def test_gain(self):
        assert throughput_gain(Fraction(5), Fraction(9, 2)) == Fraction(10, 9)

    def test_zero_macro_raises(self):
        with pytest.raises(ValueError):
            throughput_gain(Fraction(1), Fraction(0))


class TestCompareToMacro:
    def test_ratios(self):
        f1, f2 = _flows(2)
        network = Allocation({f1: Fraction(1, 3), f2: Fraction(1)})
        macro = Allocation({f1: Fraction(1), f2: Fraction(1)})
        comparison = compare_to_macro(network, macro)
        assert comparison.ratios[f1] == Fraction(1, 3)
        assert comparison.min_ratio == Fraction(1, 3)
        assert comparison.max_ratio == 1
        assert comparison.num_degraded == 1
        assert comparison.num_starved == 0

    def test_starved_flows_counted(self):
        f1, f2 = _flows(2)
        network = Allocation({f1: 0, f2: Fraction(1, 2)})
        macro = Allocation({f1: Fraction(1), f2: Fraction(1)})
        comparison = compare_to_macro(network, macro)
        assert comparison.num_starved == 1
        assert comparison.min_ratio == 0

    def test_zero_macro_rate_skipped(self):
        f1, f2 = _flows(2)
        network = Allocation({f1: 1, f2: 1})
        macro = Allocation({f1: 0, f2: 1})
        comparison = compare_to_macro(network, macro)
        assert f1 not in comparison.ratios

    def test_no_comparable_flows_raises(self):
        (f1,) = _flows(1)
        with pytest.raises(ValueError):
            compare_to_macro(Allocation({f1: 1}), Allocation({f1: 0}))

    def test_relative_max_min_floor(self):
        f1, f2 = _flows(2)
        network = Allocation({f1: Fraction(1, 4), f2: Fraction(1, 2)})
        macro = Allocation({f1: Fraction(1), f2: Fraction(1, 2)})
        comparison = compare_to_macro(network, macro)
        assert relative_max_min_floor(comparison) == Fraction(1, 4)


class TestJain:
    def test_equal_rates_index_one(self):
        flows = _flows(4)
        alloc = Allocation({f: Fraction(1, 4) for f in flows})
        assert jain_fairness_index(alloc) == pytest.approx(1.0)

    def test_single_hog_index_one_over_n(self):
        flows = _flows(4)
        rates = {f: 0 for f in flows}
        rates[flows[0]] = 1
        assert jain_fairness_index(Allocation(rates)) == pytest.approx(0.25)

    def test_empty_allocation(self):
        assert jain_fairness_index(Allocation({})) == 1.0

    def test_all_zero(self):
        flows = _flows(3)
        assert jain_fairness_index(Allocation({f: 0 for f in flows})) == 1.0


class TestSummarize:
    def test_summary_fields(self):
        flows = _flows(3)
        alloc = Allocation(
            {flows[0]: Fraction(1, 4), flows[1]: Fraction(1, 2), flows[2]: 1}
        )
        summary = summarize_rates(alloc)
        assert summary["throughput"] == pytest.approx(1.75)
        assert summary["min_rate"] == pytest.approx(0.25)
        assert summary["median_rate"] == pytest.approx(0.5)
        assert summary["max_rate"] == pytest.approx(1.0)

    def test_empty(self):
        summary = summarize_rates(Allocation({}))
        assert summary["throughput"] == 0.0
        assert summary["jain"] == 1.0


class TestReporting:
    def test_format_cell_fraction(self):
        assert format_cell(Fraction(1, 3)) == "1/3 (0.3333)"
        assert format_cell(Fraction(4, 2)) == "2"

    def test_format_cell_float_and_str(self):
        assert format_cell(0.5) == "0.5000"
        assert format_cell("x") == "x"
        assert format_cell(7) == "7"

    def test_format_table_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["long-name", 22]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert len(lines) == 5

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_format_series(self):
        out = format_series(
            "n", [3, 5], {"measured": [1, 2], "predicted": [1, 2]}
        )
        lines = out.splitlines()
        assert lines[0].split() == ["n", "measured", "predicted"]
        assert len(lines) == 4
