"""Unit tests for the simulation substrate: event queue and workloads."""

import pytest

from repro.core.topology import ClosNetwork
from repro.sim.events import EventQueue
from repro.sim.jobs import FlowJob, incast_burst, poisson_workload


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        q.push(3.0, "c", None)
        q.push(1.0, "a", None)
        q.push(2.0, "b", None)
        assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_stable_for_ties(self):
        q = EventQueue()
        q.push(1.0, "first", None)
        q.push(1.0, "second", None)
        assert q.pop().kind == "first"
        assert q.pop().kind == "second"

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.push(1.0, "a", "payload")
        assert q.peek().kind == "a"
        assert len(q) == 1

    def test_empty_peek(self):
        assert EventQueue().peek() is None

    def test_bool_and_len(self):
        q = EventQueue()
        assert not q
        q.push(0.0, "a", None)
        assert q
        assert len(q) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().push(-1.0, "a", None)

    def test_payload_passthrough(self):
        q = EventQueue()
        sentinel = object()
        q.push(1.0, "a", sentinel)
        assert q.pop().payload is sentinel


class TestPoissonWorkload:
    @pytest.fixture
    def clos(self):
        return ClosNetwork(2)

    def test_arrivals_sorted_and_within_horizon(self, clos):
        jobs = poisson_workload(clos, rate=3.0, horizon=20.0, seed=0)
        arrivals = [j.arrival for j in jobs]
        assert arrivals == sorted(arrivals)
        assert all(0 < a <= 20.0 for a in arrivals)

    def test_deterministic(self, clos):
        a = poisson_workload(clos, rate=2.0, horizon=10.0, seed=5)
        b = poisson_workload(clos, rate=2.0, horizon=10.0, seed=5)
        assert a == b

    def test_mean_arrival_rate_approximate(self, clos):
        jobs = poisson_workload(clos, rate=5.0, horizon=200.0, seed=1)
        assert 4.0 < len(jobs) / 200.0 < 6.0

    def test_job_ids_sequential(self, clos):
        jobs = poisson_workload(clos, rate=2.0, horizon=10.0, seed=2)
        assert [j.job_id for j in jobs] == list(range(len(jobs)))

    def test_exponential_sizes_positive_with_right_mean(self, clos):
        jobs = poisson_workload(
            clos, rate=10.0, horizon=100.0, mean_size=2.0, seed=3
        )
        sizes = [j.size for j in jobs]
        assert all(s > 0 for s in sizes)
        assert 1.5 < sum(sizes) / len(sizes) < 2.5

    def test_fixed_sizes(self, clos):
        jobs = poisson_workload(
            clos, rate=2.0, horizon=20.0, mean_size=3.0,
            size_distribution="fixed", seed=0,
        )
        assert all(j.size == 3.0 for j in jobs)

    def test_bimodal_preserves_mean(self, clos):
        jobs = poisson_workload(
            clos, rate=20.0, horizon=200.0, mean_size=1.0,
            size_distribution="bimodal", seed=0,
        )
        sizes = [j.size for j in jobs]
        assert {round(s, 3) for s in sizes} <= {0.1, 9.1}
        assert 0.8 < sum(sizes) / len(sizes) < 1.2

    def test_invalid_parameters(self, clos):
        with pytest.raises(ValueError):
            poisson_workload(clos, rate=0, horizon=10)
        with pytest.raises(ValueError):
            poisson_workload(clos, rate=1, horizon=10, mean_size=0)
        with pytest.raises(ValueError):
            poisson_workload(clos, rate=1, horizon=10, size_distribution="zipf")


class TestIncastBurst:
    def test_shape(self):
        clos = ClosNetwork(2)
        jobs = incast_burst(clos, fan_in=5, size=2.0, arrival=1.0, seed=0)
        assert len(jobs) == 5
        assert len({j.dest for j in jobs}) == 1
        assert len({j.source for j in jobs}) == 5
        assert all(j.size == 2.0 and j.arrival == 1.0 for j in jobs)
