"""Tests for the oversubscription generalization (E15)."""

from fractions import Fraction

import pytest

from repro.core.flows import FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.experiments.oversubscription import permutation_sweep, sweep
from repro.lp.feasibility import splittable_feasible
from repro.workloads.stochastic import permutation


class TestTopologyParameters:
    def test_default_is_full_bisection(self):
        clos = ClosNetwork(3)
        assert clos.oversubscription() == 1
        assert clos.interior_capacity == 1

    def test_capacities_applied(self):
        clos = ClosNetwork(2, interior_capacity=Fraction(1, 2))
        from repro.core.nodes import InputSwitch, MiddleSwitch

        assert clos.graph.capacity(InputSwitch(1), MiddleSwitch(1)) == Fraction(
            1, 2
        )
        # server links unchanged
        assert clos.graph.capacity(clos.source(1, 1), InputSwitch(1)) == 1

    def test_oversubscription_ratio(self):
        clos = ClosNetwork(4, interior_capacity=Fraction(1, 2))
        assert clos.oversubscription() == 2

    def test_extra_middles_restore_bisection(self):
        clos = ClosNetwork(2, middle_count=4, interior_capacity=Fraction(1, 2))
        assert clos.oversubscription() == 1

    def test_invalid_capacities(self):
        with pytest.raises(ValueError):
            ClosNetwork(2, interior_capacity=0)
        with pytest.raises(ValueError):
            ClosNetwork(2, server_capacity=-1)

    def test_water_filling_respects_thin_interior(self):
        clos = ClosNetwork(2, interior_capacity=Fraction(1, 2))
        flows = FlowCollection()
        f = flows.add_pair(clos.source(1, 1), clos.destination(3, 1))[0]
        routing = Routing.uniform(clos, flows, 1)
        alloc = max_min_fair(routing, clos.graph.capacities())
        assert alloc.rate(f) == Fraction(1, 2)  # interior binds


class TestSweep:
    def test_lemma_5_2_sharp_in_its_premise(self):
        rows = sweep(capacities=(Fraction(1), Fraction(1, 2)))
        by_capacity = {row.interior_capacity: row for row in rows}
        assert by_capacity[Fraction(1)].lemma_5_2_equality
        assert not by_capacity[Fraction(1, 2)].lemma_5_2_equality

    def test_monotone_degradation(self):
        rows = sweep(
            capacities=(Fraction(1), Fraction(3, 4), Fraction(1, 2))
        )
        fractions_ = [row.throughput_fraction for row in rows]
        assert fractions_ == sorted(fractions_, reverse=True)
        ratios = [row.min_rate_ratio for row in rows]
        assert ratios == sorted(ratios, reverse=True)

    def test_clos_lp_scales_with_capacity(self):
        rows = sweep(capacities=(Fraction(1), Fraction(1, 2)))
        full, half = rows[0], rows[1]
        assert half.t_clos_lp == pytest.approx(full.t_clos_lp / 2)

    def test_permutation_closed_form(self):
        rows = permutation_sweep(
            capacities=(Fraction(1), Fraction(1, 2), Fraction(1, 4))
        )
        for row in rows:
            assert row.per_flow_rate == row.expected

    def test_splittable_fails_under_full_load_oversubscription(self):
        """Permutation demands at rate 1 need the full bisection: any
        interior thinning breaks even *splittable* routability."""
        reference = ClosNetwork(3)
        flows = permutation(reference, seed=0)
        demands = {f: Fraction(1) for f in flows}
        assert splittable_feasible(reference, flows, demands)
        thin = ClosNetwork(3, interior_capacity=Fraction(3, 4))
        assert not splittable_feasible(thin, flows, demands)