"""Tests for process-parallel sweeps (:mod:`repro.parallel`).

The contract: ``jobs > 1`` changes wall-clock only.  Result lists,
printed tables, and manifest step payloads are identical to a
sequential run, because every sweep point is a deterministic,
self-contained computation whose task description carries everything it
needs (including seeds).
"""

from __future__ import annotations

import json

import pytest

from repro.parallel import (
    SharedArrays,
    derive_seed,
    parallel_map,
    resolve_jobs,
    shared_array,
    shared_arrays,
)


# ----------------------------------------------------------------------
# The primitives
# ----------------------------------------------------------------------
def _square(x: int) -> int:
    return x * x


def test_parallel_map_sequential_matches_comprehension():
    assert parallel_map(_square, range(7), jobs=1) == [
        x * x for x in range(7)
    ]


def test_parallel_map_workers_preserve_order():
    assert parallel_map(_square, range(9), jobs=3) == [
        x * x for x in range(9)
    ]


def test_parallel_map_empty_and_single():
    assert parallel_map(_square, [], jobs=4) == []
    assert parallel_map(_square, [5], jobs=4) == [25]


def test_parallel_map_explicit_chunksize_preserves_order():
    assert parallel_map(_square, range(11), jobs=3, chunksize=4) == [
        x * x for x in range(11)
    ]
    assert parallel_map(_square, range(11), jobs=3, chunksize=1) == [
        x * x for x in range(11)
    ]


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-2)


def test_resolve_jobs_rejects_negatives_with_the_real_contract():
    """Regression: the message used to claim "jobs must be >= 0" while
    0 actually means "all cores" — the error now states the contract."""
    with pytest.raises(
        ValueError,
        match=r"non-negative integer \(0 or None = all cores\), got -2",
    ):
        resolve_jobs(-2)


def test_derive_seed_is_deterministic_and_decorrelated():
    assert derive_seed(0, "uniform", 3) == derive_seed(0, "uniform", 3)
    assert derive_seed(0, "uniform", 3) != derive_seed(1, "uniform", 3)
    assert derive_seed(0, "uniform", 3) != derive_seed(0, "hotspot", 3)
    assert 0 <= derive_seed(42, "x") < 2**64


def test_derive_seed_rejects_memory_address_reprs():
    """Components without a value ``repr`` (``<object at 0x...>``) would
    make the "stable" seed differ on every run; they must fail loudly."""
    with pytest.raises(ValueError, match="memory-address repr"):
        derive_seed(0, object())
    with pytest.raises(ValueError, match="memory-address repr"):
        derive_seed(0, "uniform", 3, object())
    # value-based reprs of the same shapes still work
    assert derive_seed(0, "uniform", (3, 4)) == derive_seed(0, "uniform", (3, 4))


# ----------------------------------------------------------------------
# Shared-memory array transport
# ----------------------------------------------------------------------
def _sum_shared_row(i: int) -> float:
    """Module-level (picklable) task: read one row of the shared matrix."""
    return float(shared_array("matrix")[i].sum())


def _double_into_shared(i: int) -> int:
    """Module-level task: write a disjoint slice of a shared output."""
    shared_array("out")[i] = 2.0 * shared_array("data")[i]
    return i


def test_shared_arrays_round_trip_and_zero_copy():
    np = pytest.importorskip("numpy")
    arrays = {
        "ints": np.arange(7, dtype=np.int64),
        "floats": np.linspace(0.0, 1.0, 5),
        "matrix": np.arange(6, dtype=np.float64).reshape(2, 3),
    }
    with shared_arrays(arrays) as block:
        assert block.names() == ["ints", "floats", "matrix"]
        attached = SharedArrays.attach(block.descriptor())
        try:
            for name, array in arrays.items():
                view = attached[name]
                assert view.dtype == array.dtype
                assert view.shape == array.shape
                assert np.array_equal(view, array)
            # both handles alias the same block: a write through the
            # attached view is visible to the owner with no transport
            attached["floats"][0] = 42.0
            assert block["floats"][0] == 42.0
        finally:
            attached.close()
        with pytest.raises(KeyError):
            block["missing"]


def test_shared_array_requires_attachment():
    with pytest.raises(RuntimeError, match="no shared-memory block attached"):
        shared_array("anything")


def test_parallel_map_shared_results_identical_across_jobs():
    np = pytest.importorskip("numpy")
    matrix = np.arange(20, dtype=np.float64).reshape(4, 5)
    expected = [float(matrix[i].sum()) for i in range(4)]
    with shared_arrays({"matrix": matrix}) as block:
        sequential = parallel_map(_sum_shared_row, range(4), jobs=1, shared=block)
        parallel = parallel_map(_sum_shared_row, range(4), jobs=2, shared=block)
    assert sequential == expected
    assert parallel == expected


def test_parallel_map_shared_workers_write_disjoint_slices():
    np = pytest.importorskip("numpy")
    data = np.arange(6, dtype=np.float64)
    with shared_arrays({"data": data, "out": np.zeros(6)}) as block:
        parallel_map(
            _double_into_shared, range(6), jobs=2, chunksize=2, shared=block
        )
        written = block["out"].copy()
    assert np.array_equal(written, 2.0 * data)


# ----------------------------------------------------------------------
# Worker-exception telemetry salvage
# ----------------------------------------------------------------------
@pytest.fixture
def observing():
    """Observability on for the test, fully reset around it."""
    from repro import obs

    obs.reset()
    obs.enable()
    yield
    obs.reset()
    obs.disable()


def _bump_or_explode(x: int) -> int:
    """Module-level task: instrument, then fail on marked inputs."""
    from repro import obs

    obs.counter("test.parallel.completed").inc()
    if x < 0:
        raise RuntimeError(f"task {x} exploded")
    return x * x


def test_worker_exception_still_salvages_completed_telemetry(observing):
    """Regression: a raising task used to discard *all* worker telemetry
    (the obs path went through ``pool.map``).  Completed tasks' payloads
    must be absorbed before the exception propagates, and the lost
    payloads counted on ``obs.workers_failed``."""
    from repro import obs

    with pytest.raises(RuntimeError, match="task -1 exploded"):
        parallel_map(_bump_or_explode, [1, 2, -1, 3, 4, 5], jobs=2)
    # the five tasks that completed shipped their counters home
    assert obs.counter("test.parallel.completed").value == 5
    assert obs.counter("obs.workers_failed").value == 1


def test_worker_exception_raises_first_in_task_order(observing):
    from repro import obs

    with pytest.raises(RuntimeError, match="task -7 exploded"):
        parallel_map(_bump_or_explode, [1, -7, 2, -9, 3], jobs=2)
    assert obs.counter("test.parallel.completed").value == 3
    assert obs.counter("obs.workers_failed").value == 2


# ----------------------------------------------------------------------
# Experiment-level identity: jobs=N reproduces jobs=1 exactly
# ----------------------------------------------------------------------
def test_r1_sweep_parallel_identity():
    from repro.experiments.r1_price_of_fairness import sweep

    assert sweep(ks=(1, 2, 4), jobs=2) == sweep(ks=(1, 2, 4), jobs=1)


def test_r1_random_bound_parallel_identity():
    from repro.experiments.r1_price_of_fairness import random_bound_check

    sequential = random_bound_check(n=2, num_flows=8, seeds=range(2), jobs=1)
    parallel = random_bound_check(n=2, num_flows=8, seeds=range(2), jobs=2)
    assert parallel == sequential


def test_r2_starvation_parallel_identity():
    from repro.experiments.r2_starvation import starvation_sweep

    sequential = starvation_sweep(
        sizes=(3, 4), check_local_optimality=False, jobs=1
    )
    parallel = starvation_sweep(
        sizes=(3, 4), check_local_optimality=False, jobs=2
    )
    assert parallel == sequential


def test_r3_sweep_parallel_identity():
    from repro.experiments.r3_doom_switch import sweep

    points = ((5, 1), (7, 1))
    assert sweep(points=points, jobs=2) == sweep(points=points, jobs=1)


def test_convergence_stochastic_parallel_identity():
    from repro.experiments.convergence import stochastic_instances

    sequential = stochastic_instances(
        n=2, num_flows=10, seeds=range(2), jobs=1
    )
    parallel = stochastic_instances(
        n=2, num_flows=10, seeds=range(2), jobs=2
    )
    assert parallel == sequential


def test_oversubscription_parallel_identity():
    from fractions import Fraction

    from repro.experiments.oversubscription import sweep

    capacities = (Fraction(1), Fraction(1, 2))
    sequential = sweep(n=2, capacities=capacities, num_flows=8, jobs=1)
    parallel = sweep(n=2, capacities=capacities, num_flows=8, jobs=2)
    assert parallel == sequential


# ----------------------------------------------------------------------
# CLI: --jobs leaves tables and manifest payloads unchanged
# ----------------------------------------------------------------------
def _run_cli(argv, capsys):
    from repro.cli import main

    assert main(argv) == 0
    return capsys.readouterr().out


def test_cli_jobs_output_identical(capsys):
    sequential = _run_cli(["run", "e2", "--ks", "1,2"], capsys)
    parallel = _run_cli(["run", "e2", "--ks", "1,2", "--jobs", "2"], capsys)
    assert parallel == sequential


def test_cli_jobs_manifest_steps_identical(tmp_path, capsys):
    seq_path = tmp_path / "seq.json"
    par_path = tmp_path / "par.json"
    _run_cli(["run", "e2", "--ks", "1,2", "--manifest", str(seq_path)], capsys)
    _run_cli(
        ["run", "e2", "--ks", "1,2", "--jobs", "2", "--manifest", str(par_path)],
        capsys,
    )
    sequential = json.loads(seq_path.read_text())
    parallel = json.loads(par_path.read_text())

    # Step payloads — names, statuses, captured stdout — are identical;
    # only timings may differ.
    def payload(manifest):
        return [
            (step["name"], step["status"], step["output"])
            for step in manifest["steps"]
        ]

    assert payload(parallel) == payload(sequential)

    # A default sequential manifest does not mention the knob at all
    # (byte-compatible with manifests from before --jobs existed); a
    # parallel one records it.
    assert "jobs" not in sequential["params"]
    assert parallel["params"]["jobs"] == 2
