"""Tests for process-parallel sweeps (:mod:`repro.parallel`).

The contract: ``jobs > 1`` changes wall-clock only.  Result lists,
printed tables, and manifest step payloads are identical to a
sequential run, because every sweep point is a deterministic,
self-contained computation whose task description carries everything it
needs (including seeds).
"""

from __future__ import annotations

import json

import pytest

from repro.parallel import derive_seed, parallel_map, resolve_jobs


# ----------------------------------------------------------------------
# The primitives
# ----------------------------------------------------------------------
def _square(x: int) -> int:
    return x * x


def test_parallel_map_sequential_matches_comprehension():
    assert parallel_map(_square, range(7), jobs=1) == [
        x * x for x in range(7)
    ]


def test_parallel_map_workers_preserve_order():
    assert parallel_map(_square, range(9), jobs=3) == [
        x * x for x in range(9)
    ]


def test_parallel_map_empty_and_single():
    assert parallel_map(_square, [], jobs=4) == []
    assert parallel_map(_square, [5], jobs=4) == [25]


def test_resolve_jobs():
    assert resolve_jobs(1) == 1
    assert resolve_jobs(7) == 7
    assert resolve_jobs(None) >= 1
    assert resolve_jobs(0) >= 1
    with pytest.raises(ValueError):
        resolve_jobs(-2)


def test_derive_seed_is_deterministic_and_decorrelated():
    assert derive_seed(0, "uniform", 3) == derive_seed(0, "uniform", 3)
    assert derive_seed(0, "uniform", 3) != derive_seed(1, "uniform", 3)
    assert derive_seed(0, "uniform", 3) != derive_seed(0, "hotspot", 3)
    assert 0 <= derive_seed(42, "x") < 2**64


# ----------------------------------------------------------------------
# Experiment-level identity: jobs=N reproduces jobs=1 exactly
# ----------------------------------------------------------------------
def test_r1_sweep_parallel_identity():
    from repro.experiments.r1_price_of_fairness import sweep

    assert sweep(ks=(1, 2, 4), jobs=2) == sweep(ks=(1, 2, 4), jobs=1)


def test_r1_random_bound_parallel_identity():
    from repro.experiments.r1_price_of_fairness import random_bound_check

    sequential = random_bound_check(n=2, num_flows=8, seeds=range(2), jobs=1)
    parallel = random_bound_check(n=2, num_flows=8, seeds=range(2), jobs=2)
    assert parallel == sequential


def test_r2_starvation_parallel_identity():
    from repro.experiments.r2_starvation import starvation_sweep

    sequential = starvation_sweep(
        sizes=(3, 4), check_local_optimality=False, jobs=1
    )
    parallel = starvation_sweep(
        sizes=(3, 4), check_local_optimality=False, jobs=2
    )
    assert parallel == sequential


def test_r3_sweep_parallel_identity():
    from repro.experiments.r3_doom_switch import sweep

    points = ((5, 1), (7, 1))
    assert sweep(points=points, jobs=2) == sweep(points=points, jobs=1)


def test_convergence_stochastic_parallel_identity():
    from repro.experiments.convergence import stochastic_instances

    sequential = stochastic_instances(
        n=2, num_flows=10, seeds=range(2), jobs=1
    )
    parallel = stochastic_instances(
        n=2, num_flows=10, seeds=range(2), jobs=2
    )
    assert parallel == sequential


def test_oversubscription_parallel_identity():
    from fractions import Fraction

    from repro.experiments.oversubscription import sweep

    capacities = (Fraction(1), Fraction(1, 2))
    sequential = sweep(n=2, capacities=capacities, num_flows=8, jobs=1)
    parallel = sweep(n=2, capacities=capacities, num_flows=8, jobs=2)
    assert parallel == sequential


# ----------------------------------------------------------------------
# CLI: --jobs leaves tables and manifest payloads unchanged
# ----------------------------------------------------------------------
def _run_cli(argv, capsys):
    from repro.cli import main

    assert main(argv) == 0
    return capsys.readouterr().out


def test_cli_jobs_output_identical(capsys):
    sequential = _run_cli(["run", "e2", "--ks", "1,2"], capsys)
    parallel = _run_cli(["run", "e2", "--ks", "1,2", "--jobs", "2"], capsys)
    assert parallel == sequential


def test_cli_jobs_manifest_steps_identical(tmp_path, capsys):
    seq_path = tmp_path / "seq.json"
    par_path = tmp_path / "par.json"
    _run_cli(["run", "e2", "--ks", "1,2", "--manifest", str(seq_path)], capsys)
    _run_cli(
        ["run", "e2", "--ks", "1,2", "--jobs", "2", "--manifest", str(par_path)],
        capsys,
    )
    sequential = json.loads(seq_path.read_text())
    parallel = json.loads(par_path.read_text())

    # Step payloads — names, statuses, captured stdout — are identical;
    # only timings may differ.
    def payload(manifest):
        return [
            (step["name"], step["status"], step["output"])
            for step in manifest["steps"]
        ]

    assert payload(parallel) == payload(sequential)

    # A default sequential manifest does not mention the knob at all
    # (byte-compatible with manifests from before --jobs existed); a
    # parallel one records it.
    assert "jobs" not in sequential["params"]
    assert parallel["params"]["jobs"] == 2
