"""Tests for ``backend="auto"``: fallback chains, shadow checks, and the
quarantine/replay/minimize loop.

Backends are force-failed by monkeypatching the functions
``repro.core.solve._solve_backend`` lazily imports — the chain must
degrade to the exact reference and still return the right answer.
"""

import glob
import os
from fractions import Fraction

import pytest

import repro.core.fastmaxmin as fastmaxmin_module
import repro.core.maxmin as maxmin_module
import repro.core.quotient as quotient_module
from repro.core.maxmin import max_min_fair
from repro.core.solve import (
    AUTO_CHAIN_EXACT,
    AUTO_CHAIN_FLOAT,
    solve_max_min,
)
from repro.errors import BackendUnavailableError, CertificateError
from repro.quarantine import (
    ddmin,
    load_bundle,
    quarantine_failure,
    replay,
    write_bundle,
)
from repro.validate import rate_disagreements, set_validation_level, validation

from tests.helpers import random_flows, random_routing

try:
    import numpy  # noqa: F401

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover - the image bakes numpy in
    HAVE_NUMPY = False


@pytest.fixture(autouse=True)
def clean_state(monkeypatch, tmp_path):
    """Quarantine into a temp dir; no validation override leaks."""
    monkeypatch.delenv("REPRO_VALIDATE", raising=False)
    monkeypatch.delenv("REPRO_SHADOW", raising=False)
    monkeypatch.setenv("REPRO_QUARANTINE_DIR", str(tmp_path / "quarantine"))
    set_validation_level(None)
    yield
    set_validation_level(None)


@pytest.fixture
def instance(clos2):
    flows = random_flows(clos2, 7, seed=21)
    routing = random_routing(clos2, flows, seed=21)
    return routing, clos2.graph.capacities()


def _bundles():
    return sorted(
        glob.glob(os.path.join(os.environ["REPRO_QUARANTINE_DIR"], "*.json"))
    )


def _boom(*args, **kwargs):
    raise BackendUnavailableError("forced failure (test)")


class TestAutoChain:
    def test_auto_exact_matches_reference(self, instance):
        routing, capacities = instance
        expected = max_min_fair(routing, capacities, exact=True)
        got = solve_max_min(routing, capacities, backend="auto")
        assert got.rates() == expected.rates()

    def test_auto_float_matches_reference(self, instance):
        routing, capacities = instance
        expected = max_min_fair(routing, capacities, exact=False)
        got = solve_max_min(
            routing, capacities, backend="auto", exact=False
        )
        assert rate_disagreements(got.rates(), expected.rates()) == []

    def test_exact_chain_survives_quotient_failure(
        self, instance, monkeypatch
    ):
        routing, capacities = instance
        monkeypatch.setattr(quotient_module, "quotient_max_min", _boom)
        expected = max_min_fair(routing, capacities, exact=True)
        got = solve_max_min(routing, capacities, backend="auto")
        assert got.rates() == expected.rates()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_float_chain_survives_vectorized_failure(
        self, instance, monkeypatch
    ):
        import repro.core.vectorized as vectorized_module

        routing, capacities = instance
        monkeypatch.setattr(
            vectorized_module, "max_min_fair_vectorized", _boom
        )
        expected = max_min_fair(routing, capacities, exact=False)
        got = solve_max_min(
            routing, capacities, backend="auto", exact=False
        )
        assert rate_disagreements(got.rates(), expected.rates()) == []

    def test_float_chain_survives_every_non_terminal_failure(
        self, instance, monkeypatch
    ):
        routing, capacities = instance
        if HAVE_NUMPY:
            import repro.core.vectorized as vectorized_module

            monkeypatch.setattr(
                vectorized_module, "max_min_fair_vectorized", _boom
            )
        monkeypatch.setattr(fastmaxmin_module, "max_min_fair_fast", _boom)
        expected = max_min_fair(routing, capacities, exact=False)
        got = solve_max_min(
            routing, capacities, backend="auto", exact=False
        )
        assert rate_disagreements(got.rates(), expected.rates()) == []

    def test_terminal_failure_propagates(self, instance, monkeypatch):
        routing, capacities = instance
        monkeypatch.setattr(quotient_module, "quotient_max_min", _boom)
        monkeypatch.setattr(maxmin_module, "max_min_fair", _boom)
        with pytest.raises(BackendUnavailableError):
            solve_max_min(routing, capacities, backend="auto")

    def test_chains_end_in_reference(self):
        assert AUTO_CHAIN_EXACT[-1] == "reference"
        assert AUTO_CHAIN_FLOAT[-1] == "reference"

    def test_certificate_failure_falls_back_and_quarantines(
        self, instance, monkeypatch
    ):
        # A backend whose *answer* is rejected (not merely unavailable):
        # the chain must quarantine the instance and degrade.
        routing, capacities = instance

        def rejected(*args, **kwargs):
            raise CertificateError(
                "maxmin.quotient", ["link overloaded (injected)"]
            )

        monkeypatch.setattr(quotient_module, "quotient_max_min", rejected)
        expected = max_min_fair(routing, capacities, exact=True)
        with validation("full"):
            got = solve_max_min(routing, capacities, backend="auto")
        assert got.rates() == expected.rates()
        bundles = _bundles()
        assert len(bundles) == 1
        bundle = load_bundle(bundles[0])
        assert bundle.reason == "certificate"
        assert bundle.backend == "quotient"
        assert bundle.failures == ["link overloaded (injected)"]
        assert len(bundle.routing) == len(routing)


class TestShadowChecks:
    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_shadow_disagreement_quarantines_and_corrects(
        self, instance, monkeypatch
    ):
        import repro.core.vectorized as vectorized_module

        routing, capacities = instance

        def doubled(routing_, capacities_, compiled=None):
            with validation("off"):
                honest = max_min_fair(routing_, capacities_, exact=False)
            from repro.core.allocation import Allocation

            return Allocation(
                {f: r * 2 for f, r in honest.rates().items()}
            )

        monkeypatch.setattr(
            vectorized_module, "max_min_fair_vectorized", doubled
        )
        monkeypatch.setenv("REPRO_SHADOW", "1.0")
        expected = max_min_fair(routing, capacities, exact=False)
        got = solve_max_min(
            routing, capacities, backend="auto", exact=False
        )
        # The corrupted backend was out-voted by the reference shadow.
        assert rate_disagreements(got.rates(), expected.rates()) == []
        bundles = _bundles()
        assert len(bundles) == 1
        assert load_bundle(bundles[0]).reason == "shadow"

    def test_shadow_agreement_writes_nothing(self, instance, monkeypatch):
        routing, capacities = instance
        monkeypatch.setenv("REPRO_SHADOW", "1.0")
        solve_max_min(routing, capacities, backend="auto", exact=False)
        assert _bundles() == []

    def test_bad_shadow_fraction_rejected(self, instance, monkeypatch):
        routing, capacities = instance
        monkeypatch.setenv("REPRO_SHADOW", "lots")
        with pytest.raises(ValueError, match="REPRO_SHADOW"):
            solve_max_min(
                routing, capacities, backend="auto", exact=False
            )

    def test_shadow_sequence_decorrelates_across_forked_workers(
        self, monkeypatch
    ):
        """Regression: the auto-solve ordinal stream is pid-salted.

        A bare ``itertools.count(1)`` is inherited at fork, so every
        worker of a ``--jobs N`` sweep shadow-checked the *same* solve
        ordinals.  The sequence must restart from a pid-derived salt in
        each new process, making the workers' sampled ordinals diverge.
        """
        from repro.core import solve as solve_module

        def consume(pid, n=64):
            monkeypatch.setattr(solve_module.os, "getpid", lambda: pid)
            seq = solve_module._ProcessSeq()
            return [next(seq) for _ in range(n)]

        a, b = consume(1111), consume(2222)
        # Each process's stream is still consecutive (monotone coverage)
        assert a == list(range(a[0], a[0] + 64))
        assert b == list(range(b[0], b[0] + 64))
        # ...but starts at a pid-specific salt, so with any sampling
        # interval the two workers check different ordinal positions.
        assert a[0] != b[0]
        assert a[0] == 1 + solve_module._ProcessSeq._salt(1111)
        # the *positions within the stream* a sampling interval selects
        # differ between the two workers
        interval = 7
        assert {x % interval for x in a[:interval]} == set(range(interval))
        assert (a[0] - b[0]) % interval != 0

        # A fork mid-stream (same object, new pid) re-seeds too.
        monkeypatch.setattr(solve_module.os, "getpid", lambda: 3333)
        seq = solve_module._ProcessSeq()
        first = next(seq)
        monkeypatch.setattr(solve_module.os, "getpid", lambda: 4444)
        child_first = next(seq)
        assert child_first == 1 + solve_module._ProcessSeq._salt(4444)
        assert child_first != first + 1


class TestDdmin:
    def test_shrinks_to_single_culprit(self):
        items = list(range(20))
        result = ddmin(items, lambda subset: 13 in subset)
        assert result == [13]

    def test_shrinks_pair(self):
        items = list(range(16))
        result = ddmin(
            items, lambda subset: 3 in subset and 11 in subset
        )
        assert sorted(result) == [3, 11]

    def test_keeps_everything_when_all_needed(self):
        items = [1, 2, 3]
        result = ddmin(items, lambda subset: len(subset) == 3)
        assert result == items


class TestQuarantineRoundTrip:
    def test_bundle_round_trips_exact_rates(self, instance):
        routing, capacities = instance
        allocation = max_min_fair(routing, capacities, exact=True)
        path = write_bundle(
            routing, capacities, "test", "reference", True,
            seed=42, failures=["synthetic"], rates=allocation.rates(),
        )
        bundle = load_bundle(path)
        assert bundle.seed == 42
        assert bundle.capacities == capacities
        assert bundle.rates == allocation.rates()
        assert all(
            bundle.routing.path(f) == routing.path(f)
            for f in routing.flows()
        )

    def test_same_instance_same_bundle_path(self, instance):
        routing, capacities = instance
        first = quarantine_failure(
            routing, capacities, "dup", "heap", False
        )
        second = quarantine_failure(
            routing, capacities, "dup", "heap", False
        )
        assert first == second
        assert len(_bundles()) == 1

    def test_healthy_bundle_does_not_reproduce(self, instance):
        routing, capacities = instance
        path = write_bundle(
            routing, capacities, "falsealarm", "reference", True
        )
        result = replay(path)
        assert not result.reproduced
        assert result.live_failures == []
        assert result.minimized_path is None


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
class TestCorruptedBackendEndToEnd:
    """The acceptance scenario: a corrupted vectorized kernel is caught
    by its certificate, the auto chain degrades and quarantines, and
    replaying the bundle reproduces and minimizes the failure."""

    @pytest.fixture
    def corrupt_waterfill(self, monkeypatch):
        import repro.core.vectorized as vectorized_module

        original = vectorized_module.waterfill

        def doubled(compiled, caps):
            with validation("off"):
                rates = original(compiled, caps)
            return rates * 2.0

        monkeypatch.setattr(vectorized_module, "waterfill", doubled)
        return doubled

    def test_fallback_then_replay_reproduces_and_minimizes(
        self, clos2, corrupt_waterfill
    ):
        flows = random_flows(clos2, 6, seed=33)
        routing = random_routing(clos2, flows, seed=33)
        capacities = clos2.graph.capacities()

        with validation("full"):
            got = solve_max_min(
                routing, capacities, backend="auto", exact=False
            )
        # The chain fell past the corrupted kernel to a healthy backend.
        expected = max_min_fair(routing, capacities, exact=False)
        assert rate_disagreements(got.rates(), expected.rates()) == []

        bundles = _bundles()
        assert len(bundles) == 1
        bundle = load_bundle(bundles[0])
        assert bundle.backend == "vectorized"
        assert bundle.reason == "certificate"

        # Replay on the still-corrupted kernel: reproduces, minimizes.
        result = replay(bundles[0])
        assert result.reproduced
        assert result.live_failures
        assert result.minimized_flows == 1
        assert result.minimized_path is not None
        minimized = load_bundle(result.minimized_path)
        assert len(minimized.routing) == 1
        assert minimized.reason == "certificate-min"
        # The minimized bundle is itself a valid reproducer.
        assert replay(result.minimized_path, minimize=False).reproduced
