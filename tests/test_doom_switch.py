"""Tests for the Doom-Switch algorithm (Algorithm 1)."""

from fractions import Fraction

import pytest

from repro.core.allocation import is_feasible
from repro.core.bottleneck import is_max_min_fair
from repro.core.doom_switch import doom_switch, doom_switch_routing
from repro.core.objectives import macro_switch_max_min, throughput_max_min_fair
from repro.core.throughput import max_throughput_value
from repro.core.topology import ClosNetwork
from repro.workloads.adversarial import example_5_3, theorem_5_4

from tests.helpers import random_flows


class TestAlgorithmStructure:
    def test_matched_plus_doomed_cover_all_flows(self):
        instance = theorem_5_4(5, 2)
        result = doom_switch(instance.clos, instance.flows)
        together = set(result.matched) | set(result.doomed)
        assert together == set(instance.flows)
        assert not set(result.matched) & set(result.doomed)

    def test_matched_is_maximum_matching(self):
        instance = theorem_5_4(5, 2)
        result = doom_switch(instance.clos, instance.flows)
        assert len(result.matched) == max_throughput_value(instance.flows)

    def test_matched_flows_link_disjoint(self):
        instance = theorem_5_4(7, 1)
        result = doom_switch(instance.clos, instance.flows)
        middles = result.routing.middles(instance.clos)
        # no two matched flows share (input switch, middle) or (middle,
        # output switch)
        seen_up, seen_down = set(), set()
        for f in result.matched:
            up = (f.source.switch, middles[f])
            down = (middles[f], f.dest.switch)
            assert up not in seen_up
            assert down not in seen_down
            seen_up.add(up)
            seen_down.add(down)

    def test_doomed_flows_share_one_middle(self):
        instance = theorem_5_4(7, 3)
        result = doom_switch(instance.clos, instance.flows)
        middles = result.routing.middles(instance.clos)
        doom_middles = {middles[f] for f in result.doomed}
        assert doom_middles == {result.doom_switch}

    def test_doom_switch_has_smallest_color_class(self):
        instance = theorem_5_4(7, 1)
        result = doom_switch(instance.clos, instance.flows)
        middles = result.routing.middles(instance.clos)
        sizes = {m: 0 for m in range(1, instance.clos.n + 1)}
        for f in result.matched:
            sizes[middles[f]] += 1
        assert sizes[result.doom_switch] == min(sizes.values())

    def test_allocation_is_max_min_for_routing(self):
        instance = theorem_5_4(5, 1)
        result = doom_switch(instance.clos, instance.flows)
        capacities = instance.clos.graph.capacities()
        assert is_feasible(result.routing, result.allocation, capacities)
        assert is_max_min_fair(result.routing, result.allocation, capacities)

    def test_routing_only_helper_agrees(self):
        instance = theorem_5_4(5, 1)
        routing = doom_switch_routing(instance.clos, instance.flows)
        full = doom_switch(instance.clos, instance.flows)
        assert routing.middles(instance.clos) == full.routing.middles(
            instance.clos
        )

    def test_unknown_policy_rejected(self):
        instance = theorem_5_4(5, 1)
        with pytest.raises(ValueError, match="dump_policy"):
            doom_switch(instance.clos, instance.flows, dump_policy="nope")


class TestExample53:
    def test_throughput_increases_from_9_2_to_5(self):
        instance = example_5_3()
        macro = macro_switch_max_min(instance.macro, instance.flows)
        assert macro.throughput() == Fraction(9, 2)
        result = doom_switch(instance.clos, instance.flows)
        assert result.allocation.throughput() == 5

    def test_per_type_rates(self):
        instance = example_5_3()
        result = doom_switch(instance.clos, instance.flows)
        for f in instance.types["type1"]:
            assert result.allocation.rate(f) == Fraction(2, 3)
        for f in instance.types["type2"]:
            assert result.allocation.rate(f) == Fraction(1, 3)

    def test_doomed_are_exactly_type2(self):
        instance = example_5_3()
        result = doom_switch(instance.clos, instance.flows)
        assert set(result.doomed) == set(instance.types["type2"])


class TestApproximationQuality:
    @pytest.mark.parametrize("seed", range(4))
    def test_lower_bounds_t_mmf_on_small_instances(self, seed):
        """Doom-Switch's throughput never exceeds the exact T-MmF optimum
        (it approximates from below)."""
        clos = ClosNetwork(2)
        flows = random_flows(clos, 5, seed=seed)
        exact = throughput_max_min_fair(clos, flows)
        approx = doom_switch(clos, flows)
        assert approx.allocation.throughput() <= exact.allocation.throughput()

    @pytest.mark.parametrize("policy", ["least", "most", "round_robin"])
    def test_all_policies_produce_valid_routings(self, policy):
        instance = theorem_5_4(7, 2)
        result = doom_switch(instance.clos, instance.flows, dump_policy=policy)
        result.routing.validate(instance.clos.graph)
        capacities = instance.clos.graph.capacities()
        assert is_max_min_fair(result.routing, result.allocation, capacities)

    def test_least_policy_beats_most_on_gadget(self):
        instance = theorem_5_4(9, 2)
        least = doom_switch(instance.clos, instance.flows, dump_policy="least")
        most = doom_switch(instance.clos, instance.flows, dump_policy="most")
        assert least.allocation.throughput() >= most.allocation.throughput()
