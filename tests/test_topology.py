"""Unit tests for Clos networks and macro-switches (§2.1's structure)."""

import pytest

from repro.core.nodes import InputSwitch, MiddleSwitch, OutputSwitch
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.graph.digraph import INFINITE_CAPACITY


class TestClosStructure:
    @pytest.mark.parametrize("n", [1, 2, 3, 5])
    def test_node_counts(self, n):
        clos = ClosNetwork(n)
        assert len(clos.input_switches) == 2 * n
        assert len(clos.output_switches) == 2 * n
        assert len(clos.middle_switches) == n
        assert len(clos.sources) == 2 * n * n
        assert len(clos.destinations) == 2 * n * n

    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_link_counts(self, n):
        clos = ClosNetwork(n)
        # 2n^2 source links + 2n^2 destination links + 2n*n up + n*2n down.
        assert clos.graph.num_links() == 2 * n * n + 2 * n * n + 2 * n * n + 2 * n * n

    def test_all_links_unit_capacity(self):
        clos = ClosNetwork(3)
        assert all(c == 1 for c in clos.graph.capacities().values())

    def test_middle_switch_degree_is_twice_tor_degree(self):
        # §2.1: "the degree of each middle switch is twice that of each
        # ToR switch" (counting network-side links).
        clos = ClosNetwork(3)
        middle = MiddleSwitch(1)
        tor_up = clos.graph.out_degree(InputSwitch(1))  # ToR → middles
        assert clos.graph.in_degree(middle) + clos.graph.out_degree(middle) == (
            2 * 2 * tor_up
        )

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            ClosNetwork(0)
        with pytest.raises(ValueError):
            ClosNetwork(-1)

    def test_index_validation(self):
        clos = ClosNetwork(2)
        with pytest.raises(ValueError):
            clos.source(5, 1)  # ToR index > 2n
        with pytest.raises(ValueError):
            clos.source(1, 3)  # server index > n
        with pytest.raises(ValueError):
            clos.destination(0, 1)
        with pytest.raises(ValueError):
            clos.middle(3)


class TestClosPaths:
    def test_n_paths_per_pair(self):
        clos = ClosNetwork(3)
        paths = clos.paths(clos.source(1, 1), clos.destination(4, 2))
        assert len(paths) == 3
        middles = {clos.middle_of_path(p) for p in paths}
        assert middles == {MiddleSwitch(1), MiddleSwitch(2), MiddleSwitch(3)}

    def test_paths_are_link_disjoint_inside(self):
        clos = ClosNetwork(3)
        paths = clos.paths(clos.source(1, 1), clos.destination(2, 1))
        interiors = [set(zip(p[1:-1], p[2:-1])) for p in paths]
        for a in range(len(interiors)):
            for b in range(a + 1, len(interiors)):
                assert not interiors[a] & interiors[b]

    def test_path_via_shape(self):
        clos = ClosNetwork(2)
        s, t = clos.source(1, 2), clos.destination(3, 1)
        path = clos.path_via(s, t, 2)
        assert path == (s, InputSwitch(1), MiddleSwitch(2), OutputSwitch(3), t)
        assert clos.graph.is_path(path)

    def test_all_paths_valid_in_graph(self):
        clos = ClosNetwork(2)
        for s in clos.sources[:4]:
            for t in clos.destinations[:4]:
                for p in clos.paths(s, t):
                    assert clos.graph.is_path(p)

    def test_middle_of_path_validates(self):
        clos = ClosNetwork(2)
        with pytest.raises(ValueError):
            clos.middle_of_path((clos.source(1, 1), clos.destination(1, 1)))

    def test_path_via_invalid_middle(self):
        clos = ClosNetwork(2)
        with pytest.raises(ValueError):
            clos.path_via(clos.source(1, 1), clos.destination(1, 1), 3)


class TestMacroSwitch:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_node_counts(self, n):
        ms = MacroSwitch(n)
        assert len(ms.sources) == 2 * n * n
        assert len(ms.destinations) == 2 * n * n
        assert len(ms.input_switches) == 2 * n
        assert len(ms.output_switches) == 2 * n

    def test_interior_links_infinite(self):
        ms = MacroSwitch(2)
        for inp in ms.input_switches:
            for out in ms.output_switches:
                assert ms.graph.capacity(inp, out) == INFINITE_CAPACITY

    def test_server_links_unit(self):
        ms = MacroSwitch(2)
        for s in ms.sources:
            assert ms.graph.capacity(s, InputSwitch(s.switch)) == 1
        for t in ms.destinations:
            assert ms.graph.capacity(OutputSwitch(t.switch), t) == 1

    def test_unique_path(self):
        ms = MacroSwitch(2)
        s, t = ms.source(1, 1), ms.destination(4, 2)
        path = ms.path(s, t)
        assert path == (s, InputSwitch(1), OutputSwitch(4), t)
        assert ms.graph.is_path(path)

    def test_complete_bipartite_interior(self):
        ms = MacroSwitch(2)
        # every input switch reaches every output switch directly
        for inp in ms.input_switches:
            for out in ms.output_switches:
                assert ms.graph.has_link(inp, out)

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            MacroSwitch(0)

    def test_same_server_names_as_clos(self):
        clos, ms = ClosNetwork(2), MacroSwitch(2)
        assert clos.sources == ms.sources
        assert clos.destinations == ms.destinations
