"""The resilient runner: timeouts, retries, manifests, kill/resume."""

import io
import os
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.errors import ExperimentError, StepFailedError, StepTimeoutError
from repro.io.serialize import write_json_atomic
from repro.runner import (
    FAILED,
    OK,
    PENDING,
    RUNNING,
    TIMEOUT,
    ResilientRunner,
    RunManifest,
    run_step,
)


class TestRunStep:
    def test_success(self):
        outcome = run_step("ok", lambda: 42)
        assert outcome.value == 42
        assert outcome.attempts == 1

    def test_timeout_is_terminal(self):
        import time

        calls = []

        def hang():
            calls.append(1)
            time.sleep(5)

        with pytest.raises(StepTimeoutError) as excinfo:
            run_step("hang", hang, timeout=0.1, retries=3)
        assert excinfo.value.step == "hang"
        assert calls == [1]  # a deterministic hang is not retried

    def test_retries_then_succeeds(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return "done"

        slept = []
        outcome = run_step(
            "flaky", flaky, retries=2, backoff=0.5, sleep=slept.append
        )
        assert outcome.value == "done"
        assert outcome.attempts == 3
        assert slept == [0.5, 1.0]  # exponential backoff

    def test_exhausted_retries_raise_step_failed(self):
        def broken():
            raise ValueError("permanently broken")

        with pytest.raises(StepFailedError) as excinfo:
            run_step("broken", broken, retries=1, sleep=lambda _: None)
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.cause, ValueError)

    def test_negative_retries_rejected(self):
        with pytest.raises(ExperimentError):
            run_step("x", lambda: None, retries=-1)


class TestManifest:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        manifest = RunManifest(
            path, experiments=["e1", "e2"], params={"n": 3}, seed=7
        )
        manifest.step("e1").status = OK
        manifest.step("e1").output = "exact output\n"
        manifest.step("e2").status = FAILED
        manifest.step("e2").error = "boom"
        manifest.save()

        loaded = RunManifest.load(path)
        assert loaded.experiments == ["e1", "e2"]
        assert loaded.params == {"n": 3}
        assert loaded.seed == 7
        assert loaded.sha == manifest.sha
        assert loaded.completed("e1")
        assert loaded.step("e1").output == "exact output\n"
        assert loaded.step("e2").status == FAILED
        assert loaded.step("e2").error == "boom"

    def test_running_steps_reset_to_pending_on_load(self, tmp_path):
        # A crash mid-step leaves the record RUNNING; resume recomputes it.
        path = str(tmp_path / "manifest.json")
        manifest = RunManifest(path)
        manifest.step("e1").status = RUNNING
        manifest.save()
        assert RunManifest.load(path).step("e1").status == PENDING

    def test_foreign_document_rejected(self, tmp_path):
        path = str(tmp_path / "other.json")
        write_json_atomic(path, {"format": "something-else"})
        with pytest.raises(ExperimentError):
            RunManifest.load(path)


class TestResilientRunner:
    def test_keep_going_runs_everything_and_reports(self):
        ran = []

        def ok(name):
            def step():
                ran.append(name)
                print(f"{name} output")

            return step

        def bad():
            ran.append("bad")
            raise RuntimeError("exploded")

        stream = io.StringIO()
        runner = ResilientRunner(stream=stream)
        runner.run({"a": ok("a"), "bad": bad, "b": ok("b")})
        assert ran == ["a", "bad", "b"]
        assert runner.exit_code() == 1
        assert [r.name for r in runner.failed_steps()] == ["bad"]
        table = runner.summary_table()
        assert "FAILED" in table and "exploded" in table

    def test_fail_fast_stops_at_first_failure(self):
        ran = []

        def bad():
            raise RuntimeError("nope")

        runner = ResilientRunner(keep_going=False, stream=io.StringIO())
        runner.run({"bad": bad, "after": lambda: ran.append("after")})
        assert ran == []
        assert len(runner.records) == 1

    def test_timeout_recorded(self):
        import time

        stream = io.StringIO()
        runner = ResilientRunner(timeout=0.1, stream=stream)
        runner.run({"hang": lambda: time.sleep(5)})
        assert runner.records[0].status == TIMEOUT
        assert runner.exit_code() == 1

    def test_resume_replays_without_recompute(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        computed = []

        def step(name):
            def fn():
                computed.append(name)
                print(f"{name}: computed")

            return fn

        first = ResilientRunner(
            manifest=RunManifest(path), stream=io.StringIO()
        )
        first.run({"s1": step("s1"), "s2": step("s2")})
        assert computed == ["s1", "s2"]

        stream = io.StringIO()
        resumed = ResilientRunner(
            manifest=RunManifest.load(path), stream=stream
        )
        resumed.run({"s1": step("s1"), "s2": step("s2")})
        assert computed == ["s1", "s2"]  # nothing recomputed
        assert stream.getvalue() == "s1: computed\ns2: computed\n"


DRIVER = textwrap.dedent(
    """
    import os, signal, sys
    from repro.runner import ResilientRunner, RunManifest

    manifest_path, log_path = sys.argv[1], sys.argv[2]
    kill_at = os.environ.get("KILL_AT")

    def make(name):
        def step():
            with open(log_path, "a") as log:
                log.write(name + "\\n")
            if name == kill_at:
                os.kill(os.getpid(), signal.SIGKILL)
            print(name, "->", sum(ord(c) for c in name))
            return name
        return step

    names = ["s1", "s2", "s3", "s4", "s5"]
    if os.path.exists(manifest_path):
        manifest = RunManifest.load(manifest_path)
    else:
        manifest = RunManifest(manifest_path, experiments=names, seed=7)
    runner = ResilientRunner(manifest=manifest)
    runner.run({name: make(name) for name in names})
    sys.exit(runner.exit_code())
    """
)


class TestKillResume:
    """SIGKILL a sweep mid-step; resume must finish it byte-identically
    without recomputing the steps that already completed."""

    def _run(self, driver, manifest, log, kill_at=None):
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        if kill_at is not None:
            env["KILL_AT"] = kill_at
        else:
            env.pop("KILL_AT", None)
        return subprocess.run(
            [sys.executable, driver, manifest, log],
            capture_output=True,
            text=True,
            env=env,
            timeout=60,
        )

    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        driver = str(tmp_path / "driver.py")
        with open(driver, "w") as handle:
            handle.write(DRIVER)

        # Reference: one uninterrupted run.
        reference = self._run(
            driver,
            str(tmp_path / "reference.json"),
            str(tmp_path / "reference.log"),
        )
        assert reference.returncode == 0, reference.stderr

        # Interrupted: the process SIGKILLs itself inside step s3.
        manifest = str(tmp_path / "sweep.json")
        log = str(tmp_path / "sweep.log")
        killed = self._run(driver, manifest, log, kill_at="s3")
        assert killed.returncode == -signal.SIGKILL
        assert os.path.exists(manifest)  # checkpoint survived the kill

        # Resume: finishes the sweep.
        resumed = self._run(driver, manifest, log)
        assert resumed.returncode == 0, resumed.stderr

        # Byte-identical final output: replayed s1-s2 plus fresh s3-s5.
        assert resumed.stdout == reference.stdout

        # Finished steps were NOT recomputed: s1/s2 ran once (before the
        # kill), s3 twice (killed mid-step, then recomputed).
        with open(log) as handle:
            executions = handle.read().split()
        assert executions == ["s1", "s2", "s3", "s3", "s4", "s5"]


class TestErrorTypes:
    """``StepRecord.error_type`` names the exception class behind a
    failure so manifest post-mortems can distinguish a certificate
    rejection from an infrastructure crash without parsing messages."""

    def test_failed_step_records_exception_class(self):
        def bad():
            raise ValueError("exploded")

        runner = ResilientRunner(stream=io.StringIO())
        runner.run({"bad": bad})
        record = runner.records[0]
        assert record.status == FAILED
        assert record.error_type == "ValueError"

    def test_timeout_records_exception_class(self):
        import time

        runner = ResilientRunner(timeout=0.1, stream=io.StringIO())
        runner.run({"hang": lambda: time.sleep(5)})
        record = runner.records[0]
        assert record.status == TIMEOUT
        assert record.error_type == "StepTimeoutError"

    def test_ok_step_omits_error_type_from_manifest(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        manifest = RunManifest(path)
        runner = ResilientRunner(manifest=manifest, stream=io.StringIO())
        runner.run({"good": lambda: 1})
        saved = manifest.steps["good"].to_dict()
        assert "error_type" not in saved  # byte-compat with old manifests

    def test_error_type_round_trips_through_manifest(self, tmp_path):
        path = str(tmp_path / "manifest.json")
        manifest = RunManifest(path)
        runner = ResilientRunner(manifest=manifest, stream=io.StringIO())
        runner.run({"bad": lambda: (_ for _ in ()).throw(KeyError("x"))})
        reloaded = RunManifest.load(path)
        assert reloaded.steps["bad"].error_type == "KeyError"

    def test_certificate_error_is_terminal(self):
        from repro.errors import CertificateError

        calls = []

        def rejected():
            calls.append(1)
            raise CertificateError("test.step", ["link overloaded"])

        runner = ResilientRunner(
            retries=3, backoff=0.0, stream=io.StringIO()
        )
        runner.run({"rejected": rejected})
        record = runner.records[0]
        # Deterministic answer: retrying would be rejected again.
        assert len(calls) == 1
        assert record.status == FAILED
        assert record.attempts == 1
        assert record.error_type == "CertificateError"

    def test_keep_going_continues_past_certificate_failure(self):
        from repro.errors import CertificateError

        ran = []

        def rejected():
            raise CertificateError("test.step", ["starved flow"])

        runner = ResilientRunner(stream=io.StringIO())
        runner.run(
            {"rejected": rejected, "after": lambda: ran.append("after")}
        )
        assert ran == ["after"]
        assert runner.exit_code() == 1
        assert runner.records[0].error_type == "CertificateError"
        assert runner.records[1].status == OK
