"""Cross-cutting property-based tests over the whole library.

Each property ties two or more subsystems together, so a bug anywhere in
the pipeline (topology → routing → water-filling → certificates →
objectives) surfaces as a counterexample here.
"""

import random
from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import Allocation, is_feasible, lex_compare
from repro.core.bottleneck import is_max_min_fair
from repro.core.doom_switch import doom_switch
from repro.core.flows import Flow, FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.objectives import macro_switch_max_min
from repro.core.routing import Routing
from repro.core.throughput import max_throughput_value, throughput_max_throughput
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.dynamics.waterlevel import LinkFairShareDynamics
from repro.lp.feasibility import find_feasible_routing


@st.composite
def clos_instances(draw, max_n=3, max_flows=10):
    """A Clos network with a random flow collection and routing."""
    n = draw(st.integers(1, max_n), label="n")
    clos = ClosNetwork(n)
    num_flows = draw(st.integers(1, max_flows), label="num_flows")
    flows = FlowCollection()
    for _ in range(num_flows):
        i = draw(st.integers(1, 2 * n))
        j = draw(st.integers(1, n))
        oi = draw(st.integers(1, 2 * n))
        oj = draw(st.integers(1, n))
        flows.add_pair(clos.source(i, j), clos.destination(oi, oj))
    middles = {f: draw(st.integers(1, n), label="middle") for f in flows}
    routing = Routing.from_middles(clos, flows, middles)
    return clos, flows, routing


class TestWaterFillingProperties:
    @settings(max_examples=40, deadline=None)
    @given(clos_instances())
    def test_moving_one_flow_keeps_certificate(self, instance):
        """Max-min fairness is preserved by recomputation after any move."""
        clos, flows, routing = instance
        capacities = clos.graph.capacities()
        flow = flows[0]
        for m in range(1, clos.n + 1):
            moved = routing.reassigned(clos, flow, m)
            alloc = max_min_fair(moved, capacities)
            assert is_max_min_fair(moved, alloc, capacities)

    @settings(max_examples=40, deadline=None)
    @given(clos_instances())
    def test_adding_a_flow_never_lex_improves(self, instance):
        """More flows can only (weakly) lower the sorted rate vector
        prefix — congestion control admits everyone at a fairness cost."""
        clos, flows, routing = instance
        capacities = clos.graph.capacities()
        before = max_min_fair(routing, capacities)
        extra = Flow(clos.sources[0], clos.destinations[-1], tag=999)
        grown = FlowCollection(list(flows) + [extra])
        middles = routing.middles(clos)
        middles[extra] = 1
        grown_routing = Routing.from_middles(clos, grown, middles)
        after = max_min_fair(grown_routing, capacities)
        # compare the sorted vectors restricted to the original flows
        original_after = sorted(after.rate(f) for f in flows)
        assert (
            lex_compare(before.sorted_vector(), original_after) >= 0
        )

    @settings(max_examples=30, deadline=None)
    @given(clos_instances(max_n=2, max_flows=6))
    def test_scaling_capacities_scales_rates(self, instance):
        """Water-filling is homogeneous: doubling capacities doubles rates."""
        clos, flows, routing = instance
        capacities = clos.graph.capacities()
        doubled = {link: 2 * c for link, c in capacities.items()}
        base = max_min_fair(routing, capacities)
        scaled = max_min_fair(routing, doubled)
        for f in flows:
            assert scaled.rate(f) == 2 * base.rate(f)

    @settings(max_examples=30, deadline=None)
    @given(clos_instances(max_n=2, max_flows=8))
    def test_throughput_between_bounds(self, instance):
        """T^MmF(clos routing) ≤ T^MT and the R1 bound on the macro side."""
        clos, flows, routing = instance
        alloc = max_min_fair(routing, clos.graph.capacities())
        t_mt = max_throughput_value(flows)
        assert alloc.throughput() <= t_mt
        macro = macro_switch_max_min(MacroSwitch(clos.n), flows)
        assert 2 * macro.throughput() >= t_mt


class TestCrossSolverAgreement:
    @settings(max_examples=25, deadline=None)
    @given(clos_instances(max_n=3, max_flows=10))
    def test_dynamics_agree_with_water_filling(self, instance):
        clos, flows, routing = instance
        capacities = clos.graph.capacities()
        oracle = max_min_fair(routing, capacities, exact=False)
        trace = LinkFairShareDynamics(routing, capacities).run(max_rounds=300)
        assert trace.converged
        for f in flows:
            assert abs(trace.rates[f] - oracle.rate(f)) < 1e-9

    @settings(max_examples=25, deadline=None)
    @given(clos_instances(max_n=3, max_flows=10))
    def test_doom_switch_always_valid_and_bounded(self, instance):
        clos, flows, _ = instance
        result = doom_switch(clos, flows)
        capacities = clos.graph.capacities()
        assert is_max_min_fair(result.routing, result.allocation, capacities)
        macro = macro_switch_max_min(MacroSwitch(clos.n), flows)
        assert result.allocation.throughput() <= 2 * macro.throughput()

    @settings(max_examples=25, deadline=None)
    @given(clos_instances(max_n=3, max_flows=12))
    def test_lemma_5_2_always(self, instance):
        clos, flows, _ = instance
        routing, alloc = throughput_max_throughput(clos, flows)
        assert alloc.throughput() == max_throughput_value(flows)
        assert is_feasible(routing, alloc, clos.graph.capacities())


class TestFeasibilitySearchSoundness:
    @settings(max_examples=20, deadline=None)
    @given(clos_instances(max_n=2, max_flows=6), st.integers(0, 10**6))
    def test_found_routings_truly_feasible(self, instance, seed):
        """Whenever the exact search says feasible, the witness checks out
        against the independent feasibility predicate."""
        clos, flows, _ = instance
        rng = random.Random(seed)
        demands = {
            f: Fraction(rng.randint(1, 4), 8) for f in flows
        }
        routing = find_feasible_routing(clos, flows, demands)
        if routing is not None:
            assert is_feasible(
                routing, Allocation(demands), clos.graph.capacities()
            )

    @settings(max_examples=15, deadline=None)
    @given(clos_instances(max_n=2, max_flows=5))
    def test_water_filling_rates_always_routable_at_own_routing(self, instance):
        """A routing's own max-min rates are feasible demands for it —
        and hence the exact search must find *some* feasible routing."""
        clos, flows, routing = instance
        alloc = max_min_fair(routing, clos.graph.capacities())
        found = find_feasible_routing(clos, flows, alloc.rates())
        assert found is not None


class TestSimulationProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 10**6), st.integers(1, 25), st.floats(0.5, 4.0))
    def test_work_conservation_any_poisson_workload(self, seed, count, rate):
        """Every policy delivers exactly the offered work, eventually."""
        from repro.sim.flowsim import simulate
        from repro.sim.jobs import poisson_workload
        from repro.sim.policies import MaxMinCongestionControl

        clos = ClosNetwork(2)
        jobs = poisson_workload(
            clos, rate=rate, horizon=count / rate, seed=seed
        )
        if not jobs:
            return
        result = simulate(jobs, MaxMinCongestionControl(clos))
        assert not result.unfinished
        offered = sum(j.size for j in jobs)
        assert abs(result.work_done - offered) < 1e-6 * max(1.0, offered)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10**6))
    def test_scheduler_never_slower_than_size_per_job(self, seed):
        """Under the matching scheduler, a job's FCT is at least its size
        (unit links) and finite (no permanent starvation)."""
        from repro.sim.flowsim import fct_stats, simulate
        from repro.sim.jobs import poisson_workload
        from repro.sim.policies import MatchingScheduler

        clos = ClosNetwork(2)
        jobs = poisson_workload(clos, rate=2.0, horizon=8.0, seed=seed)
        if not jobs:
            return
        result = simulate(jobs, MatchingScheduler(clos))
        assert not result.unfinished
        for done in result.completed:
            assert done.duration >= done.job.size - 1e-9


class TestFailureProperties:
    @settings(max_examples=15, deadline=None)
    @given(clos_instances(max_n=3, max_flows=8), st.integers(0, 10**6))
    def test_failures_only_lower_the_sorted_vector(self, instance, seed):
        """Failing links can never lex-improve a routing's allocation."""
        from repro.failures import random_link_failures

        clos, flows, routing = instance
        capacities = clos.graph.capacities()
        before = max_min_fair(routing, capacities)
        degraded, _ = random_link_failures(
            clos, capacities, count=min(2, clos.n), seed=seed
        )
        after = max_min_fair(routing, degraded)
        assert (
            lex_compare(before.sorted_vector(), after.sorted_vector()) >= 0
        )
