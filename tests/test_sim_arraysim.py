"""Tests for the array-state simulator engines (PR 10).

Covers engine selection, byte-identity of the array engines against the
object engines (the property the ``REPRO_SHADOW`` cross-check enforces
in production), parallel-shard determinism with merged telemetry, the
shadow-quarantine path, and the chaos harness's engine parity check.
"""

import math
import os
import random

import pytest

from repro.core.topology import ClosNetwork
from repro.errors import BackendUnavailableError
from repro.sim.flowsim import SimulationError, simulate
from repro.sim.jobs import (
    JOB_COLUMNS,
    FlowJob,
    incast_burst,
    jobs_from_arrays,
    jobs_to_arrays,
    poisson_workload,
)
from repro.sim.policies import (
    MatchingScheduler,
    MaxMinCongestionControl,
    ProcessorSharing,
)
from repro.sim.stream import simulate_sharded, simulate_stream
from repro.workloads.stochastic import churn_workload

np = pytest.importorskip("numpy")

from repro.sim import arraysim  # noqa: E402
from repro.sim.arraysim import (  # noqa: E402
    AUTO_THRESHOLD,
    resolve_engine,
    results_equivalent,
)


@pytest.fixture
def clos():
    return ClosNetwork(2)


@pytest.fixture(autouse=True)
def _quiet_shadow(monkeypatch, tmp_path):
    monkeypatch.delenv("REPRO_SHADOW", raising=False)
    monkeypatch.setenv("REPRO_QUARANTINE_DIR", str(tmp_path / "quarantine"))


def _bundles(tmp_path):
    directory = tmp_path / "quarantine"
    if not directory.is_dir():
        return []
    return sorted(str(p) for p in directory.glob("q-*.json"))


def _require_same(a, b):
    """The full byte-identity contract between two engines' results."""
    assert a.completed == b.completed
    assert a.unfinished == b.unfinished
    assert a.end_time == b.end_time
    assert math.isclose(a.work_done, b.work_done, rel_tol=1e-9, abs_tol=1e-9)


class TestEngineSelection:
    def test_unknown_engine_rejected(self, clos):
        job = FlowJob(0, clos.sources[0], clos.destinations[0], 0.0, 1.0)
        with pytest.raises(ValueError, match="engine"):
            simulate([job], MaxMinCongestionControl(clos), engine="turbo")

    def test_auto_picks_object_below_threshold(self):
        assert resolve_engine("auto", AUTO_THRESHOLD - 1) == "object"
        assert resolve_engine("auto", AUTO_THRESHOLD) == "array"

    def test_explicit_engines_resolve_to_themselves(self):
        assert resolve_engine("object", 10_000) == "object"
        assert resolve_engine("array", 1) == "array"

    def test_array_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(arraysim, "_numpy", lambda: None)
        with pytest.raises(BackendUnavailableError):
            resolve_engine("array", 1)
        # auto degrades to the object engine instead of raising
        assert resolve_engine("auto", 10_000) == "object"


class TestPerEventByteIdentity:
    @pytest.mark.parametrize("seed", range(4))
    def test_poisson_maxmin(self, clos, seed):
        jobs = poisson_workload(clos, rate=3.0, horizon=4.0, seed=seed)
        want = simulate(jobs, MaxMinCongestionControl(clos), engine="object")
        got = simulate(jobs, MaxMinCongestionControl(clos), engine="array")
        _require_same(got, want)

    @pytest.mark.parametrize(
        "make_policy",
        [
            lambda net: MaxMinCongestionControl(net, backend="streaming"),
            lambda net: ProcessorSharing(net),
            lambda net: MatchingScheduler(net, srpt=True),
        ],
        ids=["streaming", "processor-sharing", "matching-srpt"],
    )
    def test_policies(self, clos, make_policy):
        jobs = poisson_workload(clos, rate=2.0, horizon=5.0, seed=7)
        want = simulate(jobs, make_policy(clos), engine="object")
        got = simulate(jobs, make_policy(clos), engine="array")
        _require_same(got, want)

    def test_same_instant_burst(self, clos):
        jobs = incast_burst(clos, fan_in=4, arrival=1.0, size=2.0)
        want = simulate(jobs, MaxMinCongestionControl(clos), engine="object")
        got = simulate(jobs, MaxMinCongestionControl(clos), engine="array")
        _require_same(got, want)

    def test_zero_size_jobs(self, clos):
        jobs = [
            FlowJob(0, clos.sources[0], clos.destinations[0], 0.5, 0.0),
            FlowJob(1, clos.sources[1], clos.destinations[1], 0.5, 1.0),
        ]
        want = simulate(jobs, MaxMinCongestionControl(clos), engine="object")
        got = simulate(jobs, MaxMinCongestionControl(clos), engine="array")
        _require_same(got, want)

    def test_max_time_truncation(self, clos):
        jobs = poisson_workload(clos, rate=3.0, horizon=4.0, seed=2)
        want = simulate(
            jobs, MaxMinCongestionControl(clos), max_time=1.5, engine="object"
        )
        got = simulate(
            jobs, MaxMinCongestionControl(clos), max_time=1.5, engine="array"
        )
        _require_same(got, want)

    def test_failure_schedule(self, clos):
        from fractions import Fraction

        from repro.failures.schedule import FailureSchedule

        jobs = poisson_workload(clos, rate=2.0, horizon=6.0, seed=5)
        schedule = FailureSchedule.random_flaps(
            clos, count=3, horizon=4.0, seed=5, severity=Fraction(1, 4)
        )
        want = simulate(
            jobs,
            MaxMinCongestionControl(clos, seed=5),
            failure_schedule=schedule,
            engine="object",
        )
        got = simulate(
            jobs,
            MaxMinCongestionControl(clos, seed=5),
            failure_schedule=schedule,
            engine="array",
        )
        _require_same(got, want)

    def test_error_parity_negative_arrival(self, clos):
        jobs = [FlowJob(0, clos.sources[0], clos.destinations[0], -1.0, 1.0)]
        with pytest.raises(ValueError) as obj_err:
            simulate(jobs, MaxMinCongestionControl(clos), engine="object")
        with pytest.raises(ValueError) as arr_err:
            simulate(jobs, MaxMinCongestionControl(clos), engine="array")
        assert str(obj_err.value) == str(arr_err.value)


class TestStreamByteIdentity:
    @pytest.mark.parametrize("window", [0.05, 0.5])
    def test_micro_batched(self, clos, window):
        jobs = poisson_workload(clos, rate=3.0, horizon=5.0, seed=3)
        want = simulate_stream(
            jobs,
            MaxMinCongestionControl(clos, backend="streaming"),
            batch_window=window,
            engine="object",
        )
        got = simulate_stream(
            jobs,
            MaxMinCongestionControl(clos, backend="streaming"),
            batch_window=window,
            engine="array",
        )
        _require_same(got, want)

    def test_max_time(self, clos):
        jobs = poisson_workload(clos, rate=3.0, horizon=5.0, seed=4)
        kwargs = dict(batch_window=0.1, max_time=2.0)
        want = simulate_stream(
            jobs,
            MaxMinCongestionControl(clos, backend="streaming"),
            engine="object",
            **kwargs,
        )
        got = simulate_stream(
            jobs,
            MaxMinCongestionControl(clos, backend="streaming"),
            engine="array",
            **kwargs,
        )
        _require_same(got, want)

    def test_zero_window_delegates_to_per_event(self, clos):
        jobs = poisson_workload(clos, rate=2.0, horizon=3.0, seed=1)
        streamed = simulate_stream(
            jobs,
            MaxMinCongestionControl(clos, backend="streaming"),
            batch_window=0.0,
            engine="array",
        )
        per_event = simulate(
            jobs,
            MaxMinCongestionControl(clos, backend="streaming"),
            engine="array",
        )
        _require_same(streamed, per_event)


class TestShardedDeterminism:
    @pytest.fixture
    def network(self):
        return ClosNetwork(4)

    @pytest.fixture
    def workload(self, network):
        return churn_workload(network, rate=60.0, horizon=2.0, pods=4, seed=3)

    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_jobs_k_equals_jobs_1(self, network, workload, jobs):
        base = simulate_sharded(
            network, workload, pods=4, batch_window=0.05, jobs=1
        )
        got = simulate_sharded(
            network, workload, pods=4, batch_window=0.05, jobs=jobs
        )
        assert got == base  # byte-identical NamedTuple equality

    def test_jobs_4_under_failure_schedule(self, network, workload):
        from fractions import Fraction

        from repro.failures.schedule import FailureSchedule

        schedule = FailureSchedule.random_flaps(
            network, count=2, horizon=1.5, seed=7, severity=Fraction(1, 2)
        )
        base = simulate_sharded(
            network, workload, pods=4, batch_window=0.05,
            failure_schedule=schedule, jobs=1,
        )
        got = simulate_sharded(
            network, workload, pods=4, batch_window=0.05,
            failure_schedule=schedule, jobs=4,
        )
        assert got == base

    def test_telemetry_merge_equality(self, network, workload):
        """REPRO_OBS-style merged counters: jobs=4 == jobs=1."""
        from repro import obs
        from repro.obs.metrics import REGISTRY, snapshot_delta

        obs.reset()
        obs.enable()
        try:
            before = REGISTRY.snapshot()
            seq = simulate_sharded(
                network, workload, pods=4, batch_window=0.05, jobs=1
            )
            seq_delta = snapshot_delta(before, REGISTRY.snapshot())

            obs.reset()
            obs.enable()
            before = REGISTRY.snapshot()
            par = simulate_sharded(
                network, workload, pods=4, batch_window=0.05, jobs=4
            )
            par_delta = snapshot_delta(before, REGISTRY.snapshot())
        finally:
            obs.reset()
            obs.disable()
        assert par == seq
        counters = {
            k: v
            for k, v in seq_delta.items()
            if isinstance(v, (int, float))
            and k.startswith("sim.")
            and k != "sim.queue_peak"  # a gauge: merged last-write-wins
        }
        assert counters, "no simulator counters were recorded"
        for key, value in counters.items():
            assert par_delta.get(key) == value, (
                f"{key}: jobs=4 {par_delta.get(key)} != jobs=1 {value}"
            )
        # The peak gauge is per-process; the merged value is one
        # shard's peak, bounded by the sequential all-shards peak.
        assert 0 < par_delta["sim.queue_peak"] <= seq_delta["sim.queue_peak"]

    def test_engine_forced_object_matches_array(self, network, workload):
        want = simulate_sharded(
            network, workload, pods=4, batch_window=0.05,
            engine="object", jobs=1,
        )
        got = simulate_sharded(
            network, workload, pods=4, batch_window=0.05,
            engine="array", jobs=4,
        )
        _require_same(got, want)


class TestShadowCrossCheck:
    def test_divergence_quarantined_and_corrected(
        self, clos, monkeypatch, tmp_path
    ):
        """A corrupted array engine is caught by the sampled shadow
        re-run: the object result is returned and a ``sim-mismatch``
        bundle is written."""
        monkeypatch.setenv("REPRO_SHADOW", "1.0")
        jobs = poisson_workload(clos, rate=2.0, horizon=3.0, seed=11)
        honest = simulate(
            jobs, MaxMinCongestionControl(clos), engine="object"
        )

        real = arraysim._simulate_array

        def corrupted(*args, **kwargs):
            result = real(*args, **kwargs)
            return result._replace(end_time=result.end_time + 1.0)

        monkeypatch.setattr(arraysim, "_simulate_array", corrupted)
        got = simulate(jobs, MaxMinCongestionControl(clos), engine="array")
        assert got == honest  # the object engine out-voted the corruption
        bundles = _bundles(tmp_path)
        assert len(bundles) == 1
        from repro.quarantine import load_bundle

        bundle = load_bundle(bundles[0])
        assert bundle.reason == "sim-mismatch"
        assert bundle.backend == "array"
        assert any("end_time" in line for line in bundle.failures)

    def test_agreement_writes_nothing(self, clos, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SHADOW", "1.0")
        jobs = poisson_workload(clos, rate=2.0, horizon=3.0, seed=12)
        simulate(jobs, MaxMinCongestionControl(clos), engine="array")
        assert _bundles(tmp_path) == []


class TestResultsEquivalent:
    def test_work_done_tolerance_only(self, clos):
        jobs = [FlowJob(0, clos.sources[0], clos.destinations[0], 0.0, 1.0)]
        result = simulate(jobs, MaxMinCongestionControl(clos))
        drifted = result._replace(
            work_done=result.work_done * (1.0 + 1e-12)
        )
        assert results_equivalent(result, drifted)
        broken = result._replace(work_done=result.work_done + 1.0)
        assert not results_equivalent(result, broken)

    def test_exact_fields_must_match(self, clos):
        jobs = [FlowJob(0, clos.sources[0], clos.destinations[0], 0.0, 1.0)]
        result = simulate(jobs, MaxMinCongestionControl(clos))
        assert not results_equivalent(
            result, result._replace(end_time=result.end_time + 1e-15)
        )


class TestJobArrays:
    def test_round_trip(self, clos):
        jobs = poisson_workload(clos, rate=3.0, horizon=3.0, seed=5)
        arrays = jobs_to_arrays(jobs)
        assert set(arrays) == set(JOB_COLUMNS)
        assert jobs_from_arrays(*(arrays[c] for c in JOB_COLUMNS)) == jobs


class TestChaosEngineCheck:
    def test_seeded_workloads_clean(self):
        from repro.chaos import sim_engine_check

        for seed in range(3):
            assert sim_engine_check(seed) == []

    def test_fuzz_includes_engine_checks(self):
        from repro.chaos import fuzz

        report = fuzz(seeds=2, churn_every=1)
        assert report.failures == []
