"""Tests for maximum bipartite matching (Hopcroft–Karp + simple oracle).

Correctness strategy: hand-checked small cases, agreement between the
two in-repo algorithms, agreement with networkx as an external oracle,
and hypothesis-generated random multigraphs.
"""

import random

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.bipartite import BipartiteMultigraph, build_multigraph
from repro.matching.augmenting import maximum_matching_simple
from repro.matching.hopcroft_karp import (
    is_matching,
    maximum_matching,
    maximum_matching_size,
)


def networkx_matching_size(graph: BipartiteMultigraph) -> int:
    """Oracle: maximum matching size via networkx on the simple graph."""
    g = nx.Graph()
    lefts = [("L", u) for u in graph.left_nodes]
    g.add_nodes_from(lefts, bipartite=0)
    for u, v, _ in graph.edges():
        g.add_edge(("L", u), ("R", v))
    if g.number_of_edges() == 0:
        return 0
    matching = nx.bipartite.maximum_matching(g, top_nodes=lefts)
    return len(matching) // 2


class TestSmallCases:
    def test_empty(self):
        assert maximum_matching(BipartiteMultigraph()) == {}

    def test_single_edge(self):
        g = build_multigraph([("u", "v", "e")])
        assert maximum_matching(g) == {"e": ("u", "v")}

    def test_parallel_edges_count_once(self):
        g = build_multigraph([("u", "v", "e1"), ("u", "v", "e2")])
        matched = maximum_matching(g)
        assert len(matched) == 1

    def test_parallel_edges_pick_first_inserted(self):
        g = build_multigraph([("u", "v", "e1"), ("u", "v", "e2")])
        assert list(maximum_matching(g)) == ["e1"]

    def test_perfect_matching(self):
        g = build_multigraph(
            [("u1", "v1", 1), ("u1", "v2", 2), ("u2", "v1", 3), ("u2", "v2", 4)]
        )
        assert maximum_matching_size(g) == 2

    def test_star_matches_one(self):
        g = build_multigraph([("u", f"v{i}", i) for i in range(5)])
        assert maximum_matching_size(g) == 1

    def test_augmenting_path_needed(self):
        # u1 prefers v1 greedily, forcing augmentation for u2.
        g = build_multigraph([("u1", "v1", 1), ("u1", "v2", 2), ("u2", "v1", 3)])
        assert maximum_matching_size(g) == 2

    def test_long_augmenting_chain(self):
        # Path graph: u1-v1-u2-v2-u3-v3 ... perfect matching exists.
        edges = []
        for i in range(1, 5):
            edges.append((f"u{i}", f"v{i}", f"own{i}"))
            if i < 4:
                edges.append((f"u{i+1}", f"v{i}", f"cross{i}"))
        g = build_multigraph(edges)
        assert maximum_matching_size(g) == 4

    def test_result_is_a_matching(self):
        g = build_multigraph(
            [("u1", "v1", 1), ("u2", "v1", 2), ("u2", "v2", 3), ("u3", "v2", 4)]
        )
        matched = maximum_matching(g)
        assert is_matching(g, set(matched))

    def test_is_matching_detects_conflicts(self):
        g = build_multigraph([("u", "v1", 1), ("u", "v2", 2)])
        assert not is_matching(g, {1, 2})
        assert is_matching(g, {1})
        assert is_matching(g, set())


class TestOracleAgreement:
    @pytest.mark.parametrize("seed", range(20))
    def test_random_multigraphs_match_oracles(self, seed):
        rng = random.Random(seed)
        g = BipartiteMultigraph()
        num_left = rng.randint(1, 10)
        num_right = rng.randint(1, 10)
        for key in range(rng.randint(0, 40)):
            g.add_edge(
                ("u", rng.randint(1, num_left)),
                ("v", rng.randint(1, num_right)),
                key=key,
            )
        hk = maximum_matching_size(g)
        simple = len(maximum_matching_simple(g))
        assert hk == simple
        assert hk == networkx_matching_size(g)

    @pytest.mark.parametrize("seed", range(5))
    def test_hk_result_is_valid_matching(self, seed):
        rng = random.Random(100 + seed)
        g = BipartiteMultigraph()
        for key in range(30):
            g.add_edge(
                ("u", rng.randint(1, 6)), ("v", rng.randint(1, 6)), key=key
            )
        assert is_matching(g, set(maximum_matching(g)))


@st.composite
def bipartite_multigraphs(draw):
    num_left = draw(st.integers(1, 7))
    num_right = draw(st.integers(1, 7))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(1, num_left), st.integers(1, num_right)
            ),
            max_size=25,
        )
    )
    g = BipartiteMultigraph()
    for key, (u, v) in enumerate(edges):
        g.add_edge(("u", u), ("v", v), key=key)
    return g


class TestHypothesis:
    @settings(max_examples=60, deadline=None)
    @given(bipartite_multigraphs())
    def test_matches_networkx(self, g):
        assert maximum_matching_size(g) == networkx_matching_size(g)

    @settings(max_examples=60, deadline=None)
    @given(bipartite_multigraphs())
    def test_agrees_with_simple_and_is_valid(self, g):
        matched = maximum_matching(g)
        assert is_matching(g, set(matched))
        assert len(matched) == len(maximum_matching_simple(g))

    @settings(max_examples=40, deadline=None)
    @given(bipartite_multigraphs())
    def test_konig_bound(self, g):
        # Matching size never exceeds either side's node count.
        size = maximum_matching_size(g)
        assert size <= len(g.left_nodes)
        assert size <= len(g.right_nodes)
