"""Tests for the distributed congestion-control dynamics."""

import pytest

from repro.core.flows import Flow, FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.dynamics.waterlevel import AimdDynamics, LinkFairShareDynamics

from tests.helpers import random_flows, random_routing


@pytest.fixture
def clos():
    return ClosNetwork(2)


class TestLinkFairShare:
    def test_single_flow_reaches_capacity(self, clos):
        f = Flow(clos.source(1, 1), clos.destination(3, 1))
        routing = Routing.uniform(clos, FlowCollection([f]), 1)
        trace = LinkFairShareDynamics(routing, clos.graph.capacities()).run()
        assert trace.converged
        assert trace.rates[f] == pytest.approx(1.0)

    def test_equal_split(self, clos):
        flows = FlowCollection()
        pair = flows.add_pair(clos.source(1, 1), clos.destination(3, 1), count=4)
        routing = Routing.uniform(clos, flows, 1)
        trace = LinkFairShareDynamics(routing, clos.graph.capacities()).run()
        for f in pair:
            assert trace.rates[f] == pytest.approx(0.25)

    def test_two_level_instance(self):
        """The Figure 2 shape: shared + unshared flows at two levels."""
        ms = MacroSwitch(1)
        flows = FlowCollection()
        f_a = flows.add(Flow(ms.source(1, 1), ms.destination(1, 1)))
        f_b = flows.add(Flow(ms.source(2, 1), ms.destination(2, 1)))
        f_c = flows.add(Flow(ms.source(2, 1), ms.destination(1, 1)))
        routing = Routing.for_macro_switch(ms, flows)
        trace = LinkFairShareDynamics(routing, ms.graph.capacities()).run()
        assert trace.converged
        for f in (f_a, f_b, f_c):
            assert trace.rates[f] == pytest.approx(0.5)

    @pytest.mark.parametrize("seed", range(8))
    def test_converges_to_oracle_on_clos(self, seed):
        network = ClosNetwork(3)
        flows = random_flows(network, 16, seed)
        routing = random_routing(network, flows, seed)
        capacities = network.graph.capacities()
        oracle = max_min_fair(routing, capacities, exact=False)
        trace = LinkFairShareDynamics(routing, capacities).run(max_rounds=300)
        assert trace.converged
        for f in flows:
            assert trace.rates[f] == pytest.approx(oracle.rate(f), abs=1e-9)

    @pytest.mark.parametrize("seed", range(4))
    def test_converges_to_oracle_on_macro_switch(self, seed):
        ms = MacroSwitch(3)
        flows = random_flows(ClosNetwork(3), 12, seed)
        routing = Routing.for_macro_switch(ms, flows)
        capacities = ms.graph.capacities()
        oracle = max_min_fair(routing, capacities, exact=False)
        trace = LinkFairShareDynamics(routing, capacities).run(max_rounds=300)
        assert trace.converged
        for f in flows:
            assert trace.rates[f] == pytest.approx(oracle.rate(f), abs=1e-9)

    def test_rounds_scale_with_bottleneck_levels(self, clos):
        flows = random_flows(clos, 10, seed=3)
        routing = random_routing(clos, flows, seed=3)
        capacities = clos.graph.capacities()
        oracle = max_min_fair(routing, capacities, exact=False)
        levels = len({round(r, 9) for r in oracle.rates().values()})
        trace = LinkFairShareDynamics(routing, capacities).run()
        # empirical: a couple of rounds per level plus slack
        assert trace.rounds <= 3 * levels + 3

    def test_history_recording(self, clos):
        f = Flow(clos.source(1, 1), clos.destination(3, 1))
        routing = Routing.uniform(clos, FlowCollection([f]), 1)
        trace = LinkFairShareDynamics(routing, clos.graph.capacities()).run(
            record_history=True
        )
        assert trace.history is not None
        assert len(trace.history) == trace.rounds + 1
        assert trace.history[0][f] == 0.0

    def test_max_rounds_cap(self, clos):
        flows = random_flows(clos, 8, seed=4)
        routing = random_routing(clos, flows, seed=4)
        trace = LinkFairShareDynamics(routing, clos.graph.capacities()).run(
            max_rounds=1
        )
        assert trace.rounds == 1

    def test_fixed_point_is_stable(self, clos):
        """One more step from the oracle allocation does not move it."""
        flows = random_flows(clos, 8, seed=5)
        routing = random_routing(clos, flows, seed=5)
        capacities = clos.graph.capacities()
        oracle = max_min_fair(routing, capacities, exact=False)
        dynamics = LinkFairShareDynamics(routing, capacities)
        stepped = dynamics.step(oracle.rates())
        for f in flows:
            assert stepped[f] == pytest.approx(oracle.rate(f), abs=1e-9)


class TestAimd:
    def test_parameter_validation(self, clos):
        f = Flow(clos.source(1, 1), clos.destination(3, 1))
        routing = Routing.uniform(clos, FlowCollection([f]), 1)
        with pytest.raises(ValueError):
            AimdDynamics(routing, clos.graph.capacities(), decrease=1.5)
        with pytest.raises(ValueError):
            AimdDynamics(routing, clos.graph.capacities(), increase=0)

    def test_warmup_validation(self, clos):
        f = Flow(clos.source(1, 1), clos.destination(3, 1))
        routing = Routing.uniform(clos, FlowCollection([f]), 1)
        dynamics = AimdDynamics(routing, clos.graph.capacities())
        with pytest.raises(ValueError):
            dynamics.run(rounds=10, warmup=10)

    def test_single_flow_hovers_near_capacity(self, clos):
        f = Flow(clos.source(1, 1), clos.destination(3, 1))
        routing = Routing.uniform(clos, FlowCollection([f]), 1)
        averages = AimdDynamics(
            routing, clos.graph.capacities(), increase=0.01
        ).run(rounds=3000, warmup=500)
        assert 0.6 < averages[f] <= 1.05

    def test_equal_flows_get_equal_averages(self, clos):
        flows = FlowCollection()
        pair = flows.add_pair(clos.source(1, 1), clos.destination(3, 1), count=2)
        routing = Routing.uniform(clos, flows, 1)
        averages = AimdDynamics(routing, clos.graph.capacities()).run(
            rounds=4000, warmup=1000
        )
        assert averages[pair[0]] == pytest.approx(averages[pair[1]], rel=0.05)

    def test_average_below_fair_share(self, clos):
        """AIMD's sawtooth keeps the time-average below the ideal share —
        the quantitative gap between protocol and idealization."""
        flows = FlowCollection()
        pair = flows.add_pair(clos.source(1, 1), clos.destination(3, 1), count=2)
        routing = Routing.uniform(clos, flows, 1)
        averages = AimdDynamics(routing, clos.graph.capacities()).run(
            rounds=4000, warmup=1000
        )
        for f in pair:
            assert averages[f] < 0.5
            assert averages[f] > 0.25


class TestDegradedFabricDynamics:
    def test_converges_on_failed_fabric(self, clos):
        """Fair-share dynamics compose with failure injection: flows on
        dead links converge to zero, others to the degraded oracle."""
        from repro.failures import fail_middle_switch

        flows = random_flows(clos, 8, seed=6)
        routing = random_routing(clos, flows, seed=6)
        degraded = fail_middle_switch(clos, clos.graph.capacities(), 1)
        oracle = max_min_fair(routing, degraded, exact=False)
        trace = LinkFairShareDynamics(routing, degraded).run(max_rounds=300)
        assert trace.converged
        for f in flows:
            assert trace.rates[f] == pytest.approx(oracle.rate(f), abs=1e-9)
