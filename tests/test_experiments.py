"""Contract tests for the experiment harness modules (E1–E10).

Each experiment is exercised at a reduced scale and its structural
guarantees asserted; the full-scale paper-shape assertions live in the
benchmark suite.
"""

from fractions import Fraction

import pytest

from repro.experiments import (
    ablations,
    convergence,
    ecmp_simulation,
    example_2_3,
    fattree_generality,
    fct_scheduling,
    konig_equivalence,
    r1_price_of_fairness,
    r2_starvation,
    r3_doom_switch,
    rearrangeability,
    relative_fairness,
)


class TestE1:
    def test_run_matches_paper(self):
        result = example_2_3.run()
        assert result.matches_paper
        assert result.orderings_hold
        assert result.lex_optimum_vector == result.routing_a_vector


class TestE2:
    def test_sweep_rows_match(self):
        rows = r1_price_of_fairness.sweep(ks=(1, 4))
        assert [row.k for row in rows] == [1, 4]
        assert all(row.matches for row in rows)

    def test_random_bound(self):
        rows = r1_price_of_fairness.random_bound_check(
            n=2, num_flows=10, seeds=range(2)
        )
        assert all(row.bound_holds for row in rows)
        assert {row.workload for row in rows} == {"uniform", "hotspot"}


class TestE3E4:
    def test_infeasibility(self):
        rows = r2_starvation.infeasibility_sweep((3,))
        assert not rows[0].unsplittable_feasible
        assert rows[0].splittable_feasible

    def test_starvation_small(self):
        rows = r2_starvation.starvation_sweep((3,), check_local_optimality=False)
        assert rows[0].starvation_factor == Fraction(1, 3)
        assert rows[0].bottleneck_certified
        assert rows[0].per_type_rates_match

    def test_claim_4_5(self):
        assert r2_starvation.claim_4_5_integer_solutions(4) == [(0, 4), (5, 0)]

    def test_random_routing_dominance(self):
        row = r2_starvation.random_routing_dominance(3, samples=50, seed=0)
        assert row.dominated + row.ties == 50
        assert row.dominated > 0


class TestE5:
    def test_sweep_point(self):
        rows = r3_doom_switch.sweep(points=((7, 1),))
        row = rows[0]
        assert row.gain == row.predicted_gain == Fraction(10, 9)
        assert row.upper_bound_holds

    def test_exact_bound(self):
        rows = r3_doom_switch.exact_bound_check(n=2, num_flows=4, seeds=range(2))
        assert all(row.upper_bound_holds for row in rows)


class TestE6:
    def test_stochastic_rows_complete(self):
        rows = ecmp_simulation.stochastic_comparison(
            n=2, num_flows=10, seeds=range(1)
        )
        pairs = {(row.workload, row.router) for row in rows}
        assert len(pairs) == 12  # 3 workloads x 4 routers
        assert all(row.lex_at_most_macro for row in rows)

    def test_adversarial_rows(self):
        rows = ecmp_simulation.adversarial_comparison(n=3)
        assert {row.router for row in rows} == {
            "ecmp",
            "two_choice",
            "greedy",
            "local_search",
        }
        assert all(row.min_rate_ratio < 1 for row in rows)

    def test_allocation_summaries(self):
        summaries = ecmp_simulation.allocation_summaries(
            n=2, num_flows=10, seed=0
        )
        assert "macro_switch" in summaries
        assert all("jain" in s for s in summaries.values())


class TestE7:
    def test_equivalence(self):
        rows = konig_equivalence.equivalence_checks(
            n=2, num_flows=10, seeds=range(1)
        )
        assert all(row.equal and row.feasible for row in rows)


class TestE8:
    def test_incast_closed_forms(self):
        rows = fct_scheduling.incast_comparison(n=2, fan_in=4)
        stats = {row.policy: row.stats for row in rows}
        assert stats["maxmin"].mean_fct == pytest.approx(4.0)
        assert stats["scheduler"].mean_fct == pytest.approx(2.5)

    def test_load_sweep_speedups_positive(self):
        rows = fct_scheduling.load_sweep(rates=(1.0,), horizon=15.0)
        assert rows[0].speedup > 0

    def test_poisson_comparison_counts_consistent(self):
        rows = fct_scheduling.poisson_comparison(rate=1.0, horizon=15.0)
        counts = {row.stats.count for row in rows}
        assert len(counts) == 1  # same workload completed by every policy


class TestE9:
    def test_exact_objectives(self):
        rows = relative_fairness.exact_objective_comparison(seeds=range(1))
        assert all(row.relative_dominates for row in rows)
        example = rows[0]
        assert example.instance == "example_2_3"
        assert example.relative_floor == Fraction(3, 4)

    def test_theorem_4_3_probe(self):
        rows = relative_fairness.theorem_4_3_floor_probe(sizes=(3,))
        assert rows[0].lex_floor == Fraction(1, 3)
        assert rows[0].relative_local_floor > Fraction(1, 3)

    def test_stochastic_floors(self):
        rows = relative_fairness.stochastic_floors(
            n=2, num_flows=8, seeds=range(2)
        )
        assert all(0 <= row.ecmp_floor <= 1 for row in rows)
        assert all(row.greedy_floor <= 1 for row in rows)


class TestE10:
    def test_theorem_4_2_repair(self):
        rows = rearrangeability.theorem_4_2_repair((3,))
        assert rows[0].exact_m == 4
        assert rows[0].within_conjecture

    def test_random_repair(self):
        rows = rearrangeability.random_allocation_repair(
            n=2, num_flows=6, seeds=range(2)
        )
        assert all(row.exact_m <= row.heuristic_m for row in rows)


class TestE11:
    def test_paper_instances_converge(self):
        rows = convergence.paper_instances()
        assert all(row.converged for row in rows)
        assert all(row.max_error < 1e-9 for row in rows)

    def test_stochastic_converges(self):
        rows = convergence.stochastic_instances(n=2, num_flows=10, seeds=range(2))
        assert all(row.converged for row in rows)

    def test_aimd_gap_bounded(self):
        rows = convergence.aimd_gap(flow_counts=(2,))
        assert rows[0].relative_gap < 0.5


class TestE12:
    def test_r1_bound(self):
        rows = fattree_generality.r1_on_fat_tree(k=4, num_flows=15, seeds=range(1))
        assert all(row.bound_holds for row in rows)

    def test_r2_leakage_certified(self):
        rows = fattree_generality.r2_leakage_on_fat_tree(
            k=4, num_flows=20, seeds=range(1)
        )
        assert all(row.certified for row in rows)
        assert all(0 < row.min_ratio <= 1 for row in rows)

    def test_dynamics(self):
        rows = fattree_generality.dynamics_on_fat_tree(
            k=4, num_flows=15, seeds=range(1)
        )
        assert all(row.converged for row in rows)


class TestAblations:
    def test_dump_policies(self):
        rows = ablations.dump_policy_ablation(points=((7, 1),))
        by_policy = {row.policy: row for row in rows}
        assert by_policy["least"].throughput >= by_policy["most"].throughput

    def test_search(self):
        rows = ablations.search_ablation(n=2, num_flows=4, seeds=range(2))
        assert all(row.space_reduced < row.space_full for row in rows)
        assert all(row.local_gap >= 0 for row in rows)


class TestGlobalSearchAblation:
    def test_rows_and_dominance(self):
        from repro.experiments.ablations import global_search_ablation

        rows = global_search_ablation(n=2, num_flows=4, seeds=range(3))
        assert len(rows) == 3
        assert sum(r.multi_start_matches for r in rows) >= sum(
            r.hill_matches for r in rows
        )
