"""Tests for the observability layer (repro.obs)."""

import io
import json
from fractions import Fraction

import pytest

from repro import obs
from repro.obs.logger import StructuredLogger
from repro.obs.metrics import MetricsRegistry, snapshot_delta
from repro.obs.trace import span_from_dict


@pytest.fixture
def observing():
    """Observability on for the test, fully reset around it."""
    obs.reset()
    obs.enable()
    yield
    obs.reset()
    obs.disable()


@pytest.fixture
def dark():
    """Observability off (the default) with clean state."""
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    obs.disable()


class TestSpans:
    def test_spans_nest_correctly(self, observing):
        with obs.trace_span("outer", kind="test"):
            with obs.trace_span("middle"):
                with obs.trace_span("inner"):
                    pass
            with obs.trace_span("sibling"):
                pass
        roots = obs.tracer().collect()
        assert [r.name for r in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["middle", "sibling"]
        assert [c.name for c in outer.children[0].children] == ["inner"]
        # a child's wall time is contained in its parent's
        assert outer.duration >= outer.children[0].duration

    def test_collect_drains(self, observing):
        with obs.trace_span("a"):
            pass
        assert len(obs.tracer().collect()) == 1
        assert obs.tracer().collect() == []

    def test_span_attributes_and_set(self, observing):
        with obs.trace_span("solve", flows=6) as span:
            span.set(rounds=3)
        (root,) = obs.tracer().collect()
        assert root.attrs == {"flows": 6, "rounds": 3}

    def test_to_dict_without_times_is_deterministic(self, observing):
        for _ in range(2):
            with obs.trace_span("outer"):
                with obs.trace_span("inner", k=1):
                    pass
        first, second = obs.tracer().collect()
        assert first.to_dict(times=False) == second.to_dict(times=False)
        assert "duration_s" not in first.to_dict(times=False)
        assert "duration_s" in first.to_dict()

    def test_disabled_trace_span_is_noop(self, dark):
        with obs.trace_span("ghost") as span:
            span.set(anything=1)  # accepted, discarded
        assert obs.tracer().collect() == []

    def test_exception_still_closes_span(self, observing):
        with pytest.raises(ValueError):
            with obs.trace_span("outer"):
                with obs.trace_span("inner"):
                    raise ValueError("boom")
        (root,) = obs.tracer().collect()
        assert root.name == "outer"
        assert [c.name for c in root.children] == ["inner"]

    def test_traced_decorator(self, observing):
        @obs.traced("decorated.fn")
        def fn(x):
            return x + 1

        assert fn(1) == 2
        (root,) = obs.tracer().collect()
        assert root.name == "decorated.fn"

    def test_memory_tracking_records_peak(self):
        obs.reset()
        obs.enable(memory=True)
        try:
            with obs.trace_span("alloc") as span:
                blob = [0] * 100_000
                del blob
            (root,) = obs.tracer().collect()
            assert root.mem_peak_bytes is not None
            assert root.mem_peak_bytes > 100_000 * 4
        finally:
            obs.reset()
            obs.disable()


class TestMetrics:
    def test_counter_gauge_histogram(self, observing):
        registry = MetricsRegistry()
        registry.counter("c").inc()
        registry.counter("c").inc(4)
        registry.gauge("g").set(Fraction(2, 3))
        for value in (Fraction(1, 3), Fraction(2, 3), Fraction(1, 1)):
            registry.histogram("h").observe(value)
        snap = registry.snapshot()
        assert snap["c"] == 5
        assert snap["g"] == "2/3"
        assert snap["h"]["count"] == 3
        assert snap["h"]["sum"] == 2  # exact: 1/3 + 2/3 + 1
        assert snap["h"]["mean"] == "2/3"
        assert snap["h"]["min"] == "1/3"

    def test_disabled_instruments_do_nothing(self, dark):
        registry = MetricsRegistry()
        registry.counter("c").inc(100)
        registry.gauge("g").set(1)
        registry.histogram("h").observe(1)
        assert registry.snapshot() == {}

    def test_snapshot_omits_idle_instruments(self, observing):
        registry = MetricsRegistry()
        registry.counter("quiet")
        registry.gauge("unset")
        registry.histogram("empty")
        registry.counter("busy").inc()
        assert registry.snapshot() == {"busy": 1}

    def test_name_kind_conflicts_rejected(self, observing):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")

    def test_reset_keeps_handles_valid(self, observing):
        registry = MetricsRegistry()
        handle = registry.counter("c")
        handle.inc(3)
        registry.reset()
        handle.inc()
        assert registry.snapshot() == {"c": 1}

    def test_snapshot_delta(self):
        before = {"a": 2, "g": "2/3"}
        after = {"a": 5, "b": 7, "g": "1/2"}
        assert snapshot_delta(before, after) == {"a": 3, "b": 7, "g": "1/2"}


class TestHistogramPercentiles:
    def test_exact_nearest_rank_percentiles(self, observing):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in range(1, 101):  # 1..100, once each
            hist.observe(value)
        snap = registry.snapshot()["h"]
        assert snap["p50"] == 50
        assert snap["p90"] == 90
        assert snap["p99"] == 99

    def test_percentiles_respect_multiplicity(self, observing):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for _ in range(9):
            hist.observe(Fraction(1, 3))
        hist.observe(Fraction(2, 3))
        snap = registry.snapshot()["h"]
        assert snap["p50"] == "1/3"
        assert snap["p90"] == "1/3"  # rank 9 of 10 is still 1/3
        assert snap["p99"] == "2/3"

    def test_integer_observations_stay_exact_in_json(self, observing):
        """mean() of ints divides via Fraction, never float — so the
        JSON snapshot of an exact run contains no floats anywhere."""
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in (1, 2):
            hist.observe(value)
        snap = registry.snapshot()["h"]
        assert snap["mean"] == "3/2"

        def no_floats(value):
            if isinstance(value, float):
                return False
            if isinstance(value, dict):
                return all(no_floats(v) for v in value.values())
            return True

        assert no_floats(snap)

    def test_float_observations_fall_back_to_float_mean(self, observing):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        hist.observe(1)
        hist.observe(0.5)
        assert registry.snapshot()["h"]["mean"] == pytest.approx(0.75)

    def test_empty_histogram_has_no_percentiles(self, observing):
        registry = MetricsRegistry()
        hist = registry.histogram("h")
        assert hist.percentile(Fraction(1, 2)) is None
        assert hist.mean() is None

    def test_bucket_cap_overflows_gracefully(self, observing):
        from repro.obs.metrics import MAX_BUCKETS

        registry = MetricsRegistry()
        hist = registry.histogram("h")
        for value in range(MAX_BUCKETS + 10):
            hist.observe(value)
        snap = registry.snapshot()["h"]
        assert snap["count"] == MAX_BUCKETS + 10
        assert snap["bucket_overflow"] == 10
        assert snap["max"] == MAX_BUCKETS + 9  # tracked past the cap


class TestWaterFillingCounters:
    """Counters match hand-computed round counts on Example 2.3.

    Routing A water-fills in two rounds (levels 1/3 then 2/3); routing B
    needs three (1/3, 2/3, then 1) — exactly the distinct values in the
    paper's sorted vectors.
    """

    def _solve(self, routing, capacities):
        from repro.core.maxmin import max_min_fair

        obs.reset()
        alloc = max_min_fair(routing, capacities)
        return alloc, obs.metrics_snapshot(), obs.tracer().collect()

    def test_example_2_3_round_counts(self, observing):
        from repro.workloads.adversarial import example_2_3, example_2_3_routings

        instance = example_2_3()
        capacities = instance.clos.graph.capacities()
        routing_a, routing_b = example_2_3_routings(instance)

        alloc_a, snap_a, spans_a = self._solve(routing_a, capacities)
        assert snap_a["maxmin.rounds"] == 2
        assert snap_a["maxmin.solves"] == 1
        assert snap_a["maxmin.flows_frozen"] == 6
        # the span's per-solve round attribute agrees with the counter
        assert spans_a[0].attrs["rounds"] == 2
        assert snap_a["maxmin.rounds"] == len(set(alloc_a.sorted_vector()))

        alloc_b, snap_b, spans_b = self._solve(routing_b, capacities)
        assert snap_b["maxmin.rounds"] == 3
        assert spans_b[0].attrs["rounds"] == 3
        assert snap_b["maxmin.rounds"] == len(set(alloc_b.sorted_vector()))

    def test_fast_solver_counters(self, observing):
        from repro.core.fastmaxmin import max_min_fair_fast
        from repro.routers.ecmp import ecmp_routing
        from repro.core.topology import ClosNetwork
        from repro.workloads.stochastic import permutation

        clos = ClosNetwork(3)
        flows = permutation(clos, seed=1)
        routing = ecmp_routing(clos, flows)
        obs.reset()
        alloc = max_min_fair_fast(routing, clos.graph.capacities())
        snap = obs.metrics_snapshot()
        assert snap["fastmaxmin.solves"] == 1
        assert snap["fastmaxmin.flows_frozen"] == len(alloc)
        assert snap["fastmaxmin.heap_pops"] >= 1


class TestRunnerManifests:
    PRE_OBS_KEYS = {"name", "status", "attempts", "duration", "error", "output"}

    def _run_sweep(self, tmp_path):
        from repro.runner import ResilientRunner, RunManifest

        path = str(tmp_path / "sweep.json")
        runner = ResilientRunner(
            manifest=RunManifest(path), stream=io.StringIO()
        )
        runner.run({"s1": lambda: print("one"), "s2": lambda: print("two")})
        with open(path) as handle:
            return json.load(handle)

    def test_disabled_mode_adds_no_manifest_keys(self, dark, tmp_path):
        document = self._run_sweep(tmp_path)
        for step in document["steps"]:
            assert set(step) == self.PRE_OBS_KEYS

    def test_enabled_mode_embeds_trace_and_metrics(self, observing, tmp_path):
        from repro.core.maxmin import max_min_fair
        from repro.core.topology import MacroSwitch
        from repro.core.flows import FlowCollection
        from repro.runner import ResilientRunner, RunManifest

        ms = MacroSwitch(1)
        flows = FlowCollection.from_pairs(
            [
                (ms.source(1, 1), ms.destination(1, 1)),
                (ms.source(2, 1), ms.destination(1, 1)),
            ]
        )
        from repro.core.routing import Routing

        routing = Routing.for_macro_switch(ms, flows)
        capacities = ms.graph.capacities()

        path = str(tmp_path / "sweep.json")
        runner = ResilientRunner(
            manifest=RunManifest(path), stream=io.StringIO()
        )
        runner.run({"solve": lambda: max_min_fair(routing, capacities)})
        with open(path) as handle:
            (step,) = json.load(handle)["steps"]
        assert step["trace"]["name"] == "step:solve"
        assert [c["name"] for c in step["trace"]["children"]] == [
            "maxmin.water_fill"
        ]
        assert step["metrics"]["maxmin.solves"] == 1
        assert step["metrics"]["maxmin.rounds"] == 1

        # a reloaded manifest keeps the observability payload
        reloaded = RunManifest.load(path)
        assert reloaded.step("solve").metrics["maxmin.rounds"] == 1
        assert reloaded.step("solve").span_wall_seconds() is not None


class TestJsonlRoundTrip:
    def test_trace_jsonl_round_trips(self, observing, tmp_path):
        from repro.io.serialize import read_jsonl

        with obs.trace_span("outer", flows=3):
            with obs.trace_span("inner", level="1/3"):
                pass
        with obs.trace_span("second"):
            pass
        roots = obs.tracer().collect()
        path = str(tmp_path / "trace.jsonl")
        obs.write_trace_jsonl(path, roots)

        documents = read_jsonl(path)
        assert len(documents) == 2
        rebuilt = [span_from_dict(doc) for doc in documents]
        assert [s.to_dict() for s in rebuilt] == [s.to_dict() for s in roots]
        assert rebuilt[0].children[0].attrs == {"level": "1/3"}

    def test_read_jsonl_rejects_bad_lines(self, tmp_path):
        from repro.io.serialize import ScenarioError, read_jsonl

        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ScenarioError):
            read_jsonl(str(path))


class TestStructuredLogger:
    def test_enabled_logger_emits_structured_lines(self, observing):
        stream = io.StringIO()
        logger = StructuredLogger("repro.test", stream=stream)
        logger.info("experiment.done", id="e3", elapsed=1.25)
        logger.warning("slow", note="took a while")
        text = stream.getvalue()
        assert "repro.test experiment.done id=e3 elapsed=1.25" in text
        assert 'WARNING repro.test slow note="took a while"' in text
        assert logger.events() == ["experiment.done", "slow"]

    def test_disabled_logger_is_silent(self, dark):
        stream = io.StringIO()
        logger = StructuredLogger("repro.test", stream=stream)
        logger.info("hidden")
        assert stream.getvalue() == ""
        assert logger.events() == []

    def test_always_logger_ignores_the_switch(self, dark):
        stream = io.StringIO()
        logger = StructuredLogger("repro.test", stream=stream, always=True)
        logger.info("visible", n=1)
        assert "repro.test visible n=1" in stream.getvalue()

    def test_get_logger_caches(self):
        from repro.obs import get_logger

        assert get_logger("repro.same") is get_logger("repro.same")


class TestInstrumentedSubsystems:
    """Each instrumented layer shows up in the registry when exercised."""

    def test_simulator_counters(self, observing):
        from repro.core.topology import ClosNetwork
        from repro.sim.flowsim import simulate
        from repro.sim.jobs import FlowJob
        from repro.sim.policies import MaxMinCongestionControl

        clos = ClosNetwork(1)
        jobs = [
            FlowJob(0, clos.source(1, 1), clos.destination(2, 1), 0.0, 2.0)
        ]
        obs.reset()
        simulate(jobs, MaxMinCongestionControl(clos))
        snap = obs.metrics_snapshot()
        assert snap["sim.runs"] == 1
        assert snap["sim.completions"] == 1
        assert snap["sim.events"] >= 1
        (root,) = [
            s for s in obs.tracer().collect() if s.name == "sim.simulate"
        ]
        assert root.attrs["completed"] == 1

    def test_router_decision_counters(self, observing):
        from repro.core.topology import ClosNetwork
        from repro.routers.ecmp import ecmp_routing
        from repro.routers.greedy import greedy_least_congested
        from repro.workloads.stochastic import permutation

        clos = ClosNetwork(2)
        flows = permutation(clos, seed=1)
        obs.reset()
        ecmp_routing(clos, flows)
        greedy_least_congested(clos, flows)
        snap = obs.metrics_snapshot()
        assert snap["router.ecmp.path_decisions"] == len(flows)
        assert snap["router.greedy.path_decisions"] == len(flows)

    def test_local_search_counters(self, observing):
        from repro.core.topology import ClosNetwork
        from repro.core.routing import Routing
        from repro.search.local_search import improve_routing
        from repro.workloads.stochastic import permutation

        clos = ClosNetwork(2)
        flows = permutation(clos, seed=1)
        start = Routing.uniform(clos, flows, 1)
        obs.reset()
        improve_routing(clos, start, objective="lex")
        snap = obs.metrics_snapshot()
        assert snap["search.local.rounds"] >= 1
        assert snap["search.local.moves_proposed"] >= 1
        # the accepted-move count never exceeds the proposals
        accepted = snap.get("search.local.moves_accepted", 0)
        assert accepted <= snap["search.local.moves_proposed"]

    def test_zero_overhead_shape_when_disabled(self, dark):
        """Disabled instruments leave the registry untouched entirely."""
        from repro.core.topology import ClosNetwork
        from repro.routers.ecmp import ecmp_routing
        from repro.workloads.stochastic import permutation

        clos = ClosNetwork(2)
        ecmp_routing(clos, permutation(clos, seed=1))
        assert obs.metrics_snapshot() == {}
        assert obs.tracer().collect() == []
