"""Collect the performance baseline: every kernel scenario, traced.

Runs the same scenarios the ``benchmarks/test_bench_*.py`` suite
exercises — water-filling (exact, float, heap-accelerated), the
routers, local search, and the flow simulator — under
:mod:`repro.obs` tracing, and writes ``BENCH_baseline.json``: one
entry per scenario with best/median wall time over ``--repeat`` runs
plus the solver counters that explain the cost (water-filling rounds,
heap pops, router decisions, simulator events).

This file seeds the repo's perf trajectory: future optimisation PRs
re-run it and diff against the committed baseline, so "made the hot
path faster" is a measured claim with the counters to prove the work
didn't change (same rounds, fewer seconds).

Run:  PYTHONPATH=src python benchmarks/collect.py [-o BENCH_baseline.json]
"""

from __future__ import annotations

import argparse
import platform
import statistics
import sys
import time
from typing import Any, Callable, Dict, List

from repro import obs
from repro.core.maxmin import max_min_fair
from repro.core.fastmaxmin import max_min_fair_fast
from repro.core.topology import ClosNetwork
from repro.io.serialize import write_json_atomic
from repro.routers.ecmp import ecmp_routing
from repro.routers.greedy import greedy_least_congested
from repro.routers.two_choice import two_choice_routing
from repro.runner import git_sha
from repro.search.local_search import improve_routing
from repro.sim.flowsim import simulate
from repro.sim.jobs import poisson_workload
from repro.sim.policies import MaxMinCongestionControl
from repro.workloads.stochastic import permutation, uniform_random

FORMAT_NAME = "repro-bench"
FORMAT_VERSION = 1


def _big_instance():
    clos = ClosNetwork(8)
    flows = uniform_random(clos, 400, seed=0)
    return clos, flows


def scenario_example_2_3() -> None:
    from repro.experiments.example_2_3 import run

    run()


def scenario_water_filling_exact() -> None:
    clos, flows = _big_instance()
    routing = ecmp_routing(clos, flows)
    max_min_fair(routing, clos.graph.capacities(), exact=True)


def scenario_water_filling_float() -> None:
    clos, flows = _big_instance()
    routing = ecmp_routing(clos, flows)
    max_min_fair(routing, clos.graph.capacities(), exact=False)


def scenario_water_filling_fast() -> None:
    clos, flows = _big_instance()
    routing = ecmp_routing(clos, flows)
    max_min_fair_fast(routing, clos.graph.capacities())


def scenario_greedy_router() -> None:
    clos, flows = _big_instance()
    greedy_least_congested(clos, flows)


def scenario_two_choice_router() -> None:
    clos, flows = _big_instance()
    two_choice_routing(clos, flows, seed=0)


def scenario_local_search() -> None:
    clos = ClosNetwork(2)
    flows = permutation(clos, seed=3)
    improve_routing(clos, ecmp_routing(clos, flows), objective="lex")


def scenario_flow_simulation() -> None:
    clos = ClosNetwork(3)
    jobs = poisson_workload(clos, rate=2.0, horizon=20.0, seed=0)
    simulate(jobs, MaxMinCongestionControl(clos))


SCENARIOS: Dict[str, Callable[[], None]] = {
    "example_2_3": scenario_example_2_3,
    "water_filling_exact": scenario_water_filling_exact,
    "water_filling_float": scenario_water_filling_float,
    "water_filling_fast": scenario_water_filling_fast,
    "greedy_router": scenario_greedy_router,
    "two_choice_router": scenario_two_choice_router,
    "local_search": scenario_local_search,
    "flow_simulation": scenario_flow_simulation,
}


def collect(repeat: int = 3) -> Dict[str, Any]:
    """Run every scenario ``repeat`` times; return the baseline document.

    Wall times are measured with tracing on but memory tracking off
    (tracemalloc would distort allocation-heavy kernels); counters come
    from the final run — they are identical across runs since every
    scenario is deterministic.
    """
    was_enabled = obs.enabled()
    obs.enable(memory=False)
    results: Dict[str, Any] = {}
    try:
        for name, scenario in SCENARIOS.items():
            walls: List[float] = []
            snapshot: Dict[str, Any] = {}
            for _ in range(repeat):
                obs.reset()
                start = time.perf_counter()
                with obs.trace_span(f"bench:{name}"):
                    scenario()
                walls.append(time.perf_counter() - start)
                snapshot = obs.metrics_snapshot()
                obs.tracer().collect()
            results[name] = {
                "wall_s_best": round(min(walls), 6),
                "wall_s_median": round(statistics.median(walls), 6),
                "repeat": repeat,
                "metrics": snapshot,
            }
            print(
                f"{name}: best {results[name]['wall_s_best']}s "
                f"median {results[name]['wall_s_median']}s",
                file=sys.stderr,
            )
    finally:
        obs.reset()
        if not was_enabled:
            obs.disable()

    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scenarios": results,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Collect the traced performance baseline."
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_baseline.json", help="output path"
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="runs per scenario (default 3)"
    )
    args = parser.parse_args(argv)
    document = collect(repeat=args.repeat)
    write_json_atomic(args.output, document)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
