"""Collect the performance baseline — thin wrapper over ``repro.bench``.

The scenario suite, collection loop, and regression gate live in
:mod:`repro.bench` (also reachable as ``python -m repro bench``); this
script is kept for the documented invocation::

    PYTHONPATH=src python benchmarks/collect.py [-o BENCH_baseline.json]
    PYTHONPATH=src python benchmarks/collect.py --against BENCH_baseline.json

One entry per scenario with best/median wall time over ``--repeat``
runs plus the solver counters that explain the cost (water-filling
rounds, heap pops, router decisions, simulator events).  Future
optimisation PRs run the ``--against`` gate on the committed baseline,
so "made the hot path faster" is a measured claim with the counters to
prove the work didn't change (same rounds, fewer seconds).
"""

from __future__ import annotations

import argparse

from repro.bench import bench_command


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Collect the traced performance baseline."
    )
    parser.add_argument(
        "-o", "--output", default="BENCH_baseline.json", help="output path"
    )
    parser.add_argument(
        "--repeat", type=int, default=3, help="runs per scenario (default 3)"
    )
    parser.add_argument(
        "--against",
        metavar="BASELINE",
        help="compare against a baseline JSON; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed median slowdown vs the baseline (0.25 = 25%%)",
    )
    args = parser.parse_args(argv)
    return bench_command(
        output=args.output,
        repeat=args.repeat,
        against=args.against,
        tolerance=args.tolerance,
    )


if __name__ == "__main__":
    raise SystemExit(main())
