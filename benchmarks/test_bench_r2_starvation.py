"""E4 — Figure 3 / Theorem 4.3 (R2): the 1/n starvation series.

Paper shape: the type-3 flow's macro-switch rate is 1 but its
lex-max-min rate is 1/n, certified via the bottleneck property and
local optimality (the proof's own structure).

Run:  pytest benchmarks/test_bench_r2_starvation.py --benchmark-only -s
"""

from fractions import Fraction

from repro.analysis import format_series
from repro.experiments.r2_starvation import (
    claim_4_5_integer_solutions,
    random_routing_dominance,
    starvation_sweep,
)

SIZES = (3, 4, 5, 6)


def test_bench_r2_starvation(benchmark):
    # The benchmarked sweep verifies rates + bottleneck certificates for
    # all sizes; the O(|F|·n)-water-fillings local-optimality probe is
    # checked separately (below) on the smaller sizes to keep the timing
    # loop honest about the per-size verification cost.
    rows = benchmark(starvation_sweep, SIZES, False)

    for row in rows:
        assert row.starvation_factor == Fraction(1, row.n)
        assert row.starvation_factor == row.predicted_factor
        assert row.bottleneck_certified
        assert row.per_type_rates_match

    print("\n[E4] Theorem 4.3 — lex-max-min starvation of the type-3 flow")
    print(
        format_series(
            "n",
            [row.n for row in rows],
            {
                "macro rate": [row.macro_type3_rate for row in rows],
                "lex-max-min rate": [row.lex_type3_rate for row in rows],
                "factor (measured)": [row.starvation_factor for row in rows],
                "factor (paper)": [row.predicted_factor for row in rows],
            },
        )
    )


def test_bench_r2_local_optimality(benchmark):
    """Lemma 4.6 Step 2's necessary condition, probed by local search."""
    rows = benchmark(starvation_sweep, (3, 4), True)
    assert all(row.locally_optimal for row in rows)
    print(
        "\n[E4c] Lemma 4.6 routing is a lex local optimum for n in (3, 4):"
        " no single-flow reroute improves the sorted vector"
    )


def test_bench_r2_sampled_dominance(benchmark):
    """Lemma 4.6 Step 2 probed by volume: 200 random routings, none
    lex-beats the posited optimum (strictly dominated or tied)."""
    row = benchmark(random_routing_dominance, 3, 200, 0)
    assert row.dominated + row.ties == row.samples
    print(
        f"\n[E4d] sampled dominance (n=3): {row.dominated} dominated,"
        f" {row.ties} ties out of {row.samples} random routings —"
        " none beats the Lemma 4.6 optimum"
    )


def test_bench_claim_4_5(benchmark):
    solutions = benchmark(claim_4_5_integer_solutions, 7)
    assert solutions == [(0, 7), (8, 0)]
    print(
        "\n[E4b] Claim 4.5 (n = 7): integer solutions of x/(n+1) + y/n = 1"
        f" are exactly {solutions}"
    )


def test_bench_claim_4_5_exhaustive(benchmark):
    """Claim 4.5 over ALL feasible routings (n = 3): there is exactly one
    modulo symmetry, and it satisfies both conditions."""
    from repro.experiments.r2_starvation import claim_4_5_all_routings

    verification = benchmark(claim_4_5_all_routings, 3)
    assert verification.exhausted
    assert verification.num_routings == 1
    assert verification.condition_1_holds and verification.condition_2_holds
    print(
        "\n[E4e] Claim 4.5 exhaustive (n = 3): the type-1/type-2 macro rates"
        " admit exactly ONE routing modulo symmetry, and it satisfies both"
        " of the claim's conditions — the constraint structure the proof"
        " derives is not just necessary but uniquely determining"
    )
