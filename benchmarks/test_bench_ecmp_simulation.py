"""E6 — §6's simulation study: routers vs the macro-switch abstraction.

Paper shape (extended version, summarized in §6): on stochastic inputs,
congestion-aware routers that borrow macro-switch rates approximate the
macro-switch allocation well; on worst-case inputs some flows fall far
below their macro-switch rates — for every router.

Run:  pytest benchmarks/test_bench_ecmp_simulation.py --benchmark-only -s
"""

from fractions import Fraction

from repro.analysis import format_table
from repro.experiments.ecmp_simulation import (
    adversarial_comparison,
    stochastic_comparison,
)


def _mean(values):
    values = list(values)
    return sum(values) / len(values)


def test_bench_e6_stochastic(benchmark):
    rows = benchmark(stochastic_comparison, 3, 30, range(3))

    # Feasibility sanity: no router ever lex-exceeds the macro-switch.
    assert all(row.lex_at_most_macro for row in rows)

    groups = {}
    for row in rows:
        groups.setdefault((row.workload, row.router), []).append(row)

    table = []
    for (workload, router), cells in sorted(groups.items()):
        table.append(
            [
                workload,
                router,
                _mean(float(c.throughput_fraction) for c in cells),
                _mean(float(c.min_rate_ratio) for c in cells),
                _mean(c.mean_rate_ratio for c in cells),
            ]
        )
    print("\n[E6] §6 simulation — routers vs macro-switch (mean over seeds)")
    print(
        format_table(
            [
                "workload",
                "router",
                "throughput frac",
                "worst-flow ratio",
                "mean-flow ratio",
            ],
            table,
        )
    )

    # The paper's qualitative claim: congestion-aware routing tracks the
    # macro-switch closely on stochastic inputs, ECMP does not.
    greedy_mean = _mean(
        _mean(c.mean_rate_ratio for c in cells)
        for (w, r), cells in groups.items()
        if r == "greedy"
    )
    ecmp_mean = _mean(
        _mean(c.mean_rate_ratio for c in cells)
        for (w, r), cells in groups.items()
        if r == "ecmp"
    )
    assert greedy_mean > 0.95
    assert greedy_mean > ecmp_mean


def test_bench_e6_locality(benchmark):
    """E6c — rack locality concentrates, not relieves, the interior."""
    from repro.experiments.ecmp_simulation import locality_sweep

    rows = benchmark(locality_sweep, 3, 30, (0.0, 0.5, 1.0), 0)

    greedy = [row for row in rows if row.router == "greedy"]
    ecmp = [row for row in rows if row.router == "ecmp"]
    # demand-aware routing holds the macro allocation at every locality
    assert all(float(row.throughput_fraction) > 0.97 for row in greedy)
    # ECMP is strictly worse than greedy everywhere in this sweep
    for e_row, g_row in zip(ecmp, greedy):
        assert e_row.throughput_fraction <= g_row.throughput_fraction

    print("\n[E6c] rack-locality sweep (3-stage Clos: local flows still")
    print("      cross the interior, so locality concentrates collisions)")
    print(
        format_table(
            ["locality", "router", "throughput frac", "worst ratio", "interior-bottlenecked"],
            [
                [
                    row.locality,
                    row.router,
                    row.throughput_fraction,
                    row.min_rate_ratio,
                    row.interior_bound_fraction,
                ]
                for row in rows
            ],
        )
    )


def test_bench_e6_adversarial(benchmark):
    rows = benchmark(adversarial_comparison, 3)

    print("\n[E6b] §6 worst case — Theorem 4.3 flows (n = 3)")
    print(
        format_table(
            ["router", "throughput frac", "worst-flow ratio"],
            [
                [row.router, row.throughput_fraction, row.min_rate_ratio]
                for row in rows
            ],
        )
    )
    # Every router leaves some flow well below its macro-switch rate —
    # Theorem 4.3 proves ≤ 1/n (here 1/3) is unavoidable for *optimal*
    # routing; heuristics cannot beat the optimum.
    assert all(row.min_rate_ratio < 1 for row in rows)
