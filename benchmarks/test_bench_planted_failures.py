"""E13/E14 — robustness extensions: planted gadgets and failure injection.

E13 asks whether the paper's pathologies survive realistic background
traffic (they do — they are local to the gadget's servers and interior
links), E14 how the fabric degrades when its interior shrinks (reroute
beats pin at every failure level; pinned flows through a dead switch
starve outright).

Run:  pytest benchmarks/test_bench_planted_failures.py --benchmark-only -s
"""

from fractions import Fraction

from repro.analysis import format_table
from repro.experiments.failure_degradation import middle_failure_sweep
from repro.experiments.planted_gadgets import (
    planted_price_of_fairness,
    planted_starvation,
)


def test_bench_e13_planted_starvation(benchmark):
    rows = benchmark(planted_starvation, 3, (0, 10, 30), 0)

    assert all(row.macro_rate == 1 for row in rows)
    print("\n[E13] Theorem 4.3 gadget planted in background traffic")
    print(
        format_table(
            ["router", "background flows", "type-3 rate", "ratio vs macro"],
            [
                [row.router, row.num_background, row.network_rate, row.ratio]
                for row in rows
            ],
        )
    )


def test_bench_e13_planted_pof(benchmark):
    rows = benchmark(planted_price_of_fairness, 3, 8, (0, 10, 30), 0)

    # the gadget's per-flow rate is invariant; the global ratio dilutes
    # upward from the gadget-only baseline (background has its own mild
    # fairness losses, so dilution is not strictly monotone in volume)
    assert len({row.gadget_rate_each for row in rows}) == 1
    baseline = rows[0].ratio
    assert all(row.ratio > baseline for row in rows[1:])

    print("\n[E13b] Figure 2 gadget planted in background traffic")
    print(
        format_table(
            ["background", "T^MmF", "T^MT", "global ratio", "gadget rate"],
            [
                [
                    row.num_background,
                    row.t_max_min,
                    row.t_max_throughput,
                    row.ratio,
                    row.gadget_rate_each,
                ]
                for row in rows
            ],
        )
    )


def test_bench_e14_failure_sweep(benchmark):
    rows = benchmark(middle_failure_sweep, 4, 40, 3, 0)

    for row in rows:
        assert row.rerouted_throughput >= row.pinned_throughput
    assert rows[1].pinned_min_rate == 0  # pinned flows starve immediately

    print("\n[E14] middle-switch failures: pinned vs rerouted")
    print(
        format_table(
            [
                "failed",
                "surviving",
                "pinned T",
                "pinned min rate",
                "rerouted T",
                "rerouted min rate",
            ],
            [
                [
                    row.failed_middles,
                    row.surviving,
                    row.pinned_throughput,
                    row.pinned_min_rate,
                    row.rerouted_throughput,
                    row.rerouted_min_rate,
                ]
                for row in rows
            ],
        )
    )
