"""E12 — the paper's phenomena on k-ary fat-trees (§7's generality claim).

Paper context: §7 restates R1 "for every interconnection network
connecting sources to destinations"; fat-trees are the deployed fabric.

Measured shape: (1) T^MmF ≥ T^MT/2 holds on fat-tree host populations
and the embedded Figure 2 gadget approaches the bound; (2) under
single-path ECMP a substantial fraction of flows fall below their
macro-abstraction rates with bottlenecks on interior links — the R2
leakage is not Clos-specific; (3) the distributed fair-share dynamics
converge on the fat-tree unchanged.

Run:  pytest benchmarks/test_bench_fattree.py --benchmark-only -s
"""

from fractions import Fraction

from repro.analysis import format_table
from repro.experiments.fattree_generality import (
    dynamics_on_fat_tree,
    r1_on_fat_tree,
    r2_leakage_on_fat_tree,
)


def test_bench_e12_r1(benchmark):
    rows = benchmark(r1_on_fat_tree, 4, 30, range(3))

    assert all(row.bound_holds for row in rows)
    gadget = [row for row in rows if row.workload.startswith("figure2")][0]
    # the embedded gadget drives T^MmF/T^MT toward 1/2: 10/9 vs 2
    assert gadget.t_max_min == Fraction(10, 9)
    assert gadget.t_max_throughput == 2

    print("\n[E12] R1 on the fat-tree macro abstraction (k = 4)")
    print(
        format_table(
            ["workload", "flows", "T^MmF", "T^MT", "2·T^MmF >= T^MT"],
            [
                [row.workload, row.num_flows, row.t_max_min, row.t_max_throughput, row.bound_holds]
                for row in rows
            ],
        )
    )


def test_bench_e12_r2(benchmark):
    rows = benchmark(r2_leakage_on_fat_tree, 4, 40, range(3))

    assert all(row.certified for row in rows)
    # the leakage is real: some flows sit below their macro rates
    assert any(row.num_below_macro > 0 for row in rows)

    print("\n[E12b] R2 leakage under ECMP inside the fat-tree (k = 4)")
    print(
        format_table(
            ["seed", "flows", "below macro", "min ratio", "interior-bottlenecked"],
            [
                [
                    row.seed,
                    row.num_flows,
                    row.num_below_macro,
                    row.min_ratio,
                    row.interior_bottlenecked,
                ]
                for row in rows
            ],
        )
    )


def test_bench_e12_dynamics(benchmark):
    rows = benchmark(dynamics_on_fat_tree, 4, 30, range(3))

    assert all(row.converged and row.max_error < 1e-9 for row in rows)
    print(
        f"\n[E12c] fair-share dynamics on the fat-tree: all converge"
        f" (worst {max(row.rounds for row in rows)} rounds)"
    )
