"""E16 — splittability restores the macro-switch abstraction (§1's premise).

Paper context: every impossibility result assumes unsplittable flows;
§1 recalls that splittable flows make C_n equivalent to MS_n.

Measured shape: splittable max-min rates equal the macro-switch rates
to LP precision on random instances, and on the Theorem 4.3
construction the type-3 flow — provably starved to 1/n by every
unsplittable routing — recovers its full macro rate 1 when allowed to
split.  Unsplittability is the sole culprit.

Run:  pytest benchmarks/test_bench_splittable.py --benchmark-only -s
"""

import pytest

from repro.analysis import format_table
from repro.experiments.splittable_equivalence import (
    random_equivalence,
    starvation_reversal,
)


def test_bench_e16_random_equivalence(benchmark):
    rows = benchmark(random_equivalence, 2, 10, range(3))

    assert all(row.equivalent for row in rows)
    print("\n[E16] splittable C_n max-min vs macro-switch max-min")
    print(
        format_table(
            ["instance", "flows", "worst |gap|", "equivalent"],
            [
                [row.instance, row.num_flows, f"{row.worst_gap:.2e}", row.equivalent]
                for row in rows
            ],
        )
    )


def test_bench_e16_starvation_reversal(benchmark):
    rows = benchmark(starvation_reversal, (3,))

    row = rows[0]
    assert row.splittable_rate == pytest.approx(1.0, abs=1e-6)
    assert row.unsplittable_rate == pytest.approx(1 / 3)

    print("\n[E16b] Theorem 4.3's type-3 flow: splitting undoes the starvation")
    print(
        format_table(
            ["n", "macro rate", "best unsplittable (Thm 4.3)", "splittable"],
            [
                [row.n, row.macro_rate, row.unsplittable_rate, row.splittable_rate]
                for row in rows
            ],
        )
    )
