"""E9 — §7 R2's open question: relative-max-min fairness.

Paper context: Theorem 4.3 starves a flow to 1/n under lex-max-min
fairness; §7 proposes relative-max-min fairness (guarantee every flow a
constant fraction of its macro-switch rate) and asks whether it can
closely implement the macro-switch abstraction.

Measured shape (this reproduction's finding, not in the paper): on the
paper's own adversarial instances the relative objective escapes the
1/n starvation — the Theorem 4.3 floor rises from 1/3 to 3/4 under
single-flow local search, and on Example 2.3 the exact relative optimum
(3/4) strictly beats the lex optimum's floor (2/3).

Run:  pytest benchmarks/test_bench_relative_fairness.py --benchmark-only -s
"""

from fractions import Fraction

from repro.analysis import format_table
from repro.experiments.relative_fairness import (
    exact_objective_comparison,
    stochastic_floors,
    theorem_4_3_floor_probe,
)


def test_bench_e9_exact_objectives(benchmark):
    rows = benchmark(exact_objective_comparison, range(3), 5)

    assert all(row.relative_dominates for row in rows)
    by_name = {row.instance: row for row in rows}
    assert by_name["example_2_3"].relative_floor == Fraction(3, 4)
    assert by_name["example_2_3"].lex_floor == Fraction(2, 3)

    print("\n[E9] §7 R2 — floors (min network/macro rate ratio) per objective")
    print(
        format_table(
            ["instance", "lex-max-min", "throughput-max-min", "relative-max-min"],
            [
                [row.instance, row.lex_floor, row.throughput_floor, row.relative_floor]
                for row in rows
            ],
        )
    )


def test_bench_e9_theorem_4_3_probe(benchmark):
    rows = benchmark(theorem_4_3_floor_probe, (3,))

    assert rows[0].lex_floor == Fraction(1, 3)
    assert rows[0].relative_local_floor > rows[0].lex_floor

    print("\n[E9b] Theorem 4.3 instance — can re-balancing beat the 1/n floor?")
    print(
        format_table(
            ["n", "lex floor (= 1/n)", "relative local-search floor", "gain"],
            [
                [row.n, row.lex_floor, row.relative_local_floor, row.improvement]
                for row in rows
            ],
        )
    )


def test_bench_e9_stochastic_floors(benchmark):
    rows = benchmark(stochastic_floors, 3, 25, range(3))

    print("\n[E9c] relative floors of practical routers on random traffic")
    print(
        format_table(
            ["seed", "ECMP floor", "greedy floor"],
            [[row.seed, row.ecmp_floor, row.greedy_floor] for row in rows],
        )
    )
    # greedy's demand-awareness should dominate ECMP's random placement
    assert all(row.greedy_floor >= row.ecmp_floor for row in rows)
