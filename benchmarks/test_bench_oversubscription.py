"""E15 — breaking the full-bisection premise (oversubscription sweep).

Paper context: the paper's positive facts about Clos networks —
splittable demand satisfaction (§1) and maximum-throughput preservation
(Lemma 5.2) — are consequences of *full bisection bandwidth*.

Measured shape: Lemma 5.2's equality T^{T-MT} = T^MT holds exactly at
interior capacity c = 1 and fails for every c < 1 (the achievable
throughput scales as c·T^MT for the link-disjoint routing); permutation
traffic's per-flow rate is exactly min(c, 1); greedy routing's fidelity
to the macro-switch decays monotonically with oversubscription.

Run:  pytest benchmarks/test_bench_oversubscription.py --benchmark-only -s
"""

from fractions import Fraction

import pytest

from repro.analysis import format_table
from repro.experiments.oversubscription import permutation_sweep, sweep

CAPACITIES = (Fraction(1), Fraction(3, 4), Fraction(1, 2), Fraction(1, 4))


def test_bench_e15_sweep(benchmark):
    rows = benchmark(sweep, 3, CAPACITIES, 24, 0)

    assert rows[0].lemma_5_2_equality  # full bisection: equality
    assert all(not row.lemma_5_2_equality for row in rows[1:])
    fractions_ = [row.throughput_fraction for row in rows]
    assert fractions_ == sorted(fractions_, reverse=True)

    print("\n[E15] oversubscription sweep (interior capacity c)")
    print(
        format_table(
            [
                "c",
                "oversub",
                "T^MT",
                "T Clos (LP)",
                "Lemma 5.2 holds",
                "greedy tput frac",
                "worst ratio",
            ],
            [
                [
                    row.interior_capacity,
                    row.oversubscription,
                    row.t_mt_macro,
                    row.t_clos_lp,
                    row.lemma_5_2_equality,
                    row.throughput_fraction,
                    row.min_rate_ratio,
                ]
                for row in rows
            ],
        )
    )


def test_bench_e15_permutation_closed_form(benchmark):
    rows = benchmark(
        permutation_sweep, 3, (Fraction(1), Fraction(1, 2), Fraction(1, 4)), 0
    )

    for row in rows:
        assert row.per_flow_rate == row.expected

    print("\n[E15b] permutation traffic under oversubscription: rate = min(c, 1)")
    print(
        format_table(
            ["c", "per-flow rate (measured)", "closed form"],
            [[row.interior_capacity, row.per_flow_rate, row.expected] for row in rows],
        )
    )
