"""E5 — Figure 4 / Theorem 5.4 (R3): the Doom-Switch throughput sweep.

Paper shape: the max-min throughput of the Doom-Switch routing exceeds
the macro-switch max-min throughput by a factor approaching 2 (never
exceeding it), while the doomed flows' rates collapse.

Run:  pytest benchmarks/test_bench_r3_doom_switch.py --benchmark-only -s
"""

from repro.analysis import format_series
from repro.experiments.r3_doom_switch import exact_bound_check, sweep

POINTS = ((5, 1), (7, 1), (9, 1), (7, 4), (9, 4), (11, 8), (13, 16))


def test_bench_r3_sweep(benchmark):
    rows = benchmark(sweep, POINTS)

    for row in rows:
        assert row.gain == row.predicted_gain
        assert row.upper_bound_holds

    print("\n[E5] Theorem 5.4 — Doom-Switch throughput gain vs the macro-switch")
    print(
        format_series(
            "(n, k)",
            [f"({row.n},{row.k})" for row in rows],
            {
                "T^MmF": [row.t_macro_max_min for row in rows],
                "T doom": [row.t_doom for row in rows],
                "gain (measured)": [row.gain for row in rows],
                "gain (paper)": [row.predicted_gain for row in rows],
                "degraded flows": [
                    f"{row.num_degraded}/{row.num_flows}" for row in rows
                ],
                "worst rate ratio": [row.min_rate_ratio for row in rows],
            },
        )
    )


def test_bench_r3_exact_upper_bound(benchmark):
    rows = benchmark(exact_bound_check, 2, 6, range(4))

    assert all(row.upper_bound_holds for row in rows)
    print(
        "\n[E5b] Theorem 5.4 upper bound T^T-MmF <= 2 T^MmF verified"
        f" exactly (exhaustive search) on {len(rows)} random C_2 instances"
    )
