"""E2 — Figure 2 / Theorem 3.4 (R1): price-of-fairness sweep over k.

Paper shape: T^MmF / T^MT = (1 + 1/(k+1)) / 2, decreasing to 1/2;
the universal bound T^MmF >= T^MT / 2 holds everywhere.

Run:  pytest benchmarks/test_bench_r1_price_of_fairness.py --benchmark-only -s
"""

from fractions import Fraction

from repro.analysis import format_series
from repro.experiments.r1_price_of_fairness import random_bound_check, sweep

KS = (1, 2, 4, 8, 16, 32, 64)


def test_bench_r1_sweep(benchmark):
    rows = benchmark(sweep, KS)

    assert all(row.matches for row in rows)
    ratios = [row.ratio for row in rows]
    assert ratios == sorted(ratios, reverse=True)
    assert all(r > Fraction(1, 2) for r in ratios)
    assert ratios[-1] - Fraction(1, 2) < Fraction(1, 60)

    print("\n[E2] Theorem 3.4 — price of fairness (tight construction)")
    print(
        format_series(
            "k",
            [row.k for row in rows],
            {
                "T^MT": [row.t_max_throughput for row in rows],
                "T^MmF": [row.t_max_min for row in rows],
                "ratio (measured)": [row.ratio for row in rows],
                "ratio (paper)": [row.predicted_ratio for row in rows],
            },
        )
    )


def test_bench_r1_random_lower_bound(benchmark):
    rows = benchmark(random_bound_check, 3, 40, range(5))

    assert all(row.bound_holds for row in rows)
    print(
        f"\n[E2b] Theorem 3.4 lower bound on {len(rows)} random workloads:"
        f" all satisfy T^MmF >= T^MT / 2"
    )
