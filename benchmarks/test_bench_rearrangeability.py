"""E10 — §6 related work: sizing the middle stage to repair Theorem 4.2.

Paper context: Theorem 4.2 proves the Figure 3 macro-switch rates are
unroutable with m = n middle switches; the multirate-rearrangeability
literature conjectures m = 2n − 1 always suffices (proven: ⌈20n/9⌉).

Measured shape: the paper's own adversarial instance is repaired by a
single extra middle switch (m* = n + 1 = 4 for n = 3), comfortably
inside the conjecture; random macro-switch allocations usually need no
extra switches at all — the worst case is genuinely adversarial.

Run:  pytest benchmarks/test_bench_rearrangeability.py --benchmark-only -s
"""

from repro.analysis import format_table
from repro.experiments.rearrangeability import (
    random_allocation_repair,
    theorem_4_2_repair,
)


def test_bench_e10_theorem_4_2(benchmark):
    rows = benchmark(theorem_4_2_repair, (3,))

    assert rows[0].exact_m == 4  # n + 1 repairs the paper's instance
    assert rows[0].within_conjecture

    print("\n[E10] minimum middle switches to carry the Theorem 4.2 rates")
    print(
        format_table(
            ["instance", "flows", "exact m*", "heuristic m", "2n-1", "⌈20n/9⌉"],
            [
                [
                    row.instance,
                    row.num_flows,
                    row.exact_m,
                    row.heuristic_m,
                    row.conjecture_m,
                    row.proven_m,
                ]
                for row in rows
            ],
        )
    )


def test_bench_e10_random(benchmark):
    rows = benchmark(random_allocation_repair, 3, 15, range(4))

    assert all(row.within_conjecture for row in rows)
    assert all(row.heuristic_m >= row.exact_m for row in rows)

    print("\n[E10b] minimum middle switches for random macro allocations")
    print(
        format_table(
            ["instance", "flows", "exact m*", "heuristic m"],
            [
                [row.instance, row.num_flows, row.exact_m, row.heuristic_m]
                for row in rows
            ],
        )
    )
