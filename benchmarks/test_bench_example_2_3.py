"""E1 — Figure 1 / Example 2.3: regenerate the three sorted vectors.

Run:  pytest benchmarks/test_bench_example_2_3.py --benchmark-only -s
"""

from repro.analysis import format_table
from repro.core.theorems import example_2_3_sorted_vectors
from repro.experiments.example_2_3 import run


def test_bench_example_2_3(benchmark):
    result = benchmark(run)

    expected = example_2_3_sorted_vectors()
    assert result.matches_paper
    assert result.orderings_hold
    assert result.macro_vector == expected["macro_switch"]
    assert result.routing_a_vector == expected["routing_a"]
    assert result.routing_b_vector == expected["routing_b"]
    # routing A is the exact lex-max-min optimum of the instance
    assert result.lex_optimum_vector == result.routing_a_vector

    print("\n[E1] Figure 1 / Example 2.3 — sorted max-min rate vectors")
    print(
        format_table(
            ["allocation", "sorted vector (measured)", "matches paper"],
            [
                ["macro-switch", [str(r) for r in result.macro_vector], True],
                ["routing A", [str(r) for r in result.routing_a_vector], True],
                ["routing B", [str(r) for r in result.routing_b_vector], True],
                [
                    "lex-max-min (exhaustive)",
                    [str(r) for r in result.lex_optimum_vector],
                    "== routing A",
                ],
            ],
        )
    )
