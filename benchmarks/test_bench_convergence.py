"""E11 — distributed convergence to the paper's idealized allocations.

Paper context: §2.2 assumes congestion control "imposes a max-min fair
allocation" per routing.  Measured shape: a distributed link-fair-share
iteration reaches exactly those allocations on every paper construction
within a handful of rounds (~ one per bottleneck level), while AIMD's
time-averages only track them loosely — the idealization is a good
model for explicit-rate control and an optimistic one for TCP-like
control.

Run:  pytest benchmarks/test_bench_convergence.py --benchmark-only -s
"""

from repro.analysis import format_table
from repro.experiments.convergence import (
    aimd_gap,
    paper_instances,
    stochastic_instances,
)


def test_bench_e11_paper_instances(benchmark):
    rows = benchmark(paper_instances)

    assert all(row.converged for row in rows)
    assert all(row.max_error < 1e-9 for row in rows)

    print("\n[E11] distributed fair-share dynamics on the paper's instances")
    print(
        format_table(
            ["instance", "flows", "levels", "rounds", "max error vs oracle"],
            [
                [
                    row.instance,
                    row.num_flows,
                    row.distinct_levels,
                    row.rounds,
                    f"{row.max_error:.2e}",
                ]
                for row in rows
            ],
        )
    )


def test_bench_e11_stochastic(benchmark):
    rows = benchmark(stochastic_instances, 3, 30, range(4))

    assert all(row.converged and row.max_error < 1e-9 for row in rows)
    print(
        f"\n[E11b] stochastic: {len(rows)} ECMP-routed random instances all"
        f" converge (worst {max(row.rounds for row in rows)} rounds)"
    )


def test_bench_e11_aimd_gap(benchmark):
    rows = benchmark(aimd_gap, (2, 4, 8))

    print("\n[E11c] AIMD time-average vs ideal fair share")
    print(
        format_table(
            ["flows", "ideal share", "AIMD mean", "relative gap"],
            [
                [row.num_flows, row.ideal_share, row.aimd_mean, row.relative_gap]
                for row in rows
            ],
        )
    )
    # AIMD undershoots but stays within ~40% of the ideal share here
    assert all(row.relative_gap < 0.45 for row in rows)
