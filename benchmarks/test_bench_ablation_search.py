"""A2 — ablation of the search strategy behind the exact objectives.

Design-choice questions: (1) how much does middle-switch symmetry
pruning shrink the exhaustive space, and (2) how close does cheap local
search get to the exact optima?  Expected shape: pruning removes an
n!-ish factor; local search matches the lex optimum on most small random
instances and never exceeds the exact throughput optimum.

Run:  pytest benchmarks/test_bench_ablation_search.py --benchmark-only -s
"""

from repro.analysis import format_table
from repro.experiments.ablations import search_ablation


def test_bench_a2_search(benchmark):
    rows = benchmark(search_ablation, 2, 5, range(4))

    print("\n[A2] Search ablation — exhaustive vs symmetry-pruned vs local")
    print(
        format_table(
            [
                "seed",
                "full space",
                "pruned space",
                "lex local == exact",
                "T local",
                "T exact",
            ],
            [
                [
                    row.seed,
                    row.space_full,
                    row.space_reduced,
                    row.lex_local_matches_exact,
                    row.throughput_local,
                    row.throughput_exact,
                ]
                for row in rows
            ],
        )
    )

    for row in rows:
        assert row.space_reduced < row.space_full
        assert row.local_gap >= 0  # local search never beats the optimum


def test_bench_a3_global_search(benchmark):
    from repro.experiments.ablations import global_search_ablation

    rows = benchmark(global_search_ablation, 2, 5, range(5))

    hill = sum(row.hill_matches for row in rows)
    multi = sum(row.multi_start_matches for row in rows)
    annealed = sum(row.anneal_matches for row in rows)
    assert multi >= hill
    print(
        f"\n[A3] lex-optimum hit rate over {len(rows)} instances:"
        f" hill-climb {hill}, multi-start {multi}, anneal {annealed}"
    )
