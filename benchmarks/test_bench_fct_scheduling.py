"""E8 — §7 R1 discussion: scheduling vs congestion control on FCT.

Paper shape ("With scheduling, the average throughput across the network
over time may increase such that the average flow completion times may
decrease relative to those obtained in the presence of max-min fair
constraints"): the matching scheduler's mean FCT beats max-min
congestion control, with the incast burst realizing the closed-form
(fan_in) vs (fan_in+1)/2 gap — the FCT face of Theorem 3.4's factor 2.

Run:  pytest benchmarks/test_bench_fct_scheduling.py --benchmark-only -s
"""

import pytest

from repro.analysis import format_series, format_table
from repro.experiments.fct_scheduling import (
    incast_comparison,
    load_sweep,
    poisson_comparison,
    rerouting_comparison,
)


def test_bench_e8_incast(benchmark):
    rows = benchmark(incast_comparison, 2, 8)

    by_policy = {row.policy: row.stats for row in rows}
    assert by_policy["maxmin"].mean_fct == pytest.approx(8.0)
    assert by_policy["scheduler"].mean_fct == pytest.approx(4.5)
    assert by_policy["scheduler"].mean_fct < by_policy["maxmin"].mean_fct

    print("\n[E8] §7 R1 — incast burst (fan-in 8), flow completion times")
    print(
        format_table(
            ["policy", "mean FCT", "median", "p99", "mean slowdown"],
            [
                [
                    row.policy,
                    row.stats.mean_fct,
                    row.stats.median_fct,
                    row.stats.p99_fct,
                    row.stats.mean_slowdown,
                ]
                for row in rows
            ],
        )
    )


def test_bench_e8_load_sweep(benchmark):
    rows = benchmark(load_sweep, 2, (0.5, 1.5, 3.0), 30.0, 0)

    print("\n[E8b] §7 R1 — mean FCT vs offered load")
    print(
        format_series(
            "arrival rate",
            [row.rate for row in rows],
            {
                "max-min FCT": [row.maxmin_mean_fct for row in rows],
                "scheduler FCT": [row.scheduler_mean_fct for row in rows],
                "speedup": [row.speedup for row in rows],
            },
        )
    )
    # scheduling's advantage grows with load and never hurts materially
    speedups = [row.speedup for row in rows]
    assert speedups[-1] > 1.2
    assert speedups == sorted(speedups)
    assert all(s > 0.95 for s in speedups)


def test_bench_e8_rerouting(benchmark):
    """E8d — Hedera-style periodic re-routing vs flow pinning."""
    rows = benchmark(rerouting_comparison, 3, 4.0, 25.0, (0.25, 1.0), 0)

    pinned = [row for row in rows if row.interval == float("inf")][0]
    fastest = min(rows, key=lambda row: row.mean_fct)
    assert fastest.mean_fct <= pinned.mean_fct

    print("\n[E8d] §6 routers in time — periodic re-routing of live flows")
    print(
        format_table(
            ["re-route interval", "mean FCT", "mean slowdown"],
            [
                [
                    "never (pinned)" if row.interval == float("inf") else row.interval,
                    row.mean_fct,
                    row.mean_slowdown,
                ]
                for row in rows
            ],
        )
    )


def test_bench_e8_poisson_policies(benchmark):
    rows = benchmark(poisson_comparison, 2, 1.5, 40.0, "exponential", 0)

    by_policy = {row.policy: row.stats for row in rows}
    assert (
        by_policy["scheduler"].mean_fct <= by_policy["maxmin"].mean_fct
    )

    print("\n[E8c] §7 R1 — Poisson arrivals (rate 1.5), all policies")
    print(
        format_table(
            ["policy", "jobs", "mean FCT", "mean slowdown"],
            [
                [row.policy, row.stats.count, row.stats.mean_fct, row.stats.mean_slowdown]
                for row in rows
            ],
        )
    )
