"""E7 — Lemma 5.2: T^{T-MT} = T^MT via König link-disjoint routing.

Paper shape: for every collection of flows, the Clos network replicates
the macro-switch's maximum throughput exactly (no fairness constraints).

Run:  pytest benchmarks/test_bench_konig.py --benchmark-only -s
"""

from repro.analysis import format_table
from repro.experiments.konig_equivalence import equivalence_checks


def test_bench_lemma_5_2(benchmark):
    rows = benchmark(equivalence_checks, 4, 40, range(3))

    assert all(row.equal for row in rows)
    assert all(row.feasible for row in rows)

    print("\n[E7] Lemma 5.2 — maximum throughput, macro-switch vs Clos")
    print(
        format_table(
            ["workload", "n", "flows", "T^MT (macro)", "T^T-MT (Clos)", "equal"],
            [
                [
                    row.workload,
                    row.n,
                    row.num_flows,
                    row.t_mt_macro,
                    row.t_mt_clos,
                    row.equal,
                ]
                for row in rows
            ],
        )
    )
