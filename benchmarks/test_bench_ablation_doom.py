"""A1 — ablation of Algorithm 1's line-3 dump policy.

Design-choice question: does dumping the unmatched flows on the middle
switch with the *smallest* color class matter?  Expected shape: the
paper's "least" policy achieves the highest throughput gain; "most"
collides the doomed flows with more matched flows and loses some gain;
"round_robin" spreads the doomed flows and forfeits the gain entirely
(but treats the doomed flows better — the trade-off in miniature).

Run:  pytest benchmarks/test_bench_ablation_doom.py --benchmark-only -s
"""

from repro.analysis import format_table
from repro.experiments.ablations import dump_policy_ablation

POINTS = ((7, 1), (9, 2), (11, 4))


def test_bench_a1_dump_policy(benchmark):
    rows = benchmark(dump_policy_ablation, POINTS, ("least", "most", "round_robin"))

    print("\n[A1] Doom-Switch line-3 ablation")
    print(
        format_table(
            ["n", "k", "policy", "throughput", "gain vs macro", "min rate"],
            [
                [row.n, row.k, row.policy, row.throughput, row.gain_vs_macro, row.min_rate]
                for row in rows
            ],
        )
    )

    by_point = {}
    for row in rows:
        by_point.setdefault((row.n, row.k), {})[row.policy] = row
    for (n, k), policies in by_point.items():
        assert (
            policies["least"].throughput >= policies["most"].throughput
        ), (n, k)
        assert (
            policies["least"].throughput >= policies["round_robin"].throughput
        ), (n, k)
        # the flip side: round-robin treats the doomed flows best
        assert (
            policies["round_robin"].min_rate >= policies["least"].min_rate
        ), (n, k)
