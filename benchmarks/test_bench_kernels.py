"""Microbenchmarks of the computational kernels (scaling sanity).

Not a paper artifact; tracks the cost of the primitives every
experiment is built from, so regressions in the hot paths are visible.

Run:  pytest benchmarks/test_bench_kernels.py --benchmark-only
"""

import pytest

from repro.core.doom_switch import doom_switch
from repro.core.maxmin import max_min_fair
from repro.core.throughput import max_throughput_value
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.routers.ecmp import ecmp_routing
from repro.routers.greedy import greedy_least_congested
from repro.workloads.stochastic import uniform_random


@pytest.fixture(scope="module")
def big_instance():
    clos = ClosNetwork(8)
    flows = uniform_random(clos, 400, seed=0)
    return clos, flows


def test_bench_water_filling_exact(benchmark, big_instance):
    clos, flows = big_instance
    routing = ecmp_routing(clos, flows)
    capacities = clos.graph.capacities()
    alloc = benchmark(max_min_fair, routing, capacities, True)
    assert len(alloc) == 400


def test_bench_water_filling_float(benchmark, big_instance):
    clos, flows = big_instance
    routing = ecmp_routing(clos, flows)
    capacities = clos.graph.capacities()
    alloc = benchmark(max_min_fair, routing, capacities, False)
    assert len(alloc) == 400


def test_bench_macro_switch_water_filling(benchmark, big_instance):
    from repro.core.routing import Routing

    clos, flows = big_instance
    ms = MacroSwitch(clos.n)
    routing = Routing.for_macro_switch(ms, flows)
    alloc = benchmark(max_min_fair, routing, ms.graph.capacities(), True)
    assert len(alloc) == 400


def test_bench_hopcroft_karp(benchmark, big_instance):
    _, flows = big_instance
    value = benchmark(max_throughput_value, flows)
    assert value > 0


def test_bench_doom_switch(benchmark, big_instance):
    clos, flows = big_instance
    result = benchmark(doom_switch, clos, flows)
    assert len(result.matched) == max_throughput_value(flows)


def test_bench_greedy_router(benchmark, big_instance):
    clos, flows = big_instance
    routing = benchmark(greedy_least_congested, clos, flows)
    assert len(routing) == 400


def test_bench_topology_construction(benchmark):
    clos = benchmark(ClosNetwork, 16)
    assert clos.graph.num_links() == 4 * 16 * 16 * 2


def test_bench_water_filling_fast(benchmark, big_instance):
    """Heap-accelerated float water-filling (vs the reference above)."""
    from repro.core.fastmaxmin import max_min_fair_fast

    clos, flows = big_instance
    routing = ecmp_routing(clos, flows)
    capacities = clos.graph.capacities()
    alloc = benchmark(max_min_fair_fast, routing, capacities)
    assert len(alloc) == 400


def test_bench_water_filling_fast_xl(benchmark):
    """C_16 with 2000 flows — the scale the heap variant exists for."""
    from repro.core.fastmaxmin import max_min_fair_fast

    clos = ClosNetwork(16)
    flows = uniform_random(clos, 2000, seed=0)
    routing = ecmp_routing(clos, flows)
    capacities = clos.graph.capacities()
    alloc = benchmark(max_min_fair_fast, routing, capacities)
    assert len(alloc) == 2000
