"""E3 — Figure 3 / Theorem 4.2: macro-switch rates are unroutable.

Paper shape: the exhaustive search proves NO unsplittable routing
carries the macro-switch max-min rates, while the splittable LP routes
them — unsplittability is the culprit.

Run:  pytest benchmarks/test_bench_r2_infeasibility.py --benchmark-only -s
"""

from repro.analysis import format_table
from repro.experiments.r2_starvation import infeasibility_sweep


def test_bench_r2_infeasibility(benchmark):
    rows = benchmark(infeasibility_sweep, (3,))

    assert all(not row.unsplittable_feasible for row in rows)
    assert all(row.splittable_feasible for row in rows)

    print("\n[E3] Theorem 4.2 — replicating macro-switch max-min rates in C_n")
    print(
        format_table(
            ["n", "flows", "splittable (LP)", "unsplittable (exhaustive)"],
            [
                [
                    row.n,
                    row.num_flows,
                    "feasible" if row.splittable_feasible else "infeasible",
                    "feasible" if row.unsplittable_feasible else "INFEASIBLE",
                ]
                for row in rows
            ],
        )
    )


def test_bench_r2_infeasibility_n4():
    """The slower n = 4 confirmation (seconds, not benchmarked)."""
    rows = infeasibility_sweep((4,))
    assert not rows[0].unsplittable_feasible
    assert rows[0].splittable_feasible
    print("\n[E3b] n = 4: unsplittable INFEASIBLE, splittable feasible")
