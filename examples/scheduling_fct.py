#!/usr/bin/env python3
"""§7 R1 walkthrough: trading fairness for flow completion time.

The paper's conclusions suggest a way around R1's throughput loss:
*scheduling* — delay some flows so the rest transmit at link capacity,
like admission control in time.  This script runs the flow-level
simulator on an incast burst and a Poisson workload and compares mean
flow completion times under:

- max-min fair congestion control (the data-center default),
- maximum-matching scheduling with SRPT preference (the §7 proposal).

Run:  python examples/scheduling_fct.py
"""

from repro.analysis import format_series, format_table
from repro.experiments.fct_scheduling import incast_comparison, load_sweep


def main() -> None:
    fan_in = 8
    rows = incast_comparison(n=2, fan_in=fan_in)
    print(f"incast burst: {fan_in} unit-size flows into one server\n")
    print(
        format_table(
            ["policy", "mean FCT", "median FCT", "p99 FCT"],
            [
                [row.policy, row.stats.mean_fct, row.stats.median_fct, row.stats.p99_fct]
                for row in rows
            ],
        )
    )
    print(
        f"\nClosed forms: fairness finishes ALL {fan_in} flows at t = {fan_in}"
        f" (mean {fan_in}); scheduling finishes the i-th at t = i"
        f" (mean {(fan_in + 1) / 2}).  The mean-FCT ratio tends to 2 —"
        "\nthe flow-completion-time face of Theorem 3.4's factor-2 bound."
    )

    print("\nPoisson arrivals, mean FCT vs offered load:\n")
    sweep = load_sweep(n=2, rates=(0.5, 1.0, 2.0, 4.0), horizon=40.0)
    print(
        format_series(
            "arrival rate",
            [row.rate for row in sweep],
            {
                "max-min FCT": [row.maxmin_mean_fct for row in sweep],
                "scheduler FCT": [row.scheduler_mean_fct for row in sweep],
                "speedup": [row.speedup for row in sweep],
            },
        )
    )
    print(
        "\nThe scheduler's advantage grows with load: exactly when fairness"
        "\nforfeits the most throughput, delaying flows pays off the most."
    )


if __name__ == "__main__":
    main()
