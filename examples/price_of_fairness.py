#!/usr/bin/env python3
"""R1 walkthrough: how much throughput does max-min fairness cost?

Reproduces Theorem 3.4's tight construction (Figure 2): two "good"
flows that could each run at link capacity, plus k parasitic flows
sharing both of their server links.  Congestion control (max-min
fairness) admits everyone and drags the throughput toward half of what
admission control (maximum matching) achieves.

Run:  python examples/price_of_fairness.py
"""

from fractions import Fraction

from repro import macro_switch_max_min, max_throughput_value
from repro.analysis import format_series, price_of_fairness
from repro.workloads.adversarial import theorem_3_4


def main() -> None:
    ks = [1, 2, 4, 8, 16, 32, 64, 128]
    t_mt, t_mmf, ratio, lost = [], [], [], []
    for k in ks:
        instance = theorem_3_4(1, k)
        mt = Fraction(max_throughput_value(instance.flows))
        mmf = macro_switch_max_min(instance.macro, instance.flows).throughput()
        t_mt.append(mt)
        t_mmf.append(mmf)
        ratio.append(mmf / mt)
        lost.append(price_of_fairness(mmf, mt))

    print(
        format_series(
            "k",
            ks,
            {
                "T^MT (admission)": t_mt,
                "T^MmF (congestion ctrl)": t_mmf,
                "ratio": ratio,
                "throughput lost": lost,
            },
            title="Theorem 3.4: price of fairness in a macro-switch",
        )
    )
    print(
        "\nThe ratio tends to 1/2 (the theorem's tight bound): with enough"
        "\nparasitic flows, max-min fairness forfeits half the throughput"
        "\nthat admission control would deliver."
    )

    # The flip side — Theorem 3.4's lower bound says it can never be
    # worse than half, whatever the workload:
    from repro.core.topology import ClosNetwork, MacroSwitch
    from repro.workloads.stochastic import hotspot, uniform_random

    clos, macro = ClosNetwork(3), MacroSwitch(3)
    print("\nlower-bound check on stochastic workloads (must all be >= 1/2):")
    for name, flows in (
        ("uniform x40", uniform_random(clos, 40, seed=0)),
        ("hotspot x40", hotspot(clos, 40, seed=0)),
    ):
        mmf = macro_switch_max_min(macro, flows).throughput()
        mt = max_throughput_value(flows)
        print(f"  {name}: T^MmF/T^MT = {mmf}/{mt} = {float(mmf/mt):.3f}")
        assert 2 * mmf >= mt


if __name__ == "__main__":
    main()
