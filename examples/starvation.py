#!/usr/bin/env python3
"""R2 walkthrough: lex-max-min fairness starves a flow by a 1/n factor.

Reproduces the Figure 3 construction (Theorems 4.2 and 4.3):

1. shows that the macro-switch max-min rates are *infeasible* for every
   unsplittable routing (exhaustive proof for n = 3), while the
   splittable LP relaxation routes them trivially;
2. builds the paper's lex-max-min optimal routing (Lemma 4.6) and shows
   the lone type-3 flow collapsing from rate 1 to rate 1/n as the
   network grows — fairness in the network is *not* fairness of the
   macro-switch abstraction.

Run:  python examples/starvation.py
"""

from repro import macro_switch_max_min, max_min_fair
from repro.analysis import format_series
from repro.lp import find_feasible_routing, splittable_feasible
from repro.workloads.adversarial import lemma_4_6_routing, theorem_4_2, theorem_4_3


def main() -> None:
    # --- Part 1: the macro-switch rates cannot be routed (n = 3) -----
    instance = theorem_4_2(3)
    demands = macro_switch_max_min(instance.macro, instance.flows).rates()
    unsplittable = find_feasible_routing(instance.clos, instance.flows, demands)
    splittable = splittable_feasible(instance.clos, instance.flows, demands)
    print("Theorem 4.2 (n=3):")
    print(f"  macro-switch max-min rates, {len(instance.flows)} flows")
    print(f"  splittable routing exists:   {splittable}")
    print(f"  unsplittable routing exists: {unsplittable is not None}")
    assert splittable and unsplittable is None
    print("  => unsplittability alone breaks the macro-switch abstraction\n")

    # --- Part 2: lex-max-min starves the type-3 flow by 1/n ----------
    sizes = [3, 4, 5, 6, 7]
    macro_rate, lex_rate, factor = [], [], []
    for n in sizes:
        inst = theorem_4_3(n)
        macro = macro_switch_max_min(inst.macro, inst.flows)
        alloc = max_min_fair(
            lemma_4_6_routing(inst), inst.clos.graph.capacities()
        )
        (type3,) = inst.types["type3"]
        macro_rate.append(macro.rate(type3))
        lex_rate.append(alloc.rate(type3))
        factor.append(alloc.rate(type3) / macro.rate(type3))

    print(
        format_series(
            "n",
            sizes,
            {
                "macro rate of type-3 flow": macro_rate,
                "lex-max-min rate": lex_rate,
                "starvation factor": factor,
            },
            title="Theorem 4.3: the fairest routing still starves a flow",
        )
    )
    print(
        "\nThe type-3 flow shares no server links with anyone — in the"
        "\nmacro-switch it runs at full rate.  Yet the lexicographically"
        "\noptimal routing sacrifices it to 1/n, because upholding the many"
        "\nsmall flows' rates pins the interior links it needs."
    )


if __name__ == "__main__":
    main()
