#!/usr/bin/env python3
"""§6 walkthrough: ECMP vs congestion-aware routing vs the macro-switch.

The extended version's simulation study, reproduced: on stochastic
traffic, routers that use macro-switch rates as demands and assign flows
to least-congested paths track the macro-switch allocation closely;
ECMP's random placement lags; and on the paper's adversarial flows *no*
router can win, because Theorem 4.3 says the target is unreachable.

Run:  python examples/router_shootout.py
"""

from repro.analysis import format_table
from repro.experiments.ecmp_simulation import (
    adversarial_comparison,
    stochastic_comparison,
)


def main() -> None:
    print("stochastic workloads on C_3 (30 flows, 3 seeds, averaged):\n")
    rows = stochastic_comparison(n=3, num_flows=30, seeds=range(3))

    # average per (workload, router) across seeds
    groups = {}
    for row in rows:
        key = (row.workload, row.router)
        groups.setdefault(key, []).append(row)
    table = []
    for (workload, router), cells in sorted(groups.items()):
        table.append(
            [
                workload,
                router,
                sum(float(c.throughput_fraction) for c in cells) / len(cells),
                sum(float(c.min_rate_ratio) for c in cells) / len(cells),
                sum(c.mean_rate_ratio for c in cells) / len(cells),
            ]
        )
    print(
        format_table(
            [
                "workload",
                "router",
                "throughput vs macro",
                "worst flow vs macro",
                "mean flow vs macro",
            ],
            table,
        )
    )

    print("\nadversarial workload (Theorem 4.3 flows, n = 3):\n")
    adv = adversarial_comparison(n=3)
    print(
        format_table(
            ["router", "throughput vs macro", "worst flow vs macro"],
            [
                [row.router, row.throughput_fraction, row.min_rate_ratio]
                for row in adv
            ],
        )
    )
    print(
        "\nGreedy and local-search routers essentially match the macro-switch"
        "\non stochastic traffic (§6's positive finding) — but on the"
        "\nadversarial instance every router leaves some flow far below its"
        "\nmacro-switch rate, as Theorem 4.3 proves is unavoidable."
    )


if __name__ == "__main__":
    main()
