#!/usr/bin/env python3
"""§7 generality walkthrough: the paper's phenomena on a k-ary fat-tree.

The paper proves its results for the 3-stage Clos network C_n, and §7
notes that R1 holds "for every interconnection network connecting
sources to destinations".  This script runs the library's generic
machinery on a k = 4 fat-tree (the deployed folded-Clos fabric) and
shows all three phenomena carrying over:

1. the R1 bound T^MmF >= T^MT / 2 on the host macro abstraction;
2. the R2 "leakage": under single-path ECMP, flows transfer their
   bottlenecks onto interior links and fall below macro rates;
3. the distributed fair-share dynamics converge to the water-filling
   allocation unchanged (the machinery never looks at the topology).

Run:  python examples/fattree_leakage.py
"""

from repro.analysis import format_table
from repro.experiments.fattree_generality import (
    dynamics_on_fat_tree,
    r1_on_fat_tree,
    r2_leakage_on_fat_tree,
)


def main() -> None:
    print("R1 on the fat-tree macro abstraction (k = 4):\n")
    rows = r1_on_fat_tree(k=4, num_flows=30, seeds=range(3))
    print(
        format_table(
            ["workload", "T^MmF", "T^MT", "2*T^MmF >= T^MT"],
            [
                [row.workload, row.t_max_min, row.t_max_throughput, row.bound_holds]
                for row in rows
            ],
        )
    )
    print(
        "\nNote the embedded Figure 2 gadget: 10/9 vs 2 — the same"
        "\nprice-of-fairness collapse as in the paper's macro-switch."
    )

    print("\nR2 leakage under ECMP inside the fat-tree:\n")
    leakage = r2_leakage_on_fat_tree(k=4, num_flows=40, seeds=range(3))
    print(
        format_table(
            ["seed", "flows below macro rate", "worst ratio", "interior-bottlenecked"],
            [
                [row.seed, f"{row.num_below_macro}/{row.num_flows}",
                 row.min_ratio, row.interior_bottlenecked]
                for row in leakage
            ],
        )
    )

    print("\ndistributed fair-share dynamics on the fat-tree:\n")
    dyn = dynamics_on_fat_tree(k=4, num_flows=30, seeds=range(3))
    print(
        format_table(
            ["seed", "rounds", "converged", "max error vs oracle"],
            [
                [row.seed, row.rounds, row.converged, f"{row.max_error:.1e}"]
                for row in dyn
            ],
        )
    )
    print(
        "\nThe impossibility results are not artifacts of the abstract C_n:"
        "\nthe deployed fabric shows the same fairness/throughput tensions."
    )


if __name__ == "__main__":
    main()
