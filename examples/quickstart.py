#!/usr/bin/env python3
"""Quickstart: Clos networks, routings, and max-min fair allocations.

Builds the paper's running example (Figure 1 / Example 2.3) from scratch
through the public API and shows the core phenomenon of the paper: in a
Clos network, *which middle switch a single flow takes* changes every
other flow's max-min fair rate, and no routing recovers the macro-switch
ideal.

Run:  python examples/quickstart.py
"""

from repro import (
    ClosNetwork,
    Flow,
    FlowCollection,
    MacroSwitch,
    Routing,
    lex_compare,
    lex_max_min_fair,
    macro_switch_max_min,
    max_min_fair,
)
from repro.analysis import format_table


def main() -> None:
    # A Clos network of size n = 2: two middle switches, four ToR
    # switches per side, two servers per ToR.  The macro-switch is the
    # "one big switch" ideal with the same servers.
    clos = ClosNetwork(2)
    macro = MacroSwitch(2)

    # Figure 1's collection of flows: three type-1 flows out of s_1^2,
    # two type-2 flows inside O_2's rack pairs, one type-3 flow alone.
    flows = FlowCollection(
        [
            Flow(clos.source(1, 2), clos.destination(1, 2)),  # type 1
            Flow(clos.source(1, 2), clos.destination(2, 1)),  # type 1
            Flow(clos.source(1, 2), clos.destination(2, 2)),  # type 1
            Flow(clos.source(2, 1), clos.destination(2, 1)),  # type 2
            Flow(clos.source(2, 2), clos.destination(2, 2)),  # type 2
            Flow(clos.source(1, 1), clos.destination(1, 1)),  # type 3
        ]
    )

    # --- The macro-switch ideal -------------------------------------
    ideal = macro_switch_max_min(macro, flows)
    print("macro-switch max-min rates (the ideal):")
    print(
        format_table(
            ["flow", "rate"],
            [[repr(f), ideal.rate(f)] for f in flows],
        )
    )

    # --- Two routings that differ in ONE flow's middle switch --------
    f1_a, f1_b, f1_c, f2_a, f2_b, f3 = list(flows)
    base = {f1_a: 2, f1_c: 2, f2_a: 1, f2_b: 2, f3: 1}
    routing_a = Routing.from_middles(clos, flows, {**base, f1_b: 1})
    routing_b = Routing.from_middles(clos, flows, {**base, f1_b: 2})

    capacities = clos.graph.capacities()
    alloc_a = max_min_fair(routing_a, capacities)
    alloc_b = max_min_fair(routing_b, capacities)

    print("\nmoving ONE flow (s_1^2 -> t_2^1) from M_1 to M_2:")
    print(
        format_table(
            ["flow", "via M_1", "via M_2"],
            [[repr(f), alloc_a.rate(f), alloc_b.rate(f)] for f in flows],
        )
    )

    # --- The fairest the Clos network can do, exactly ------------------
    best = lex_max_min_fair(clos, flows)
    print(f"\nexact lex-max-min fair sorted vector (over {best.examined} routings):")
    print(" ", [str(r) for r in best.allocation.sorted_vector()])
    print("macro-switch sorted vector:")
    print(" ", [str(r) for r in ideal.sorted_vector()])

    verdict = lex_compare(
        ideal.sorted_vector(), best.allocation.sorted_vector()
    )
    assert verdict > 0
    print(
        "\n=> even the BEST routing is lexicographically worse than the"
        " macro-switch ideal: the Clos network cannot hide its interior."
    )


if __name__ == "__main__":
    main()
