#!/usr/bin/env python3
"""R3 walkthrough: routing for throughput "perverts" congestion control.

Runs the paper's Doom-Switch algorithm (Algorithm 1) on the Figure 4
construction: route a maximum matching of flows link-disjointly (they
rise toward link capacity) and dump every other flow on one sacrificial
middle switch (they starve).  Congestion control still enforces max-min
fairness *per routing* — but the routing has already decided who wins.

Run:  python examples/doom_switch_demo.py
"""

from repro import doom_switch, macro_switch_max_min
from repro.analysis import compare_to_macro, format_series, format_table
from repro.workloads.adversarial import example_5_3, theorem_5_4


def main() -> None:
    # --- Example 5.3 verbatim (n = 7, one blue flow per gadget) ------
    instance = example_5_3()
    macro = macro_switch_max_min(instance.macro, instance.flows)
    result = doom_switch(instance.clos, instance.flows)

    print("Example 5.3 (n = 7): per-flow rates, macro-switch vs Doom-Switch")
    rows = []
    for f in instance.flows:
        kind = "type1" if f in set(instance.types["type1"]) else "type2"
        rows.append([repr(f), kind, macro.rate(f), result.allocation.rate(f)])
    print(format_table(["flow", "type", "macro", "doom-switch"], rows))
    print(
        f"\n  throughput: {macro.throughput()} -> "
        f"{result.allocation.throughput()}  (doom switch = M_{result.doom_switch})"
    )
    assert result.allocation.throughput() == 5

    # --- The sweep: gain tends to 2, rates tend to 0 ------------------
    points = [(5, 4), (9, 8), (13, 16), (17, 32), (21, 64)]
    ns, gains, min_ratios, degraded = [], [], [], []
    for n, k in points:
        inst = theorem_5_4(n, k)
        macro_alloc = macro_switch_max_min(inst.macro, inst.flows)
        res = doom_switch(inst.clos, inst.flows)
        comparison = compare_to_macro(res.allocation, macro_alloc)
        ns.append(f"{n}/{k}")
        gains.append(res.allocation.throughput() / macro_alloc.throughput())
        min_ratios.append(comparison.min_ratio)
        degraded.append(f"{comparison.num_degraded}/{len(inst.flows)}")

    print()
    print(
        format_series(
            "n/k",
            ns,
            {
                "throughput gain": gains,
                "worst rate ratio": min_ratios,
                "flows degraded": degraded,
            },
            title="Theorem 5.4: gain -> 2 while the doomed flows' rates -> 0",
        )
    )
    print(
        "\nThe throughput doubles relative to the macro-switch max-min"
        "\nallocation — but only by coercing most flows into near-zero"
        "\nrates.  Throughput alone is not a fairness-safe metric."
    )


if __name__ == "__main__":
    main()
