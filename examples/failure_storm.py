#!/usr/bin/env python3
"""A correlated failure storm through the flow-level simulator.

Real fabrics rarely lose links one at a time: a middle switch reboots
and takes its whole interior trunk with it, then comes back.  This
script builds that storm as a :class:`repro.failures.FailureSchedule` —
one middle switch of a C_3 crashing and recovering, plus a lingering
brownout on a second switch — and replays it through the simulator
under two policies:

- max-min congestion control with pinned paths (flows routed across a
  dead switch stall until it recovers),
- Hedera-style periodic re-routing (the next epoch routes around the
  failure via the resilient router).

The comparison is the dynamic face of experiment E14's static sweep:
re-routing degrades gracefully, pinning pays the full storm.

Run:  python examples/failure_storm.py
"""

from fractions import Fraction

from repro.analysis import format_table
from repro.core.topology import ClosNetwork
from repro.failures import FailureSchedule, correlated_groups
from repro.sim import (
    MaxMinCongestionControl,
    ReroutingCongestionControl,
    fct_stats,
    poisson_workload,
    simulate,
)


def storm(network: ClosNetwork) -> FailureSchedule:
    """M1 crashes at t=2 and recovers at t=8; M2 browns out to half
    capacity at t=4 for the rest of the run."""
    crash = FailureSchedule.switch_crash(network, 1, at=2.0, recover_at=8.0)
    brownout = FailureSchedule.switch_crash(
        network, 2, at=4.0, severity=Fraction(1, 2)
    )
    return crash.merged(brownout)


def main() -> None:
    network = ClosNetwork(3)
    schedule = storm(network)
    jobs = poisson_workload(
        network, rate=2.0, horizon=12.0, mean_size=1.0, seed=7
    )

    groups = correlated_groups(network)
    print(
        f"C_3: {len(groups)} shared-risk groups "
        f"({network.num_middles} middle switches + ToR trunk bundles)"
    )
    print(f"storm: {len(schedule)} failure events over "
          f"[0, {schedule.horizon()}]; {len(jobs)} jobs offered\n")

    rows = []
    for name, policy in [
        ("pinned max-min", MaxMinCongestionControl(network)),
        ("periodic re-route", ReroutingCongestionControl(network, interval=1.0)),
    ]:
        result = simulate(
            jobs, policy, max_time=60.0, failure_schedule=schedule
        )
        stats = fct_stats(result)
        rows.append(
            [
                name,
                f"{len(result.completed)}/{len(jobs)}",
                f"{stats.mean_fct:.2f}",
                f"{stats.p99_fct:.2f}",
                f"{result.end_time:.2f}",
            ]
        )

    print(
        format_table(
            ["policy", "completed", "mean FCT", "p99 FCT", "drained at"],
            rows,
            title="one storm, two congestion controls",
        )
    )
    print(
        "\nPinned flows crossing M1 stall for the whole outage window and"
        "\nqueue behind the brownout; re-routing shifts them to surviving"
        "\nmiddle switches at the next epoch.  The paper's §6 routers and"
        "\n§7 conclusions carry over to degraded fabrics unchanged: the"
        "\nrouting decision, not the congestion control, sets the damage."
    )


if __name__ == "__main__":
    main()
