#!/usr/bin/env python3
"""§2.2 walkthrough: from protocol to the paper's idealization.

The paper assumes congestion control instantly "imposes a max-min fair
allocation of the link capacities among the flow rates".  This script
shows a *distributed mechanism* earning that idealization: every link
advertises a fair share, every flow takes the minimum share along its
path, and within a handful of synchronous rounds the rates land exactly
on the allocation our centralized water-filling oracle computes — on
the paper's own adversarial constructions.

Run:  python examples/convergence_demo.py
"""

from repro.analysis import format_table
from repro.core.maxmin import max_min_fair
from repro.dynamics import LinkFairShareDynamics
from repro.workloads.adversarial import lemma_4_6_routing, theorem_4_3


def main() -> None:
    instance = theorem_4_3(3)
    routing = lemma_4_6_routing(instance)
    capacities = instance.clos.graph.capacities()

    oracle = max_min_fair(routing, capacities, exact=False)
    dynamics = LinkFairShareDynamics(routing, capacities)
    trace = dynamics.run(record_history=True)

    print(
        f"Theorem 4.3 construction (n = 3, {len(instance.flows)} flows),"
        f" Lemma 4.6 routing:\n"
    )
    # Show the water level rising round by round for three witness flows.
    witnesses = [
        ("type-1 flow", instance.types["type1"][0], "1/(n+1) = 0.25"),
        ("type-2 flow", instance.types["type2a"][0], "1/n    = 0.333"),
        ("type-3 flow", instance.types["type3"][0], "1/n    = 0.333"),
    ]
    rows = []
    for round_index, snapshot in enumerate(trace.history):
        rows.append(
            [round_index]
            + [round(snapshot[flow], 4) for _, flow, _ in witnesses]
        )
    print(
        format_table(
            ["round"] + [f"{label} (target {target})" for label, _, target in witnesses],
            rows,
        )
    )

    worst = max(abs(trace.rates[f] - oracle.rate(f)) for f in instance.flows)
    print(
        f"\nconverged in {trace.rounds} rounds;"
        f" worst deviation from the water-filling oracle: {worst:.2e}"
    )
    print(
        "\nThe idealized max-min model is not an abstraction gap: a simple"
        "\ndistributed explicit-rate protocol reaches it, fast and exactly."
    )


if __name__ == "__main__":
    main()
