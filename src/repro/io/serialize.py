"""JSON (de)serialization of scenarios: flows, routings, allocations.

A *scenario* — a Clos size, a flow collection, optionally a routing and
an allocation — fully determines every computation in this library, so
round-trippable scenario files make experiments shareable and
regression-pinnable.  Rates serialize as exact ``"p/q"`` strings so a
file re-loaded years later reproduces Fractions bit-for-bit.

The format is deliberately plain::

    {
      "format": "repro-scenario",
      "version": 1,
      "n": 3,
      "middle_count": 3,
      "flows": [{"src": [1, 2], "dst": [4, 1], "tag": 0}, ...],
      "routing": {"0": 2, ...},            # flow index -> middle switch
      "allocation": {"0": "1/3", ...}      # flow index -> exact rate
    }
"""

from __future__ import annotations

import json
import os
import tempfile
from fractions import Fraction
from typing import Any, Dict, Optional

from repro.core.allocation import Allocation
from repro.core.flows import Flow, FlowCollection
from repro.core.nodes import Destination, Source
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork

FORMAT_NAME = "repro-scenario"
FORMAT_VERSION = 1


class ScenarioError(ValueError):
    """Raised for malformed or inconsistent scenario documents."""


class Scenario:
    """A self-contained, serializable experiment input.

    >>> clos = ClosNetwork(2)
    >>> flows = FlowCollection([Flow(clos.source(1, 1), clos.destination(3, 1))])
    >>> scenario = Scenario(clos, flows)
    >>> Scenario.from_json(scenario.to_json()).flows[0] == flows[0]
    True
    """

    def __init__(
        self,
        network: ClosNetwork,
        flows: FlowCollection,
        routing: Optional[Routing] = None,
        allocation: Optional[Allocation] = None,
    ) -> None:
        self.network = network
        self.flows = flows
        self.routing = routing
        self.allocation = allocation

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "n": self.network.n,
            "middle_count": self.network.num_middles,
            "flows": [
                {
                    "src": [flow.source.switch, flow.source.server],
                    "dst": [flow.dest.switch, flow.dest.server],
                    "tag": flow.tag,
                }
                for flow in self.flows
            ],
        }
        if self.routing is not None:
            middles = self.routing.middles(self.network)
            document["routing"] = {
                str(index): middles[flow]
                for index, flow in enumerate(self.flows)
            }
        if self.allocation is not None:
            document["allocation"] = {
                str(index): _rate_to_string(self.allocation.rate(flow))
                for index, flow in enumerate(self.flows)
            }
        return document

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    # ------------------------------------------------------------------
    # Deserialization
    # ------------------------------------------------------------------
    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "Scenario":
        if document.get("format") != FORMAT_NAME:
            raise ScenarioError(
                f"not a {FORMAT_NAME} document: format={document.get('format')!r}"
            )
        if document.get("version") != FORMAT_VERSION:
            raise ScenarioError(
                f"unsupported version: {document.get('version')!r}"
            )
        try:
            n = int(document["n"])
            middle_count = int(document.get("middle_count", n))
            raw_flows = document["flows"]
        except (KeyError, TypeError, ValueError) as error:
            raise ScenarioError(f"malformed scenario header: {error}") from error

        network = ClosNetwork(n, middle_count=middle_count)
        flows = FlowCollection()
        for entry in raw_flows:
            try:
                src_switch, src_server = entry["src"]
                dst_switch, dst_server = entry["dst"]
                tag = int(entry.get("tag", 0))
            except (KeyError, TypeError, ValueError) as error:
                raise ScenarioError(f"malformed flow entry {entry!r}") from error
            flows.add(
                Flow(
                    network.source(src_switch, src_server),
                    network.destination(dst_switch, dst_server),
                    tag=tag,
                )
            )

        flow_list = list(flows)
        routing: Optional[Routing] = None
        if "routing" in document:
            middles: Dict[Flow, int] = {}
            for key, value in document["routing"].items():
                index = _flow_index(key, len(flow_list))
                middles[flow_list[index]] = int(value)
            routing = Routing.from_middles(network, flows, middles)

        allocation: Optional[Allocation] = None
        if "allocation" in document:
            rates: Dict[Flow, Fraction] = {}
            for key, value in document["allocation"].items():
                index = _flow_index(key, len(flow_list))
                rates[flow_list[index]] = _rate_from_string(value)
            if set(rates) != set(flow_list):
                raise ScenarioError("allocation does not cover every flow")
            allocation = Allocation(rates)

        return cls(network, flows, routing=routing, allocation=allocation)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        try:
            document = json.loads(text)
        except json.JSONDecodeError as error:
            raise ScenarioError(f"invalid JSON: {error}") from error
        return cls.from_dict(document)

    @classmethod
    def load(cls, path: str) -> "Scenario":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())


def _fsync_directory(directory: str) -> None:
    """Flush a rename to disk by fsyncing the containing directory.

    ``os.replace`` makes the swap atomic for concurrent *readers*, but
    the new directory entry itself lives in the page cache until the
    directory inode is synced — a SIGKILL (or power loss) immediately
    after the rename can surface the *old* file on restart.  Runner
    manifests and quarantine bundles both rely on rename-then-sync
    durability, so both atomic writers call this after replacing.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. platforms that cannot open directories
    try:
        os.fsync(fd)
    except OSError:
        pass  # the entry is still atomic, merely not yet durable
    finally:
        os.close(fd)


def write_json_atomic(path: str, document: Dict[str, Any]) -> str:
    """Write ``document`` as JSON via rename, so readers never see a torn
    file — a crash mid-write leaves either the old checkpoint or the new
    one, which is what lets the resilient runner resume after SIGKILL.
    The temp file is fsynced before the rename and the directory after
    it, so the *new* content is durable once this returns.
    Returns ``path``.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    handle, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path), suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as tmp:
            json.dump(document, tmp, indent=2, sort_keys=True)
            tmp.write("\n")
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _fsync_directory(directory)
    return path


def read_json(path: str) -> Dict[str, Any]:
    """Load a JSON document, raising :class:`ScenarioError` on bad JSON."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            return json.load(handle)
        except json.JSONDecodeError as error:
            raise ScenarioError(f"invalid JSON in {path}: {error}") from error


def write_jsonl_atomic(path: str, records) -> str:
    """Write an iterable of JSON-safe records as JSONL, atomically.

    One compact JSON document per line (the trace-export format of
    :mod:`repro.obs`), written via the same rename dance as
    :func:`write_json_atomic` — temp file fsynced before the rename,
    directory fsynced after — so a crash never leaves a torn file and
    the rename itself survives SIGKILL.  Returns ``path``.
    """
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    handle, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=os.path.basename(path), suffix=".tmp"
    )
    try:
        with os.fdopen(handle, "w", encoding="utf-8") as tmp:
            for record in records:
                tmp.write(json.dumps(record, sort_keys=True))
                tmp.write("\n")
            tmp.flush()
            os.fsync(tmp.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    _fsync_directory(directory)
    return path


def read_jsonl(path: str) -> list:
    """Load a JSONL file as a list of documents (blank lines skipped)."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise ScenarioError(
                    f"invalid JSON on line {line_number} of {path}: {error}"
                ) from error
    return records


def _rate_to_string(rate) -> str:
    fraction = Fraction(rate)
    return f"{fraction.numerator}/{fraction.denominator}"


def _rate_from_string(text: str) -> Fraction:
    try:
        numerator, denominator = text.split("/")
        return Fraction(int(numerator), int(denominator))
    except (ValueError, ZeroDivisionError) as error:
        raise ScenarioError(f"malformed rate {text!r}") from error


def _flow_index(key: str, count: int) -> int:
    try:
        index = int(key)
    except ValueError as error:
        raise ScenarioError(f"malformed flow index {key!r}") from error
    if not 0 <= index < count:
        raise ScenarioError(f"flow index {index} out of range [0, {count})")
    return index
