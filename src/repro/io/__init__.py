"""Scenario serialization: shareable, exact, round-trippable experiment inputs."""

from repro.io.serialize import (
    FORMAT_NAME,
    FORMAT_VERSION,
    Scenario,
    ScenarioError,
    read_json,
    read_jsonl,
    write_json_atomic,
    write_jsonl_atomic,
)

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "Scenario",
    "ScenarioError",
    "read_json",
    "read_jsonl",
    "write_json_atomic",
    "write_jsonl_atomic",
]
