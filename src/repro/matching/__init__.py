"""Bipartite maximum matching (Lemma 3.2's characterization of max throughput)."""

from repro.matching.augmenting import maximum_matching_simple
from repro.matching.hopcroft_karp import (
    is_matching,
    maximum_matching,
    maximum_matching_size,
)

__all__ = [
    "is_matching",
    "maximum_matching",
    "maximum_matching_simple",
    "maximum_matching_size",
]
