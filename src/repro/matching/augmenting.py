"""Simple augmenting-path maximum matching (Hungarian-style).

This is the textbook ``O(V * E)`` algorithm: for each free left node,
search for an augmenting path with a plain DFS.  It is slower than
Hopcroft–Karp but so simple that it is obviously correct, which makes it
a useful in-repo oracle: the test suite checks that both algorithms
(and networkx) agree on matching *size* across random multigraphs.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.graph.bipartite import BipartiteMultigraph, EdgeKey, Node


def maximum_matching_simple(
    graph: BipartiteMultigraph,
) -> Dict[EdgeKey, Tuple[Node, Node]]:
    """Compute a maximum matching with single-path augmentation.

    Returns the same representation as
    :func:`repro.matching.hopcroft_karp.maximum_matching`: matched edge
    key → ``(left, right)`` endpoints.
    """
    adj = {left: graph.neighbors(left) for left in graph.left_nodes}
    partner: Dict[Node, Optional[Node]] = {v: None for v in graph.right_nodes}

    def try_augment(u: Node, visited: Set[Node]) -> bool:
        for v in adj[u]:
            if v in visited:
                continue
            visited.add(v)
            if partner[v] is None or try_augment(partner[v], visited):
                partner[v] = u
                return True
        return False

    for left in graph.left_nodes:
        try_augment(left, set())

    matched_pairs = {
        (u, v): None for v, u in partner.items() if u is not None
    }
    result: Dict[EdgeKey, Tuple[Node, Node]] = {}
    for left, right, key in graph.edges():
        pair = (left, right)
        if pair in matched_pairs and matched_pairs[pair] is None:
            matched_pairs[pair] = key
            result[key] = pair
    return result
