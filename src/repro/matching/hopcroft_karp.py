"""Hopcroft–Karp maximum bipartite matching.

A maximum matching in the demand multigraph ``G^MS`` characterizes a
maximum-throughput allocation in the macro-switch (Lemma 3.2): flows in
the matching transmit at rate 1, all other flows at rate 0, and the
maximum throughput equals the matching size.  The paper's
acknowledgments credit help "implementing scalable bipartite matching";
this module is our from-scratch equivalent.

The algorithm runs in ``O(E * sqrt(V))`` phases of BFS + DFS over the
*simple* bipartite graph induced by the multigraph (parallel edges never
help a matching, so we work on distinct endpoint pairs and then lift the
matching back to concrete edge keys).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Optional, Set, Tuple

from repro.graph.bipartite import BipartiteMultigraph, EdgeKey, Node

#: Conceptual infinity for BFS layer distances.
_INF = float("inf")


def maximum_matching(graph: BipartiteMultigraph) -> Dict[EdgeKey, Tuple[Node, Node]]:
    """Compute a maximum matching of ``graph``.

    Returns a map from the *edge key* of each matched edge to its
    ``(left, right)`` endpoints.  At most one edge per left node and one
    edge per right node is selected.  Among parallel edges between a
    matched endpoint pair, the first-inserted key is chosen, which makes
    the result deterministic.

    >>> from repro.graph.bipartite import build_multigraph
    >>> g = build_multigraph([("a", "x", 1), ("a", "y", 2), ("b", "x", 3)])
    >>> sorted(maximum_matching(g))
    [2, 3]
    """
    pair_for_left, _pair_for_right = _hopcroft_karp(graph)
    return _lift_to_keys(graph, pair_for_left)


def maximum_matching_size(graph: BipartiteMultigraph) -> int:
    """The size of a maximum matching of ``graph``."""
    pair_for_left, _ = _hopcroft_karp(graph)
    return sum(1 for right in pair_for_left.values() if right is not None)


def is_matching(
    graph: BipartiteMultigraph, keys: Set[EdgeKey]
) -> bool:
    """True if the edges identified by ``keys`` form a matching."""
    lefts: Set[Node] = set()
    rights: Set[Node] = set()
    for key in keys:
        left, right = graph.endpoints(key)
        if left in lefts or right in rights:
            return False
        lefts.add(left)
        rights.add(right)
    return True


# ----------------------------------------------------------------------
# Core algorithm on the induced simple graph
# ----------------------------------------------------------------------
def _adjacency(graph: BipartiteMultigraph) -> Dict[Node, List[Node]]:
    """Left node → sorted distinct right neighbors (simple-graph view)."""
    return {left: graph.neighbors(left) for left in graph.left_nodes}


def _hopcroft_karp(
    graph: BipartiteMultigraph,
) -> Tuple[Dict[Node, Optional[Node]], Dict[Node, Optional[Node]]]:
    """Run Hopcroft–Karp; returns (left→right, right→left) partner maps."""
    adj = _adjacency(graph)
    pair_left: Dict[Node, Optional[Node]] = {u: None for u in graph.left_nodes}
    pair_right: Dict[Node, Optional[Node]] = {v: None for v in graph.right_nodes}
    dist: Dict[Optional[Node], float] = {}

    def bfs() -> bool:
        """Layer free left nodes; True if an augmenting path exists."""
        queue: deque = deque()
        for u in pair_left:
            if pair_left[u] is None:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = _INF
        dist[None] = _INF
        while queue:
            u = queue.popleft()
            if dist[u] < dist[None]:
                for v in adj[u]:
                    nxt = pair_right[v]
                    if dist[nxt] == _INF:
                        dist[nxt] = dist[u] + 1
                        if nxt is not None:
                            queue.append(nxt)
        return dist[None] != _INF

    def dfs(u: Optional[Node]) -> bool:
        """Augment along a shortest alternating path from ``u``."""
        if u is None:
            return True
        for v in adj[u]:
            nxt = pair_right[v]
            if dist[nxt] == dist[u] + 1 and dfs(nxt):
                pair_left[u] = v
                pair_right[v] = u
                return True
        dist[u] = _INF
        return False

    while bfs():
        for u in list(pair_left):
            if pair_left[u] is None:
                dfs(u)
    return pair_left, pair_right


def _lift_to_keys(
    graph: BipartiteMultigraph, pair_for_left: Dict[Node, Optional[Node]]
) -> Dict[EdgeKey, Tuple[Node, Node]]:
    """Map a node-level matching back to concrete multigraph edge keys."""
    wanted: Dict[Tuple[Node, Node], None] = {
        (left, right): None
        for left, right in pair_for_left.items()
        if right is not None
    }
    result: Dict[EdgeKey, Tuple[Node, Node]] = {}
    for left, right, key in graph.edges():
        pair = (left, right)
        if pair in wanted and wanted[pair] is None:
            wanted[pair] = key
            result[key] = pair
    return result
