"""Static failure injection: degraded Clos fabrics.

The paper analyzes pristine fabrics; operators live with failed links
and switches.  Because every solver in this library takes an explicit
``capacities`` mapping, failures are just capacity overrides — these
helpers produce them, and :mod:`repro.experiments.failure_degradation`
measures how throughput and fairness degrade as the middle stage loses
capacity (where the paper's interior-bottleneck phenomena say the pain
concentrates).

A failed link keeps its key with capacity 0 (flows routed across it
water-fill to rate 0) — modeling the window between a failure and
rerouting.  A *browned-out* link keeps a fraction of its capacity
(:func:`degrade_links`) — modeling FEC retraining, lane failures, and
oversubscribed failover paths.  Routers can instead avoid failed
components by routing in a :func:`surviving_network`, and
:mod:`repro.failures.resilient` automates that rerouting with bounded
retry.  Time-varying failures live in :mod:`repro.failures.schedule`.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, NamedTuple, Optional, Tuple

from repro.errors import CapacityValidationError, UnknownLinkError
from repro.core.nodes import InputSwitch, MiddleSwitch, OutputSwitch
from repro.core.routing import Link
from repro.core.topology import ClosNetwork

Capacities = Dict[Link, object]


def _check_known(capacities: Mapping[Link, object], links: Iterable[Link]) -> List[Link]:
    """The links as a list; raises one error naming *every* unknown link."""
    links = list(links)
    unknown = [link for link in links if link not in capacities]
    if unknown:
        raise UnknownLinkError(unknown)
    return links


def fail_links(capacities: Capacities, failed: Iterable[Link]) -> Capacities:
    """A copy of ``capacities`` with the given links' capacity set to 0.

    Unknown links raise a single :class:`~repro.errors.UnknownLinkError`
    listing all of them (not just the first).
    """
    degraded = dict(capacities)
    for link in _check_known(capacities, failed):
        degraded[link] = 0
    return degraded


def degrade_links(
    capacities: Capacities, factors: Mapping[Link, object]
) -> Capacities:
    """A copy of ``capacities`` with each link scaled by its factor.

    ``factors`` maps links to a retained-capacity fraction in ``[0, 1]``
    (0 = fully failed, 1 = healthy) — a *brownout*.  Factors are applied
    as exact :class:`~fractions.Fraction` so exact-mode solvers stay
    exact.  Unknown links and out-of-range factors raise
    :class:`~repro.errors.CapacityValidationError`.
    """
    _check_known(capacities, factors)
    bad = {
        link: factor
        for link, factor in factors.items()
        if not 0 <= Fraction(factor) <= 1
    }
    if bad:
        raise CapacityValidationError(
            f"degradation factors must lie in [0, 1]: {bad!r}"
        )
    degraded = dict(capacities)
    for link, factor in factors.items():
        degraded[link] = degraded[link] * Fraction(factor)
    return degraded


def interior_links(capacities: Capacities) -> List[Link]:
    """The ToR–middle links of a capacity map (failure candidates)."""
    return [
        link
        for link in capacities
        if isinstance(link[0], (InputSwitch, MiddleSwitch))
        and isinstance(link[1], (MiddleSwitch, OutputSwitch))
    ]


def middle_switch_links(network: ClosNetwork, m: int) -> List[Link]:
    """All interior links incident to middle switch ``M_m``."""
    middle = network.middle(m)
    links: List[Link] = []
    for inp in network.input_switches:
        links.append((inp, middle))
    for out in network.output_switches:
        links.append((middle, out))
    return links


def fail_middle_switch(
    network: ClosNetwork, capacities: Capacities, m: int
) -> Capacities:
    """Zero every link of middle switch ``M_m`` (a whole-switch failure)."""
    return fail_links(capacities, middle_switch_links(network, m))


def random_link_failures(
    network: ClosNetwork,
    capacities: Capacities,
    count: int,
    seed: int = 0,
    interior_only: bool = True,
) -> Tuple[Capacities, List[Link]]:
    """Fail ``count`` uniformly random links; returns (capacities, failed).

    ``interior_only`` restricts failures to ToR–middle links (server
    links failing disconnect a host outright, a less interesting mode).
    The draw is a pure function of ``seed``: identical seeds produce
    identical failure sets across runs and platforms.
    """
    if count < 0:
        raise CapacityValidationError(
            f"failure count must be >= 0, got {count}"
        )
    candidates = interior_links(capacities) if interior_only else list(capacities)
    if count > len(candidates):
        raise CapacityValidationError(
            f"cannot fail {count} of {len(candidates)} candidate links"
        )
    rng = random.Random(seed)
    failed = rng.sample(candidates, count)
    return fail_links(capacities, failed), failed


class FailureGroup(NamedTuple):
    """A named set of links that fail *together* (shared-risk group)."""

    name: str
    links: Tuple[Link, ...]


def correlated_groups(network: ClosNetwork) -> List[FailureGroup]:
    """The fabric's natural shared-risk groups.

    One group per middle switch (linecard/switch loss) and one per ToR
    uplink bundle (an input or output switch losing its whole interior
    trunk) — the correlated modes real fabrics exhibit, as opposed to
    independent per-link failures.
    """
    groups: List[FailureGroup] = []
    for m in range(1, network.num_middles + 1):
        groups.append(
            FailureGroup(f"middle-{m}", tuple(middle_switch_links(network, m)))
        )
    for inp in network.input_switches:
        links = tuple((inp, mid) for mid in network.middle_switches)
        groups.append(FailureGroup(f"uplinks-I{inp.index}", links))
    for out in network.output_switches:
        links = tuple((mid, out) for mid in network.middle_switches)
        groups.append(FailureGroup(f"downlinks-O{out.index}", links))
    return groups


def random_group_failures(
    network: ClosNetwork,
    capacities: Capacities,
    count: int,
    seed: int = 0,
    severity: object = 0,
) -> Tuple[Capacities, List[FailureGroup]]:
    """Fail ``count`` random shared-risk groups together.

    ``severity`` is the retained-capacity fraction applied to every link
    of a chosen group: 0 (default) is a hard correlated failure, values
    in (0, 1) are correlated brownouts.  Deterministic in ``seed``.
    """
    if count < 0:
        raise CapacityValidationError(
            f"failure count must be >= 0, got {count}"
        )
    groups = correlated_groups(network)
    if count > len(groups):
        raise CapacityValidationError(
            f"cannot fail {count} of {len(groups)} shared-risk groups"
        )
    rng = random.Random(seed)
    chosen = rng.sample(groups, count)
    factors: Dict[Link, object] = {}
    for group in chosen:
        for link in group.links:
            factors[link] = severity
    return degrade_links(capacities, factors), chosen


def surviving_network(
    network: ClosNetwork, failed_middles: Iterable[int]
) -> Tuple[ClosNetwork, Dict[int, int]]:
    """A Clos network with the failed middle switches removed.

    Routers that are failure-aware route in the surviving network; the
    returned map sends surviving middle indices (1-based, contiguous)
    back to the original indices so routings can be translated.
    """
    from repro.errors import DisconnectedFlowError

    dead = set(failed_middles)
    survivors = [
        m for m in range(1, network.num_middles + 1) if m not in dead
    ]
    if not survivors:
        raise DisconnectedFlowError(
            [], message="all middle switches failed: no surviving paths"
        )
    smaller = ClosNetwork(network.n, middle_count=len(survivors))
    index_map = {new: old for new, old in enumerate(survivors, start=1)}
    return smaller, index_map


def failed_middles_of(
    network: ClosNetwork, capacities: Mapping[Link, object]
) -> List[int]:
    """Middle switches with *every* incident link at capacity 0."""
    dead: List[int] = []
    for m in range(1, network.num_middles + 1):
        links = middle_switch_links(network, m)
        if all(capacities.get(link, 0) == 0 for link in links):
            dead.append(m)
    return dead


def usable_middles(
    network: ClosNetwork,
    capacities: Mapping[Link, object],
    flow,
    exclude: Optional[Iterable[int]] = None,
) -> List[int]:
    """Middle switches offering ``flow`` a path of positive capacity."""
    banned = set(exclude or ())
    i, o = flow.source.switch, flow.dest.switch
    usable: List[int] = []
    for m in range(1, network.num_middles + 1):
        if m in banned:
            continue
        middle = network.middle(m)
        up = capacities.get((InputSwitch(i), middle), 0)
        down = capacities.get((middle, OutputSwitch(o)), 0)
        if up > 0 and down > 0:
            usable.append(m)
    return usable
