"""Time-varying failures: link flaps, switch crashes, replayable traces.

Static injection (:mod:`repro.failures.inject`) answers "what does the
degraded fabric look like"; this module answers "what does the fabric
look like *at time t*".  A :class:`FailureSchedule` is an ordered list
of :class:`FailureEvent` — at ``time`` the ``link`` drops to ``factor``
of its base capacity (0 = hard failure, 1 = full recovery, anything in
between a brownout) and stays there until the link's next event.

The schedule is consumed two ways:

- **Solvers**: :meth:`FailureSchedule.capacities_at` materializes the
  capacity map of any instant, so max-min allocations can be computed
  along a failure timeline.
- **The simulator**: :func:`repro.sim.flowsim.simulate` accepts a
  ``failure_schedule`` and replays it as discrete events, re-consulting
  the congestion-control policy whenever the fabric changes.

Schedules are deterministic values: construction from a seed is a pure
function of that seed, :meth:`trace` is a canonical plain-data form for
equality/golden tests, and :meth:`to_dict`/:meth:`from_dict` round-trip
through JSON so a failure trace captured in production can be replayed
in the lab bit-for-bit.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Any, Dict, Iterable, List, NamedTuple, Sequence, Tuple

from repro.errors import CapacityValidationError
from repro.core.nodes import (
    ClosNode,
    Destination,
    InputSwitch,
    MiddleSwitch,
    OutputSwitch,
    Source,
)
from repro.core.routing import Link
from repro.core.topology import ClosNetwork
from repro.failures.inject import (
    Capacities,
    interior_links,
    middle_switch_links,
)

_NODE_KINDS = {
    "I": InputSwitch,
    "O": OutputSwitch,
    "M": MiddleSwitch,
    "s": Source,
    "t": Destination,
}


def _node_to_data(node: ClosNode) -> List[Any]:
    return [node.kind] + [int(field) for field in node[:-1]]


def _node_from_data(data: Sequence[Any]) -> ClosNode:
    try:
        kind, indices = data[0], [int(x) for x in data[1:]]
        return _NODE_KINDS[kind](*indices)
    except (KeyError, IndexError, TypeError, ValueError) as error:
        raise CapacityValidationError(f"malformed node {data!r}") from error


class FailureEvent(NamedTuple):
    """At ``time``, ``link`` changes to ``factor`` × its base capacity."""

    time: float
    link: Link
    factor: Fraction


class FailureSchedule:
    """An immutable, time-sorted sequence of capacity-change events.

    >>> from repro.core.topology import ClosNetwork
    >>> clos = ClosNetwork(2)
    >>> link = (clos.input_switches[0], clos.middle_switches[0])
    >>> schedule = FailureSchedule.link_flap(link, down_at=1.0, up_at=2.0)
    >>> [event.time for event in schedule.events()]
    [1.0, 2.0]
    >>> caps = schedule.capacities_at(1.5, clos.graph.capacities())
    >>> caps[link]
    Fraction(0, 1)
    """

    def __init__(self, events: Iterable[FailureEvent]) -> None:
        normalized: List[FailureEvent] = []
        for event in events:
            time, link, factor = event
            if time < 0:
                raise CapacityValidationError(
                    f"negative failure time: {time!r}"
                )
            factor = Fraction(factor)
            if not 0 <= factor <= 1:
                raise CapacityValidationError(
                    f"capacity factor must lie in [0, 1], got {factor}"
                )
            normalized.append(FailureEvent(float(time), tuple(link), factor))
        # Stable sort: simultaneous events keep construction order, so a
        # crash-then-recover pair at the same instant resolves recovered.
        self._events: Tuple[FailureEvent, ...] = tuple(
            sorted(normalized, key=lambda event: event.time)
        )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def link_flap(
        cls,
        link: Link,
        down_at: float,
        up_at: float,
        period: float = 0.0,
        count: int = 1,
        severity: object = 0,
    ) -> "FailureSchedule":
        """``count`` down/up cycles of one link, ``period`` apart."""
        if up_at <= down_at:
            raise CapacityValidationError(
                f"recovery must follow failure: down={down_at}, up={up_at}"
            )
        if count < 1:
            raise CapacityValidationError(f"count must be >= 1, got {count}")
        if count > 1 and period <= 0:
            raise CapacityValidationError(
                "repeating flaps need a positive period"
            )
        events: List[FailureEvent] = []
        for cycle in range(count):
            offset = cycle * period
            events.append(
                FailureEvent(down_at + offset, link, Fraction(severity))
            )
            events.append(FailureEvent(up_at + offset, link, Fraction(1)))
        return cls(events)

    @classmethod
    def switch_crash(
        cls,
        network: ClosNetwork,
        m: int,
        at: float,
        recover_at: float = None,
        severity: object = 0,
    ) -> "FailureSchedule":
        """Middle switch ``M_m`` crashes at ``at`` (optionally recovers)."""
        events: List[FailureEvent] = []
        for link in middle_switch_links(network, m):
            events.append(FailureEvent(at, link, Fraction(severity)))
            if recover_at is not None:
                if recover_at <= at:
                    raise CapacityValidationError(
                        f"recovery must follow crash: at={at}, "
                        f"recover_at={recover_at}"
                    )
                events.append(FailureEvent(recover_at, link, Fraction(1)))
        return cls(events)

    @classmethod
    def random_flaps(
        cls,
        network: ClosNetwork,
        count: int,
        horizon: float,
        seed: int = 0,
        mean_downtime: float = None,
        severity: object = 0,
    ) -> "FailureSchedule":
        """``count`` random interior-link flaps inside ``[0, horizon]``.

        A pure function of ``seed`` — identical seeds give identical
        traces, which the determinism tests pin down.
        """
        if count < 0:
            raise CapacityValidationError(f"count must be >= 0, got {count}")
        if horizon <= 0:
            raise CapacityValidationError(
                f"horizon must be positive, got {horizon}"
            )
        rng = random.Random(seed)
        candidates = sorted(
            interior_links(network.graph.capacities()), key=repr
        )
        downtime = mean_downtime if mean_downtime is not None else horizon / 10
        events: List[FailureEvent] = []
        for _ in range(count):
            link = rng.choice(candidates)
            down = rng.uniform(0, horizon)
            up = min(horizon, down + rng.expovariate(1.0 / downtime))
            events.append(FailureEvent(down, link, Fraction(severity)))
            events.append(FailureEvent(up, link, Fraction(1)))
        return cls(events)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def events(self) -> List[FailureEvent]:
        """The events, time-sorted (ties in construction order)."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FailureSchedule):
            return NotImplemented
        return self._events == other._events

    def __hash__(self) -> int:
        return hash(self._events)

    def horizon(self) -> float:
        """The time of the last event (0.0 for an empty schedule)."""
        return self._events[-1].time if self._events else 0.0

    def trace(self) -> List[Tuple[float, str, str]]:
        """A canonical plain-data form: ``(time, link repr, factor)``.

        Two schedules with equal traces behave identically; golden and
        determinism tests compare traces rather than object graphs.
        """
        return [
            (event.time, repr(event.link), str(event.factor))
            for event in self._events
        ]

    def factors_at(self, time: float) -> Dict[Link, Fraction]:
        """Each touched link's retained-capacity factor at ``time``.

        Events are inclusive: a failure *at* ``time`` is already in
        effect at ``time`` (matching the simulator, which applies a
        failure event before re-consulting the policy).
        """
        factors: Dict[Link, Fraction] = {}
        for event in self._events:
            if event.time > time:
                break
            factors[event.link] = event.factor
        return factors

    def capacities_at(self, time: float, base: Capacities) -> Capacities:
        """The capacity map in force at ``time``, derived from ``base``."""
        from repro.failures.inject import _check_known

        factors = self.factors_at(time)
        _check_known(base, factors)
        degraded = dict(base)
        for link, factor in factors.items():
            degraded[link] = degraded[link] * factor
        return degraded

    def merged(self, other: "FailureSchedule") -> "FailureSchedule":
        """The union of two schedules (e.g. a storm plus background flaps)."""
        return FailureSchedule(list(self._events) + list(other.events()))

    # ------------------------------------------------------------------
    # Serialization (replayable traces)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": "repro-failure-schedule",
            "version": 1,
            "events": [
                {
                    "time": event.time,
                    "link": [
                        _node_to_data(event.link[0]),
                        _node_to_data(event.link[1]),
                    ],
                    "factor": str(event.factor),
                }
                for event in self._events
            ],
        }

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "FailureSchedule":
        if document.get("format") != "repro-failure-schedule":
            raise CapacityValidationError(
                f"not a failure-schedule document: {document.get('format')!r}"
            )
        events: List[FailureEvent] = []
        for entry in document.get("events", []):
            try:
                link = (
                    _node_from_data(entry["link"][0]),
                    _node_from_data(entry["link"][1]),
                )
                events.append(
                    FailureEvent(
                        float(entry["time"]), link, Fraction(entry["factor"])
                    )
                )
            except (KeyError, IndexError, TypeError, ValueError) as error:
                raise CapacityValidationError(
                    f"malformed schedule entry {entry!r}"
                ) from error
        return cls(events)
