"""The typed exception hierarchy, re-exported for the failures package.

The canonical definitions live in :mod:`repro.errors` (which imports
nothing, so every layer of the library can raise typed errors without
import cycles); this module exists so failure-handling code can import
errors and injectors from one place.
"""

from repro.errors import (
    CapacityValidationError,
    DisconnectedFlowError,
    ExperimentError,
    InfeasibleRoutingError,
    ReproError,
    StepFailedError,
    StepTimeoutError,
    UnboundedRateError,
    UnknownLinkError,
)

__all__ = [
    "CapacityValidationError",
    "DisconnectedFlowError",
    "ExperimentError",
    "InfeasibleRoutingError",
    "ReproError",
    "StepFailedError",
    "StepTimeoutError",
    "UnboundedRateError",
    "UnknownLinkError",
]
