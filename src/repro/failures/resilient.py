"""Failure-aware routing: reroute around dead capacity, report casualties.

The routers in :mod:`repro.routers` assume a healthy fabric; on a
degraded capacity map they happily pin flows onto zero-capacity links
(which then water-fill to rate 0 — a silently wrong answer from the
operator's point of view).  This module wraps any router with the
recovery loop a real fabric controller runs:

1. Route in the :func:`~repro.failures.inject.surviving_network` (fully
   dead middle switches removed), translating middle indices back.
2. Audit the result against the *actual* degraded capacities: any flow
   whose path crosses a zero-capacity link is rerouted onto one of its
   surviving middles, least-loaded first, for up to ``max_attempts``
   repair passes.
3. Flows with no surviving path at all are *sacrificed*: dropped from
   the routing and reported (or raised, with ``strict=True``) — never
   silently returned at rate 0.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional

from repro.errors import DisconnectedFlowError, InfeasibleRoutingError
from repro.core.flows import Flow, FlowCollection
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.failures.inject import (
    Capacities,
    failed_middles_of,
    surviving_network,
    usable_middles,
)
from repro.obs import counter, traced

Router = Callable[[ClosNetwork, FlowCollection], Routing]

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_REROUTES = counter("failures.reroutes")
_SACRIFICES = counter("failures.sacrificed_flows")
_REPAIR_PASSES = counter("failures.repair_passes")


class ResilientRouting(NamedTuple):
    """The outcome of routing on a degraded fabric."""

    #: Routing over the surviving flows only.
    routing: Routing
    #: Flows with no surviving path (excluded from ``routing``).
    sacrificed: List[Flow]
    #: Flows moved off a dead link during the repair passes.
    rerouted: List[Flow]
    #: Repair passes actually used (0 = first routing was clean).
    attempts: int


def _default_router(network: ClosNetwork, flows: FlowCollection) -> Routing:
    from repro.routers.greedy import greedy_least_congested

    return greedy_least_congested(network, flows)


@traced("failures.route_with_failures")
def route_with_failures(
    network: ClosNetwork,
    flows: FlowCollection,
    capacities: Capacities,
    router: Optional[Router] = None,
    max_attempts: int = 3,
    strict: bool = False,
) -> ResilientRouting:
    """Route ``flows`` on a degraded fabric, repairing around failures.

    ``router`` is any ``(network, flows) -> Routing`` callable (default:
    greedy least-congested).  ``max_attempts`` bounds the repair passes
    after the initial routing.  With ``strict=True`` disconnected flows
    raise :class:`~repro.errors.DisconnectedFlowError` instead of being
    sacrificed.
    """
    if max_attempts < 0:
        raise InfeasibleRoutingError(
            f"max_attempts must be >= 0, got {max_attempts}"
        )
    route = router if router is not None else _default_router

    # Sacrifice flows that no middle switch can carry, up front.
    connected = FlowCollection()
    sacrificed: List[Flow] = []
    for flow in flows:
        if usable_middles(network, capacities, flow):
            connected.add(flow)
        else:
            sacrificed.append(flow)
    if sacrificed and strict:
        raise DisconnectedFlowError(sacrificed)
    _SACRIFICES.inc(len(sacrificed))
    if not len(connected):
        return ResilientRouting(Routing({}), sacrificed, [], 0)

    # Pass 0: route in the surviving network (dead middles removed).
    dead = failed_middles_of(network, capacities)
    if dead:
        smaller, index_map = surviving_network(network, dead)
        small_routing = route(smaller, connected)
        middles = {
            flow: index_map[m]
            for flow, m in small_routing.middles(smaller).items()
        }
    else:
        middles = route(network, connected).middles(network)

    # Repair passes: move flows off links that are dead but whose middle
    # switch survives elsewhere (partial failures the surviving-network
    # projection cannot see).
    rerouted: List[Flow] = []
    attempts = 0
    for _ in range(max_attempts):
        load: Dict[int, int] = {}
        for m in middles.values():
            load[m] = load.get(m, 0) + 1
        broken = [
            flow
            for flow, m in middles.items()
            if m not in usable_middles(network, capacities, flow)
        ]
        if not broken:
            break
        attempts += 1
        _REPAIR_PASSES.inc()
        for flow in broken:
            options = usable_middles(network, capacities, flow)
            # least-loaded usable middle, lowest index on ties
            best = min(options, key=lambda m: (load.get(m, 0), m))
            load[middles[flow]] = load.get(middles[flow], 1) - 1
            load[best] = load.get(best, 0) + 1
            middles[flow] = best
            rerouted.append(flow)
            _REROUTES.inc()

    still_broken = [
        flow
        for flow, m in middles.items()
        if m not in usable_middles(network, capacities, flow)
    ]
    if still_broken:
        raise DisconnectedFlowError(
            still_broken,
            message=(
                f"{len(still_broken)} flow(s) still cross dead links after "
                f"{max_attempts} repair pass(es): {still_broken!r}"
            ),
        )

    routing = Routing.from_middles(network, connected, middles)
    from repro.validate import validation_level

    # At `full` validation, audit the repaired routing's well-formedness
    # before it feeds a solver: every path must exist in the (healthy)
    # topology graph and join its flow's endpoints.  The repair loop
    # above moves flows between middles aggressively; this is the
    # independent check that no patch step produced a broken path.
    if validation_level() == "full":
        routing.validate(network.graph)
    return ResilientRouting(
        routing=routing,
        sacrificed=sacrificed,
        rerouted=rerouted,
        attempts=attempts,
    )
