"""Failure injection and resilience: degraded fabrics, failure schedules,
failure-aware routing.

The package splits along the time axis:

- :mod:`repro.failures.inject` — *static* degradation: zeroed links,
  brownouts, random and correlated (shared-risk-group) failures, and
  the surviving-network projection.
- :mod:`repro.failures.schedule` — *time-varying* degradation:
  :class:`FailureSchedule` traces of link flaps and switch crashes,
  replayable through the flow simulator and serializable to JSON.
- :mod:`repro.failures.resilient` — failure-aware router wrappers that
  reroute around dead capacity with bounded retry and report which
  flows were sacrificed.
- :mod:`repro.failures.errors` — the typed exception hierarchy (also
  available as :mod:`repro.errors`).

``from repro.failures import fail_links`` and friends keep working as
they did when this was a single module.
"""

from repro.failures.errors import (
    CapacityValidationError,
    DisconnectedFlowError,
    InfeasibleRoutingError,
    ReproError,
    UnboundedRateError,
    UnknownLinkError,
)
from repro.failures.inject import (
    Capacities,
    FailureGroup,
    correlated_groups,
    degrade_links,
    fail_links,
    fail_middle_switch,
    failed_middles_of,
    interior_links,
    middle_switch_links,
    random_group_failures,
    random_link_failures,
    surviving_network,
    usable_middles,
)
from repro.failures.resilient import ResilientRouting, route_with_failures
from repro.failures.schedule import FailureEvent, FailureSchedule

__all__ = [
    "Capacities",
    "CapacityValidationError",
    "DisconnectedFlowError",
    "FailureEvent",
    "FailureGroup",
    "FailureSchedule",
    "InfeasibleRoutingError",
    "ReproError",
    "ResilientRouting",
    "UnboundedRateError",
    "UnknownLinkError",
    "correlated_groups",
    "degrade_links",
    "fail_links",
    "fail_middle_switch",
    "failed_middles_of",
    "interior_links",
    "middle_switch_links",
    "random_group_failures",
    "random_link_failures",
    "route_with_failures",
    "surviving_network",
    "usable_middles",
]
