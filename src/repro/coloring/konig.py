"""König edge coloring of bipartite multigraphs.

König's edge-coloring theorem states that a bipartite multigraph with
maximum degree ``d`` admits a proper ``d``-edge-coloring (no two edges
sharing an endpoint receive the same color).  Footnote 5 of the paper
uses this to turn demand graphs into routings: if the demand multigraph
``G^C`` of a collection of flows has maximum degree at most the number
``n`` of middle switches, an ``n``-edge-coloring of ``G^C`` *is* a
link-disjoint routing — associate each color with a middle switch and
send each flow through the middle switch of its color (Lemma 5.2).  The
Doom-Switch algorithm (Algorithm 1, line 2) relies on this routine.

The implementation is the classical Kempe-chain argument made
constructive: edges are inserted one at a time; when the colors missing
at the two endpoints differ, an alternating two-colored path is flipped
to free a common color.  Total time is ``O(E * (V + E))`` in the worst
case, comfortably fast for the instance sizes in this library.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.graph.bipartite import BipartiteMultigraph, EdgeKey, Node


class ColoringError(ValueError):
    """Raised when a proper coloring with the requested palette is impossible."""


def edge_coloring(
    graph: BipartiteMultigraph, num_colors: Optional[int] = None
) -> Dict[EdgeKey, int]:
    """Properly color the edges of ``graph`` with colors ``0..num_colors-1``.

    ``num_colors`` defaults to the maximum degree of ``graph`` (König's
    bound).  Raises :class:`ColoringError` if ``num_colors`` is smaller
    than the maximum degree, since no proper coloring can then exist.

    Returns a map from edge key to color index.

    >>> from repro.graph.bipartite import build_multigraph
    >>> g = build_multigraph([("u", "x", "e1"), ("u", "y", "e2")])
    >>> colors = edge_coloring(g)
    >>> colors["e1"] != colors["e2"]
    True
    """
    degree = graph.max_degree()
    if num_colors is None:
        num_colors = degree
    if num_colors < degree:
        raise ColoringError(
            f"{num_colors} colors cannot properly color a multigraph"
            f" of maximum degree {degree}"
        )

    # used[node][color] = edge key currently colored `color` at `node`.
    used: Dict[Node, Dict[int, EdgeKey]] = {}
    color_of: Dict[EdgeKey, int] = {}
    endpoints: Dict[EdgeKey, Tuple[Node, Node]] = {}

    def free_color(node: Node) -> int:
        at_node = used.setdefault(node, {})
        for color in range(num_colors):
            if color not in at_node:
                return color
        raise ColoringError(
            f"no free color at node {node!r} with {num_colors} colors"
        )  # pragma: no cover - unreachable when num_colors >= degree

    def other_endpoint(key: EdgeKey, node: Node) -> Node:
        left, right = endpoints[key]
        return right if node == left else left

    def flip_alternating_path(start: Node, alpha: int, beta: int) -> None:
        """Swap colors alpha/beta along the maximal path from ``start``.

        ``start`` is missing ``beta``; after the flip it misses ``alpha``.
        """
        # Collect the path first, then recolor: mutating `used` while
        # walking would corrupt the traversal.
        path: List[EdgeKey] = []
        node, color = start, alpha
        while color in used.setdefault(node, {}):
            key = used[node][color]
            path.append(key)
            node = other_endpoint(key, node)
            color = beta if color == alpha else alpha
        # Two-phase recolor: consecutive path edges share a node, so
        # deleting and inserting per edge would clobber the shared
        # node's entry for the *next* edge.  Clear every old entry
        # first, then install every new one.
        for key in path:
            left, right = endpoints[key]
            del used[left][color_of[key]]
            del used[right][color_of[key]]
        for key in path:
            old = color_of[key]
            new = beta if old == alpha else alpha
            left, right = endpoints[key]
            used[left][new] = key
            used[right][new] = key
            color_of[key] = new

    for left, right, key in graph.edges():
        endpoints[key] = (left, right)
        color_left = free_color(left)
        color_right = free_color(right)
        if color_left != color_right:
            # In a bipartite graph, the maximal (color_left, color_right)
            # alternating path starting at `right` can never reach `left`
            # (it would need even length yet join opposite sides), so the
            # flip frees `color_left` at `right` without disturbing `left`.
            flip_alternating_path(right, color_left, color_right)
        used[left][color_left] = key
        used[right][color_left] = key
        color_of[key] = color_left

    return color_of


def is_proper_coloring(
    graph: BipartiteMultigraph, colors: Dict[EdgeKey, int]
) -> bool:
    """True if ``colors`` assigns distinct colors to edges sharing a node."""
    if set(colors) != set(graph.edge_keys):
        return False
    for node in graph.left_nodes + graph.right_nodes:
        seen = set()
        for key in graph.incident(node):
            color = colors[key]
            if color in seen:
                return False
            seen.add(color)
    return True


def color_classes(colors: Dict[EdgeKey, int]) -> Dict[int, List[EdgeKey]]:
    """Group edge keys by color, preserving insertion order within a class."""
    classes: Dict[int, List[EdgeKey]] = {}
    for key, color in colors.items():
        classes.setdefault(color, []).append(key)
    return classes
