"""König edge coloring — the routing engine behind Lemma 5.2 and Algorithm 1."""

from repro.coloring.konig import (
    ColoringError,
    color_classes,
    edge_coloring,
    is_proper_coloring,
)

__all__ = [
    "ColoringError",
    "color_classes",
    "edge_coloring",
    "is_proper_coloring",
]
