"""Chaos fuzzing: adversarial instances cross-checked across backends.

The complement of :mod:`repro.validate`: instead of certifying the
solves experiments happen to run, this module *generates* solves
designed to break solvers — zero and huge capacities, near-tied
saturation levels, degenerate single-middle routings, duplicate
parallel flows, and churn event streams replayed through the flow-level
simulator — and cross-checks every available backend against the exact
reference on each one.  Any certificate failure or cross-backend
disagreement is captured as a replayable quarantine bundle
(:mod:`repro.quarantine`), so a fuzz run never loses a reproducer.

Everything is a pure function of the seed: ``fuzz(seeds=200)`` explores
the same instances on every machine, and a failing seed from CI replays
locally with ``random_instance(seed)``.

Entry points: :func:`random_instance` / :func:`churn_snapshots`
(generation), :func:`cross_check` (one instance, all backends),
:func:`fuzz` (the harness behind ``repro fuzz --seeds N``).
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import Any, Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from repro.errors import (
    BackendUnavailableError,
    CertificateError,
    ReproError,
)
from repro.core.allocation import Allocation, Rate
from repro.core.flows import FlowCollection
from repro.core.routing import Link, Routing
from repro.core.topology import ClosNetwork
from repro.obs import counter
from repro.quarantine import quarantine_failure
from repro.validate import rate_disagreements, validation

#: Float-vs-exact agreement tolerance for cross-checks (relative; see
#: :func:`repro.validate.rate_disagreements`).
CROSS_CHECK_TOL = 1e-6

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_INSTANCES = counter("chaos.instances")
_CHECKS = counter("chaos.checks")
_FAILURES = counter("chaos.failures")

__all__ = [
    "CROSS_CHECK_TOL",
    "ChaosInstance",
    "FuzzReport",
    "batched_cross_check",
    "churn_snapshots",
    "cross_check",
    "fuzz",
    "random_instance",
    "sim_engine_check",
    "stream_churn_check",
]

#: Capacity mutation classes ``random_instance`` draws from.
_MUTATIONS = ("unit", "zero", "huge", "near_tied", "fractional", "mixed")


class ChaosInstance(NamedTuple):
    """One generated adversarial instance."""

    name: str
    seed: int
    routing: Routing
    capacities: Dict[Link, Rate]


class FuzzReport(NamedTuple):
    """The outcome of a :func:`fuzz` run."""

    seeds: int
    instances: int
    checks: int
    #: One record per defect: seed / instance / backend / kind / detail
    #: / quarantine bundle path (None if the bundle write failed).
    failures: List[Dict[str, Any]]

    @property
    def bundles(self) -> List[str]:
        return [f["bundle"] for f in self.failures if f.get("bundle")]


def _mutate_capacities(
    rng: random.Random,
    capacities: Dict[Link, Rate],
    mutation: str,
) -> Dict[Link, Rate]:
    """Apply one capacity mutation class in place (finite links only)."""
    finite = [
        link for link, cap in capacities.items() if cap != float("inf")
    ]
    if not finite:
        return capacities
    sample = rng.sample(finite, k=max(1, len(finite) // 3))
    for link in sample:
        if mutation == "mixed":
            mutation_here = rng.choice(_MUTATIONS[1:-1])
        else:
            mutation_here = mutation
        if mutation_here == "zero":
            capacities[link] = Fraction(0)
        elif mutation_here == "huge":
            capacities[link] = Fraction(10) ** rng.randint(9, 15)
        elif mutation_here == "near_tied":
            # Levels that saturate within 1e-13 of each other probe the
            # float backends' tie-batching bands.
            capacities[link] = float(capacities[link]) * (
                1.0 + rng.choice((-1, 1)) * rng.uniform(1e-14, 1e-12)
            )
        elif mutation_here == "fractional":
            capacities[link] = Fraction(
                rng.randint(1, 7), rng.randint(1, 97)
            )
    return capacities


def random_instance(seed: int) -> ChaosInstance:
    """A deterministic adversarial instance for ``seed``.

    Varies the Clos size (1–4), the flow count (with duplicate parallel
    flows), the routing shape (uniform random vs. degenerate
    all-through-one-middle), and the capacity map (see ``_MUTATIONS``).
    """
    rng = random.Random(seed)
    n = rng.randint(1, 4)
    network = ClosNetwork(n)

    flows = FlowCollection()
    for _ in range(rng.randint(1, 4 + 2 * n)):
        source = rng.choice(network.sources)
        dest = rng.choice(network.destinations)
        # Duplicate parallel flows stress tag handling and tie-breaks.
        flows.add_pair(source, dest, count=rng.choice((1, 1, 1, 2, 3)))

    if rng.random() < 0.25:
        shape = "degenerate"
        middles = {flow: 1 for flow in flows}
    else:
        shape = "random"
        middles = {flow: rng.randint(1, n) for flow in flows}
    routing = Routing.from_middles(network, flows, middles)

    mutation = rng.choice(_MUTATIONS)
    capacities = _mutate_capacities(
        rng, network.graph.capacities(), mutation
    )
    _INSTANCES.inc()
    return ChaosInstance(
        name=f"n{n}-{shape}-{mutation}",
        seed=seed,
        routing=routing,
        capacities=capacities,
    )


class _RecordingPolicy:
    """Wraps :class:`~repro.sim.policies.MaxMinCongestionControl`,
    snapshotting the (routing, capacities) instance of every policy
    consultation so churn states can be re-solved statically."""

    def __init__(self, inner, limit: int = 12) -> None:
        self._inner = inner
        self.pure_rates = inner.pure_rates
        self.limit = limit
        self.snapshots: List[Tuple[Routing, Dict[Link, Rate]]] = []

    def set_link_factors(self, factors) -> None:
        self._inner.set_link_factors(factors)

    def forget(self, job_id: int) -> None:
        self._inner.forget(job_id)

    def rates(self, active, remaining, now=0.0):
        from repro.sim.policies import _job_flow

        result = self._inner.rates(active, remaining, now)
        if active and len(self.snapshots) < self.limit:
            flows = FlowCollection(
                _job_flow(job) for job in active.values()
            )
            middles = {
                _job_flow(job): self._inner._pinned[jid]
                for jid, job in active.items()
            }
            self.snapshots.append(
                (
                    Routing.from_middles(
                        self._inner.network, flows, middles
                    ),
                    dict(self._inner._capacities),
                )
            )
        return result


def churn_snapshots(seed: int) -> List[ChaosInstance]:
    """Solver instances sampled from a churn stream through flowsim.

    Runs a random job mix under max-min congestion control while a
    random brownout/failure schedule degrades and recovers links, and
    captures the exact (routing, capacities) instance of every policy
    consultation — the states an eventual streaming incremental solver
    must get right.  Each snapshot cross-checks like any static
    instance.
    """
    from repro.failures.schedule import FailureSchedule
    from repro.sim.flowsim import simulate
    from repro.sim.jobs import FlowJob
    from repro.sim.policies import MaxMinCongestionControl

    rng = random.Random(seed)
    n = rng.randint(2, 3)
    network = ClosNetwork(n)
    jobs = [
        FlowJob(
            index,
            rng.choice(network.sources),
            rng.choice(network.destinations),
            round(rng.uniform(0.0, 3.0), 3),
            round(rng.uniform(0.2, 2.0), 3),
        )
        for index in range(rng.randint(4, 10))
    ]
    schedule = FailureSchedule.random_flaps(
        network,
        count=rng.randint(1, 3),
        horizon=3.0,
        seed=seed,
        severity=Fraction(rng.randint(0, 3), 4),
    )
    policy = _RecordingPolicy(MaxMinCongestionControl(network, seed=seed))
    with validation("off"):  # the snapshots are re-checked statically
        simulate(jobs, policy, max_time=60.0, failure_schedule=schedule)
    return [
        ChaosInstance(
            name=f"churn-n{n}-t{index}",
            seed=seed,
            routing=routing,
            capacities=capacities,
        )
        for index, (routing, capacities) in enumerate(policy.snapshots)
    ]


def _failure(
    instance: ChaosInstance,
    backend: str,
    kind: str,
    detail: Sequence[str],
    rates: Optional[Mapping] = None,
    directory: Optional[str] = None,
) -> Dict[str, Any]:
    """Record one defect and quarantine its instance."""
    _FAILURES.inc()
    bundle = quarantine_failure(
        instance.routing,
        instance.capacities,
        f"fuzz-{kind}",
        backend,
        None,
        seed=instance.seed,
        context=f"chaos.{instance.name}",
        failures=list(detail),
        rates=rates,
        directory=directory,
    )
    return {
        "seed": instance.seed,
        "instance": instance.name,
        "backend": backend,
        "kind": kind,
        "detail": list(detail)[:5],
        "bundle": bundle,
    }


def cross_check(
    instance: ChaosInstance,
    backends: Optional[Sequence[str]] = None,
    directory: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Solve ``instance`` on every backend and compare against reference.

    Each backend runs under ``full`` validation (certificate failures
    are defects in their own right); the quotient backend must agree
    with the exact reference *identically*, the float backends within
    :data:`CROSS_CHECK_TOL` (relative).  A backend that raises
    :class:`~repro.errors.BackendUnavailableError` is skipped; one that
    raises a :class:`~repro.errors.ReproError` is only a defect if the
    reference accepts the instance (and vice versa).  Returns one
    failure record per defect, each already quarantined.
    """
    from repro.core.solve import BACKENDS, solve_max_min

    if backends is None:
        backends = [b for b in BACKENDS if b != "reference"]
    failures: List[Dict[str, Any]] = []
    _CHECKS.inc()

    reference: Optional[Allocation] = None
    reference_error: Optional[ReproError] = None
    try:
        with validation("full"):
            reference = solve_max_min(
                instance.routing, instance.capacities, backend="reference"
            )
    except CertificateError as error:
        failures.append(
            _failure(
                instance, "reference", "certificate", error.failures,
                directory=directory,
            )
        )
        return failures  # no ground truth to compare the others against
    except ReproError as error:
        reference_error = error

    for backend in backends:
        exact = backend in ("quotient",)
        try:
            with validation("full"):
                allocation = solve_max_min(
                    instance.routing,
                    instance.capacities,
                    backend=backend,
                    exact=True if exact else False,
                )
        except BackendUnavailableError:
            continue
        except CertificateError as error:
            failures.append(
                _failure(
                    instance, backend, "certificate", error.failures,
                    directory=directory,
                )
            )
            continue
        except ReproError as error:
            if reference_error is None:
                failures.append(
                    _failure(
                        instance, backend, "error-mismatch",
                        [
                            f"backend raised {type(error).__name__}: {error} "
                            "but the reference solved the instance"
                        ],
                        directory=directory,
                    )
                )
            continue
        if reference_error is not None:
            failures.append(
                _failure(
                    instance, backend, "error-mismatch",
                    [
                        f"backend solved the instance but the reference "
                        f"raised {type(reference_error).__name__}: "
                        f"{reference_error}"
                    ],
                    rates=allocation.rates(),
                    directory=directory,
                )
            )
            continue
        diffs = rate_disagreements(
            allocation.rates(),
            reference.rates(),
            tol=0.0 if exact else CROSS_CHECK_TOL,
        )
        if diffs:
            failures.append(
                _failure(
                    instance, backend, "disagreement", diffs,
                    rates=allocation.rates(), directory=directory,
                )
            )
    return failures


def batched_cross_check(
    instances: Sequence[ChaosInstance],
    directory: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """Solve a *group* of instances in one block-diagonal batch and
    compare every scenario against its per-instance exact reference
    solve, all under full validation.

    This is the fuzz-level guard for :mod:`repro.core.batched`: the
    batched kernel promises per-scenario independence (block-diagonal
    stacking must never let one adversarial scenario bleed into its
    neighbors), so the whole group is solved *together* and each
    scenario's rates must still match its own reference within
    :data:`CROSS_CHECK_TOL`.  Instances the reference rejects must be
    rejected by a batched solve too (checked individually).  When the
    group solve itself fails, the failure is localized by re-solving
    one scenario at a time.  Returns quarantined failure records like
    :func:`cross_check`; empty without NumPy.
    """
    from repro.core.batched import solve_max_min_batch
    from repro.core.solve import solve_max_min

    _CHECKS.inc()
    failures: List[Dict[str, Any]] = []

    def solve_one(instance: ChaosInstance) -> Optional[Allocation]:
        """Batched solve of a single instance, recording any defect."""
        try:
            with validation("full"):
                (allocation,) = solve_max_min_batch(
                    [(instance.routing, instance.capacities)]
                )
            return allocation
        except CertificateError as error:
            failures.append(
                _failure(
                    instance, "batched", "certificate", error.failures,
                    directory=directory,
                )
            )
        except ReproError as error:
            failures.append(
                _failure(
                    instance, "batched", "error-mismatch",
                    [
                        f"batched solve raised {type(error).__name__}: "
                        f"{error} but the reference solved the instance"
                    ],
                    directory=directory,
                )
            )
        return None

    def check(instance: ChaosInstance, allocation, reference) -> None:
        diffs = rate_disagreements(
            allocation.rates(), reference.rates(), tol=CROSS_CHECK_TOL
        )
        if diffs:
            failures.append(
                _failure(
                    instance, "batched", "disagreement", diffs,
                    rates=allocation.rates(), directory=directory,
                )
            )

    solvable: List[Tuple[ChaosInstance, Allocation]] = []
    for instance in instances:
        try:
            with validation("full"):
                reference = solve_max_min(
                    instance.routing, instance.capacities, backend="reference"
                )
        except ReproError as error:
            # The reference rejects this instance (unbounded rate,
            # certificate, ...): a batched solve must reject it too.
            try:
                with validation("full"):
                    solve_max_min_batch(
                        [(instance.routing, instance.capacities)]
                    )
            except BackendUnavailableError:
                return failures
            except ReproError:
                continue  # agreement on rejection
            failures.append(
                _failure(
                    instance, "batched", "error-mismatch",
                    [
                        "batched solve accepted an instance the reference "
                        f"rejects with {type(error).__name__}: {error}"
                    ],
                    directory=directory,
                )
            )
            continue
        solvable.append((instance, reference))

    if not solvable:
        return failures
    try:
        with validation("full"):
            allocations = solve_max_min_batch(
                [(inst.routing, inst.capacities) for inst, _ in solvable]
            )
    except BackendUnavailableError:
        return failures
    except ReproError:
        # Localize: some scenario fails inside the group — find it.
        for instance, reference in solvable:
            allocation = solve_one(instance)
            if allocation is not None:
                check(instance, allocation, reference)
        return failures
    for (instance, reference), allocation in zip(solvable, allocations):
        check(instance, allocation, reference)
    return failures


def stream_churn_check(
    seed: int, directory: Optional[str] = None
) -> List[Dict[str, Any]]:
    """Drive a seeded arrival/departure sequence *statefully* through
    :class:`~repro.core.streaming.StreamingMaxMin`.

    Unlike :func:`churn_snapshots` (which re-solves sampled states from
    scratch), this exercises the incremental path itself: every solve
    runs with ``shadow=1.0`` (cross-checked against the exact reference)
    under full validation, with randomized batch sizes, capacity
    degradations, and the occasional finite↔infinite capacity flip (the
    PR 6 ``incidence_stale`` regression class).  Disagreements are
    quarantined by the solver (reason ``stream-mismatch``, including the
    event prefix); this function converts them — and certificate
    failures — into fuzz failure records.
    """
    from repro.errors import UnboundedRateError
    from repro.core.flows import Flow
    from repro.core.streaming import StreamingMaxMin

    rng = random.Random((seed << 4) ^ 0xC4A1)
    n = rng.randint(2, 4)
    network = ClosNetwork(n)
    exact = rng.random() < 0.3
    base_caps = network.graph.capacities()
    solver = StreamingMaxMin(
        base_caps, exact=exact, shadow=1.0, quarantine_dir=directory,
        checkpoint_every=rng.choice((1, 2, 4, 16)),
    )
    name = f"stream-churn-n{n}-{'exact' if exact else 'float'}"
    failures: List[Dict[str, Any]] = []

    def _defect(kind: str, detail: Sequence[str], bundle=None):
        _FAILURES.inc()
        failures.append(
            {
                "seed": seed,
                "instance": name,
                "backend": "streaming",
                "kind": kind,
                "detail": list(detail)[:5],
                "bundle": bundle,
            }
        )

    active: List[Flow] = []
    factors: Dict[Link, Rate] = {}
    tag = 0
    mismatches = 0
    with validation("full"):
        for _ in range(rng.randint(8, 16)):
            # One batch: a few staged events, then one solve.
            for _ in range(rng.randint(1, 3)):
                if active and (rng.random() < 0.45 or len(active) > 24):
                    solver.remove(active.pop(rng.randrange(len(active))))
                else:
                    tag += 1
                    source = rng.choice(network.sources)
                    dest = rng.choice(network.destinations)
                    flow = Flow(source, dest, tag=tag)
                    try:
                        solver.add(
                            flow,
                            network.path_via(
                                source, dest, rng.randint(1, n)
                            ),
                        )
                    except UnboundedRateError:
                        continue  # every link on the path flipped to inf
                    active.append(flow)
            if rng.random() < 0.25:
                # Degrade or flip a random link's capacity.
                link = rng.choice(list(base_caps))
                roll = rng.random()
                if roll < 0.3:
                    factors[link] = float("inf")  # finite -> infinite flip
                elif roll < 0.6:
                    factors.pop(link, None)  # restore
                else:
                    factors[link] = rng.choice(
                        (0.0, 0.5, Fraction(1, 3))
                    )
                caps = dict(base_caps)
                for flink, value in factors.items():
                    caps[flink] = (
                        float("inf")
                        if value == float("inf")
                        else base_caps[flink] * value
                    )
                solver.set_capacities(caps)
            try:
                solver.solve()
            except CertificateError as error:
                _defect("certificate", error.failures)
                return failures
            except UnboundedRateError:
                # Capacity flips can leave a live flow with no finite
                # link — the typed rejection is the correct behavior;
                # restore and continue churning.
                factors.clear()
                solver.set_capacities(dict(base_caps))
            if solver.stats["mismatches"] > mismatches:
                mismatches = solver.stats["mismatches"]
                _defect(
                    "stream-mismatch",
                    ["incremental solve disagreed with the reference"],
                    bundle=solver.last_bundle,
                )
    return failures


def sim_engine_check(
    seed: int, directory: Optional[str] = None
) -> List[Dict[str, Any]]:
    """Replay a seeded churn workload through the *object* and *array*
    simulator engines and require equivalent results.

    The always-on variant of the simulator's sampled ``REPRO_SHADOW``
    cross-check: both the per-event loop (:func:`repro.sim.flowsim.
    simulate`) and the micro-batched loop (:func:`repro.sim.stream.
    simulate_stream`) run once per engine on the same workload, and the
    pairs must agree under :func:`repro.sim.arraysim.results_equivalent`
    — or fail identically, since error parity (same exception type and
    message) is part of the engine contract.  Divergences are
    quarantined with reason ``sim-mismatch`` and reported as fuzz
    failure records.  Raises :class:`~repro.errors.
    BackendUnavailableError` when NumPy is missing (the caller skips,
    as with :func:`stream_churn_check`).
    """
    from repro.sim import arraysim
    from repro.sim.flowsim import simulate
    from repro.sim.policies import MaxMinCongestionControl
    from repro.sim.stream import simulate_stream
    from repro.workloads.stochastic import churn_workload

    arraysim.resolve_engine("array", 0)  # NumPy gate — may raise
    rng = random.Random((seed << 5) ^ 0x51AE)
    n = rng.randint(2, 4)
    network = ClosNetwork(n)
    jobs = churn_workload(
        network,
        rate=rng.choice((30.0, 60.0, 120.0)),
        horizon=rng.uniform(0.4, 1.2),
        seed=seed,
    )
    max_time = rng.choice((None, None, 0.75))
    failures: List[Dict[str, Any]] = []

    loops: Sequence[Tuple[str, Any]] = (
        (
            "per-event",
            lambda engine: simulate(
                jobs,
                MaxMinCongestionControl(network, backend="vectorized"),
                max_time=max_time,
                engine=engine,
            ),
        ),
        (
            "batched",
            lambda engine: simulate_stream(
                jobs,
                MaxMinCongestionControl(network, backend="streaming"),
                batch_window=0.02,
                max_time=max_time,
                engine=engine,
            ),
        ),
    )
    for label, run in loops:
        name = f"sim-engine-{label}-n{n}"
        outcomes: Dict[str, Tuple[str, Any]] = {}
        for engine in ("object", "array"):
            try:
                outcomes[engine] = ("ok", run(engine))
            except ReproError as error:
                outcomes[engine] = (
                    "error", f"{type(error).__name__}: {error}"
                )
        obj_kind, obj_value = outcomes["object"]
        arr_kind, arr_value = outcomes["array"]
        if obj_kind == arr_kind == "error" and obj_value == arr_value:
            continue  # identical typed rejection on both engines
        if obj_kind == "ok" and arr_kind == "ok":
            if arraysim.results_equivalent(arr_value, obj_value):
                continue
            detail = arraysim._divergence(arr_value, obj_value)
        else:
            detail = [
                f"object engine: {obj_value if obj_kind == 'error' else 'ok'}",
                f"array engine: {arr_value if arr_kind == 'error' else 'ok'}",
            ]
        _FAILURES.inc()
        bundle = quarantine_failure(
            Routing({}),
            dict(network.graph.capacities()),
            reason="sim-mismatch",
            backend="array",
            exact=False,
            seed=seed,
            context=f"chaos.sim_engine_check:{label}",
            failures=detail,
            directory=directory,
        )
        failures.append(
            {
                "seed": seed,
                "instance": name,
                "backend": "array",
                "kind": "sim-mismatch",
                "detail": detail[:5],
                "bundle": bundle,
            }
        )
    return failures


def fuzz(
    seeds: int,
    backends: Optional[Sequence[str]] = None,
    directory: Optional[str] = None,
    churn_every: int = 5,
) -> FuzzReport:
    """Run the harness over ``seeds`` deterministic instances.

    Every ``churn_every``-th seed additionally replays a churn stream
    through the flow-level simulator, cross-checks each sampled state
    (``churn_every=0`` disables churn), drives a stateful
    arrival/departure sequence through the streaming incremental solver
    under full validation (:func:`stream_churn_check`), solves the
    seed's whole instance group as one block-diagonal batch, checking
    each scenario against its per-instance reference solve
    (:func:`batched_cross_check`), and replays a churn workload through
    both simulator engines (:func:`sim_engine_check`).  All defects are
    quarantined into ``directory`` (default: the ambient quarantine
    directory).
    """
    if seeds < 0:
        raise ValueError(f"seeds must be >= 0, got {seeds}")
    failures: List[Dict[str, Any]] = []
    instances = 0
    checks = 0
    for seed in range(seeds):
        batch: List[ChaosInstance] = [random_instance(seed)]
        if churn_every and seed % churn_every == 0:
            batch.extend(churn_snapshots(seed))
        for instance in batch:
            instances += 1
            checks += 1
            failures.extend(
                cross_check(instance, backends=backends, directory=directory)
            )
        if churn_every and seed % churn_every == 0:
            batched_wanted = backends is None or "batched" in backends
            if batched_wanted:
                checks += 1
                failures.extend(
                    batched_cross_check(batch, directory=directory)
                )
            streaming_wanted = backends is None or "streaming" in backends
            if streaming_wanted:
                try:
                    stream_failures = stream_churn_check(
                        seed, directory=directory
                    )
                except BackendUnavailableError:
                    stream_failures = []
                instances += 1
                checks += 1
                failures.extend(stream_failures)
            try:
                engine_failures = sim_engine_check(seed, directory=directory)
            except BackendUnavailableError:
                engine_failures = []
            instances += 1
            checks += 1
            failures.extend(engine_failures)
    return FuzzReport(
        seeds=seeds, instances=instances, checks=checks, failures=failures
    )
