"""Heap-accelerated water-filling for large float-mode simulations.

The reference implementation (:mod:`repro.core.maxmin`) rescans every
link each round to find the next saturation level — ``O(L · levels)``.
For the large stochastic studies (thousands of flows, float rates) this
module provides an ``O((F·P + L) log L)`` variant using a lazy-deletion
min-heap of per-link saturation levels (``P`` = path length, 4 in a
Clos network).

Lazy deletion is sound here because freezing flows can only *raise* a
link's saturation level: removing a flow frozen at level ``ℓ`` from a
link with candidate ``c ≥ ℓ`` leaves ``(residual − ℓ)/(count − 1) ≥ c``.
A popped stale entry is therefore always ≤ the link's true level and
can be re-pushed without missing the global minimum.

The test suite asserts agreement with the reference implementation to
1e-12 across random instances; the exact-Fraction path intentionally
stays on the reference implementation (clarity over speed where the
theorems are checked).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Mapping, Set

from repro.core.allocation import Allocation, Rate
from repro.core.flows import Flow
from repro.core.maxmin import UnboundedRateError, validate_capacities
from repro.core.routing import Link, Routing
from repro.obs import counter, trace_span

_INF = float("inf")

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_SOLVES = counter("fastmaxmin.solves")
_POPS = counter("fastmaxmin.heap_pops")
_STALE = counter("fastmaxmin.stale_entries")
_FREEZES = counter("fastmaxmin.flows_frozen")


def max_min_fair_fast(
    routing: Routing, capacities: Mapping[Link, Rate]
) -> Allocation:
    """Float water-filling with a lazy-deletion saturation heap.

    Semantics identical to
    :func:`repro.core.maxmin.max_min_fair` with ``exact=False``.
    """
    flows = routing.flows()
    if not flows:
        return Allocation({})

    link_flows: Dict[Link, List[Flow]] = routing.flows_per_link()
    validate_capacities(link_flows, capacities)
    residual: Dict[Link, float] = {}
    count: Dict[Link, int] = {}
    for link, members in link_flows.items():
        capacity = float(capacities[link])
        if capacity != _INF:
            residual[link] = capacity
            count[link] = len(members)

    constrained: Set[Flow] = set()
    for link in residual:
        constrained.update(link_flows[link])
    unbounded = [flow for flow in flows if flow not in constrained]
    if unbounded:
        raise UnboundedRateError(
            f"flows with no finite-capacity link on their path: {unbounded!r}"
        )

    # (level, tiebreak, link): links are heterogeneous tuples that do not
    # compare with each other, so a monotone counter breaks level ties.
    tiebreak = itertools.count()
    heap: List = [
        (residual[link] / count[link], next(tiebreak), link)
        for link in residual
        if count[link]
    ]
    heapq.heapify(heap)

    rates: Dict[Flow, float] = {}
    frozen: Set[Flow] = set()
    _SOLVES.inc()
    with trace_span("maxmin.water_fill_fast", flows=len(flows)):
        while len(frozen) < len(flows):
            level, _, link = heapq.heappop(heap)
            _POPS.inc()
            if count.get(link, 0) == 0:
                _STALE.inc()
                continue  # fully frozen link; stale entry
            current = residual[link] / count[link]
            if current > level + 1e-15:
                _STALE.inc()
                heapq.heappush(heap, (current, next(tiebreak), link))
                continue
            level = max(0.0, current)
            # freeze every unfrozen flow on this link at `level`
            for flow in link_flows[link]:
                if flow in frozen:
                    continue
                rates[flow] = level
                frozen.add(flow)
                _FREEZES.inc()
                for other in routing.links_of(flow):
                    if other in residual:
                        residual[other] -= level
                        count[other] -= 1
                        if count[other] > 0:
                            heapq.heappush(
                                heap,
                                (
                                    max(0.0, residual[other]) / count[other],
                                    next(tiebreak),
                                    other,
                                ),
                            )

    return Allocation(rates)
