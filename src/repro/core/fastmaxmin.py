"""Heap-accelerated water-filling for large float-mode simulations.

The reference implementation (:mod:`repro.core.maxmin`) historically
rescanned every link each round to find the next saturation level —
``O(L · levels)``.  For the large stochastic studies (thousands of
flows, float rates) this module provides an ``O((F·P + L) log L)``
variant using a lazy-deletion min-heap of per-link saturation levels
(``P`` = path length, 4 in a Clos network).

Lazy deletion is sound here because freezing flows can only *raise* a
link's saturation level: removing a flow frozen at level ``ℓ`` from a
link with candidate ``c ≥ ℓ`` leaves ``(residual − ℓ)/(count − 1) ≥ c``.
A popped stale entry is therefore always ≤ the link's true level and
can be re-pushed without missing the global minimum.

The loop itself is the shared kernel in
:func:`repro.core.heapfill.lazy_heap_fill`; this front end performs
validation and setup, tolerates float noise in staleness checks
(``stale_tol=1e-15``), and binds the ``fastmaxmin.*`` observability
counters.  The test suite asserts agreement with the reference
implementation to 1e-12 across random instances; the exact-Fraction
path intentionally stays on the reference implementation (clarity over
speed where the theorems are checked).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Set

from repro.errors import UnboundedRateError
from repro.core.allocation import Allocation, Rate
from repro.core.flows import Flow
from repro.core.heapfill import lazy_heap_fill
from repro.core.maxmin import validate_capacities
from repro.core.routing import Link, Routing
from repro.obs import counter, trace_span

_INF = float("inf")

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_SOLVES = counter("fastmaxmin.solves")
_POPS = counter("fastmaxmin.heap_pops")
_STALE = counter("fastmaxmin.stale_entries")
_FREEZES = counter("fastmaxmin.flows_frozen")


def max_min_fair_fast(
    routing: Routing, capacities: Mapping[Link, Rate]
) -> Allocation:
    """Float water-filling with a lazy-deletion saturation heap.

    Semantics identical to
    :func:`repro.core.maxmin.max_min_fair` with ``exact=False``.
    """
    flows = routing.flows()
    if not flows:
        return Allocation({})

    link_flows: Dict[Link, List[Flow]] = routing.flows_per_link()
    validate_capacities(link_flows, capacities)
    residual: Dict[Link, float] = {}
    unfrozen_count: Dict[Link, int] = {}
    for link, members in link_flows.items():
        capacity = float(capacities[link])
        if capacity != _INF:
            residual[link] = capacity
            unfrozen_count[link] = len(members)

    constrained: Set[Flow] = set()
    for link in residual:
        constrained.update(link_flows[link])
    unbounded = [flow for flow in flows if flow not in constrained]
    if unbounded:
        raise UnboundedRateError(
            f"flows with no finite-capacity link on their path: {unbounded!r}"
        )

    flow_links: Dict[Flow, List[Link]] = {
        flow: routing.links_of(flow) for flow in flows
    }
    rates: Dict[Flow, float] = {}
    _SOLVES.inc()
    with trace_span("maxmin.water_fill_fast", flows=len(flows)):
        lazy_heap_fill(
            flows,
            link_flows,
            flow_links,
            rates,
            residual,
            unfrozen_count,
            zero=0.0,
            stale_tol=1e-15,
            pops=_POPS,
            stale=_STALE,
            freezes=_FREEZES,
        )

    from repro.validate import validate_structure

    validate_structure(
        link_flows, flow_links, rates, capacities, context="maxmin.heap"
    )
    return Allocation(rates)
