"""Incremental evaluation of single-flow middle-switch moves.

The search layers explore routings one single-flow reassignment at a
time.  Re-solving ``max_min_fair`` from scratch for every candidate move
rebuilds the whole link-occupancy map (``flows_per_link``), re-validates
and re-coerces every capacity, and constructs a fresh :class:`Routing`
object — all to evaluate a perturbation that touches exactly four
link-membership entries of a Clos network (``I_i → M_old``,
``M_old → O_j``, ``I_i → M_new``, ``M_new → O_j``; the server links are
unchanged by construction).

:class:`MoveEvaluator` keeps the link-occupancy structure of a routing
*mutable* and evaluates a move by patching those four entries, running
the shared water-filling loop (:func:`repro.core.maxmin._fill`) on fresh
residual/count dicts, and reverting the patch.  The rates produced are
the max-min fair allocation of the *moved* routing — the allocation is
unique per routing, so in exact mode the result is ``Fraction``-identical
to a full :func:`~repro.core.maxmin.max_min_fair` solve (property-tested
in ``tests/test_cache_incremental.py``).

An optional :class:`~repro.core.cache.AllocationCache` short-circuits
moves whose resulting routing was already solved anywhere (by this
evaluator, a previous full solve, or another evaluator sharing the
cache); candidate fingerprints are derived in O(|F|) by single-entry
replacement in the cached base fingerprint, without building the moved
routing.

:func:`delta_max_min_fair` is the one-shot functional wrapper around the
evaluator for callers that evaluate a single move.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, NamedTuple, Optional, Tuple

from repro.errors import UnknownFlowError
from repro.core.allocation import Allocation, Rate
from repro.core.cache import AllocationCache
from repro.core.flows import Flow
from repro.core.maxmin import _fill, validate_capacities
from repro.core.nodes import InputSwitch, MiddleSwitch, OutputSwitch
from repro.core.routing import Link, Routing
from repro.core.topology import ClosNetwork, Path
from repro.obs import counter

_INF = float("inf")

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_EVALS = counter("incremental.evals")
_APPLIES = counter("incremental.applies")

__all__ = ["Move", "MoveEvaluator", "delta_max_min_fair"]


class Move(NamedTuple):
    """A single-flow reassignment: route ``flow`` through ``M_middle``."""

    flow: Flow
    middle: int


class MoveEvaluator:
    """Evaluates single-flow middle-switch moves without full re-solves.

    The evaluator snapshots ``routing``'s link occupancy once, then:

    - :meth:`evaluate` returns the max-min fair allocation of the
      routing with one flow moved (the base routing is untouched);
    - :meth:`apply` commits a move, making it the new base;
    - :meth:`base_allocation` solves the current base.

    All allocations go through ``cache`` when one is given, so repeated
    visits to the same routing (by any consumer of the cache) are free.

    >>> from repro.core.flows import FlowCollection, Flow
    >>> clos = ClosNetwork(2)
    >>> flows = FlowCollection([Flow(clos.source(1, 1), clos.destination(3, 1)),
    ...                         Flow(clos.source(1, 2), clos.destination(3, 1))])
    >>> routing = Routing.from_middles(clos, flows, {f: 1 for f in flows})
    >>> ev = MoveEvaluator(clos, routing)
    >>> ev.evaluate(flows[1], 2).sorted_vector()
    [Fraction(1, 2), Fraction(1, 2)]
    >>> ev.base_allocation().sorted_vector()  # base unchanged
    [Fraction(1, 2), Fraction(1, 2)]
    """

    def __init__(
        self,
        network: ClosNetwork,
        routing: Routing,
        capacities: Optional[Mapping[Link, Rate]] = None,
        exact: bool = True,
        cache: Optional[AllocationCache] = None,
    ) -> None:
        self.network = network
        self.exact = exact
        self.cache = cache
        #: The *identity-significant* capacities mapping: cache keys use
        #: ``id(self.capacities)``, matching what full solves are keyed on.
        self.capacities: Mapping[Link, Rate] = (
            network.graph.capacities() if capacities is None else capacities
        )

        self._paths: Dict[Flow, Path] = {
            flow: routing.path(flow) for flow in routing.flows()
        }
        self._middles: Dict[Flow, int] = routing.middles(network)
        self._flows: List[Flow] = list(self._paths)

        # Mutable link occupancy; evaluate() patches and reverts it.
        self._link_flows: Dict[Link, List[Flow]] = routing.flows_per_link()
        self._flow_links: Dict[Flow, List[Link]] = {
            flow: list(zip(path, path[1:]))
            for flow, path in self._paths.items()
        }
        validate_capacities(self._link_flows, self.capacities)

        # Coerced capacity per link, grown lazily as moves touch new
        # links.  Infinite capacities map to None (unconstraining).
        self._coerced: Dict[Link, Optional[Rate]] = {}
        self._zero: Rate = Fraction(0) if exact else 0.0

        # Base residual/count structures for `_fill`, maintained across
        # patches so each evaluation starts from a C-speed dict copy
        # instead of a Python rebuild loop.  Entries whose count drops
        # to 0 are kept (harmless: the heap skips them).
        self._residual0: Dict[Link, Rate] = {}
        self._count0: Dict[Link, int] = {}
        for link, members in self._link_flows.items():
            if not members:
                continue
            capacity = self._capacity(link)
            if capacity is None:
                continue
            self._residual0[link] = capacity
            self._count0[link] = len(members)

        # Canonical fingerprint of the base routing + each flow's slot,
        # so candidate fingerprints are single-entry tuple splices.
        self._fingerprint: Tuple[Tuple[Flow, Path], ...] = routing.fingerprint()
        self._fp_index: Dict[Flow, int] = {
            flow: index for index, (flow, _) in enumerate(self._fingerprint)
        }

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def middles(self) -> Dict[Flow, int]:
        """The current flow → middle-switch map (do not mutate)."""
        return self._middles

    def fingerprint(self) -> Tuple[Tuple[Flow, Path], ...]:
        """The canonical fingerprint of the current base routing."""
        return self._fingerprint

    def candidate_fingerprint(
        self, flow: Flow, m: int
    ) -> Tuple[Tuple[Flow, Path], ...]:
        """The fingerprint of the base routing with ``flow`` moved to
        ``M_m``, without building the moved routing.

        The fingerprint is sorted by flow (keys are unique), so replacing
        the path in ``flow``'s slot preserves canonical order.
        """
        if flow not in self._fp_index:
            raise UnknownFlowError(flow)
        path = self.network.path_via(flow.source, flow.dest, m)
        index = self._fp_index[flow]
        base = self._fingerprint
        return base[:index] + ((flow, path),) + base[index + 1 :]

    def routing(self) -> Routing:
        """A :class:`Routing` snapshot of the current base."""
        return Routing(self._paths)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _capacity(self, link: Link) -> Optional[Rate]:
        """Coerced finite capacity of ``link``, or ``None`` if infinite."""
        try:
            return self._coerced[link]
        except KeyError:
            raw = self.capacities[link]
            if raw == _INF:
                coerced: Optional[Rate] = None
            else:
                coerced = Fraction(raw) if self.exact else float(raw)
            self._coerced[link] = coerced
            return coerced

    def _solve_current(self) -> Allocation:
        """Water-fill the current (possibly patched) link occupancy."""
        residual: Dict[Link, Rate] = dict(self._residual0)
        unfrozen_count: Dict[Link, int] = dict(self._count0)
        rates: Dict[Flow, Rate] = {f: self._zero for f in self._flows}
        _fill(
            self._flows,
            self._link_flows,
            self._flow_links,
            rates,
            residual,
            unfrozen_count,
            self._zero,
        )
        from repro.validate import validate_structure, validation_level

        # Certify only at `full`: move evaluation is the search layers'
        # hot loop, and the patched occupancy never materializes a
        # Routing, so the structure-level certifier runs in place.
        if validation_level() == "full":
            validate_structure(
                self._link_flows,
                self._flow_links,
                rates,
                self.capacities,
                level="full",
                context="incremental.move",
            )
        return Allocation(rates)

    def _patch(self, flow: Flow, old_m: int, new_m: int) -> None:
        """Move ``flow``'s interior links from ``M_old_m`` to ``M_new_m``."""
        inp = InputSwitch(flow.source.switch)
        out = OutputSwitch(flow.dest.switch)
        old_mid, new_mid = MiddleSwitch(old_m), MiddleSwitch(new_m)
        for link in ((inp, old_mid), (old_mid, out)):
            self._link_flows[link].remove(flow)
            if link in self._count0:
                self._count0[link] -= 1
        for link in ((inp, new_mid), (new_mid, out)):
            self._link_flows.setdefault(link, []).append(flow)
            capacity = self._capacity(link)
            if capacity is not None:
                self._residual0[link] = capacity
                self._count0[link] = self._count0.get(link, 0) + 1
        path = self.network.path_via(flow.source, flow.dest, new_m)
        self._paths[flow] = path
        self._flow_links[flow] = list(zip(path, path[1:]))
        self._middles[flow] = new_m

    def base_allocation(self) -> Allocation:
        """The max-min fair allocation of the current base routing."""
        if self.cache is not None:
            found = self.cache.get(self._fingerprint, self.capacities, self.exact)
            if found is not None:
                return found
        allocation = self._solve_current()
        if self.cache is not None:
            self.cache.put(
                self._fingerprint, self.capacities, self.exact, allocation
            )
        return allocation

    def evaluate(self, flow: Flow, m: int) -> Allocation:
        """The allocation of the base routing with ``flow`` moved to ``M_m``.

        The base routing is left untouched.  Exact-mode results are
        ``Fraction``-identical to ``max_min_fair`` on the moved routing.
        """
        if flow not in self._middles:
            raise UnknownFlowError(flow)
        _EVALS.inc()
        here = self._middles[flow]
        if m == here:
            return self.base_allocation()

        fingerprint = None
        if self.cache is not None:
            fingerprint = self.candidate_fingerprint(flow, m)
            found = self.cache.get(fingerprint, self.capacities, self.exact)
            if found is not None:
                return found

        self._patch(flow, here, m)
        try:
            allocation = self._solve_current()
        finally:
            self._patch(flow, m, here)

        if self.cache is not None:
            self.cache.put(fingerprint, self.capacities, self.exact, allocation)
        return allocation

    def apply(self, flow: Flow, m: int) -> None:
        """Commit a move: the base routing now sends ``flow`` via ``M_m``."""
        if flow not in self._middles:
            raise UnknownFlowError(flow)
        here = self._middles[flow]
        if m == here:
            return
        _APPLIES.inc()
        self._patch(flow, here, m)
        index = self._fp_index[flow]
        self._fingerprint = (
            self._fingerprint[:index]
            + ((flow, self._paths[flow]),)
            + self._fingerprint[index + 1 :]
        )


def delta_max_min_fair(
    network: ClosNetwork,
    routing: Routing,
    move: Move,
    capacities: Optional[Mapping[Link, Rate]] = None,
    exact: bool = True,
    cache: Optional[AllocationCache] = None,
) -> Allocation:
    """The max-min fair allocation of ``routing`` with ``move`` applied.

    One-shot wrapper over :class:`MoveEvaluator` — for evaluating many
    moves against the same base, build the evaluator once instead.
    """
    evaluator = MoveEvaluator(
        network, routing, capacities=capacities, exact=exact, cache=cache
    )
    return evaluator.evaluate(move.flow, move.middle)
