"""Clos networks ``C_n`` and macro-switch abstractions ``MS_n`` (§2.1).

The Clos network of size ``n`` interconnects ``2n²`` sources to ``2n²``
destinations through three switch stages:

- ``2n`` input ToR switches ``I_i`` and ``2n`` output ToR switches
  ``O_i``, each attached to ``n`` servers,
- ``n`` middle switches ``M_m``, with one unit-capacity link ``I_i M_m``
  and one unit-capacity link ``M_m O_i`` for every ``i, m``.

There are exactly ``n`` source–destination paths between every pair, one
per middle switch, so a routing of a flow is fully determined by its
middle-switch choice.

The macro-switch ``MS_n`` replaces the middle stage by a complete
bipartite graph of *infinite*-capacity links between input and output
switches, so each source–destination pair has a unique path and flows can
only be bottlenecked on the unit-capacity server links.  It is the
idealized "one big switch" against which the paper measures the Clos
network.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import CapacityValidationError, InfeasibleRoutingError
from repro.core.nodes import (
    ClosNode,
    Destination,
    InputSwitch,
    MiddleSwitch,
    OutputSwitch,
    Source,
)
from repro.graph.digraph import INFINITE_CAPACITY, DiGraph

#: A routing path, as a tuple of nodes from source to destination.
Path = Tuple[ClosNode, ...]


def _check_size(n: int) -> None:
    if not isinstance(n, int) or n < 1:
        raise ValueError(f"Clos size must be a positive integer, got {n!r}")


class ClosNetwork:
    """The Clos network ``C_n`` of §2.1, with unit link capacities.

    ``middle_count`` generalizes the construction for the multirate-
    rearrangeability setting (§6 related work): same ToR switches and
    servers, but ``m`` middle switches instead of ``n``.  The paper's
    ``C_n`` is the default ``middle_count = n``.

    ``interior_capacity`` and ``server_capacity`` generalize the unit
    capacities: setting ``interior_capacity < 1`` models an
    *oversubscribed* fabric (the paper's full-bisection premise
    deliberately broken — several of its positive lemmas then fail; see
    experiment E15).

    >>> clos = ClosNetwork(2)
    >>> clos.n
    2
    >>> len(clos.middle_switches)
    2
    >>> len(clos.sources)
    8
    >>> ClosNetwork(2, middle_count=3).num_middles
    3
    """

    def __init__(
        self,
        n: int,
        middle_count: Optional[int] = None,
        interior_capacity: object = 1,
        server_capacity: object = 1,
    ) -> None:
        _check_size(n)
        if middle_count is None:
            middle_count = n
        if not isinstance(middle_count, int) or middle_count < 1:
            raise ValueError(
                f"middle_count must be a positive integer, got {middle_count!r}"
            )
        if interior_capacity <= 0 or server_capacity <= 0:
            raise CapacityValidationError("link capacities must be positive")
        self.n = n
        self.num_middles = middle_count
        self.interior_capacity = interior_capacity
        self.server_capacity = server_capacity
        self.graph = DiGraph()
        self.input_switches: List[InputSwitch] = [
            InputSwitch(i) for i in range(1, 2 * n + 1)
        ]
        self.output_switches: List[OutputSwitch] = [
            OutputSwitch(i) for i in range(1, 2 * n + 1)
        ]
        self.middle_switches: List[MiddleSwitch] = [
            MiddleSwitch(m) for m in range(1, middle_count + 1)
        ]
        self.sources: List[Source] = [
            Source(i, j) for i in range(1, 2 * n + 1) for j in range(1, n + 1)
        ]
        self.destinations: List[Destination] = [
            Destination(i, j) for i in range(1, 2 * n + 1) for j in range(1, n + 1)
        ]
        self._build_links()

    def _build_links(self) -> None:
        for src in self.sources:
            self.graph.add_link(
                src, InputSwitch(src.switch), capacity=self.server_capacity
            )
        for dst in self.destinations:
            self.graph.add_link(
                OutputSwitch(dst.switch), dst, capacity=self.server_capacity
            )
        for inp in self.input_switches:
            for mid in self.middle_switches:
                self.graph.add_link(inp, mid, capacity=self.interior_capacity)
        for mid in self.middle_switches:
            for out in self.output_switches:
                self.graph.add_link(mid, out, capacity=self.interior_capacity)

    def oversubscription(self) -> object:
        """The per-ToR oversubscription ratio: server capacity entering a
        ToR divided by interior capacity leaving it (1 = full bisection,
        the paper's premise; > 1 = under-provisioned interior)."""
        uplink = self.num_middles * self.interior_capacity
        downlink = self.n * self.server_capacity
        return downlink / uplink

    # ------------------------------------------------------------------
    # Node helpers (1-based, mirroring the paper's notation)
    # ------------------------------------------------------------------
    def source(self, i: int, j: int) -> Source:
        """``s_i^j``: the ``j``-th source of input switch ``I_i``."""
        self._check_server_indices(i, j)
        return Source(i, j)

    def destination(self, i: int, j: int) -> Destination:
        """``t_i^j``: the ``j``-th destination of output switch ``O_i``."""
        self._check_server_indices(i, j)
        return Destination(i, j)

    def middle(self, m: int) -> MiddleSwitch:
        """``M_m``."""
        if not 1 <= m <= self.num_middles:
            raise InfeasibleRoutingError(
                f"middle switch index {m} out of range [1, {self.num_middles}]"
            )
        return MiddleSwitch(m)

    def _check_server_indices(self, i: int, j: int) -> None:
        if not 1 <= i <= 2 * self.n:
            raise InfeasibleRoutingError(
                f"ToR index {i} out of range [1, {2 * self.n}]"
            )
        if not 1 <= j <= self.n:
            raise InfeasibleRoutingError(
                f"server index {j} out of range [1, {self.n}]"
            )

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_via(self, source: Source, dest: Destination, m: int) -> Path:
        """The unique ``source → dest`` path through middle switch ``M_m``.

        Endpoints outside this network raise
        :class:`~repro.errors.InfeasibleRoutingError` rather than
        producing a path over nonexistent links.
        """
        self._check_server_indices(source.switch, source.server)
        self._check_server_indices(dest.switch, dest.server)
        return (
            source,
            InputSwitch(source.switch),
            self.middle(m),
            OutputSwitch(dest.switch),
            dest,
        )

    def paths(self, source: Source, dest: Destination) -> List[Path]:
        """All paths between ``source`` and ``dest``, one per middle switch."""
        return [
            self.path_via(source, dest, m)
            for m in range(1, self.num_middles + 1)
        ]

    def middle_of_path(self, path: Sequence[ClosNode]) -> MiddleSwitch:
        """The middle switch a path traverses (validates the path shape)."""
        if len(path) != 5 or not isinstance(path[2], MiddleSwitch):
            raise InfeasibleRoutingError(
                f"not a Clos source-destination path: {path!r}"
            )
        return path[2]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClosNetwork(n={self.n})"


class MacroSwitch:
    """The macro-switch abstraction ``MS_n`` of §2.1.

    Links between ToR switches have infinite capacity, so feasibility is
    governed only by the unit-capacity server links — the network interior
    "disappears", emulating a single big switch.

    >>> ms = MacroSwitch(2)
    >>> path = ms.path(ms.source(1, 1), ms.destination(2, 2))
    >>> len(path)
    4
    """

    def __init__(self, n: int) -> None:
        _check_size(n)
        self.n = n
        self.graph = DiGraph()
        self.input_switches: List[InputSwitch] = [
            InputSwitch(i) for i in range(1, 2 * n + 1)
        ]
        self.output_switches: List[OutputSwitch] = [
            OutputSwitch(i) for i in range(1, 2 * n + 1)
        ]
        self.sources: List[Source] = [
            Source(i, j) for i in range(1, 2 * n + 1) for j in range(1, n + 1)
        ]
        self.destinations: List[Destination] = [
            Destination(i, j) for i in range(1, 2 * n + 1) for j in range(1, n + 1)
        ]
        self._build_links()

    def _build_links(self) -> None:
        for src in self.sources:
            self.graph.add_link(src, InputSwitch(src.switch), capacity=1)
        for dst in self.destinations:
            self.graph.add_link(OutputSwitch(dst.switch), dst, capacity=1)
        for inp in self.input_switches:
            for out in self.output_switches:
                self.graph.add_link(inp, out, capacity=INFINITE_CAPACITY)

    def source(self, i: int, j: int) -> Source:
        """``s_i^j`` (same indexing as the Clos network)."""
        self._check_server_indices(i, j)
        return Source(i, j)

    def destination(self, i: int, j: int) -> Destination:
        """``t_i^j`` (same indexing as the Clos network)."""
        self._check_server_indices(i, j)
        return Destination(i, j)

    def _check_server_indices(self, i: int, j: int) -> None:
        if not 1 <= i <= 2 * self.n:
            raise InfeasibleRoutingError(
                f"ToR index {i} out of range [1, {2 * self.n}]"
            )
        if not 1 <= j <= self.n:
            raise InfeasibleRoutingError(
                f"server index {j} out of range [1, {self.n}]"
            )

    def path(self, source: Source, dest: Destination) -> Path:
        """The unique ``source → dest`` path in the macro-switch."""
        self._check_server_indices(source.switch, source.server)
        self._check_server_indices(dest.switch, dest.server)
        return (
            source,
            InputSwitch(source.switch),
            OutputSwitch(dest.switch),
            dest,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MacroSwitch(n={self.n})"
