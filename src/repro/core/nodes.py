"""Typed node identifiers for Clos networks and macro-switches.

The paper (§2.1) names the nodes of the Clos network of size ``n``:

- input ToR switches ``I_i`` and output ToR switches ``O_i``, ``i ∈ [2n]``,
- middle switches ``M_m``, ``m ∈ [n]``,
- source servers ``s_i^j`` and destination servers ``t_i^j``,
  ``i ∈ [2n]``, ``j ∈ [n]``.

We follow the paper's 1-based indexing throughout.  Each node type is a
``NamedTuple`` whose *last* field is a fixed kind discriminator, so that
e.g. ``Source(1, 1) != Destination(1, 1)`` even though both are tuples of
the same integers.  All node types are hashable and cheap, which matters
because they key every dictionary in the hot loops of the water-filling
algorithm.
"""

from __future__ import annotations

from typing import NamedTuple, Union


class InputSwitch(NamedTuple):
    """Input ToR switch ``I_i``."""

    index: int
    kind: str = "I"

    def __repr__(self) -> str:
        return f"I{self.index}"


class OutputSwitch(NamedTuple):
    """Output ToR switch ``O_i``."""

    index: int
    kind: str = "O"

    def __repr__(self) -> str:
        return f"O{self.index}"


class MiddleSwitch(NamedTuple):
    """Middle switch ``M_m``."""

    index: int
    kind: str = "M"

    def __repr__(self) -> str:
        return f"M{self.index}"


class Source(NamedTuple):
    """Source server ``s_i^j``: the ``j``-th server of input switch ``I_i``."""

    switch: int
    server: int
    kind: str = "s"

    def __repr__(self) -> str:
        return f"s{self.switch}^{self.server}"


class Destination(NamedTuple):
    """Destination server ``t_i^j``: the ``j``-th server of output switch ``O_i``."""

    switch: int
    server: int
    kind: str = "t"

    def __repr__(self) -> str:
        return f"t{self.switch}^{self.server}"


#: Any node of a Clos network or macro-switch.
ClosNode = Union[InputSwitch, OutputSwitch, MiddleSwitch, Source, Destination]
