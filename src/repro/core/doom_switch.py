"""The Doom-Switch algorithm (Algorithm 1, §5).

Doom-Switch approximates a throughput-max-min fair allocation:

1. Compute a maximum matching ``F' ⊆ F`` of the macro-switch demand
   multigraph ``G^MS``.
2. ``n``-color the Clos demand multigraph ``G^C`` restricted to ``F'``
   (König), and route the flows of color ``m`` through middle switch
   ``M_m`` — a link-disjoint routing of the matching.
3. Route every remaining flow ``F \\ F'`` through the middle switch whose
   color class is smallest — the "doom switch" onto which the sacrificed
   flows are crowded.

Under the max-min fair allocation of the resulting routing, the doomed
flows starve on the doom switch's links while the matched flows rise
toward link capacity, pushing the throughput toward ``2·T^MmF``
(Theorem 5.4) — at the cost of the doomed flows' rates.

``dump_policy`` exposes the line-3 choice for ablation: ``"least"`` is
the paper's rule; ``"most"`` and ``"round_robin"`` are deliberately
worse/naive alternatives benchmarked in the ablation suite.
"""

from __future__ import annotations

from typing import Dict, NamedTuple

from repro.coloring.konig import edge_coloring
from repro.core.allocation import Allocation
from repro.core.flows import Flow, FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork
from repro.matching.hopcroft_karp import maximum_matching


class DoomSwitchResult(NamedTuple):
    """Everything Algorithm 1 produces, for inspection and analysis."""

    routing: Routing
    allocation: Allocation
    #: Flows of the maximum matching F' (routed link-disjointly, rate → high).
    matched: FlowCollection
    #: Flows dumped on the doom switch (rates sacrificed).
    doomed: FlowCollection
    #: 1-based index of the doom middle switch m'.
    doom_switch: int


def doom_switch_routing(
    network: ClosNetwork,
    flows: FlowCollection,
    dump_policy: str = "least",
) -> Routing:
    """The routing produced by Algorithm 1 (without the allocation)."""
    return _run(network, flows, dump_policy).routing


def doom_switch(
    network: ClosNetwork,
    flows: FlowCollection,
    exact: bool = True,
    dump_policy: str = "least",
    backend: str = None,
) -> DoomSwitchResult:
    """Run Algorithm 1 and compute the max-min fair allocation it induces.

    ``backend`` optionally selects a solver from
    :data:`repro.core.solve.BACKENDS` (``"quotient"`` makes the exact
    allocation tractable for the n ≥ 64 Theorem 5.4 constructions);
    when given, it overrides ``exact``.

    >>> from repro.workloads.adversarial import theorem_5_4  # doctest: +SKIP
    """
    result = _run(network, flows, dump_policy)
    if backend is not None:
        from repro.core.solve import solve_max_min

        allocation = solve_max_min(
            result.routing, network.graph.capacities(), backend=backend
        )
    else:
        allocation = max_min_fair(
            result.routing, network.graph.capacities(), exact=exact
        )
    return DoomSwitchResult(
        result.routing, allocation, result.matched, result.doomed, result.doom_switch
    )


def _run(
    network: ClosNetwork, flows: FlowCollection, dump_policy: str
) -> DoomSwitchResult:
    n = network.num_middles

    # Line 1: maximum matching F' in G^MS.
    matched_map = maximum_matching(flows.demand_graph_ms())
    matched = FlowCollection(f for f in flows if f in matched_map)

    # Line 2: n-coloring of G^C restricted to F'; color m-1 → middle M_m.
    colors = edge_coloring(matched.demand_graph_clos(), num_colors=n)
    middles: Dict[Flow, int] = {f: c + 1 for f, c in colors.items()}

    # Line 3: pick the doom switch m' and dump F \ F' on it.
    class_sizes = {m: 0 for m in range(1, n + 1)}
    for m in middles.values():
        class_sizes[m] += 1
    if dump_policy == "least":
        doom = min(class_sizes, key=lambda m: (class_sizes[m], m))
    elif dump_policy == "most":
        doom = max(class_sizes, key=lambda m: (class_sizes[m], -m))
    elif dump_policy == "round_robin":
        doom = 0  # per-flow assignment below
    else:
        raise ValueError(f"unknown dump_policy: {dump_policy!r}")

    doomed_flows = [f for f in flows if f not in matched_map]
    if dump_policy == "round_robin":
        for index, flow in enumerate(doomed_flows):
            middles[flow] = (index % n) + 1
        doom_report = 0
    else:
        for flow in doomed_flows:
            middles[flow] = doom
        doom_report = doom

    routing = Routing.from_middles(network, flows, middles)
    return DoomSwitchResult(
        routing,
        Allocation({}),  # filled in by doom_switch()
        matched,
        FlowCollection(doomed_flows),
        doom_report,
    )
