"""Relative-max-min fairness (§7, the R2 discussion's open question).

Theorem 4.3 shows lex-max-min fairness can starve a flow to a ``1/n``
fraction of its macro-switch rate.  The conclusions propose an
alternative routing objective — **relative-max-min fairness** — "which
aims at ensuring that the network rate of each flow is at least some
constant fraction of its macro-switch rate", and poses as an open
question whether it can closely implement the macro-switch abstraction.

This module makes the objective precise and computable:

Given a collection of flows with macro-switch max-min rates ``m(f)``,
the *ratio vector* of a routing's max-min allocation ``a`` is the vector
of ``a(f) / m(f)`` sorted ascending.  A **relative-max-min fair
allocation** maximizes the ratio vector in lexicographic order over all
routings (its first component — the floor — is the guaranteed constant
fraction; maximizing lexicographically refines ties the same way
max-min refines min-rate).

Solvers mirror :mod:`repro.core.objectives`: an exact exponential
enumeration for small instances, and single-flow-move local search for
larger ones.  The experiment in
:mod:`repro.experiments.relative_fairness` uses both to probe the open
question on the paper's own adversarial instances.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, NamedTuple, Optional, Tuple

from repro.core.allocation import Allocation, Rate, lex_compare
from repro.core.flows import FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.objectives import macro_switch_max_min
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.search.enumeration import enumerate_routings


class RelativeAllocation(NamedTuple):
    """A routing, its max-min allocation, and the relative-fairness data."""

    routing: Routing
    allocation: Allocation
    #: a(f)/m(f) sorted ascending; component 0 is the floor.
    ratio_vector: List[Rate]
    #: The guaranteed fraction: min over flows of a(f)/m(f).
    floor: Rate
    #: Number of routings examined.
    examined: int


def ratio_vector(
    allocation: Allocation, macro_allocation: Allocation
) -> List[Rate]:
    """The sorted vector of per-flow network/macro rate ratios.

    Flows with zero macro rate are skipped (they cannot be "starved
    relative to the macro-switch"; the macro max-min allocation assigns
    zero only in degenerate inputs).
    """
    ratios = [
        allocation.rate(flow) / macro_allocation.rate(flow)
        for flow in macro_allocation.flows()
        if macro_allocation.rate(flow) != 0
    ]
    if not ratios:
        raise ValueError("no flows with positive macro-switch rate")
    return sorted(ratios)


def relative_max_min_fair(
    network: ClosNetwork,
    flows: FlowCollection,
    macro_allocation: Optional[Allocation] = None,
    exact: bool = True,
    use_symmetry: bool = True,
) -> RelativeAllocation:
    """Exact relative-max-min fair allocation by exhaustive enumeration.

    Exponential in ``|F|`` — small instances only; see
    :func:`improve_routing_relative` for the heuristic.
    """
    if not len(flows):
        raise ValueError("cannot optimize over an empty flow collection")
    if macro_allocation is None:
        macro_allocation = macro_switch_max_min(
            MacroSwitch(network.n), flows, exact=exact
        )
    capacities = network.graph.capacities()
    best: Optional[Tuple[Routing, Allocation, List[Rate]]] = None
    examined = 0
    for routing in enumerate_routings(network, flows, use_symmetry=use_symmetry):
        examined += 1
        allocation = max_min_fair(routing, capacities, exact=exact)
        ratios = ratio_vector(allocation, macro_allocation)
        if best is None or lex_compare(ratios, best[2]) > 0:
            best = (routing, allocation, ratios)
    routing, allocation, ratios = best
    return RelativeAllocation(
        routing=routing,
        allocation=allocation,
        ratio_vector=ratios,
        floor=ratios[0],
        examined=examined,
    )


def improve_routing_relative(
    network: ClosNetwork,
    routing: Routing,
    macro_allocation: Allocation,
    exact: bool = True,
    max_rounds: Optional[int] = None,
) -> RelativeAllocation:
    """Hill-climb the ratio vector with single-flow middle-switch moves.

    A lower bound on the exact optimum; useful on instances (like the
    Theorem 4.3 construction) whose routing space defeats enumeration.
    """
    capacities = network.graph.capacities()
    best_routing = routing
    best_alloc = max_min_fair(routing, capacities, exact=exact)
    best_ratios = ratio_vector(best_alloc, macro_allocation)
    examined = 1
    rounds = 0
    while max_rounds is None or rounds < max_rounds:
        rounds += 1
        improved = False
        middles = best_routing.middles(network)
        for flow in best_routing.flows():
            here = middles[flow]
            for m in range(1, network.num_middles + 1):
                if m == here:
                    continue
                candidate = best_routing.reassigned(network, flow, m)
                alloc = max_min_fair(candidate, capacities, exact=exact)
                ratios = ratio_vector(alloc, macro_allocation)
                examined += 1
                if lex_compare(ratios, best_ratios) > 0:
                    best_routing, best_alloc, best_ratios = (
                        candidate,
                        alloc,
                        ratios,
                    )
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break
    return RelativeAllocation(
        routing=best_routing,
        allocation=best_alloc,
        ratio_vector=best_ratios,
        floor=best_ratios[0],
        examined=examined,
    )


def floor_of_routing(
    network: ClosNetwork,
    routing: Routing,
    macro_allocation: Allocation,
    exact: bool = True,
) -> Rate:
    """The relative-fairness floor achieved by one concrete routing."""
    allocation = max_min_fair(routing, network.graph.capacities(), exact=exact)
    return ratio_vector(allocation, macro_allocation)[0]
