"""The bottleneck property — certifying max-min fairness (Lemma 2.2).

A link is a *bottleneck* for a flow crossing it when (1) the link is
saturated, and (2) the flow's rate is maximum among all flows crossing
the link.  Lemma 2.2 (Bertsekas & Gallager): a feasible allocation is
max-min fair **iff every flow has a bottleneck link**.

This gives an independent certificate for the water-filling output, and
is the verification route the paper itself uses ("the proof follows from
the routine application of the bottleneck property", Lemmas 4.4/4.6) —
so our theorem tests certify the paper's posited allocations exactly the
way the proofs do.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from repro.core.allocation import Allocation, Rate, is_feasible
from repro.core.flows import Flow
from repro.core.routing import Link, Routing

_INF = float("inf")


def _bump(value: Rate, tol: float) -> Rate:
    """``value + tol`` without coercing exact rates to float when ``tol == 0``."""
    return value + tol if tol else value


def link_loads(routing: Routing, allocation: Allocation) -> Dict[Link, Rate]:
    """Total allocated rate per traversed link."""
    loads: Dict[Link, Rate] = {}
    for flow in routing.flows():
        rate = allocation.rate(flow)
        for link in routing.links_of(flow):
            loads[link] = loads.get(link, 0) + rate
    return loads


def bottleneck_links(
    routing: Routing,
    allocation: Allocation,
    capacities: Mapping[Link, Rate],
    flow: Flow,
    tol: float = 0.0,
) -> List[Link]:
    """All bottleneck links of ``flow`` under the allocation.

    A link ``(u, v)`` on the flow's path qualifies when the total rate
    across it equals the capacity (within ``tol``) and the flow's rate is
    maximal among the flows crossing it (within ``tol``).
    """
    loads = link_loads(routing, allocation)
    members = routing.flows_per_link()
    rate = allocation.rate(flow)
    result: List[Link] = []
    for link in routing.links_of(flow):
        capacity = capacities[link]
        if capacity == _INF:
            continue
        if abs(loads[link] - capacity) > tol:
            continue
        if all(allocation.rate(g) <= _bump(rate, tol) for g in members[link]):
            result.append(link)
    return result


def flows_without_bottleneck(
    routing: Routing,
    allocation: Allocation,
    capacities: Mapping[Link, Rate],
    tol: float = 0.0,
) -> List[Flow]:
    """Flows that have **no** bottleneck link (empty iff max-min fair)."""
    loads = link_loads(routing, allocation)
    members = routing.flows_per_link()
    # "flow's rate is maximal among flows crossing the link" depends only
    # on the link's maximum rate, so precompute it once per link instead
    # of rescanning the member list per (flow, link) pair — the n = 64
    # certifications cross links with thousands of members.
    link_max: Dict[Link, Rate] = {
        link: max(allocation.rate(g) for g in flows_on)
        for link, flows_on in members.items()
        if flows_on
    }
    missing: List[Flow] = []
    for flow in routing.flows():
        rate = allocation.rate(flow)
        has_bottleneck = False
        for link in routing.links_of(flow):
            capacity = capacities[link]
            if capacity == _INF:
                continue
            if abs(loads[link] - capacity) > tol:
                continue
            if link_max[link] <= _bump(rate, tol):
                has_bottleneck = True
                break
        if not has_bottleneck:
            missing.append(flow)
    return missing


def is_max_min_fair(
    routing: Routing,
    allocation: Allocation,
    capacities: Mapping[Link, Rate],
    tol: float = 0.0,
) -> bool:
    """Lemma 2.2 check: feasible and every flow has a bottleneck link."""
    if not is_feasible(routing, allocation, capacities, tol=tol):
        return False
    return not flows_without_bottleneck(routing, allocation, capacities, tol=tol)


def certify_max_min_fair(
    routing: Routing,
    allocation: Allocation,
    capacities: Mapping[Link, Rate],
    tol: float = 0.0,
) -> Optional[str]:
    """Return ``None`` if max-min fair, else a human-readable defect report."""
    if not is_feasible(routing, allocation, capacities, tol=tol):
        loads = link_loads(routing, allocation)
        violated = [
            (link, loads[link], capacities[link])
            for link in loads
            if capacities[link] != _INF and loads[link] > _bump(capacities[link], tol)
        ]
        return f"infeasible allocation; overloaded links: {violated!r}"
    missing = flows_without_bottleneck(routing, allocation, capacities, tol=tol)
    if missing:
        return f"flows without a bottleneck link: {missing!r}"
    return None
