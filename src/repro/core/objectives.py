"""Exact routing objectives (Definitions 2.4 and 2.5).

- A **lex-max-min fair allocation** is a max-min fair allocation (for
  some routing) whose sorted vector is lexicographically maximum over
  all routings — the fairest rates a Clos network can offer.
- A **throughput-max-min fair allocation** is a max-min fair allocation
  (for some routing) with maximum throughput over all routings — what a
  throughput-first routing layer aims for while congestion control keeps
  per-routing fairness.

Both solvers enumerate the middle-switch-symmetry-reduced routing space
exactly (see :mod:`repro.search.enumeration`); both objectives are
invariant under middle-switch relabeling, so optimizing over orbit
representatives is lossless.  They are exponential-time and intended for
the small instances used in tests and worked examples — for the paper's
parametric constructions we instead verify the closed-form optimal
allocations the way the proofs do (bottleneck certificates + local
optimality + counting arguments; see :mod:`repro.core.theorems`).
"""

from __future__ import annotations

from typing import NamedTuple, Optional

from repro.core.allocation import Allocation, lex_compare
from repro.core.cache import AllocationCache
from repro.core.flows import FlowCollection
from repro.core.maxmin import max_min_fair
from repro.core.routing import Routing
from repro.core.throughput import max_throughput_value
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.search.enumeration import batched_allocations, enumerate_routings


def _allocation_stream(
    network: ClosNetwork,
    flows: FlowCollection,
    capacities,
    exact: bool,
    use_symmetry: bool,
    cache: Optional[AllocationCache],
    batch_size: Optional[int],
):
    """The (routing, allocation) pairs an objective search walks.

    ``batch_size`` switches from one solver call per routing to
    block-diagonal batched solving (see
    :func:`repro.search.enumeration.batched_allocations`) — much faster
    over many small routings, but it bypasses ``cache`` and, for float
    runs, computes rates with the vectorized kernel (bit-identical to
    per-instance ``backend="vectorized"`` solves, not to the reference
    float path).  Both objectives compare sorted vectors/throughputs,
    which the kernels agree on to 1e-12, so optima are unaffected on
    non-degenerate instances; exact runs are exactly identical.
    """
    if batch_size is not None:
        yield from batched_allocations(
            network, flows, capacities=capacities,
            use_symmetry=use_symmetry, batch_size=batch_size, exact=exact,
        )
        return
    for routing in enumerate_routings(network, flows, use_symmetry=use_symmetry):
        if cache is None:
            yield routing, max_min_fair(routing, capacities, exact=exact)
        else:
            yield routing, cache.solve(routing, capacities, exact=exact)


class OptimalAllocation(NamedTuple):
    """A routing together with its max-min fair allocation."""

    routing: Routing
    allocation: Allocation
    #: Number of routings examined by the solver (orbit representatives).
    examined: int


def macro_switch_max_min(
    network: MacroSwitch, flows: FlowCollection, exact: bool = True,
    backend: Optional[str] = None,
) -> Allocation:
    """``a^MmF``: the (unique) max-min fair allocation in the macro-switch.

    ``backend`` optionally selects a solver from
    :data:`repro.core.solve.BACKENDS` (e.g. ``"quotient"`` for large
    symmetric instances); the default keeps the reference solver with
    the requested ``exact`` mode.
    """
    routing = Routing.for_macro_switch(network, flows)
    if backend is not None:
        from repro.core.solve import solve_max_min

        return solve_max_min(
            routing, network.graph.capacities(), backend=backend
        )
    return max_min_fair(routing, network.graph.capacities(), exact=exact)


def lex_max_min_fair(
    network: ClosNetwork,
    flows: FlowCollection,
    exact: bool = True,
    use_symmetry: bool = True,
    cache: Optional[AllocationCache] = None,
    batch_size: Optional[int] = None,
) -> OptimalAllocation:
    """``a^{L-MmF}``: an exact lex-max-min fair allocation (Definition 2.4).

    Exhaustive over symmetry-orbit representatives; exponential in
    ``|F|`` — use on small instances only.  Terminates early when the
    incumbent reaches the macro-switch max-min sorted vector, which
    upper-bounds every Clos routing's vector (§2.3) — on instances where
    the macro abstraction *is* attainable this prunes most of the space.

    Pass ``cache`` to share solved allocations with a sibling sweep over
    the same instance (e.g. the throughput objective enumerates the same
    orbit representatives).  ``batch_size`` solves that many routings
    per block-diagonal batched water-fill instead of one at a time (see
    :func:`_allocation_stream` for the trade-offs; early termination
    still applies, at batch granularity).
    """
    if not len(flows):
        raise ValueError("cannot optimize over an empty flow collection")
    capacities = (
        network.graph.capacities()
        if cache is None
        else cache.capacities_for(network)
    )
    macro_bound = macro_switch_max_min(
        MacroSwitch(network.n), flows, exact=exact
    ).sorted_vector()
    best: Optional[OptimalAllocation] = None
    examined = 0
    for routing, allocation in _allocation_stream(
        network, flows, capacities, exact, use_symmetry, cache, batch_size
    ):
        examined += 1
        if best is None or (
            lex_compare(
                allocation.sorted_vector(), best.allocation.sorted_vector()
            )
            > 0
        ):
            best = OptimalAllocation(routing, allocation, examined)
            if lex_compare(best.allocation.sorted_vector(), macro_bound) == 0:
                break  # §2.3: nothing can lex-exceed the macro-switch
    return OptimalAllocation(best.routing, best.allocation, examined)


def throughput_max_min_fair(
    network: ClosNetwork,
    flows: FlowCollection,
    exact: bool = True,
    use_symmetry: bool = True,
    stop_at_max_throughput: bool = False,
    cache: Optional[AllocationCache] = None,
    batch_size: Optional[int] = None,
) -> OptimalAllocation:
    """``a^{T-MmF}``: an exact throughput-max-min fair allocation (Def. 2.5).

    Ties on throughput are broken toward the lexicographically larger
    sorted vector, making the result deterministic.  ``stop_at_max_
    throughput=True`` terminates as soon as the incumbent's throughput
    reaches ``T^MT`` (which upper-bounds every allocation, §5) — exact
    on throughput but forfeits the lexicographic tie-break refinement.
    ``batch_size`` batches the per-routing solves exactly as in
    :func:`lex_max_min_fair`.
    """
    if not len(flows):
        raise ValueError("cannot optimize over an empty flow collection")
    capacities = (
        network.graph.capacities()
        if cache is None
        else cache.capacities_for(network)
    )
    throughput_bound = max_throughput_value(flows) if stop_at_max_throughput else None
    best: Optional[OptimalAllocation] = None
    examined = 0
    for routing, allocation in _allocation_stream(
        network, flows, capacities, exact, use_symmetry, cache, batch_size
    ):
        examined += 1
        if best is None:
            best = OptimalAllocation(routing, allocation, examined)
        else:
            incumbent = best.allocation
            if allocation.throughput() > incumbent.throughput() or (
                allocation.throughput() == incumbent.throughput()
                and lex_compare(
                    allocation.sorted_vector(), incumbent.sorted_vector()
                )
                > 0
            ):
                best = OptimalAllocation(routing, allocation, examined)
        if (
            throughput_bound is not None
            and best.allocation.throughput() >= throughput_bound
        ):
            break  # §5: T(a) <= T^MT for every allocation
    return OptimalAllocation(best.routing, best.allocation, examined)
