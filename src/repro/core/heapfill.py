"""The shared lazy-deletion water-filling heap kernel.

Both water-filling front ends — the reference implementation's float
path (:func:`repro.core.maxmin.max_min_fair` with ``exact=False``) and
the heap-accelerated :func:`repro.core.fastmaxmin.max_min_fair_fast` —
run the *same* loop: pop the link with the smallest saturation level
from a min-heap, discard stale entries (a freeze since the push can
only have *raised* the link's level, so a re-pushed fresh entry never
misses the global minimum), and freeze every unfrozen flow on the
saturating link at the popped level.  This module holds that loop once;
the front ends differ only in validation, setup, and which observability
counters they increment.

Also home to :class:`Rat`, the unnormalized-rational heap key the exact
integer-pair water-fill (:func:`repro.core.maxmin._fill_exact`) and the
symmetry-quotient solver (:mod:`repro.core.quotient`) share.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, List, Mapping, Optional, Set, Tuple

from repro.core.allocation import Rate
from repro.core.flows import Flow
from repro.core.routing import Link
from repro.obs.metrics import Counter


class Rat:
    """A minimal unnormalized rational used as a heap key.

    :class:`~fractions.Fraction` pays gcd normalization on construction
    and ABC dispatch on every comparison — per profile, most of the
    exact-mode water-fill.  Heap keys only ever need ``<`` (and ties
    fall through to the tiebreak counter), so a bare cross-multiplied
    comparison on a slotted pair suffices.  Denominators are positive by
    construction.
    """

    __slots__ = ("n", "d")

    def __init__(self, n: int, d: int) -> None:
        self.n = n
        self.d = d

    def __lt__(self, other: "Rat") -> bool:
        return self.n * other.d < other.n * self.d


def lazy_heap_fill(
    flows,
    link_flows: Mapping[Link, List[Flow]],
    flow_links: Mapping[Flow, List[Link]],
    rates: Dict[Flow, Rate],
    residual: Dict[Link, Rate],
    unfrozen_count: Dict[Link, int],
    zero: Rate = 0.0,
    stale_tol: float = 0.0,
    pops: Optional[Counter] = None,
    stale: Optional[Counter] = None,
    rounds_counter: Optional[Counter] = None,
    saturations: Optional[Counter] = None,
    freezes: Optional[Counter] = None,
) -> int:
    """The lazy-deletion water-filling loop over float (or any ordered
    numeric) rates; mutates ``rates`` and the bookkeeping dicts in place
    and returns the number of rounds (distinct freeze levels).

    An entry is stale when the link has fully frozen (count 0) or when
    freezes since the push raised its level past ``stale_tol``; in the
    latter case the current level is re-pushed.  Because freezing can
    never *lower* a link's level, the popped minimum is always
    trustworthy once fresh, and the sequence of freeze levels is
    non-decreasing — the allocation is the same as the historical
    per-round min-scan computed (within float tie-ordering ulps).

    The optional :class:`~repro.obs.metrics.Counter` arguments let each
    front end keep its own metric names without duplicating the loop.
    """
    # (level, tiebreak, link): links are heterogeneous tuples that do
    # not compare with each other, so a monotone counter breaks ties.
    tiebreak = itertools.count()
    heap: List[Tuple] = [
        (residual[link] / count, next(tiebreak), link)
        for link, count in unfrozen_count.items()
        if count
    ]
    heapq.heapify(heap)

    frozen: Set[Flow] = set()
    total = len(flows)
    rounds = 0
    last_level: Optional[Rate] = None
    while len(frozen) < total:
        if not heap:
            # Cannot happen: every unfrozen flow sits on at least one
            # finite link with a positive unfrozen count (itself).
            raise AssertionError("water-filling invariant violated")
        level, _, link = heapq.heappop(heap)
        if pops is not None:
            pops.inc()
        count = unfrozen_count[link]
        if count == 0:
            if stale is not None:
                stale.inc()
            continue  # stale: the link fully froze after the push
        current = residual[link] / count
        if current > level + stale_tol:
            # Stale: freezes since the push raised this link's level.
            if stale is not None:
                stale.inc()
            heapq.heappush(heap, (current, next(tiebreak), link))
            continue
        if current < zero:
            # Float rounding can leave a residual at -1e-16; clamp so
            # the resulting rates stay non-negative.
            current = zero

        if last_level is None or current > last_level:
            rounds += 1
            if rounds_counter is not None:
                rounds_counter.inc()
            last_level = current
        if saturations is not None:
            saturations.inc()

        # Freeze every unfrozen flow on the saturating link at `current`.
        newly_frozen = [f for f in link_flows[link] if f not in frozen]
        if freezes is not None:
            freezes.inc(len(newly_frozen))
        for flow in newly_frozen:
            rates[flow] = current
            frozen.add(flow)
            for other in flow_links[flow]:
                if other in residual:
                    residual[other] -= current
                    unfrozen_count[other] -= 1

    return rounds
