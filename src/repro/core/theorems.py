"""Closed-form predictions of the paper's theorems and lemmas.

Every quantity the paper derives symbolically is available here as an
exact :class:`~fractions.Fraction`, so the test suite and the benchmark
harness can compare *measured* values (water-filling, matching,
Doom-Switch, exhaustive search) against *predicted* ones with zero
tolerance.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, NamedTuple


# ----------------------------------------------------------------------
# Theorem 3.4 (R1): price of fairness in a macro-switch
# ----------------------------------------------------------------------
class Theorem34Prediction(NamedTuple):
    """Predicted throughputs for the Figure 2 gadget with ``k`` blue flows."""

    max_throughput: Fraction  # T^MT
    max_min_throughput: Fraction  # T^MmF
    ratio: Fraction  # T^MmF / T^MT
    epsilon: Fraction  # T^MmF = (1 + eps) * T^MT / 2
    per_flow_rate: Fraction  # the common max-min fair rate


def theorem_3_4(k: int) -> Theorem34Prediction:
    """Theorem 3.4's tight construction: ``T^MmF = 1 + 1/(k+1)``, ``T^MT = 2``.

    >>> theorem_3_4(1).max_min_throughput
    Fraction(3, 2)
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    t_mt = Fraction(2)
    t_mmf = 1 + Fraction(1, k + 1)
    return Theorem34Prediction(
        max_throughput=t_mt,
        max_min_throughput=t_mmf,
        ratio=t_mmf / t_mt,
        epsilon=Fraction(1, k + 1),
        per_flow_rate=Fraction(1, k + 1),
    )


#: Theorem 3.4's universal lower bound: T^MmF >= LOWER_BOUND_R1 * T^MT.
LOWER_BOUND_R1 = Fraction(1, 2)


# ----------------------------------------------------------------------
# Theorem 4.3 (R2): lex-max-min starvation
# ----------------------------------------------------------------------
class Theorem43Prediction(NamedTuple):
    """Per-type rates for the Figure 3 construction of size ``n``."""

    macro_rates: Dict[str, Fraction]  # Lemma 4.4
    lex_max_min_rates: Dict[str, Fraction]  # Lemma 4.6
    starvation_factor: Fraction  # lex rate / macro rate of the type-3 flow


def theorem_4_3(n: int) -> Theorem43Prediction:
    """Lemmas 4.4 and 4.6: the type-3 flow drops from 1 to ``1/n``.

    >>> theorem_4_3(3).starvation_factor
    Fraction(1, 3)
    """
    if n < 3:
        raise ValueError(f"Theorem 4.3 needs n >= 3, got {n}")
    macro = {
        "type1": Fraction(1, n + 1),
        "type2": Fraction(1, n),
        "type3": Fraction(1),
    }
    lex = {
        "type1": Fraction(1, n + 1),
        "type2": Fraction(1, n),
        "type3": Fraction(1, n),
    }
    return Theorem43Prediction(
        macro_rates=macro,
        lex_max_min_rates=lex,
        starvation_factor=lex["type3"] / macro["type3"],
    )


def theorem_4_2_macro_rates(n: int) -> Dict[str, Fraction]:
    """Example 4.1's macro-switch max-min rates (multiplicity-1 variant).

    Type 1 and type 3 flows ride alone on their server links → rate 1;
    type 2 flows share: each source ``s_i^1`` emits ``n`` type-2 flows
    → rate ``1/n`` (and each of ``O_{n+1}``'s first ``n−1`` destinations
    receives exactly ``n/n = 1``, consistent with the figure's ×3).
    """
    if n < 3:
        raise ValueError(f"Theorem 4.2 needs n >= 3, got {n}")
    return {"type1": Fraction(1), "type2": Fraction(1, n), "type3": Fraction(1)}


# ----------------------------------------------------------------------
# Theorem 5.4 (R3): Doom-Switch throughput doubling
# ----------------------------------------------------------------------
class Theorem54Prediction(NamedTuple):
    """Predicted values for the Figure 4 construction (odd ``n``, ``k`` blues)."""

    macro_max_min_throughput: Fraction  # T^MmF in MS_n
    doom_throughput: Fraction  # the Doom-Switch routing's throughput (≤ T^T-MmF)
    gain: Fraction  # doom_throughput / macro_max_min_throughput
    epsilon: Fraction  # gain = 2 (1 - eps)
    macro_rate: Fraction  # every flow's macro-switch max-min rate
    type1_rate: Fraction  # matched flows under Doom-Switch
    type2_rate: Fraction  # doomed flows under Doom-Switch


def theorem_5_4(n: int, k: int) -> Theorem54Prediction:
    """Theorem 5.4's tight construction.

    ``T^MmF = (n−1)/2 · (1 + 1/(k+1))`` and the Doom-Switch max-min
    throughput is ``n − 2``, so the gain tends to 2 as ``n, k → ∞``
    (``eps = (k+n)/((n−1)(k+2)) → 1/(n−1)``).

    >>> theorem_5_4(7, 1).doom_throughput
    Fraction(5, 1)
    """
    if n < 3 or n % 2 == 0:
        raise ValueError(f"Theorem 5.4 needs odd n >= 3, got {n}")
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    t_mmf = Fraction(n - 1, 2) * (1 + Fraction(1, k + 1))
    if Fraction(2, k * (n - 1)) <= Fraction(1, k + 1):
        # The regime of the paper's stated rates (holds for all odd n >= 5):
        # the doom switch's links saturate before the server links, so the
        # doomed flows starve to 2/(k(n-1)) and the matched flows rise.
        type1_rate = 1 - Fraction(2, n - 1)
        type2_rate = Fraction(2, k * (n - 1))
    else:
        # Degenerate case n = 3: the server links (k+1 flows each)
        # saturate first, the doom-switch links never bind, and the
        # allocation collapses to the macro-switch one.  Theorem 5.4's
        # inequality T^{T-MmF} >= n - 2 still holds (vacuously here).
        type1_rate = Fraction(1, k + 1)
        type2_rate = Fraction(1, k + 1)
    doom = (n - 1) * type1_rate + Fraction(n - 1, 2) * k * type2_rate
    gain = doom / t_mmf
    epsilon = 1 - gain / 2
    return Theorem54Prediction(
        macro_max_min_throughput=t_mmf,
        doom_throughput=doom,
        gain=gain,
        epsilon=epsilon,
        macro_rate=Fraction(1, k + 1),
        type1_rate=type1_rate,
        type2_rate=type2_rate,
    )


#: Theorem 5.4's universal upper bound: T^T-MmF <= UPPER_BOUND_R3 * T^MmF.
UPPER_BOUND_R3 = Fraction(2)


def theorem_5_4_epsilon_limit(n: int) -> Fraction:
    """The ``k → ∞`` limit of Theorem 5.4's epsilon: ``1/(n−1)``."""
    if n < 3:
        raise ValueError(f"Theorem 5.4 needs n >= 3, got {n}")
    return Fraction(1, n - 1)


# ----------------------------------------------------------------------
# Example 2.3 (Figure 1) sorted vectors
# ----------------------------------------------------------------------
def example_2_3_sorted_vectors() -> Dict[str, list]:
    """The three sorted vectors derived in Example 2.3."""
    third, two_thirds, one = Fraction(1, 3), Fraction(2, 3), Fraction(1)
    return {
        "macro_switch": [third, third, third, two_thirds, two_thirds, one],
        "routing_a": [third, third, third, two_thirds, two_thirds, two_thirds],
        "routing_b": [third, third, third, third, two_thirds, one],
    }
