"""Memoized max-min fair allocations keyed by routing fingerprint.

The search layers (:mod:`repro.search.local_search`,
:mod:`repro.search.annealing`, and the enumeration-backed objective
solvers) revisit routings: a hill-climb's final pass re-probes every
neighbor it already evaluated, an annealing walk wanders back to recent
states, and ``is_local_optimum`` re-checks the exact moves the climb
just rejected.  Every revisit used to pay a full water-filling solve.

:class:`AllocationCache` is a small LRU keyed on ``(routing
fingerprint, capacities identity, exact)``.  The fingerprint
(:meth:`repro.core.routing.Routing.fingerprint`) is canonical, so two
differently-built but equal routings share an entry.  Capacities are
keyed by *object identity* — the cache holds a reference to the
capacities mapping in each entry, so the id cannot be recycled while
the entry lives; callers that mutate a capacities dict in place must
use a fresh dict (every ``graph.capacities()`` call already returns a
copy).

Cached :class:`~repro.core.allocation.Allocation` objects are shared,
not copied — treat them as immutable (every consumer in this library
does).

Hit/miss/eviction counts are exposed both as instance attributes
(always maintained; see :meth:`AllocationCache.stats`) and through the
``cache.alloc.*`` counters in :mod:`repro.obs` when observability is
enabled.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.core.allocation import Allocation, Rate
from repro.core.maxmin import max_min_fair
from repro.core.routing import Link, Routing
from repro.obs import counter

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_HITS = counter("cache.alloc.hits")
_MISSES = counter("cache.alloc.misses")
_EVICTIONS = counter("cache.alloc.evictions")

#: The canonical routing fingerprint type (see ``Routing.fingerprint``).
Fingerprint = Tuple

#: Default number of allocations retained.  A Clos local-search round
#: probes ``|F| · (n − 1)`` neighbors; 4096 comfortably holds several
#: rounds of the largest instances the searches run on.
DEFAULT_MAXSIZE = 4096


class AllocationCache:
    """An LRU cache of max-min fair allocations.

    >>> from repro.core.topology import ClosNetwork
    >>> from repro.core.flows import FlowCollection, Flow
    >>> clos = ClosNetwork(2)
    >>> flows = FlowCollection([Flow(clos.source(1, 1), clos.destination(3, 1))])
    >>> routing = Routing.from_middles(clos, flows, {flows[0]: 1})
    >>> capacities = clos.graph.capacities()
    >>> cache = AllocationCache()
    >>> first = cache.solve(routing, capacities)
    >>> cache.solve(routing, capacities) is first  # second call is a hit
    True
    >>> cache.stats()["hits"], cache.stats()["misses"]
    (1, 1)
    """

    def __init__(self, maxsize: int = DEFAULT_MAXSIZE) -> None:
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        # key -> (capacities ref, allocation); the capacities reference
        # pins the id() used in the key for the entry's lifetime.
        self._entries: "OrderedDict[Tuple, Tuple[Any, Allocation]]" = (
            OrderedDict()
        )
        # id(network) -> (network ref, its capacities mapping): one
        # capacities identity per network, so solves routed through this
        # cache from different call sites share entries.
        self._network_caps: Dict[int, Tuple[Any, Mapping[Link, Rate]]] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def capacities_for(self, network: Any) -> Mapping[Link, Rate]:
        """A memoized ``network.graph.capacities()`` mapping.

        ``graph.capacities()`` returns a *fresh* dict on every call, and
        cache keys include the capacities object's identity — so two
        searches that each built their own copy would never share
        entries.  Routing capacity lookups through the cache gives every
        consumer of the same network the same mapping (and the cache's
        reference pins its id).  Treat the returned mapping as read-only.
        """
        key = id(network)
        entry = self._network_caps.get(key)
        if entry is None or entry[0] is not network:
            entry = (network, network.graph.capacities())
            self._network_caps[key] = entry
        return entry[1]

    @staticmethod
    def _key(
        fingerprint: Fingerprint, capacities: Mapping[Link, Rate], exact: bool
    ) -> Tuple:
        return (fingerprint, id(capacities), bool(exact))

    def get(
        self,
        fingerprint: Fingerprint,
        capacities: Mapping[Link, Rate],
        exact: bool = True,
    ) -> Optional[Allocation]:
        """The cached allocation for this key, or ``None`` (marks a miss)."""
        key = self._key(fingerprint, capacities, exact)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            _MISSES.inc()
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        _HITS.inc()
        return entry[1]

    def put(
        self,
        fingerprint: Fingerprint,
        capacities: Mapping[Link, Rate],
        exact: bool,
        allocation: Allocation,
    ) -> Allocation:
        """Store ``allocation`` under this key, evicting LRU entries."""
        key = self._key(fingerprint, capacities, exact)
        self._entries[key] = (capacities, allocation)
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self.evictions += 1
            _EVICTIONS.inc()
        return allocation

    def solve(
        self,
        routing: Routing,
        capacities: Mapping[Link, Rate],
        exact: bool = True,
    ) -> Allocation:
        """``max_min_fair(routing, capacities, exact)``, memoized."""
        fingerprint = routing.fingerprint()
        found = self.get(fingerprint, capacities, exact)
        if found is not None:
            # Misses are certified by the solver itself; at `full`,
            # re-certify hits too — a stale or corrupted entry (e.g. a
            # capacities dict mutated in place against the documented
            # contract) must not leak into experiments unchecked.
            from repro.validate import validate_allocation, validation_level

            if validation_level() == "full":
                validate_allocation(
                    routing, capacities, found,
                    level="full", context="cache.hit",
                )
            return found
        allocation = max_min_fair(routing, capacities, exact=exact)
        return self.put(fingerprint, capacities, exact, allocation)

    def stats(self) -> Dict[str, int]:
        """Hit/miss/eviction/size counters for this cache instance."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": len(self._entries),
        }

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AllocationCache(size={len(self._entries)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )
