"""Water-filling computation of max-min fair allocations (Definition 2.1).

Progressive filling raises the rates of all flows simultaneously and at
the same pace; when a link saturates, the flows crossing it freeze at the
current water level, and the remaining flows continue to rise.  The
resulting allocation is the unique max-min fair allocation for the given
routing (Bertsekas & Gallager 1992; Radunović & Le Boudec 2007 — the
paper's references [6, 28]).

Implementation notes:

- All unfrozen flows always share a common rate (the *water level*), so
  each round only needs, per link, the level at which that link would
  saturate: ``(capacity − frozen rate on the link) / #unfrozen flows on
  the link``.  The minimum of these over all links is the next freeze
  level.
- The next freeze level is selected with a lazy-deletion min-heap of
  per-link saturation levels rather than an O(links) scan per round.
  Lazy deletion is sound because freezing flows can only *raise* a
  link's saturation level: a popped stale entry is always ≤ the link's
  true level and can be re-pushed without missing the global minimum.
  Freeze levels therefore come out in non-decreasing order, and the
  reported round count is the number of distinct levels — the same
  quantity the historical per-round min-scan reported.
- The algorithm is generic over the rate type.  With ``exact=True``
  capacities are coerced to :class:`fractions.Fraction` and the result is
  exact — this is what every theorem-verification path uses, since the
  paper's claims are exact rational numbers.  With ``exact=False`` the
  computation runs in floats (used by the large stochastic simulations).
- Infinite-capacity links (macro-switch interior) never constrain and
  are skipped.  A flow crossing only infinite-capacity links would have
  an unbounded rate; this cannot happen in the paper's topologies (every
  path starts and ends on a unit-capacity server link) and raises
  :class:`UnboundedRateError` if constructed by hand.
"""

from __future__ import annotations

import heapq
import itertools
from fractions import Fraction
from math import gcd
from typing import Dict, List, Mapping, Set, Tuple, Union

from repro.errors import (
    CapacityValidationError,
    UnboundedRateError,
    UnknownLinkError,
)
from repro.core.allocation import Allocation, Rate
from repro.core.flows import Flow
from repro.core.heapfill import Rat as _Rat
from repro.core.heapfill import lazy_heap_fill
from repro.core.routing import Link, Routing
from repro.obs import counter, trace_span

_INF = float("inf")

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_SOLVES = counter("maxmin.solves")
_ROUNDS = counter("maxmin.rounds")
_SATURATIONS = counter("maxmin.saturated_links")
_FREEZES = counter("maxmin.flows_frozen")

__all__ = [
    "UnboundedRateError",
    "max_min_fair",
    "max_min_fair_for_network",
    "validate_capacities",
]


def validate_capacities(
    link_flows: Mapping[Link, List[Flow]],
    capacities: Mapping[Link, Rate],
) -> None:
    """Reject capacity maps the water-filling algorithms cannot consume.

    Raises :class:`~repro.errors.UnknownLinkError` naming *every*
    traversed link absent from ``capacities``, or
    :class:`~repro.errors.CapacityValidationError` on negative or
    non-numeric capacities — instead of a bare ``KeyError``/``TypeError``
    deep inside the solver loop.
    """
    missing = [link for link in link_flows if link not in capacities]
    if missing:
        raise UnknownLinkError(missing)
    bad: Dict[Link, Rate] = {}
    for link in link_flows:
        capacity = capacities[link]
        try:
            negative = capacity < 0
        except TypeError:
            negative = True
        if negative:
            bad[link] = capacity
    if bad:
        raise CapacityValidationError(
            f"capacities must be non-negative numbers: {bad!r}"
        )


def max_min_fair(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    exact: bool = True,
) -> Allocation:
    """The max-min fair allocation for ``routing`` (water-filling).

    ``capacities`` maps every link traversed by the routing to its
    capacity.  With ``exact=True`` (default) all arithmetic is done in
    :class:`~fractions.Fraction` and the returned rates are exact.

    >>> from repro.core.topology import MacroSwitch
    >>> from repro.core.flows import FlowCollection
    >>> ms = MacroSwitch(1)
    >>> flows = FlowCollection.from_pairs(
    ...     [(ms.source(1, 1), ms.destination(1, 1)),
    ...      (ms.source(2, 1), ms.destination(1, 1))])
    >>> routing = Routing.for_macro_switch(ms, flows)
    >>> alloc = max_min_fair(routing, ms.graph.capacities())
    >>> alloc.sorted_vector()
    [Fraction(1, 2), Fraction(1, 2)]
    """
    flows = routing.flows()
    if not flows:
        return Allocation({})

    link_flows: Dict[Link, List[Flow]] = routing.flows_per_link()
    validate_capacities(link_flows, capacities)

    def coerce(value: Rate) -> Rate:
        if value == _INF:
            return _INF
        return Fraction(value) if exact else float(value)

    finite_links: Dict[Link, Rate] = {}
    for link, members in link_flows.items():
        capacity = coerce(capacities[link])
        if capacity != _INF:
            finite_links[link] = capacity

    # Flows constrained by no finite link would rise forever.
    constrained: Set[Flow] = set()
    for link in finite_links:
        constrained.update(link_flows[link])
    unbounded = [f for f in flows if f not in constrained]
    if unbounded:
        raise UnboundedRateError(
            f"flows with no finite-capacity link on their path: {unbounded!r}"
        )

    zero: Rate = Fraction(0) if exact else 0.0
    rates: Dict[Flow, Rate] = {f: zero for f in flows}
    # Per finite link: residual capacity after frozen flows, count of
    # unfrozen flows.  Both are maintained incrementally.
    residual: Dict[Link, Rate] = dict(finite_links)
    unfrozen_count: Dict[Link, int] = {
        link: len(link_flows[link]) for link in finite_links
    }
    flow_links: Dict[Flow, List[Link]] = {
        f: routing.links_of(f) for f in flows
    }

    _SOLVES.inc()
    with trace_span(
        "maxmin.water_fill", flows=len(flows), exact=exact
    ) as span:
        rounds = _fill(
            flows, link_flows, flow_links, rates, residual, unfrozen_count,
            zero,
        )
        span.set(rounds=rounds)

    from repro.validate import validate_structure

    validate_structure(
        link_flows, flow_links, rates, capacities,
        context="maxmin.reference",
    )
    return Allocation(rates)


def _fill(
    flows,
    link_flows: Mapping[Link, List[Flow]],
    flow_links: Mapping[Flow, List[Link]],
    rates: Dict[Flow, Rate],
    residual: Dict[Link, Rate],
    unfrozen_count: Dict[Link, int],
    zero: Rate,
) -> int:
    """The water-filling loop; mutates ``rates`` (and the bookkeeping
    dicts) in place and returns the number of rounds (distinct freeze
    levels).

    Saturation levels are tracked in a lazy-deletion min-heap.  An entry
    is stale when the link has fully frozen (count 0) or when freezes
    since the push raised its level; in the latter case the current
    level is re-pushed.  Because freezing can never *lower* a link's
    level, the popped minimum is always trustworthy once fresh, and the
    sequence of freeze levels is non-decreasing — the allocation is the
    same (exactly, in ``Fraction`` mode) as the historical per-round
    min-scan computed.

    Exact mode runs on raw numerator/denominator integer pairs and
    builds one normalized :class:`~fractions.Fraction` per freeze level;
    the resulting rates are identical (``Fraction`` normalizes on
    construction) at a fraction of the arithmetic cost.
    """
    if isinstance(zero, Fraction):
        return _fill_exact(
            flows, link_flows, flow_links, rates, residual, unfrozen_count
        )
    return _fill_generic(
        flows, link_flows, flow_links, rates, residual, unfrozen_count, zero
    )


def _fill_exact(
    flows,
    link_flows: Mapping[Link, List[Flow]],
    flow_links: Mapping[Flow, List[Link]],
    rates: Dict[Flow, Rate],
    residual: Dict[Link, Rate],
    unfrozen_count: Dict[Link, int],
) -> int:
    """Exact-mode water-fill over integer numerator/denominator pairs."""
    # Rate values here are Fractions (or ints), both of which expose
    # numerator/denominator directly — no wrapping needed.
    rnum: Dict[Link, int] = {}
    rden: Dict[Link, int] = {}
    for link, capacity in residual.items():
        rnum[link] = capacity.numerator
        rden[link] = capacity.denominator

    # (level, tiebreak, link): links are heterogeneous tuples that do
    # not compare with each other, so a counter breaks level ties.
    tiebreak = itertools.count()
    heap: List[Tuple] = [
        (_Rat(rnum[link], rden[link] * count), next(tiebreak), link)
        for link, count in unfrozen_count.items()
        if count
    ]
    heapq.heapify(heap)

    frozen: Set[Flow] = set()
    rounds = 0
    last_n, last_d = None, 1
    while len(frozen) < len(flows):
        if not heap:
            # All remaining flows cross only saturated... cannot happen:
            # every unfrozen flow sits on at least one finite link with
            # a positive unfrozen count (itself).
            raise AssertionError("water-filling invariant violated")
        level, _, link = heapq.heappop(heap)
        count = unfrozen_count[link]
        if count == 0:
            continue  # stale: the link fully froze after the push
        cn, cd = rnum[link], rden[link] * count
        if cn * level.d > level.n * cd:
            # Stale: freezes since the push raised this link's level.
            heapq.heappush(heap, (_Rat(cn, cd), next(tiebreak), link))
            continue

        if last_n is None or cn * last_d > last_n * cd:
            rounds += 1
            _ROUNDS.inc()
            last_n, last_d = cn, cd
            # One normalized Fraction per distinct level; consecutive
            # saturations at the same level (levels are non-decreasing)
            # reuse it.
            current = Fraction(cn, cd)
            curn, curd = current.numerator, current.denominator
        _SATURATIONS.inc()
        newly_frozen = [f for f in link_flows[link] if f not in frozen]
        _FREEZES.inc(len(newly_frozen))
        for flow in newly_frozen:
            rates[flow] = current
            frozen.add(flow)
            for other in flow_links[flow]:
                if other in rnum:
                    n = rnum[other] * curd - curn * rden[other]
                    d = rden[other] * curd
                    g = gcd(n, d)
                    if g > 1:
                        n //= g
                        d //= g
                    rnum[other] = n
                    rden[other] = d
                    unfrozen_count[other] -= 1

    return rounds


def _fill_generic(
    flows,
    link_flows: Mapping[Link, List[Flow]],
    flow_links: Mapping[Flow, List[Link]],
    rates: Dict[Flow, Rate],
    residual: Dict[Link, Rate],
    unfrozen_count: Dict[Link, int],
    zero: Rate,
) -> int:
    """Float-mode (or custom numeric) water-fill on the rate type itself.

    The loop itself lives in :func:`repro.core.heapfill.lazy_heap_fill`,
    shared with :mod:`repro.core.fastmaxmin`; this wrapper only binds the
    reference implementation's observability counters.
    """
    return lazy_heap_fill(
        flows,
        link_flows,
        flow_links,
        rates,
        residual,
        unfrozen_count,
        zero=zero,
        rounds_counter=_ROUNDS,
        saturations=_SATURATIONS,
        freezes=_FREEZES,
    )


def max_min_fair_for_network(
    network,
    routing: Routing,
    exact: bool = True,
) -> Allocation:
    """Convenience wrapper taking a topology object with a ``graph`` attribute."""
    return max_min_fair(routing, network.graph.capacities(), exact=exact)
