"""Water-filling computation of max-min fair allocations (Definition 2.1).

Progressive filling raises the rates of all flows simultaneously and at
the same pace; when a link saturates, the flows crossing it freeze at the
current water level, and the remaining flows continue to rise.  The
resulting allocation is the unique max-min fair allocation for the given
routing (Bertsekas & Gallager 1992; Radunović & Le Boudec 2007 — the
paper's references [6, 28]).

Implementation notes:

- All unfrozen flows always share a common rate (the *water level*), so
  each round only needs, per link, the level at which that link would
  saturate: ``(capacity − frozen rate on the link) / #unfrozen flows on
  the link``.  The minimum of these over all links is the next freeze
  level.
- The algorithm is generic over the rate type.  With ``exact=True``
  capacities are coerced to :class:`fractions.Fraction` and the result is
  exact — this is what every theorem-verification path uses, since the
  paper's claims are exact rational numbers.  With ``exact=False`` the
  computation runs in floats (used by the large stochastic simulations).
- Infinite-capacity links (macro-switch interior) never constrain and
  are skipped.  A flow crossing only infinite-capacity links would have
  an unbounded rate; this cannot happen in the paper's topologies (every
  path starts and ends on a unit-capacity server link) and raises
  :class:`UnboundedRateError` if constructed by hand.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Set, Tuple, Union

from repro.errors import (
    CapacityValidationError,
    UnboundedRateError,
    UnknownLinkError,
)
from repro.core.allocation import Allocation, Rate
from repro.core.flows import Flow
from repro.core.routing import Link, Routing
from repro.obs import counter, trace_span

_INF = float("inf")

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_SOLVES = counter("maxmin.solves")
_ROUNDS = counter("maxmin.rounds")
_SATURATIONS = counter("maxmin.saturated_links")
_FREEZES = counter("maxmin.flows_frozen")

__all__ = [
    "UnboundedRateError",
    "max_min_fair",
    "max_min_fair_for_network",
    "validate_capacities",
]


def validate_capacities(
    link_flows: Mapping[Link, List[Flow]],
    capacities: Mapping[Link, Rate],
) -> None:
    """Reject capacity maps the water-filling algorithms cannot consume.

    Raises :class:`~repro.errors.UnknownLinkError` naming *every*
    traversed link absent from ``capacities``, or
    :class:`~repro.errors.CapacityValidationError` on negative or
    non-numeric capacities — instead of a bare ``KeyError``/``TypeError``
    deep inside the solver loop.
    """
    missing = [link for link in link_flows if link not in capacities]
    if missing:
        raise UnknownLinkError(missing)
    bad: Dict[Link, Rate] = {}
    for link in link_flows:
        capacity = capacities[link]
        try:
            negative = capacity < 0
        except TypeError:
            negative = True
        if negative:
            bad[link] = capacity
    if bad:
        raise CapacityValidationError(
            f"capacities must be non-negative numbers: {bad!r}"
        )


def max_min_fair(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    exact: bool = True,
) -> Allocation:
    """The max-min fair allocation for ``routing`` (water-filling).

    ``capacities`` maps every link traversed by the routing to its
    capacity.  With ``exact=True`` (default) all arithmetic is done in
    :class:`~fractions.Fraction` and the returned rates are exact.

    >>> from repro.core.topology import MacroSwitch
    >>> from repro.core.flows import FlowCollection
    >>> ms = MacroSwitch(1)
    >>> flows = FlowCollection.from_pairs(
    ...     [(ms.source(1, 1), ms.destination(1, 1)),
    ...      (ms.source(2, 1), ms.destination(1, 1))])
    >>> routing = Routing.for_macro_switch(ms, flows)
    >>> alloc = max_min_fair(routing, ms.graph.capacities())
    >>> alloc.sorted_vector()
    [Fraction(1, 2), Fraction(1, 2)]
    """
    flows = routing.flows()
    if not flows:
        return Allocation({})

    link_flows: Dict[Link, List[Flow]] = routing.flows_per_link()
    validate_capacities(link_flows, capacities)

    def coerce(value: Rate) -> Rate:
        if value == _INF:
            return _INF
        return Fraction(value) if exact else float(value)

    finite_links: Dict[Link, Rate] = {}
    for link, members in link_flows.items():
        capacity = coerce(capacities[link])
        if capacity != _INF:
            finite_links[link] = capacity

    # Flows constrained by no finite link would rise forever.
    constrained: Set[Flow] = set()
    for link in finite_links:
        constrained.update(link_flows[link])
    unbounded = [f for f in flows if f not in constrained]
    if unbounded:
        raise UnboundedRateError(
            f"flows with no finite-capacity link on their path: {unbounded!r}"
        )

    zero: Rate = Fraction(0) if exact else 0.0
    rates: Dict[Flow, Rate] = {f: zero for f in flows}
    frozen: Set[Flow] = set()
    # Per finite link: residual capacity after frozen flows, count of
    # unfrozen flows.  Both are maintained incrementally.
    residual: Dict[Link, Rate] = dict(finite_links)
    unfrozen_count: Dict[Link, int] = {
        link: len(link_flows[link]) for link in finite_links
    }

    _SOLVES.inc()
    with trace_span(
        "maxmin.water_fill", flows=len(flows), exact=exact
    ) as span:
        rounds = _fill(
            flows, link_flows, finite_links, routing, rates, frozen,
            residual, unfrozen_count, zero,
        )
        span.set(rounds=rounds)

    return Allocation(rates)


def _fill(
    flows,
    link_flows: Dict[Link, List[Flow]],
    finite_links: Dict[Link, Rate],
    routing: Routing,
    rates: Dict[Flow, Rate],
    frozen: Set[Flow],
    residual: Dict[Link, Rate],
    unfrozen_count: Dict[Link, int],
    zero: Rate,
) -> int:
    """The water-filling loop; mutates ``rates``/``frozen`` in place and
    returns the number of rounds (distinct freeze events)."""
    rounds = 0
    while len(frozen) < len(flows):
        rounds += 1
        _ROUNDS.inc()
        # Next saturation level: min over active links of residual/count.
        level: Rate = None
        saturating: List[Link] = []
        for link, count in unfrozen_count.items():
            if count == 0:
                continue
            candidate = residual[link] / count
            if level is None or candidate < level:
                level = candidate
                saturating = [link]
            elif candidate == level:
                saturating.append(link)
        if level is None:
            # All remaining flows cross only saturated... cannot happen:
            # every unfrozen flow sits on at least one finite link with
            # a positive unfrozen count (itself).
            raise AssertionError("water-filling invariant violated")
        if level < zero:
            # Float rounding can leave a residual at -1e-16; clamp so the
            # resulting rates stay non-negative.  Never triggers in exact mode.
            level = zero

        # Freeze every unfrozen flow on a saturating link at `level`.
        newly_frozen: Set[Flow] = set()
        for link in saturating:
            for flow in link_flows[link]:
                if flow not in frozen:
                    newly_frozen.add(flow)
        _SATURATIONS.inc(len(saturating))
        _FREEZES.inc(len(newly_frozen))
        for flow in newly_frozen:
            rates[flow] = level
            frozen.add(flow)
            for link in routing.links_of(flow):
                if link in finite_links:
                    residual[link] -= level
                    unfrozen_count[link] -= 1

    return rounds


def max_min_fair_for_network(
    network,
    routing: Routing,
    exact: bool = True,
) -> Allocation:
    """Convenience wrapper taking a topology object with a ``graph`` attribute."""
    return max_min_fair(routing, network.graph.capacities(), exact=exact)
