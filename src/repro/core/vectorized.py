"""NumPy-vectorized float water-filling (the ``vectorized`` backend).

The heap solvers (:mod:`repro.core.maxmin`, :mod:`repro.core.fastmaxmin`)
walk flows and links one Python object at a time.  For the large float
simulations — thousands of flows over a few dozen Clos links — the
interpreter loop dominates.  This module compiles a routing *once* into a
CSR-style sparse flow×link incidence (plain int arrays) and then runs
water-filling as a handful of array operations per round:

- per-link saturation levels via one vectorized divide,
- the next water level via one ``min``,
- a tolerance band selecting every link saturating at that level,
- freezes and residual/count updates via boolean masks and ``bincount``.

Rounds are bounded by the number of finite links (every round saturates
at least one), so total cost is ``O(rounds · (F·P + L))`` in C instead
of per-element Python.  The dense adversarial instances — ``Clos(3)``
carries thousands of flows over 72 finite links — finish in tens of
rounds regardless of flow count, which is where the kernel shines.

Compilation (:func:`compile_routing`) is pure-Python and costs one pass
over the routing; callers that re-solve the same routing under changing
capacities (the flow-level simulator during link degradations) should
compile once, then call :func:`waterfill` per capacity vector.

NumPy is an optional dependency: import of this module always succeeds,
and :class:`~repro.errors.BackendUnavailableError` is raised only when a
solve is attempted without it.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

try:  # pragma: no cover - exercised implicitly on import
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

from repro.errors import BackendUnavailableError, UnboundedRateError
from repro.core.allocation import Allocation, Rate
from repro.core.flows import Flow
from repro.core.maxmin import validate_capacities
from repro.core.routing import Link, Routing
from repro.obs import counter, trace_span

_INF = float("inf")

#: Relative width of the saturation band: links within
#: ``level + _BAND·(1 + level)`` of the round's minimum freeze together.
#: Wide enough to absorb divide rounding, narrow enough (≪ the 1e-12
#: agreement contract) not to move any rate observably.
_BAND = 1e-14

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_SOLVES = counter("vectorized.solves")
_COMPILES = counter("vectorized.compiles")
_ROUNDS = counter("vectorized.rounds")

__all__ = [
    "CompiledRouting",
    "compile_routing",
    "capacity_vector",
    "incidence_stale",
    "waterfill",
    "max_min_fair_vectorized",
]


def _require_numpy():
    if _np is None:
        raise BackendUnavailableError(
            "the 'vectorized' backend requires numpy, which is not "
            "installed; use backend='heap' or 'reference' instead"
        )
    return _np


class CompiledRouting:
    """A routing lowered to CSR-style integer incidence arrays.

    ``flows[i]`` is the flow with index ``i``; ``links[j]`` the finite
    link with index ``j`` (infinite-capacity links never constrain and
    are dropped at compile time).  ``flow_link[flow_ptr[i]:flow_ptr[i+1]]``
    are the link indices on flow ``i``'s path; ``link_flow`` /
    ``link_ptr`` is the transpose.  ``infinite_links`` records the
    traversed links that were *infinite* at compile time (and hence
    dropped from the incidence) so :func:`incidence_stale` can detect a
    later capacity change flipping the finite-link membership.
    """

    __slots__ = (
        "flows",
        "links",
        "flow_ptr",
        "flow_link",
        "link_ptr",
        "link_flow",
        "infinite_links",
    )

    def __init__(
        self,
        flows: List[Flow],
        links: List[Link],
        flow_ptr,
        flow_link,
        link_ptr,
        link_flow,
        infinite_links=(),
    ) -> None:
        self.flows = flows
        self.links = links
        self.flow_ptr = flow_ptr
        self.flow_link = flow_link
        self.link_ptr = link_ptr
        self.link_flow = link_flow
        self.infinite_links = frozenset(infinite_links)

    def __len__(self) -> int:
        return len(self.flows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledRouting({len(self.flows)} flows, "
            f"{len(self.links)} finite links)"
        )


def compile_routing(
    routing: Routing, capacities: Mapping[Link, Rate]
) -> CompiledRouting:
    """Lower ``routing`` to incidence arrays over its finite links.

    ``capacities`` is consulted only to decide which links are finite —
    the compiled structure stays valid across capacity *changes* (link
    degradations) as long as no finite link becomes infinite or vice
    versa.  Raises :class:`~repro.errors.UnboundedRateError` if some flow
    crosses only infinite links.
    """
    np = _require_numpy()
    link_flows = routing.flows_per_link()
    validate_capacities(link_flows, capacities)

    flows = routing.flows()
    links = [
        link for link in link_flows if float(capacities[link]) != _INF
    ]
    infinite = [
        link for link in link_flows if float(capacities[link]) == _INF
    ]
    link_index: Dict[Link, int] = {link: j for j, link in enumerate(links)}
    flow_index: Dict[Flow, int] = {flow: i for i, flow in enumerate(flows)}

    flow_ptr = np.zeros(len(flows) + 1, dtype=np.int64)
    flow_link_ids: List[int] = []
    unbounded: List[Flow] = []
    for i, flow in enumerate(flows):
        finite = [
            link_index[link]
            for link in routing.links_of(flow)
            if link in link_index
        ]
        if not finite:
            unbounded.append(flow)
        flow_link_ids.extend(finite)
        flow_ptr[i + 1] = len(flow_link_ids)
    if unbounded:
        raise UnboundedRateError(
            f"flows with no finite-capacity link on their path: {unbounded!r}"
        )

    link_ptr = np.zeros(len(links) + 1, dtype=np.int64)
    link_flow_ids: List[int] = []
    for j, link in enumerate(links):
        link_flow_ids.extend(flow_index[f] for f in link_flows[link])
        link_ptr[j + 1] = len(link_flow_ids)

    _COMPILES.inc()
    return CompiledRouting(
        flows,
        links,
        flow_ptr,
        np.asarray(flow_link_ids, dtype=np.int64),
        link_ptr,
        np.asarray(link_flow_ids, dtype=np.int64),
        infinite_links=infinite,
    )


def incidence_stale(
    compiled: CompiledRouting, capacities: Mapping[Link, Rate]
) -> bool:
    """Whether ``capacities`` invalidates ``compiled``'s link membership.

    The compiled incidence freezes *which* links are finite; capacity
    changes that only rescale finite links keep it valid, but a link
    crossing the finite/infinite boundary (a total link failure modeled
    as infinite, or an infinite interior link acquiring a budget) does
    not.  Callers re-solving under evolving capacities (the flow-level
    simulator replaying a :class:`~repro.failures.schedule.FailureSchedule`)
    must recompile when this returns True.
    """
    for link in compiled.links:
        if float(capacities[link]) == _INF:
            return True
    for link in compiled.infinite_links:
        if float(capacities[link]) != _INF:
            return True
    return False


def capacity_vector(
    compiled: CompiledRouting, capacities: Mapping[Link, Rate]
):
    """The float capacity array matching ``compiled.links`` order."""
    np = _require_numpy()
    return np.asarray(
        [float(capacities[link]) for link in compiled.links],
        dtype=np.float64,
    )


def _row_hits(flow_ptr, flow_link, frozen_ids, n_links, link_base=0):
    """Per-link occurrence counts over ``frozen_ids``' CSR rows.

    A vectorized multi-slice gather of the rows followed by one
    ``bincount`` — the round kernel's "remove these flows from every
    link they cross" step, shared with the streaming solver's
    checkpoint replay (:mod:`repro.core.streaming`) and the batched
    multi-scenario kernel (:mod:`repro.core.batched`, which passes
    ``link_base`` to translate global block-diagonal link ids into the
    chunk-local range ``[0, n_links)``).
    """
    np = _np
    lens = flow_ptr[frozen_ids + 1] - flow_ptr[frozen_ids]
    total = int(lens.sum())
    offsets = np.repeat(np.cumsum(lens) - lens, lens)
    idx = (
        np.repeat(flow_ptr[frozen_ids], lens)
        + np.arange(total, dtype=np.int64)
        - offsets
    )
    columns = flow_link[idx]
    if link_base:
        columns = columns - link_base
    return np.bincount(columns, minlength=n_links)


def _run_rounds(
    flow_ptr,
    flow_link,
    gather_members,
    n_links,
    residual,
    count,
    active,
    rates,
    remaining,
    start_round: int = 0,
    on_round_start=None,
    on_round_end=None,
):
    """The water-filling round loop over raw incidence arrays.

    Mutates ``residual`` / ``count`` / ``active`` / ``rates`` in place
    and returns the number of rounds executed.  ``gather_members(sat_idx)``
    must return the (possibly stale/frozen — they are mask-filtered)
    member flow ids of the saturating links; the indirection lets the
    streaming solver run the identical float operation sequence over its
    mutable slot arrays, which is what makes incremental suffix
    resumption bit-exact against a from-scratch solve.  ``on_round_start``
    observes the pre-round ``(residual, count)`` state (checkpointing);
    ``on_round_end`` observes each round's freeze level and frozen ids
    (trace recording).  Neither hook may mutate the arrays.
    """
    np = _np
    levels = np.empty(n_links, dtype=np.float64)
    rnd = start_round
    while remaining > 0:
        alive = count > 0
        if not alive.any():
            # Cannot happen: every active flow keeps each of its
            # links' counts positive.
            raise AssertionError("water-filling invariant violated")
        if on_round_start is not None:
            on_round_start(rnd, residual, count)
        levels.fill(_INF)
        np.divide(residual, count, out=levels, where=alive)
        lam = float(levels.min())
        if lam < 0.0:
            # Float rounding can leave a residual at -1e-16; clamp
            # so the resulting rates stay non-negative.
            lam = 0.0
        sat_idx = np.nonzero(levels <= lam + _BAND * (1.0 + lam))[0]

        # Freeze the active flows on the saturating links.  Each
        # round touches only those links' member slices (not the
        # whole incidence), so total gather work across all rounds
        # is O(nnz).
        members = gather_members(sat_idx)
        frozen_ids = members[active[members]]
        if frozen_ids.size == 0:
            # Every member of the argmin link was already frozen —
            # impossible while its count stays positive.
            raise AssertionError("water-filling invariant violated")
        frozen_ids = np.unique(frozen_ids)
        rates[frozen_ids] = lam
        active[frozen_ids] = False
        remaining -= int(frozen_ids.size)

        hit = _row_hits(flow_ptr, flow_link, frozen_ids, n_links)
        residual -= lam * hit
        count -= hit
        if on_round_end is not None:
            on_round_end(rnd, lam, frozen_ids)
        rnd += 1
        _ROUNDS.inc()
    return rnd - start_round


def waterfill(compiled: CompiledRouting, caps) -> "Sequence[float]":
    """Vectorized progressive filling; returns per-flow rates as a
    float array indexed like ``compiled.flows``.

    Each round: compute every unsaturated link's saturation level
    ``residual / unfrozen_count``, take the minimum ``λ``, saturate every
    link within a relative tolerance band of ``λ`` (batching exact ties
    and divide-rounding twins), freeze their unfrozen flows at ``λ``, and
    decrement residuals/counts on all links those flows cross via one
    ``bincount``.  Freeze levels are non-decreasing, so the result is the
    max-min fair allocation — agreeing with the heap solvers to well
    under 1e-12.
    """
    np = _require_numpy()
    n_flows = len(compiled.flows)
    n_links = len(compiled.links)
    rates = np.zeros(n_flows, dtype=np.float64)
    if n_flows == 0:
        return rates

    residual = np.asarray(caps, dtype=np.float64).copy()
    if residual.shape != (n_links,):
        raise ValueError(
            f"capacity vector has shape {residual.shape}, "
            f"expected ({n_links},)"
        )
    count = np.diff(compiled.link_ptr).astype(np.float64)
    active = np.ones(n_flows, dtype=bool)
    remaining = n_flows
    link_ptr, link_flow = compiled.link_ptr, compiled.link_flow

    def gather_members(sat_idx):
        return np.concatenate(
            [link_flow[link_ptr[j]:link_ptr[j + 1]] for j in sat_idx]
        )

    _SOLVES.inc()
    with trace_span("maxmin.water_fill_vectorized", flows=n_flows) as span:
        rounds = _run_rounds(
            compiled.flow_ptr,
            compiled.flow_link,
            gather_members,
            n_links,
            residual,
            count,
            active,
            rates,
            remaining,
        )
        span.set(rounds=rounds)

    _check_waterfill(compiled, np.asarray(caps, dtype=np.float64), rates)
    return rates


def _check_waterfill(compiled: CompiledRouting, caps, rates) -> None:
    """The ``cheap``-level certificate, vectorized.

    Runs whenever validation is enabled (``full`` adds nothing here —
    the bottleneck certificate needs flow/link objects and lives in the
    :class:`~repro.core.allocation.Allocation`-returning entry points).
    NaN/overflow detection and per-link feasibility are pure array ops
    so the check stays inside the bench budget on the hot simulation
    path.
    """
    from repro import validate as _validate

    level = _validate.validation_level()
    if level == "off":
        return
    np = _np
    failures = []
    if not np.isfinite(rates).all():
        bad = [
            compiled.flows[i]
            for i in np.nonzero(~np.isfinite(rates))[0][:5]
        ]
        failures.append(f"non-finite (NaN/inf) rates for flows: {bad!r}")
    elif rates.size and float(rates.min()) < 0.0:
        failures.append(f"negative rates (min {float(rates.min())!r})")
    else:
        weights = np.repeat(rates, np.diff(compiled.flow_ptr))
        loads = np.bincount(
            compiled.flow_link, weights=weights, minlength=len(compiled.links)
        )
        slack = caps + _validate.FLOAT_TOL * (1.0 + np.abs(caps))
        over = np.nonzero(loads > slack)[0]
        for j in over[:5]:
            failures.append(
                f"link {compiled.links[j]!r} overloaded: load "
                f"{float(loads[j])!r} > capacity {float(caps[j])!r}"
            )
    _validate.record_check("cheap", "maxmin.vectorized", failures)


def max_min_fair_vectorized(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    compiled: CompiledRouting = None,
) -> Allocation:
    """Float max-min fair allocation via the vectorized kernel.

    Semantics identical to :func:`repro.core.maxmin.max_min_fair` with
    ``exact=False``.  Pass a pre-built ``compiled`` (from
    :func:`compile_routing`) to skip recompilation when re-solving the
    same routing under different capacities.
    """
    if compiled is None:
        if not routing.flows():
            return Allocation({})
        compiled = compile_routing(routing, capacities)
    rates = waterfill(compiled, capacity_vector(compiled, capacities))
    allocation = Allocation(
        {flow: float(rate) for flow, rate in zip(compiled.flows, rates)}
    )
    from repro import validate as _validate

    # waterfill already ran the cheap array checks; only the full-level
    # bottleneck certificate needs the allocation-level pass.
    if _validate.validation_level() == "full":
        _validate.validate_allocation(
            routing, capacities, allocation,
            level="full", context="maxmin.vectorized",
        )
    return allocation
