"""Incremental max-min water-filling under live flow churn (the
``streaming`` backend).

The flow-level simulator re-derives the max-min allocation every time
the unsplittable-flow set changes; solving from scratch on every
arrival/departure makes each event cost a full water-fill.
:class:`StreamingMaxMin` keeps the solver state of the *last* solve —
the CSR flow×link incidence (the :mod:`repro.core.vectorized` array
layout over mutable slots), the non-decreasing sequence of per-round
freeze levels ``λ_0 ≤ λ_1 ≤ …``, each flow's freeze round, and periodic
``(residual, count)`` checkpoints — and on the next batch of
arrivals/departures recomputes only the *suffix* of rounds the batch can
actually affect.

Why a suffix is enough:

- A **departing** flow frozen at round ``r`` cannot change rounds
  ``< r``: none of its links saturates before ``r`` (a saturating link
  freezes all its active members, the departing flow included), so its
  presence only contributed an unfrozen ``count`` entry that never
  entered the saturating set — levels and freeze groups of the prefix
  are unchanged.
- An **arriving** flow only lowers the saturation levels of the links it
  crosses.  Scanning each such link's stored residual/count trajectory
  finds the first round where its new level ``residual / (count + Δ)``
  enters the round's saturation band; before that round the prefix is
  unchanged.

The resume round ``r*`` is the minimum over both.  State at ``r*`` is
rebuilt **bit-exactly**: the nearest checkpoint at ``r0 ≤ r*`` is
replayed forward with the same ``residual -= λ_r · hit`` array
operations the kernel performed, so the suffix re-solve continues the
identical float operation sequence a from-scratch solve would have run —
streaming rates are *byte-identical* to fresh
:func:`~repro.core.vectorized.waterfill` results, not merely close
(property-tested in ``tests/test_streaming.py``).

Structural changes fall back safely: capacity-value changes invalidate
the trace (next solve is full), a finite↔infinite membership flip (the
PR 6 ``incidence_stale`` regression class) or an accumulated backlog of
dead slots triggers a recompile of the incidence itself.  ``exact=True``
switches to a ``Fraction`` implementation of the same prefix-reuse
argument (order never matters for exact arithmetic — the max-min
allocation is unique).

Every solve can be cross-checked against the exact reference solver —
``shadow=`` a fraction, or the ambient ``REPRO_SHADOW`` environment
variable exactly as ``solve_max_min(backend="auto")`` honors it.  A
disagreement is quarantined (reason ``stream-mismatch``) with the event
prefix that produced it, counted, answered with the reference rates, and
the next solve is forced full.
"""

from __future__ import annotations

from collections import deque
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

try:  # pragma: no cover - exercised implicitly on import
    import numpy as _np
except ImportError:  # pragma: no cover - the image bakes numpy in
    _np = None

from repro.errors import UnboundedRateError, UnknownLinkError
from repro.core.allocation import Allocation, Rate
from repro.core.flows import Flow
from repro.core.routing import Link, Routing
from repro.core.vectorized import (
    _BAND,
    _INF,
    _require_numpy,
    _row_hits,
    _run_rounds,
)
from repro.obs import counter, get_logger, trace_span

#: Freeze round assigned to slots no solve has frozen yet (staged
#: arrivals); compares greater than any real round index.
_NEVER = 1 << 60

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_PATCHED = counter("solver.stream.patched")
_FULLSOLVE = counter("solver.stream.fullsolve")
_RECOMPILES = counter("solver.stream.recompiles")
_SHADOW_CHECKS = counter("solver.stream.shadow_checks")
_MISMATCHES = counter("solver.stream.mismatches")

__all__ = ["StreamingMaxMin", "streaming_max_min"]


def _path_links(path) -> List[Link]:
    return list(zip(path, path[1:]))


def _fmt_event(event) -> str:
    """Render a lazily-recorded event-log entry (kept as tuples on the
    hot path; formatting only happens when a bundle is quarantined)."""
    kind = event[0]
    if kind == "add":
        return f"add {event[1]!r} via {event[2][1:-1]!r}"
    if kind == "remove":
        return f"remove {event[1]!r}"
    if kind == "remove-staged":
        return f"remove {event[1]!r} (cancelled staged add)"
    return f"set_capacities ({event[1]})"


class StreamingMaxMin:
    """A max-min fair allocator that absorbs flow churn incrementally.

    ``capacities`` is the link → capacity map of the whole fabric (the
    usual ``network.graph.capacities()``).  Flows are added with their
    pinned path (:meth:`add`), removed on completion (:meth:`remove`),
    and :meth:`solve` returns the max-min rates of the current set —
    reusing the unaffected prefix of the previous solve's bottleneck
    rounds whenever it can (``solver.stream.patched``) and falling back
    to a full re-solve otherwise (``solver.stream.fullsolve``).

    Keys should be :class:`~repro.core.flows.Flow` objects (tag them to
    distinguish parallel transfers); paths are node sequences as in
    :class:`~repro.core.routing.Routing`.  Rates are floats, or exact
    ``Fraction`` values with ``exact=True``.

    ``checkpoint_every`` controls how often ``(residual, count)`` round
    snapshots are kept for bit-exact replay (float mode);
    ``max_dead_fraction`` bounds the tolerated fraction of dead slots
    before the incidence is compacted; ``shadow`` cross-checks that
    fraction of solves against the exact reference (``None`` defers to
    the ``REPRO_SHADOW`` environment variable).
    """

    def __init__(
        self,
        capacities: Mapping[Link, Rate],
        exact: bool = False,
        checkpoint_every: int = 16,
        max_dead_fraction: float = 0.25,
        shadow: Optional[float] = None,
        quarantine_dir: Optional[str] = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self._exact = bool(exact)
        self._checkpoint_every = int(checkpoint_every)
        self._max_dead_fraction = float(max_dead_fraction)
        self._shadow = shadow
        self._quarantine_dir = quarantine_dir

        #: Committed flow → path (reflects the last applied batch).
        self._paths: Dict[Flow, Tuple] = {}
        self._pending_add: Dict[Flow, Tuple] = {}
        self._pending_remove: Dict[Flow, None] = {}
        self._rates: Dict[Flow, Rate] = {}
        #: Bounded event log since construction — the "event prefix"
        #: captured into ``stream-mismatch`` quarantine bundles.
        self._events: deque = deque(maxlen=256)

        # Float-mode state (built lazily at the first solve).
        self._compiled = False
        self._needs_recompile = True
        self._full_needed = True
        self._trace = None  # (levels: List[float], ckpts: {round: (res, cnt)})

        # Exact-mode state.
        self._x_links: Dict[Flow, List[Link]] = {}
        self._x_members: Dict[Link, Dict[Flow, None]] = {}
        self._x_caps: Dict[Link, Fraction] = {}
        self._x_levels: Optional[List[Fraction]] = None
        self._x_fr: Dict[Flow, int] = {}
        self._x_rates: Dict[Flow, Fraction] = {}

        # Lifetime statistics (mirrored into the obs counters).
        self._solves = 0
        self._patched = 0
        self._fullsolves = 0
        self._recompiles = 0
        self._shadow_checks = 0
        self._mismatches = 0
        self.last_bundle: Optional[str] = None

        self._caps: Dict[Link, Rate] = {}
        self._finite_set = frozenset()
        # Lazy link registry: only links actually traversed by a
        # compiled flow get an array slot.  A pod-sharded solver over a
        # 32k-link fabric then carries ~2k-wide arrays instead of
        # rebuilding full-fabric state on every (re)compile.
        self._link_index: Dict[Link, int] = {}
        self._link_of: List[Link] = []
        self._nlinks = 0
        self._install_capacities(capacities)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._paths) + len(self._pending_add) - len(
            self._pending_remove
        )

    def flows(self) -> List[Flow]:
        """The tracked flows (committed plus staged, minus staged removes)."""
        current = [
            flow for flow in self._paths if flow not in self._pending_remove
        ]
        current.extend(self._pending_add)
        return current

    def routing(self) -> Routing:
        """The committed flow set as a :class:`Routing` (post-:meth:`solve`)."""
        return Routing(dict(self._paths))

    @property
    def stats(self) -> Dict[str, int]:
        """Lifetime solve statistics for this instance."""
        return {
            "solves": self._solves,
            "patched": self._patched,
            "fullsolve": self._fullsolves,
            "recompiles": self._recompiles,
            "shadow_checks": self._shadow_checks,
            "mismatches": self._mismatches,
        }

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, flow: Flow, path) -> None:
        """Stage an arrival: ``flow`` pinned to ``path`` (a node sequence).

        Validated eagerly: every link must exist in the capacity map and
        at least one must be finite (else the flow's rate would be
        unbounded).  Takes effect at the next :meth:`solve`.
        """
        path = tuple(path)
        if len(path) < 2:
            raise ValueError(f"path must have >= 2 nodes: {path!r}")
        if flow in self._pending_add or (
            flow in self._paths and flow not in self._pending_remove
        ):
            raise ValueError(f"flow is already tracked: {flow!r}")
        caps = self._caps
        finite = self._finite_set
        bounded = False
        missing = None
        for link in zip(path, path[1:]):
            if link not in caps:
                missing = link
                break
            if link in finite:
                bounded = True
        if missing is not None:
            raise UnknownLinkError(
                f"path links missing from the capacity map: {[missing]!r}"
            )
        if not bounded:
            raise UnboundedRateError(
                f"flow with no finite-capacity link on its path: {flow!r}"
            )
        self._pending_add[flow] = path
        self._events.append(("add", flow, path))

    def remove(self, flow: Flow) -> None:
        """Stage a departure.  Takes effect at the next :meth:`solve`."""
        if flow in self._pending_add:
            del self._pending_add[flow]  # arrived and left within one batch
            self._events.append(("remove-staged", flow))
            return
        if flow not in self._paths or flow in self._pending_remove:
            raise KeyError(f"flow is not tracked: {flow!r}")
        self._pending_remove[flow] = None
        self._events.append(("remove", flow))

    def set_capacities(self, capacities: Mapping[Link, Rate]) -> None:
        """Replace the capacity map (link degradations / recoveries).

        Value-only changes keep the compiled incidence and cost one full
        re-solve; a change to *which* links are finite (a total failure
        modeled as infinite, or vice versa — the ``incidence_stale``
        class) additionally recompiles the incidence.
        """
        caps = dict(capacities)
        new_finite = frozenset(
            link for link, value in caps.items() if float(value) != _INF
        )
        structural = (
            new_finite != self._finite_set
            or frozenset(caps) != frozenset(self._caps)
        )
        self._caps = caps
        self._full_needed = True
        if structural:
            self._finite_set = new_finite
            self._needs_recompile = True
            self._events.append(("caps", "structural"))
        else:
            self._events.append(("caps", "values"))
            if self._compiled:
                for link, j in self._link_index.items():
                    self._caps_arr[j] = float(caps[link])
            if self._x_levels is not None:
                self._x_caps = {
                    link: Fraction(caps[link]) for link in self._x_caps
                }

    def _install_capacities(self, capacities: Mapping[Link, Rate]) -> None:
        caps = dict(capacities)
        self._caps = caps
        self._finite_set = frozenset(
            link for link, value in caps.items() if float(value) != _INF
        )
        self._needs_recompile = True
        self._full_needed = True

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self) -> Dict[Flow, Rate]:
        """Apply staged events and return the max-min rates per flow."""
        adds = self._pending_add
        removes = list(self._pending_remove)
        self._pending_add = {}
        self._pending_remove = {}
        self._solves += 1
        if self._exact:
            rates = self._solve_exact(adds, removes)
        else:
            rates = self._solve_float(adds, removes)
        self._rates = rates
        rates = self._maybe_shadow(rates)
        self._validate_full(rates)
        return dict(rates)

    # -------------------------- float mode ----------------------------
    def _solve_float(self, adds, removes) -> Dict[Flow, float]:
        np = _require_numpy()
        with trace_span(
            "maxmin.water_fill_streaming",
            adds=len(adds),
            removes=len(removes),
            flows=len(self._paths) + len(adds) - len(removes),
        ) as span:
            for flow in removes:
                del self._paths[flow]
            for flow, path in adds.items():
                self._paths[flow] = path

            dead_after = (0 if self._needs_recompile else self._dead) + len(
                removes
            )
            compact = (
                not self._needs_recompile
                and self._nslots
                and dead_after > 32
                and dead_after > self._max_dead_fraction * self._nslots
            )
            full = self._full_needed or self._trace is None or compact

            if full:
                self._trace = None  # skip checkpoint upkeep during apply
                if self._needs_recompile:
                    self._recompile()
                else:
                    add_rows = {
                        flow: self._compile_row(path)
                        for flow, path in adds.items()
                    }
                    self._apply_batch(add_rows, removes, rebuild=compact)
                    if compact:
                        self._compact()
                self._full_solve()
                self._fullsolves += 1
                _FULLSOLVE.inc()
                span.set(mode="full")
            else:
                add_rows = {
                    flow: self._compile_row(path)
                    for flow, path in adds.items()
                }
                delta = self._link_delta(add_rows, removes)
                r_star = self._divergence_round(add_rows, removes, delta)
                self._apply_batch(add_rows, removes, delta)
                if r_star <= 0:
                    self._trace = None
                    self._full_solve()
                    self._fullsolves += 1
                    _FULLSOLVE.inc()
                    span.set(mode="full", resume_round=0)
                else:
                    self._resume_solve(r_star)
                    self._patched += 1
                    _PATCHED.inc()
                    span.set(mode="patched", resume_round=r_star)
            self._full_needed = False

            alive_slots = np.nonzero(self._alive[: self._nslots])[0]
            flow_of = self._flow_of
            arr = self._rates_arr
            rates = {
                flow_of[slot]: float(arr[slot]) for slot in alive_slots
            }
        self._check_cheap()
        return rates

    def _recompile(self) -> None:
        """Rebuild slot arrays, member lists, and per-link counts from
        the committed path map (drops the trace).

        Links are (re-)registered lazily as the committed paths are
        compiled, so cost scales with the *traversed* footprint of the
        flow set, not the size of the capacity map."""
        np = _np
        self._link_index = {}
        self._link_of = []
        self._nlinks = 0
        self._caps_arr = np.zeros(64, dtype=np.float64)
        self._link_count = np.zeros(64, dtype=np.int64)
        n_flows = len(self._paths)
        slot_cap = max(16, 2 * n_flows)
        nnz_cap = max(64, 8 * max(1, n_flows))
        self._flow_ptr = np.zeros(slot_cap + 1, dtype=np.int64)
        self._flow_link = np.zeros(nnz_cap, dtype=np.int64)
        self._alive = np.zeros(slot_cap, dtype=bool)
        self._fr = np.full(slot_cap, _NEVER, dtype=np.int64)
        self._rates_arr = np.zeros(slot_cap, dtype=np.float64)
        self._nslots = 0
        self._nnz = 0
        self._dead = 0
        self._slot_of: Dict[Flow, int] = {}
        self._flow_of: List[Optional[Flow]] = []
        for flow, path in self._paths.items():
            self._append_slot(flow, self._compile_row(path))
        self._rebuild_members()
        self._trace = None
        self._compiled = True
        self._needs_recompile = False
        self._recompiles += 1
        _RECOMPILES.inc()

    def _rebuild_members(self) -> None:
        """Rebuild the link→member-slot CSR (and alive counts) from the
        flow→link CSR by a stable transpose — array ops only.  Valid
        when every slot is alive (post-recompile/-compaction)."""
        np = _np
        nslots, nnz = self._nslots, self._nnz
        links = self._flow_link[:nnz]
        lens = np.diff(self._flow_ptr[: nslots + 1])
        rows = np.repeat(np.arange(nslots, dtype=np.int64), lens)
        order = np.argsort(links, kind="stable")
        self._member_rows = rows[order]
        self._member_ptr = np.searchsorted(
            links[order], np.arange(self._nlinks + 1)
        )
        self._member_extra: Dict[int, List[int]] = {}
        self._link_count[: self._nlinks] = np.bincount(
            links, minlength=self._nlinks
        )

    def _link_members(self, j: int):
        """Member slots of link ``j``: the CSR base plus any slots
        appended since the last rebuild (may include dead slots — the
        callers mask by ``_alive``)."""
        np = _np
        ptr = self._member_ptr
        if j + 1 < ptr.size:
            base = self._member_rows[ptr[j] : ptr[j + 1]]
        else:  # registered after the last rebuild
            base = self._member_rows[:0]
        extra = self._member_extra.get(j)
        if extra is None:
            return base
        return np.concatenate(
            (base, np.asarray(extra, dtype=np.int64))
        )

    def _compact(self) -> None:
        """Repack the CSR over the alive slots, keeping the link registry.

        Unlike :meth:`_recompile` this never re-derives rows from paths:
        alive CSR segments are gathered wholesale with array ops, so
        reclaiming dead slots costs O(nnz) regardless of how the flows
        route.  The trace is dropped (slot ids change), so the caller
        follows up with a full solve."""
        np = _np
        nslots = self._nslots
        alive_idx = np.nonzero(self._alive[:nslots])[0]
        ptr = self._flow_ptr
        lens = ptr[alive_idx + 1] - ptr[alive_idx]
        total = int(lens.sum())
        starts = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(lens))
        )
        if total:
            idx = (
                np.repeat(ptr[alive_idx], lens)
                + np.arange(total, dtype=np.int64)
                - np.repeat(starts[:-1], lens)
            )
            new_link = self._flow_link[idx]
        else:
            new_link = np.empty(0, dtype=np.int64)
        n_alive = int(alive_idx.size)
        slot_cap = max(16, 2 * n_alive)
        nnz_cap = max(64, 2 * max(1, total))
        flow_ptr = np.zeros(slot_cap + 1, dtype=np.int64)
        flow_ptr[1 : n_alive + 1] = starts[1:]
        flow_link = np.zeros(nnz_cap, dtype=np.int64)
        flow_link[:total] = new_link
        flow_of_old = self._flow_of
        self._flow_of = [flow_of_old[slot] for slot in alive_idx]
        self._slot_of = {
            flow: slot for slot, flow in enumerate(self._flow_of)
        }
        alive = np.zeros(slot_cap, dtype=bool)
        alive[:n_alive] = True
        self._flow_ptr = flow_ptr
        self._flow_link = flow_link
        self._alive = alive
        self._fr = np.full(slot_cap, _NEVER, dtype=np.int64)
        self._rates_arr = np.zeros(slot_cap, dtype=np.float64)
        self._nslots = n_alive
        self._nnz = total
        self._dead = 0
        self._rebuild_members()
        self._trace = None
        self._recompiles += 1
        _RECOMPILES.inc()

    def _register_link(self, link: Link) -> int:
        """Assign an array slot to a finite link on first traversal."""
        np = _np
        try:
            cap = float(self._caps[link])
        except KeyError:  # pragma: no cover - guarded in add()
            raise UnknownLinkError(
                f"path link missing from the capacity map: {link!r}"
            ) from None
        j = self._nlinks
        if j >= self._caps_arr.size:
            grow = max(64, self._caps_arr.size)
            self._caps_arr = np.concatenate(
                (self._caps_arr, np.zeros(grow, dtype=np.float64))
            )
            self._link_count = np.concatenate(
                (self._link_count, np.zeros(grow, dtype=np.int64))
            )
        self._caps_arr[j] = cap
        self._link_count[j] = 0
        self._link_of.append(link)
        self._link_index[link] = j
        self._nlinks = j + 1
        return j

    def _compile_row(self, path):
        """The finite-link-id row of a path under the current index,
        registering links the solver has not seen traversed yet."""
        np = _np
        index = self._link_index
        finite = self._finite_set
        links = []
        for link in _path_links(path):
            if link not in finite:
                continue
            j = index.get(link)
            if j is None:
                j = self._register_link(link)
            links.append(j)
        if not links:
            raise UnboundedRateError(
                f"flow with no finite-capacity link on its path: {path!r}"
            )
        return np.asarray(links, dtype=np.int64)

    def _append_slot(self, flow: Flow, row) -> int:
        np = _np
        slot = self._nslots
        if slot >= self._alive.size:
            grow = max(16, self._alive.size)
            self._flow_ptr = np.concatenate(
                (self._flow_ptr, np.zeros(grow, dtype=np.int64))
            )
            self._alive = np.concatenate(
                (self._alive, np.zeros(grow, dtype=bool))
            )
            self._fr = np.concatenate(
                (self._fr, np.full(grow, _NEVER, dtype=np.int64))
            )
            self._rates_arr = np.concatenate(
                (self._rates_arr, np.zeros(grow, dtype=np.float64))
            )
        end = self._nnz + row.size
        if end > self._flow_link.size:
            grow = max(end - self._flow_link.size, self._flow_link.size)
            self._flow_link = np.concatenate(
                (self._flow_link, np.zeros(grow, dtype=np.int64))
            )
        self._flow_link[self._nnz : end] = row
        self._flow_ptr[slot + 1] = end
        self._nnz = end
        self._alive[slot] = True
        self._fr[slot] = _NEVER
        self._rates_arr[slot] = 0.0
        self._slot_of[flow] = slot
        self._flow_of.append(flow)
        self._nslots = slot + 1
        return slot

    def _link_delta(self, add_rows, removes) -> Dict[int, int]:
        """Net change in alive member count per finite link id."""
        delta: Dict[int, int] = {}
        for row in add_rows.values():
            for j in row:
                j = int(j)
                delta[j] = delta.get(j, 0) + 1
        flow_ptr, flow_link = self._flow_ptr, self._flow_link
        for flow in removes:
            slot = self._slot_of[flow]
            for j in flow_link[flow_ptr[slot] : flow_ptr[slot + 1]]:
                j = int(j)
                delta[j] = delta.get(j, 0) - 1
        return delta

    def _divergence_round(self, add_rows, removes, delta) -> int:
        """The first round the batch can change, ``R`` if none.

        Departures bound it by their freeze rounds; each link gaining
        members is scanned for the first stored round where its new
        level enters the saturation band (bit-exact reconstruction of
        the kernel's residual trajectory, so the decision agrees with
        what a from-scratch solve would do).
        """
        np = _np
        levels_list = self._trace[0]
        n_rounds = len(levels_list)
        if n_rounds == 0:
            return 0
        r_star = n_rounds
        for flow in removes:
            r_star = min(r_star, int(self._fr[self._slot_of[flow]]))
            if r_star == 0:
                return 0
        levels_arr = np.asarray(levels_list, dtype=np.float64)
        band = levels_arr + _BAND * (1.0 + levels_arr)
        for j, extra in delta.items():
            if extra <= 0:
                continue  # net departures only raise this link's levels
            first = self._scan_link(j, extra, levels_arr, band)
            r_star = min(r_star, first)
            if r_star == 0:
                return 0
        return r_star

    def _scan_link(self, j, extra, levels_arr, band) -> int:
        np = _np
        n_rounds = levels_arr.size
        cap = float(self._caps_arr[j])
        members = self._link_members(j)
        members = members[self._alive[members]]
        if members.size:
            fr = self._fr[members]
            if int(fr.max()) >= n_rounds:
                raise AssertionError(
                    "streaming trace invariant violated: alive member "
                    "with stale freeze round"
                )
            frozen_per_round = np.bincount(fr, minlength=n_rounds)
        else:
            frozen_per_round = np.zeros(n_rounds, dtype=np.int64)
        # Start-of-round residual, reproduced with the kernel's own
        # subtraction sequence (accumulate is defined left-to-right):
        # residual_r = cap - Σ_{q<r} λ_q · (#flows frozen on j at q).
        drained = levels_arr * frozen_per_round
        residual = np.add.accumulate(
            np.concatenate((np.asarray([cap]), -drained))
        )[:n_rounds]
        unfrozen = members.size - np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(frozen_per_round))
        )[:n_rounds]
        denom = unfrozen + extra
        new_level = np.full(n_rounds, _INF, dtype=np.float64)
        np.divide(residual, denom, out=new_level, where=denom > 0)
        hits = np.nonzero(new_level <= band)[0]
        return int(hits[0]) if hits.size else n_rounds

    def _apply_batch(self, add_rows, removes, delta=None, rebuild=False) -> None:
        np = _np
        if delta is None and not rebuild:
            # Must precede the kill loop: _link_delta resolves removed
            # flows through _slot_of, which the kills pop.
            delta = self._link_delta(add_rows, removes)
        for flow in removes:
            slot = self._slot_of.pop(flow)
            self._alive[slot] = False
            self._flow_of[slot] = None
            self._dead += 1
        if rebuild:
            # A compaction follows immediately: it rebuilds the member
            # CSR, alive counts, and (dropped) trace wholesale, so the
            # per-link bookkeeping below would be thrown away.
            for flow, row in add_rows.items():
                self._append_slot(flow, row)
            return
        member_extra = self._member_extra
        for flow, row in add_rows.items():
            slot = self._append_slot(flow, row)
            for j in row:
                member_extra.setdefault(int(j), []).append(slot)
        for j, extra in delta.items():
            self._link_count[j] += extra
        if self._trace is not None and delta:
            # Kept checkpoints stay valid for the new flow set after a
            # count shift: every departed flow was still unfrozen at
            # rounds ≤ r* (its freeze round bounds r*), and arrivals are
            # unfrozen everywhere — neither contributes to residuals.
            # Links registered since a checkpoint was recorded carried
            # no flow during that solve, so their state at every stored
            # round is exactly (capacity, 0) — pad before shifting.
            nl = self._nlinks
            ckpts = self._trace[1]
            for rnd, (res, count) in list(ckpts.items()):
                if count.size < nl:
                    res = np.concatenate((res, self._caps_arr[count.size:nl]))
                    count = np.concatenate(
                        (count, np.zeros(nl - count.size, dtype=count.dtype))
                    )
                    ckpts[rnd] = (res, count)
                for j, extra in delta.items():
                    count[j] += extra

    def _full_solve(self) -> None:
        np = _np
        self._assert_bounded()
        n_links = self._nlinks
        residual = self._caps_arr[:n_links].copy()
        count = self._link_count[:n_links].astype(np.float64)
        active = self._alive.copy()
        remaining = int(active.sum())
        self._rates_arr[: self._nslots] = 0.0
        self._trace = ([], {})
        if remaining:
            _run_rounds(
                self._flow_ptr,
                self._flow_link,
                self._gather,
                n_links,
                residual,
                count,
                active,
                self._rates_arr,
                remaining,
                start_round=0,
                on_round_start=self._on_round_start,
                on_round_end=self._on_round_end,
            )

    def _resume_solve(self, r_star: int) -> None:
        np = _np
        levels_list, checkpoints = self._trace
        # Nearest checkpoint at or below the resume round (round 0 is
        # implicit: full capacities and current alive counts).
        r0 = 0
        for rnd in checkpoints:
            if r0 < rnd <= r_star:
                r0 = rnd
        if r0:
            res, cnt = checkpoints[r0]
            residual = res.copy()
            count = cnt.copy()
        else:
            residual = self._caps_arr[: self._nlinks].copy()
            count = self._link_count[: self._nlinks].astype(np.float64)
        for rnd in list(checkpoints):
            if rnd >= r_star:
                del checkpoints[rnd]

        n_links = self._nlinks
        fr = self._fr[: self._nslots]
        alive = self._alive[: self._nslots]
        if r_star > r0:
            # Replay rounds r0..r*-1 with the identical array ops the
            # kernel performed, so the state entering the suffix is
            # bit-exact.
            sel = np.nonzero(alive & (fr >= r0) & (fr < r_star))[0]
            if sel.size:
                order = np.argsort(fr[sel], kind="stable")
                sel = sel[order]
                bounds = np.searchsorted(
                    fr[sel], np.arange(r0, r_star + 1)
                )
                for k in range(r_star - r0):
                    group = sel[bounds[k] : bounds[k + 1]]
                    if group.size == 0:
                        continue
                    hit = _row_hits(
                        self._flow_ptr, self._flow_link, group, n_links
                    )
                    residual -= levels_list[r0 + k] * hit
                    count -= hit

        del levels_list[r_star:]
        active = np.zeros(self._alive.size, dtype=bool)
        active[: self._nslots] = alive & (fr >= r_star)
        remaining = int(active.sum())
        if remaining:
            _run_rounds(
                self._flow_ptr,
                self._flow_link,
                self._gather,
                n_links,
                residual,
                count,
                active,
                self._rates_arr,
                remaining,
                start_round=r_star,
                on_round_start=self._on_round_start,
                on_round_end=self._on_round_end,
            )

    def _gather(self, sat_idx):
        link_members = self._link_members
        return _np.concatenate([link_members(j) for j in sat_idx])

    def _on_round_start(self, rnd, residual, count) -> None:
        if rnd and rnd % self._checkpoint_every == 0:
            self._trace[1][rnd] = (residual.copy(), count.copy())

    def _on_round_end(self, rnd, lam, frozen_ids) -> None:
        self._trace[0].append(lam)
        self._fr[frozen_ids] = rnd

    def _assert_bounded(self) -> None:
        np = _np
        lens = np.diff(self._flow_ptr[: self._nslots + 1])
        empty = self._alive[: self._nslots] & (lens == 0)
        if empty.any():
            bad = [
                self._flow_of[slot] for slot in np.nonzero(empty)[0][:5]
            ]
            raise UnboundedRateError(
                f"flows with no finite-capacity link on their path: {bad!r}"
            )

    def _check_cheap(self) -> None:
        """The cheap-level certificate over the alive rows (array ops)."""
        from repro import validate as _validate

        if _validate.validation_level() == "off":
            return
        np = _np
        failures: List[str] = []
        alive_slots = np.nonzero(self._alive[: self._nslots])[0]
        rates = self._rates_arr[alive_slots]
        if not np.isfinite(rates).all():
            bad = [
                self._flow_of[alive_slots[i]]
                for i in np.nonzero(~np.isfinite(rates))[0][:5]
            ]
            failures.append(f"non-finite (NaN/inf) rates for flows: {bad!r}")
        elif rates.size and float(rates.min()) < 0.0:
            failures.append(f"negative rates (min {float(rates.min())!r})")
        elif alive_slots.size:
            lens = (
                self._flow_ptr[alive_slots + 1] - self._flow_ptr[alive_slots]
            )
            n_links = self._nlinks
            hit = _row_hits(
                self._flow_ptr,
                self._flow_link,
                alive_slots,
                n_links,
            )
            weights = np.repeat(rates, lens)
            idx = (
                np.repeat(self._flow_ptr[alive_slots], lens)
                + np.arange(int(lens.sum()), dtype=np.int64)
                - np.repeat(np.cumsum(lens) - lens, lens)
            )
            loads = np.bincount(
                self._flow_link[idx],
                weights=weights,
                minlength=n_links,
            )
            del hit
            caps = self._caps_arr[:n_links]
            slack = caps + _validate.FLOAT_TOL * (1.0 + np.abs(caps))
            over = np.nonzero(loads > slack)[0]
            for j in over[:5]:
                failures.append(
                    f"link {self._link_of[j]!r} overloaded: load "
                    f"{float(loads[j])!r} > capacity "
                    f"{float(caps[j])!r}"
                )
        _validate.record_check("cheap", "maxmin.streaming", failures)

    # -------------------------- exact mode ----------------------------
    def _solve_exact(self, adds, removes) -> Dict[Flow, Fraction]:
        with trace_span(
            "maxmin.water_fill_streaming",
            adds=len(adds),
            removes=len(removes),
            exact=True,
        ) as span:
            for flow in removes:
                del self._paths[flow]
            for flow, path in adds.items():
                self._paths[flow] = path
            if self._x_levels is None or self._full_needed:
                self._exact_rebuild()
                self._exact_waterfill(0)
                self._fullsolves += 1
                _FULLSOLVE.inc()
                span.set(mode="full")
            else:
                r_star = self._exact_divergence(adds, removes)
                self._exact_apply(adds, removes)
                self._exact_waterfill(r_star)
                if r_star > 0:
                    self._patched += 1
                    _PATCHED.inc()
                    span.set(mode="patched", resume_round=r_star)
                else:
                    self._fullsolves += 1
                    _FULLSOLVE.inc()
                    span.set(mode="full", resume_round=0)
            self._full_needed = False
            self._needs_recompile = False
            return {flow: self._x_rates[flow] for flow in self._paths}

    def _exact_finite_links(self, path) -> List[Link]:
        links = [
            link for link in _path_links(path) if link in self._finite_set
        ]
        if not links:
            raise UnboundedRateError(
                f"flow with no finite-capacity link on its path: {path!r}"
            )
        return links

    def _x_cap(self, link: Link) -> Fraction:
        """Exact capacity of a traversed link, memoized lazily."""
        cap = self._x_caps.get(link)
        if cap is None:
            cap = self._x_caps[link] = Fraction(self._caps[link])
        return cap

    def _exact_rebuild(self) -> None:
        self._x_caps = {}
        self._x_links = {}
        self._x_members = {}
        for flow, path in self._paths.items():
            links = self._exact_finite_links(path)
            self._x_links[flow] = links
            for link in links:
                self._x_cap(link)
                self._x_members.setdefault(link, {})[flow] = None
        self._x_levels = []
        self._x_fr = {}
        self._x_rates = {}
        self._recompiles += 1
        _RECOMPILES.inc()

    def _exact_divergence(self, adds, removes) -> int:
        levels = self._x_levels
        n_rounds = len(levels)
        if n_rounds == 0:
            return 0
        r_star = n_rounds
        for flow in removes:
            r_star = min(r_star, self._x_fr[flow])
            if r_star == 0:
                return 0
        delta: Dict[Link, int] = {}
        for flow, path in adds.items():
            for link in self._exact_finite_links(path):
                delta[link] = delta.get(link, 0) + 1
        for flow in removes:
            for link in self._x_links[flow]:
                delta[link] = delta.get(link, 0) - 1
        for link, extra in delta.items():
            if extra <= 0:
                continue
            members = self._x_members.get(link, {})
            per_round: Dict[int, int] = {}
            for flow in members:
                rnd = self._x_fr[flow]
                per_round[rnd] = per_round.get(rnd, 0) + 1
            residual = self._x_cap(link)
            cnt = len(members)
            for rnd in range(r_star):
                # new level residual/(cnt+extra) <= λ_rnd joins (or
                # undercuts) the round's saturation set — exact
                # comparison, no float band.
                if residual <= levels[rnd] * (cnt + extra):
                    r_star = rnd
                    break
                frozen = per_round.get(rnd, 0)
                if frozen:
                    residual -= levels[rnd] * frozen
                    cnt -= frozen
            if r_star == 0:
                return 0
        return r_star

    def _exact_apply(self, adds, removes) -> None:
        for flow in removes:
            for link in self._x_links.pop(flow):
                members = self._x_members[link]
                del members[flow]
                if not members:
                    del self._x_members[link]
            self._x_fr.pop(flow, None)
            self._x_rates.pop(flow, None)
        for flow, path in adds.items():
            links = self._exact_finite_links(path)
            self._x_links[flow] = links
            for link in links:
                self._x_cap(link)
                self._x_members.setdefault(link, {})[flow] = None

    def _exact_waterfill(self, r_star: int) -> None:
        """Re-solve rounds ``r_star, r_star+1, …`` over exact state."""
        levels = self._x_levels
        del levels[r_star:]
        fr = self._x_fr
        rates = self._x_rates
        unfrozen = {
            flow
            for flow in self._x_links
            if fr.get(flow, _NEVER) >= r_star
        }
        residual: Dict[Link, Fraction] = {}
        cnt: Dict[Link, int] = {}
        for link, members in self._x_members.items():
            left = self._x_caps[link]
            live = 0
            for flow in members:
                if fr.get(flow, _NEVER) < r_star:
                    left -= rates[flow]
                else:
                    live += 1
            residual[link] = left
            cnt[link] = live
        rnd = r_star
        while unfrozen:
            lam = None
            for link, live in cnt.items():
                if live > 0:
                    level = residual[link] / live
                    if lam is None or level < lam:
                        lam = level
            if lam is None:
                raise AssertionError("water-filling invariant violated")
            frozen = set()
            for link, live in cnt.items():
                if live > 0 and residual[link] == lam * live:
                    for flow in self._x_members[link]:
                        if flow in unfrozen:
                            frozen.add(flow)
            if not frozen:
                raise AssertionError("water-filling invariant violated")
            for flow in frozen:
                rates[flow] = lam
                fr[flow] = rnd
                for link in self._x_links[flow]:
                    residual[link] -= lam
                    cnt[link] -= 1
            levels.append(lam)
            unfrozen -= frozen
            rnd += 1

    # ---------------------- cross-checking ----------------------------
    def _shadow_interval(self) -> int:
        if self._shadow is not None:
            fraction = float(self._shadow)
            if fraction <= 0:
                return 0
            return max(1, round(1.0 / min(fraction, 1.0)))
        from repro.core.solve import _shadow_interval

        return _shadow_interval()

    def _maybe_shadow(self, rates: Dict[Flow, Rate]) -> Dict[Flow, Rate]:
        interval = self._shadow_interval()
        if not interval or self._solves % interval:
            return rates
        return self._shadow_check(rates)

    def _shadow_check(self, rates: Dict[Flow, Rate]) -> Dict[Flow, Rate]:
        """Compare against the exact reference; quarantine the event
        prefix on disagreement (reason ``stream-mismatch``) and degrade
        gracefully by answering with the reference rates and forcing the
        next solve full."""
        from repro.core.maxmin import max_min_fair
        from repro.validate import rate_disagreements, validation

        self._shadow_checks += 1
        _SHADOW_CHECKS.inc()
        routing = self.routing()
        with validation("off"):
            reference = max_min_fair(routing, self._caps, exact=True)
        tol = 0.0 if self._exact else 1e-6
        diffs = rate_disagreements(rates, reference.rates(), tol=tol)
        if not diffs:
            return rates
        self._mismatches += 1
        _MISMATCHES.inc()
        from repro.quarantine import quarantine_failure

        failures = list(diffs)
        failures.extend(
            f"event[{index}]: {_fmt_event(event)}"
            for index, event in enumerate(self._events)
        )
        self.last_bundle = quarantine_failure(
            routing,
            self._caps,
            "stream-mismatch",
            "streaming",
            self._exact,
            context="streaming.shadow",
            failures=failures,
            rates=rates,
            directory=self._quarantine_dir,
        )
        get_logger("solver").warning(
            "streaming solve disagreed with reference; answering with "
            "the reference result and forcing a full re-solve",
            disagreements=len(diffs),
            bundle=self.last_bundle,
        )
        self._full_needed = True
        ref_rates = reference.rates()
        if not self._exact:
            ref_rates = {
                flow: float(rate) for flow, rate in ref_rates.items()
            }
        self._rates = dict(ref_rates)
        return ref_rates

    def _validate_full(self, rates: Dict[Flow, Rate]) -> None:
        from repro import validate as _validate

        if _validate.validation_level() != "full":
            return
        _validate.validate_allocation(
            self.routing(),
            self._caps,
            Allocation(dict(rates)),
            level="full",
            context="maxmin.streaming",
        )


def streaming_max_min(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    exact: bool = False,
) -> Allocation:
    """One-shot solve through :class:`StreamingMaxMin` (the dispatch
    target of ``solve_max_min(backend="streaming")``).

    Semantically identical to the vectorized backend for floats and to
    the exact reference for ``exact=True``; the point of the streaming
    backend is :class:`StreamingMaxMin` reuse across churn — a one-shot
    call simply runs one full solve.
    """
    solver = StreamingMaxMin(capacities, exact=exact)
    for flow in routing.flows():
        solver.add(flow, routing.path(flow))
    return Allocation(solver.solve())
