"""Batched multi-scenario water-filling (``solve_max_min_batch``).

The E4/E5 sweeps, the router comparisons, and the enumeration searches
solve thousands of *independent* max-min instances.  Solving them one
at a time pays the per-round Python/NumPy dispatch overhead once per
instance per round; for the small-to-medium instances those workloads
produce, dispatch dominates arithmetic.  This module stacks N
independent routings into **one block-diagonal CSR incidence** (each
scenario's flows and links occupy a contiguous index range, reusing the
:func:`repro.core.vectorized.compile_routing` compile path per
scenario) and water-fills *all scenarios simultaneously*:

- one masked divide computes every unsaturated link's level across the
  whole batch,
- one segmented ``minimum.reduceat`` takes each scenario's own water
  level ``λ_s`` (block boundaries are segment boundaries),
- one tolerance-band comparison selects every saturating link batch-wide,
- one gather + ``bincount`` freezes flows and updates residuals/counts.

Finished scenarios stop contributing work: their water level is forced
to ``-inf`` so the saturation band never selects their links again, and
the loop runs until every scenario's per-scenario termination mask
drains.  Because the incidence is block diagonal, no arithmetic ever
mixes scenarios — every per-element float operation is *identical* to
the one the per-instance :func:`repro.core.vectorized.waterfill` kernel
performs, so batched rates are **byte-identical** to per-instance
solves (property-tested in ``tests/test_batched.py``).

Exact (``Fraction``) requests gain nothing from NumPy batching and are
dispatched per-instance to the reference solver — still through the one
:func:`solve_max_min_batch` front door, so callers keep a single entry
point for both modes.

With ``jobs > 1`` the batch is compiled once in the parent and the
stacked arrays are placed in :mod:`multiprocessing.shared_memory` via
:func:`repro.parallel.shared_arrays`; workers attach zero-copy and each
solves a contiguous scenario range directly into a shared output rates
array, so only ``(first, last)`` index pairs ever cross the pipe.

See ``docs/PERFORMANCE.md`` ("Batched multi-scenario solving") for
measured crossover points and the bench scenario ``batched_sweep``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.allocation import Allocation, Rate
from repro.core.routing import Link, Routing
from repro.core.vectorized import (
    CompiledRouting,
    _require_numpy,
    _row_hits,
    capacity_vector,
    compile_routing,
)
from repro.core import vectorized as _vectorized
from repro.obs import counter, trace_span

_INF = float("inf")

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_SOLVES = counter("batched.solves")
_SCENARIOS = counter("batched.scenarios")
_ROUNDS = counter("batched.rounds")

#: Names (and stacking order) of the arrays a :class:`CompiledBatch`
#: carries — the schema of the shared-memory transport.
ARRAY_NAMES = (
    "flow_ptr",
    "flow_link",
    "link_ptr",
    "link_flow",
    "scn_flow_ptr",
    "scn_link_ptr",
    "scn_of_flow",
    "scn_of_link",
    "caps",
)

__all__ = [
    "ARRAY_NAMES",
    "CompiledBatch",
    "compile_batch",
    "solve_max_min_batch",
    "waterfill_batch",
]


class CompiledBatch:
    """N routings stacked into one block-diagonal CSR incidence.

    Scenario ``s`` owns the flow index range
    ``scn_flow_ptr[s]:scn_flow_ptr[s+1]`` and the link index range
    ``scn_link_ptr[s]:scn_link_ptr[s+1]``; ``flow_ptr``/``flow_link``
    and ``link_ptr``/``link_flow`` are the global CSR incidence and its
    transpose (indices already offset into the global ranges), and
    ``caps`` is the concatenated per-scenario capacity vector.
    ``scn_of_flow``/``scn_of_link`` map global ids back to scenarios.

    ``parts`` holds each scenario's :class:`CompiledRouting` so rate
    arrays can be lifted back to :class:`Allocation` objects; a batch
    rebuilt from bare arrays in a worker process (:meth:`from_arrays`)
    has ``parts is None`` — the kernel never needs the objects.
    """

    __slots__ = ("parts",) + ARRAY_NAMES

    def __init__(self, parts: Optional[List[CompiledRouting]], arrays) -> None:
        self.parts = parts
        for name in ARRAY_NAMES:
            setattr(self, name, arrays[name])

    @property
    def num_scenarios(self) -> int:
        return len(self.scn_flow_ptr) - 1

    @property
    def num_flows(self) -> int:
        return int(self.scn_flow_ptr[-1])

    def as_arrays(self) -> Dict[str, Any]:
        """The bare-array view (the shared-memory transport payload)."""
        return {name: getattr(self, name) for name in ARRAY_NAMES}

    @classmethod
    def from_arrays(cls, arrays: Mapping[str, Any]) -> "CompiledBatch":
        """Rebuild a kernel-ready batch from bare arrays (worker side)."""
        return cls(None, arrays)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledBatch({self.num_scenarios} scenarios, "
            f"{self.num_flows} flows, {len(self.caps)} links)"
        )


def compile_batch(
    instances: Sequence[Tuple[Routing, Mapping[Link, Rate]]],
) -> CompiledBatch:
    """Compile every ``(routing, capacities)`` pair and stack the results.

    Each scenario goes through the per-instance
    :func:`~repro.core.vectorized.compile_routing` path (so unbounded
    flows and malformed capacities raise the same typed errors), then
    the CSR arrays are concatenated with per-scenario offsets into one
    block-diagonal incidence.
    """
    parts: List[CompiledRouting] = []
    caps_vectors = []
    for routing, capacities in instances:
        compiled = compile_routing(routing, capacities)
        parts.append(compiled)
        caps_vectors.append(capacity_vector(compiled, capacities))
    return _stack_parts(parts, caps_vectors)


def _stack_parts(
    parts: List[CompiledRouting], caps_vectors: List[Any]
) -> CompiledBatch:
    """Stack already-compiled scenarios into one block-diagonal batch."""
    np = _require_numpy()
    S = len(parts)
    flow_counts = np.asarray([len(p.flows) for p in parts], dtype=np.int64)
    link_counts = np.asarray([len(p.links) for p in parts], dtype=np.int64)
    scn_flow_ptr = np.zeros(S + 1, dtype=np.int64)
    np.cumsum(flow_counts, out=scn_flow_ptr[1:])
    scn_link_ptr = np.zeros(S + 1, dtype=np.int64)
    np.cumsum(link_counts, out=scn_link_ptr[1:])

    flow_ptr_parts = [np.zeros(1, dtype=np.int64)]
    flow_link_parts = []
    link_ptr_parts = [np.zeros(1, dtype=np.int64)]
    link_flow_parts = []
    nnz = 0
    for s, p in enumerate(parts):
        flow_ptr_parts.append(np.asarray(p.flow_ptr[1:], dtype=np.int64) + nnz)
        flow_link_parts.append(
            np.asarray(p.flow_link, dtype=np.int64) + scn_link_ptr[s]
        )
        link_ptr_parts.append(np.asarray(p.link_ptr[1:], dtype=np.int64) + nnz)
        link_flow_parts.append(
            np.asarray(p.link_flow, dtype=np.int64) + scn_flow_ptr[s]
        )
        nnz += int(p.flow_link.size)

    def _concat(chunks, dtype):
        if not chunks:
            return np.zeros(0, dtype=dtype)
        return np.concatenate(chunks).astype(dtype, copy=False)

    arrays = {
        "flow_ptr": _concat(flow_ptr_parts, np.int64),
        "flow_link": _concat(flow_link_parts, np.int64),
        "link_ptr": _concat(link_ptr_parts, np.int64),
        "link_flow": _concat(link_flow_parts, np.int64),
        "scn_flow_ptr": scn_flow_ptr,
        "scn_link_ptr": scn_link_ptr,
        "scn_of_flow": np.repeat(np.arange(S, dtype=np.int64), flow_counts),
        "scn_of_link": np.repeat(np.arange(S, dtype=np.int64), link_counts),
        "caps": _concat(caps_vectors, np.float64),
    }
    _SCENARIOS.inc(S)
    return CompiledBatch(parts, arrays)


def _round_estimates(parts: List[CompiledRouting], caps_vectors) -> List[int]:
    """Estimated water-filling round count per scenario.

    Each round freezes every link sitting at the current water level, so
    the number of rounds a scenario takes is at most — and in practice
    close to — its number of *distinct initial fill levels*
    ``capacity / degree`` over links with at least one flow.  The
    estimate only drives scheduling (:func:`solve_max_min_batch`'s
    ``sub_batches=`` ordering); it never touches the arithmetic.
    """
    np = _require_numpy()
    estimates: List[int] = []
    for compiled, caps in zip(parts, caps_vectors):
        degree = np.diff(np.asarray(compiled.link_ptr, dtype=np.int64))
        loaded = degree > 0
        if not loaded.any():
            estimates.append(0)
            continue
        levels = np.asarray(caps, dtype=np.float64)[loaded] / degree[loaded]
        estimates.append(int(np.unique(levels).size))
    return estimates


def waterfill_batch(batch: CompiledBatch, first: int = 0, last=None, out=None):
    """Water-fill scenarios ``[first, last)`` of ``batch`` simultaneously.

    Returns the float rate array for the range's flows (a view into
    ``out`` when given — the shared-memory path passes the global
    output array and each worker writes only its own slice).  Every
    per-element float operation matches the per-instance
    :func:`~repro.core.vectorized.waterfill` kernel exactly, so the
    rates are byte-identical to solving each scenario alone.
    """
    np = _require_numpy()
    if last is None:
        last = batch.num_scenarios
    fa = int(batch.scn_flow_ptr[first])
    fb = int(batch.scn_flow_ptr[last])
    la = int(batch.scn_link_ptr[first])
    lb = int(batch.scn_link_ptr[last])
    n_flows, n_links, S = fb - fa, lb - la, last - first

    if out is None:
        rates = np.zeros(n_flows, dtype=np.float64)
    else:
        rates = out[fa:fb]
        rates[:] = 0.0
    if n_flows == 0:
        return rates

    flow_ptr, flow_link = batch.flow_ptr, batch.flow_link
    link_ptr, link_flow = batch.link_ptr, batch.link_flow
    residual = np.asarray(batch.caps[la:lb], dtype=np.float64).copy()
    count = np.diff(batch.link_ptr[la:lb + 1]).astype(np.float64)
    active = np.ones(n_flows, dtype=bool)
    remaining = np.diff(batch.scn_flow_ptr[first:last + 1]).astype(np.int64)
    scn_link = np.asarray(batch.scn_of_link[la:lb], dtype=np.int64) - first
    scn_flow = np.asarray(batch.scn_of_flow[fa:fb], dtype=np.int64) - first
    # Segment starts for the per-scenario min; a scenario with no links
    # (no flows) never activates, but its degenerate segment must not
    # index out of bounds or swallow a neighbor's minimum.
    seg_start = np.asarray(batch.scn_link_ptr[first:last], dtype=np.int64) - la
    empty_seg = np.diff(batch.scn_link_ptr[first:last + 1]) == 0
    reduce_at = np.minimum(seg_start, max(n_links - 1, 0))

    levels = np.empty(n_links, dtype=np.float64)
    delta = np.empty(n_links, dtype=np.float64)
    frozen_mask = np.zeros(n_flows, dtype=bool)
    band = _vectorized._BAND
    scn_active = remaining > 0
    rounds = 0
    _SOLVES.inc()
    with trace_span(
        "maxmin.water_fill_batched", scenarios=S, flows=n_flows
    ) as span:
        while scn_active.any():
            levels.fill(_INF)
            np.divide(residual, count, out=levels, where=count > 0.0)
            lam = np.minimum.reduceat(levels, reduce_at)
            lam[empty_seg] = _INF
            if not np.isfinite(lam[scn_active]).all():
                # Cannot happen: every unfinished scenario keeps at
                # least one of its links' counts positive.
                raise AssertionError("water-filling invariant violated")
            # Clamp float-rounding negatives (the per-instance kernel's
            # ``lam = 0.0`` guard), then silence finished scenarios so
            # the saturation band never selects their links again.
            lam[scn_active & (lam < 0.0)] = 0.0
            lam[~scn_active] = -_INF

            # Per-element the threshold formula matches the per-instance
            # kernel's scalar ``lam + _BAND * (1.0 + lam)`` exactly;
            # finished scenarios' ``-inf`` makes their band unreachable.
            lam_links = lam[scn_link]
            sat_idx = np.nonzero(
                levels <= lam_links + band * (1.0 + lam_links)
            )[0]
            # Gather the saturated links' member rows without a Python
            # loop: for each saturated link j, the row is
            # link_flow[starts[j]:starts[j]+lens[j]]; the repeat/arange
            # construction enumerates those index ranges back to back,
            # in the same order a per-link concatenation would.
            if sat_idx.size:
                starts = link_ptr[sat_idx + la]
                lens = link_ptr[sat_idx + la + 1] - starts
                total = int(lens.sum())
                ends = np.cumsum(lens)
                idx = (
                    np.arange(total, dtype=np.int64)
                    + np.repeat(starts - (ends - lens), lens)
                )
                members = link_flow[idx] - fa
            else:
                members = np.zeros(0, dtype=np.int64)
            candidates = members[active[members]]
            if candidates.size == 0:
                raise AssertionError("water-filling invariant violated")
            # Sorted-unique via a scatter mask — same result as
            # ``np.unique`` without its per-round sort.
            frozen_mask[candidates] = True
            frozen = np.nonzero(frozen_mask)[0]
            frozen_mask[frozen] = False
            rates[frozen] = lam[scn_flow[frozen]]
            active[frozen] = False
            remaining -= np.bincount(scn_flow[frozen], minlength=S)

            hit = _row_hits(
                flow_ptr, flow_link, frozen + fa, n_links, link_base=la
            )
            # ``lam[scn_link] * hit`` would be -inf·0 = NaN on finished
            # scenarios' untouched links; masking the multiply leaves
            # those deltas at 0.0, so ``residual -= delta`` is
            # bit-for-bit the per-instance kernel's
            # ``residual -= lam * hit`` (which subtracts 0.0 there too).
            delta.fill(0.0)
            np.multiply(lam_links, hit, out=delta, where=hit > 0)
            residual -= delta
            count -= hit
            scn_active = remaining > 0
            rounds += 1
        span.set(rounds=rounds)
    _ROUNDS.inc(rounds)
    _check_batch(batch, first, last, rates)
    return rates


def _check_batch(batch: CompiledBatch, first: int, last: int, rates) -> None:
    """The cheap-level certificate over the solved range, vectorized.

    Mirrors :func:`repro.core.vectorized._check_waterfill` on the
    stacked arrays; failure messages cite scenario/flow *indices*
    because worker-side batches carry no flow objects.
    """
    from repro import validate as _validate

    if _validate.validation_level() == "off":
        return
    np = _require_numpy()
    fa = int(batch.scn_flow_ptr[first])
    fb = int(batch.scn_flow_ptr[last])
    la = int(batch.scn_link_ptr[first])
    lb = int(batch.scn_link_ptr[last])
    failures = []
    if not np.isfinite(rates).all():
        bad = np.nonzero(~np.isfinite(rates))[0][:5]
        scenarios = batch.scn_of_flow[bad + fa]
        failures.append(
            "non-finite (NaN/inf) rates for flow indices "
            f"{bad.tolist()!r} (scenarios {scenarios.tolist()!r})"
        )
    elif rates.size and float(rates.min()) < 0.0:
        failures.append(f"negative rates (min {float(rates.min())!r})")
    else:
        row_lens = np.diff(batch.flow_ptr[fa:fb + 1])
        weights = np.repeat(rates, row_lens)
        base = int(batch.flow_ptr[fa])
        columns = batch.flow_link[base:int(batch.flow_ptr[fb])] - la
        loads = np.bincount(columns, weights=weights, minlength=lb - la)
        caps = np.asarray(batch.caps[la:lb], dtype=np.float64)
        slack = caps + _validate.FLOAT_TOL * (1.0 + np.abs(caps))
        over = np.nonzero(loads > slack)[0]
        for j in over[:5]:
            failures.append(
                f"link index {int(j)} (scenario "
                f"{int(batch.scn_of_link[j + la])}) overloaded: load "
                f"{float(loads[j])!r} > capacity {float(caps[j])!r}"
            )
    _validate.record_check("cheap", "maxmin.batched", failures)


# ----------------------------------------------------------------------
# Shared-memory parallel solving
# ----------------------------------------------------------------------
def _solve_shared_chunk(task: Tuple[int, int]) -> int:
    """Worker: solve scenarios ``[first, last)`` from the shared batch.

    The stacked arrays (and the output rates array) live in the
    parent's shared-memory block — attached zero-copy by
    :func:`repro.parallel.shared_array`; only this ``(first, last)``
    pair crossed the pipe.
    """
    from repro.parallel import shared_array

    first, last = task
    batch = CompiledBatch.from_arrays(
        {name: shared_array(name) for name in ARRAY_NAMES}
    )
    waterfill_batch(batch, first=first, last=last, out=shared_array("rates"))
    return last - first


def _sub_batch_ranges(S: int, sub_batches: int) -> List[Tuple[int, int]]:
    """Split ``S`` scenarios into ``sub_batches`` contiguous near-equal
    ranges (fewer when ``S < sub_batches``)."""
    k = max(1, min(sub_batches, S))
    bounds = [round(S * i / k) for i in range(k + 1)]
    return [(a, b) for a, b in zip(bounds, bounds[1:]) if b > a]


def _batch_rates_parallel(
    batch: CompiledBatch,
    jobs: int,
    chunksize: Optional[int],
    tasks: Optional[List[Tuple[int, int]]] = None,
):
    """Solve the whole batch across worker processes, zero-copy.

    The parent compiled once; workers attach to the shared block and
    write disjoint slices of the shared ``rates`` array, so results
    need no transport at all.  Scenario ranges are contiguous — a
    range of a block-diagonal batch is itself a valid batch.  ``tasks``
    overrides the default even chunking (the ``sub_batches=`` path
    passes its round-sorted ranges directly).
    """
    np = _require_numpy()
    from repro import parallel

    S = batch.num_scenarios
    if tasks is None:
        if chunksize is None:
            # A few chunks per worker evens out uneven scenario sizes
            # without drowning in per-task dispatch.
            chunksize = max(1, -(-S // (jobs * 4)))
        tasks = [(a, min(a + chunksize, S)) for a in range(0, S, chunksize)]
    arrays = dict(batch.as_arrays())
    arrays["rates"] = np.zeros(batch.num_flows, dtype=np.float64)
    with parallel.shared_arrays(arrays) as block:
        parallel.parallel_map(
            _solve_shared_chunk, tasks, jobs=jobs, shared=block
        )
        return block["rates"].copy()


# ----------------------------------------------------------------------
# The front door
# ----------------------------------------------------------------------
def solve_max_min_batch(
    instances: Sequence[Tuple[Routing, Mapping[Link, Rate]]],
    backend: str = "batched",
    exact: Optional[bool] = None,
    jobs: int = 1,
    chunksize: Optional[int] = None,
    sub_batches: int = 1,
) -> List[Allocation]:
    """Max-min fair allocations for N independent instances at once.

    ``instances`` is a sequence of ``(routing, capacities)`` pairs;
    the result list is index-aligned with it.

    - ``backend="batched"`` (default) stacks all float scenarios into
      one block-diagonal incidence and water-fills them simultaneously;
      rates are byte-identical to per-instance ``vectorized`` solves.
      ``jobs > 1`` splits the batch across worker processes over
      shared memory (``chunksize`` scenarios per task); results stay
      byte-identical to ``jobs=1``.
    - ``sub_batches > 1`` orders scenarios by estimated round count
      (distinct initial link-fill levels, :func:`_round_estimates`) and
      water-fills that order in ``sub_batches`` contiguous groups, so
      the whole batch no longer spins empty rounds waiting for the
      single deepest scenario.  Scenario arithmetic is independent
      (block-diagonal), so results stay byte-identical to
      ``sub_batches=1`` — ordering changes wall-clock only.  Composes
      with ``jobs``: each group becomes one shared-memory task.
    - ``backend="batched"`` with ``exact=True`` dispatches per-instance
      to the exact reference solver (NumPy batching cannot speed up
      ``Fraction`` arithmetic) — same entry point, ``Fraction``-identical
      results.
    - Any other ``backend`` name loops per-instance through
      :func:`repro.core.solve.solve_max_min` — callers can route every
      multi-instance workload through this one function and pick the
      kernel per call site.

    Raises :class:`~repro.errors.BackendUnavailableError` without NumPy
    (``backend="batched"``, float mode), like the vectorized backend.
    """
    pairs = [(routing, capacities) for routing, capacities in instances]
    if backend != "batched":
        from repro.core.solve import solve_max_min

        return [
            solve_max_min(routing, capacities, backend=backend, exact=exact)
            for routing, capacities in pairs
        ]
    if exact:
        from repro.core.solve import solve_max_min

        return [
            solve_max_min(routing, capacities, backend="reference", exact=True)
            for routing, capacities in pairs
        ]
    if not pairs:
        return []

    order = list(range(len(pairs)))
    groups: Optional[List[Tuple[int, int]]] = None
    if sub_batches and sub_batches > 1 and len(pairs) > 1:
        parts: List[CompiledRouting] = []
        caps_vectors = []
        for routing, capacities in pairs:
            compiled = compile_routing(routing, capacities)
            parts.append(compiled)
            caps_vectors.append(capacity_vector(compiled, capacities))
        estimates = _round_estimates(parts, caps_vectors)
        order = sorted(order, key=lambda s: (estimates[s], s))
        batch = _stack_parts(
            [parts[s] for s in order], [caps_vectors[s] for s in order]
        )
        groups = _sub_batch_ranges(batch.num_scenarios, sub_batches)
    else:
        batch = compile_batch(pairs)

    if jobs and jobs > 1 and batch.num_scenarios > 1:
        rates = _batch_rates_parallel(batch, jobs, chunksize, tasks=groups)
    elif groups is not None:
        np = _require_numpy()
        rates = np.zeros(batch.num_flows, dtype=np.float64)
        for first, last in groups:
            waterfill_batch(batch, first=first, last=last, out=rates)
    else:
        rates = waterfill_batch(batch)

    from repro import validate as _validate

    full = _validate.validation_level() == "full"
    allocations: List[Optional[Allocation]] = [None] * len(pairs)
    for position, scenario in enumerate(order):
        compiled = batch.parts[position]
        routing, capacities = pairs[scenario]
        lo = int(batch.scn_flow_ptr[position])
        hi = int(batch.scn_flow_ptr[position + 1])
        allocation = Allocation(
            {
                flow: float(rate)
                for flow, rate in zip(compiled.flows, rates[lo:hi])
            }
        )
        if full:
            _validate.validate_allocation(
                routing, capacities, allocation,
                level="full", context="maxmin.batched",
            )
        allocations[scenario] = allocation
    return allocations
