"""Exact symmetry-quotient water-filling (the ``quotient`` backend).

The paper's adversarial instances are highly symmetric: permuting the
servers within a ToR, or the middle switches of a Clos network, maps the
instance onto itself.  Water-filling respects such symmetries — flows
related by an automorphism receive equal rates — so the allocation can
be computed on the *quotient* of the instance under its symmetries and
lifted back, turning the O(n³)-flow constructions of Theorems 4.3/5.4
into solves over a handful of equivalence classes.

Rather than enumerate automorphisms, the quotient is found by **color
refinement** (1-dimensional Weisfeiler–Leman) on the bipartite
flow–link incidence structure over the finite-capacity links:

- initial link color = its capacity; initial flow color = uniform;
- each round, a flow's color becomes (its old color, the multiset of
  its links' colors) and symmetrically for links;
- iterate to a fixpoint.

The fixpoint is an *equitable partition*: every flow in a class crosses
the same number ``d(F, L)`` of links from each link class, and every
link in a class carries the same number ``c(L, F)`` of flows from each
flow class.  That is exactly the invariant progressive filling needs —
by induction on freeze rounds, all members of a class have equal rates
and all links of a class equal residuals/counts, so the quotient
dynamics (one variable per class, weighted by ``c`` and ``d``) replay
the per-flow dynamics verbatim.  Arithmetic is pure ``Fraction``:
lifted rates are **identical** (not approximately equal) to
:func:`repro.core.maxmin.max_min_fair` with ``exact=True``, which the
property tests assert class-by-class.

Color refinement never merges flows the automorphism group keeps apart,
and refining *too little* is impossible at a fixpoint — so correctness
never depends on finding the full symmetry group; a worst-case
asymmetric instance simply degenerates to one class per flow and costs
the same as the reference solver plus the refinement passes.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Tuple

from repro.errors import UnboundedRateError
from repro.core.allocation import Allocation, Rate
from repro.core.flows import Flow
from repro.core.maxmin import validate_capacities
from repro.core.routing import Link, Routing
from repro.obs import counter, trace_span

_INF = float("inf")

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_SOLVES = counter("quotient.solves")
_REFINEMENTS = counter("quotient.refinement_rounds")
_FLOW_CLASSES = counter("quotient.flow_classes")
_LINK_CLASSES = counter("quotient.link_classes")

__all__ = ["QuotientInstance", "build_quotient", "quotient_max_min"]


class QuotientInstance:
    """The quotient of a routing instance under color refinement.

    ``flow_classes[i]`` lists the flows of class ``i``;
    ``link_classes[j]`` the links of class ``j`` with ``capacity[j]``
    their common capacity.  ``crossing[j][i]`` is ``c(L_j, F_i)``: how
    many class-``i`` flows cross each *single* class-``j`` link.
    ``adjacency[i]`` lists ``(j, d)`` pairs: a class-``i`` flow crosses
    ``d`` class-``j`` links.
    """

    __slots__ = (
        "flow_classes",
        "link_classes",
        "capacity",
        "crossing",
        "adjacency",
    )

    def __init__(
        self,
        flow_classes: List[List[Flow]],
        link_classes: List[List[Link]],
        capacity: List[Fraction],
        crossing: List[Dict[int, int]],
        adjacency: List[List[Tuple[int, int]]],
    ) -> None:
        self.flow_classes = flow_classes
        self.link_classes = link_classes
        self.capacity = capacity
        self.crossing = crossing
        self.adjacency = adjacency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"QuotientInstance({len(self.flow_classes)} flow classes, "
            f"{len(self.link_classes)} link classes)"
        )


def build_quotient(
    routing: Routing, capacities: Mapping[Link, Rate]
) -> QuotientInstance:
    """Color-refine ``routing`` into an equitable quotient instance.

    Only finite-capacity links participate (infinite links never
    constrain any rate).  Raises
    :class:`~repro.errors.UnboundedRateError` if some flow crosses only
    infinite links.
    """
    link_flows = routing.flows_per_link()
    validate_capacities(link_flows, capacities)
    flows = routing.flows()

    finite: Dict[Link, Fraction] = {}
    for link in link_flows:
        capacity = capacities[link]
        if float(capacity) != _INF:
            finite[link] = Fraction(capacity)

    flow_links: Dict[Flow, List[Link]] = {}
    unbounded: List[Flow] = []
    for flow in flows:
        mine = [l for l in routing.links_of(flow) if l in finite]
        if not mine:
            unbounded.append(flow)
        flow_links[flow] = mine
    if unbounded:
        raise UnboundedRateError(
            f"flows with no finite-capacity link on their path: {unbounded!r}"
        )

    # --- color refinement to a fixpoint -----------------------------------
    # Colors are small ints; each round re-canonicalizes the (old color,
    # sorted neighbor-color multiset) signatures through a dict.
    link_color: Dict[Link, int] = {}
    palette: Dict[Fraction, int] = {}
    for link, capacity in finite.items():
        link_color[link] = palette.setdefault(capacity, len(palette))
    flow_color: Dict[Flow, int] = {flow: 0 for flow in flows}

    while True:
        _REFINEMENTS.inc()
        sig_pal: Dict[tuple, int] = {}
        new_flow = {
            flow: sig_pal.setdefault(
                (flow_color[flow],
                 tuple(sorted(link_color[l] for l in flow_links[flow]))),
                len(sig_pal),
            )
            for flow in flows
        }
        flow_stable = len(sig_pal) == len(set(flow_color.values()))

        sig_pal = {}
        new_link = {
            link: sig_pal.setdefault(
                (link_color[link],
                 tuple(sorted(new_flow[f] for f in link_flows[link]))),
                len(sig_pal),
            )
            for link in finite
        }
        link_stable = len(sig_pal) == len(set(link_color.values()))

        flow_color, link_color = new_flow, new_link
        if flow_stable and link_stable:
            break

    # --- assemble the quotient --------------------------------------------
    flow_classes: List[List[Flow]] = []
    flow_class_of: Dict[Flow, int] = {}
    index: Dict[int, int] = {}
    for flow in flows:
        color = flow_color[flow]
        if color not in index:
            index[color] = len(flow_classes)
            flow_classes.append([])
        flow_class_of[flow] = index[color]
        flow_classes[index[color]].append(flow)

    link_classes: List[List[Link]] = []
    link_class_of: Dict[Link, int] = {}
    index = {}
    for link in finite:
        color = link_color[link]
        if color not in index:
            index[color] = len(link_classes)
            link_classes.append([])
        link_class_of[link] = index[color]
        link_classes[index[color]].append(link)

    capacity = [finite[cls[0]] for cls in link_classes]
    crossing: List[Dict[int, int]] = []
    for cls in link_classes:
        counts: Dict[int, int] = {}
        for f in link_flows[cls[0]]:
            i = flow_class_of[f]
            counts[i] = counts.get(i, 0) + 1
        crossing.append(counts)
    adjacency: List[List[Tuple[int, int]]] = []
    for cls in flow_classes:
        counts = {}
        for l in flow_links[cls[0]]:
            j = link_class_of[l]
            counts[j] = counts.get(j, 0) + 1
        adjacency.append(sorted(counts.items()))

    _FLOW_CLASSES.inc(len(flow_classes))
    _LINK_CLASSES.inc(len(link_classes))
    return QuotientInstance(
        flow_classes, link_classes, capacity, crossing, adjacency
    )


def _fill_quotient(quotient: QuotientInstance) -> List[Fraction]:
    """Exact water-fill on the quotient; returns one rate per flow class.

    One *representative link* per link class suffices: its residual and
    unfrozen-member count evolve identically across the class (the
    equitable-partition invariant).  The loop is the textbook min-scan —
    with tens of classes, asymptotics are irrelevant.
    """
    n_classes = len(quotient.flow_classes)
    rates: List[Fraction] = [Fraction(0)] * n_classes
    frozen = [False] * n_classes
    residual = list(quotient.capacity)
    count = [
        sum(members.values()) for members in quotient.crossing
    ]
    remaining = n_classes

    while remaining > 0:
        lam = None
        for j, n in enumerate(count):
            if n <= 0:
                continue
            level = residual[j] / n
            if lam is None or level < lam:
                lam = level
        if lam is None:
            raise AssertionError("water-filling invariant violated")
        if lam < 0:
            lam = Fraction(0)
        # Freeze every unfrozen flow class crossing a saturated class.
        newly: List[int] = []
        for j, n in enumerate(count):
            if n > 0 and residual[j] == lam * n:
                for i in quotient.crossing[j]:
                    if not frozen[i]:
                        frozen[i] = True
                        newly.append(i)
        for i in newly:
            rates[i] = lam
            remaining -= 1
            for j, d in quotient.adjacency[i]:
                crossing = quotient.crossing[j][i]
                residual[j] -= lam * crossing
                count[j] -= crossing
    return rates


def quotient_max_min(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    quotient: QuotientInstance = None,
) -> Allocation:
    """Exact max-min fair allocation via symmetry quotient.

    Rates are :class:`~fractions.Fraction` and identical to
    :func:`repro.core.maxmin.max_min_fair` with ``exact=True``.  Pass a
    pre-built ``quotient`` to skip refinement when re-solving (the
    quotient depends on capacities, so it is only reusable while
    capacities are unchanged).

    >>> from repro.core.topology import MacroSwitch
    >>> from repro.core.flows import FlowCollection
    >>> ms = MacroSwitch(1)
    >>> flows = FlowCollection.from_pairs(
    ...     [(ms.source(1, 1), ms.destination(1, 1)),
    ...      (ms.source(2, 1), ms.destination(1, 1))])
    >>> routing = Routing.for_macro_switch(ms, flows)
    >>> alloc = quotient_max_min(routing, ms.graph.capacities())
    >>> alloc.sorted_vector()
    [Fraction(1, 2), Fraction(1, 2)]
    """
    if not routing.flows():
        return Allocation({})
    _SOLVES.inc()
    with trace_span(
        "maxmin.water_fill_quotient", flows=len(routing)
    ) as span:
        if quotient is None:
            quotient = build_quotient(routing, capacities)
        class_rates = _fill_quotient(quotient)
        span.set(
            flow_classes=len(quotient.flow_classes),
            link_classes=len(quotient.link_classes),
        )
    rates: Dict[Flow, Fraction] = {}
    for members, rate in zip(quotient.flow_classes, class_rates):
        for flow in members:
            rates[flow] = rate
    allocation = Allocation(rates)
    from repro.validate import (
        record_check,
        validate_allocation,
        validation_level,
    )

    level = validation_level()
    if level == "full":
        # The independent certificate: re-derive feasibility and the
        # bottleneck condition on the *lifted* instance.
        validate_allocation(
            routing, capacities, allocation,
            level="full", tol=0.0, context="maxmin.quotient",
        )
    elif level == "cheap":
        # Certify feasibility at quotient granularity: rates are
        # constant on flow classes by construction, and every class-j
        # link is crossed by exactly crossing[j][i] class-i flows, so
        # class-level loads equal per-link loads.  O(quotient nnz) —
        # validating the lifted instance instead would cost O(full nnz)
        # and forfeit the quotient backend's entire speedup.
        failures = []
        for i, rate in enumerate(class_rates):
            if rate < 0:
                failures.append(
                    f"negative rate {rate!r} for flow class {i}"
                )
        if not failures:
            for j, cap in enumerate(quotient.capacity):
                load = sum(
                    class_rates[i] * c
                    for i, c in quotient.crossing[j].items()
                )
                if load > cap:
                    failures.append(
                        f"link class {j} overloaded: load {load!r} > "
                        f"capacity {cap!r}"
                    )
        record_check("cheap", "maxmin.quotient", failures)
    return allocation
