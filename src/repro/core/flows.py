"""Flows and flow collections (§2.2).

A *flow* maps to a source–destination pair; multiple flows may map to the
same pair (the paper's adversarial constructions depend on this), so each
flow also carries a small integer ``tag`` distinguishing parallel flows.

A :class:`FlowCollection` is an ordered collection of flows with the
grouping helpers the algorithms need: flows per source, per destination,
and per input–output switch pair (the edges of the demand multigraphs
``G^MS`` and ``G^C``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, NamedTuple, Tuple

from repro.core.nodes import Destination, InputSwitch, OutputSwitch, Source
from repro.graph.bipartite import BipartiteMultigraph


class Flow(NamedTuple):
    """An unsplittable flow from ``source`` to ``dest``.

    ``tag`` distinguishes parallel flows between the same pair; it has no
    semantic meaning beyond identity.
    """

    source: Source
    dest: Destination
    tag: int = 0

    def __repr__(self) -> str:
        suffix = f"#{self.tag}" if self.tag else ""
        return f"Flow({self.source!r}->{self.dest!r}{suffix})"


class FlowCollection:
    """An ordered collection of flows with grouping helpers.

    >>> s, t = Source(1, 1), Destination(1, 1)
    >>> flows = FlowCollection.from_pairs([(s, t), (s, t)])
    >>> len(flows)
    2
    >>> flows[0].tag, flows[1].tag
    (0, 1)
    """

    def __init__(self, flows: Iterable[Flow] = ()) -> None:
        self._flows: List[Flow] = []
        self._seen: set = set()
        self._pair_counts: Dict[Tuple[Source, Destination], int] = {}
        for flow in flows:
            self.add(flow)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, flow: Flow) -> Flow:
        """Append ``flow``; duplicate flows (same pair *and* tag) are rejected."""
        if flow in self._seen:
            raise ValueError(f"duplicate flow: {flow!r}")
        self._seen.add(flow)
        self._flows.append(flow)
        pair = (flow.source, flow.dest)
        self._pair_counts[pair] = self._pair_counts.get(pair, 0) + 1
        return flow

    def add_pair(self, source: Source, dest: Destination, count: int = 1) -> List[Flow]:
        """Add ``count`` parallel flows between ``source`` and ``dest``.

        Tags continue from the number of flows already present on the pair,
        so successive calls never collide.  Constant time per added flow
        (a pair-count table, not a rescan) — the adversarial constructions
        add hundreds of thousands of flows at n = 64.
        """
        existing = self._pair_counts.get((source, dest), 0)
        added = []
        for offset in range(count):
            added.append(self.add(Flow(source, dest, tag=existing + offset)))
        return added

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[Tuple[Source, Destination]]
    ) -> "FlowCollection":
        """Build a collection from (source, dest) pairs, auto-tagging duplicates."""
        collection = cls()
        for source, dest in pairs:
            collection.add_pair(source, dest)
        return collection

    # ------------------------------------------------------------------
    # Container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._flows)

    def __iter__(self) -> Iterator[Flow]:
        return iter(self._flows)

    def __getitem__(self, index: int) -> Flow:
        return self._flows[index]

    def __contains__(self, flow: Flow) -> bool:
        return flow in self._seen

    @property
    def flows(self) -> List[Flow]:
        """The flows, in insertion order (a copy)."""
        return list(self._flows)

    # ------------------------------------------------------------------
    # Groupings
    # ------------------------------------------------------------------
    def by_source(self) -> Dict[Source, List[Flow]]:
        """Flows grouped by source server."""
        groups: Dict[Source, List[Flow]] = {}
        for flow in self._flows:
            groups.setdefault(flow.source, []).append(flow)
        return groups

    def by_destination(self) -> Dict[Destination, List[Flow]]:
        """Flows grouped by destination server."""
        groups: Dict[Destination, List[Flow]] = {}
        for flow in self._flows:
            groups.setdefault(flow.dest, []).append(flow)
        return groups

    def by_switch_pair(self) -> Dict[Tuple[int, int], List[Flow]]:
        """Flows grouped by (input switch index, output switch index)."""
        groups: Dict[Tuple[int, int], List[Flow]] = {}
        for flow in self._flows:
            key = (flow.source.switch, flow.dest.switch)
            groups.setdefault(key, []).append(flow)
        return groups

    # ------------------------------------------------------------------
    # Demand multigraphs
    # ------------------------------------------------------------------
    def demand_graph_ms(self) -> BipartiteMultigraph:
        """``G^MS``: sources × destinations, one edge per flow (§3).

        A maximum matching of this graph characterizes a maximum-
        throughput allocation in the macro-switch (Lemma 3.2).
        """
        graph = BipartiteMultigraph()
        for flow in self._flows:
            graph.add_edge(flow.source, flow.dest, key=flow)
        return graph

    def demand_graph_clos(self) -> BipartiteMultigraph:
        """``G^C``: input × output switches, one edge per flow (§5).

        An ``n``-edge-coloring of this graph is a link-disjoint routing
        through the ``n`` middle switches (Lemma 5.2, footnote 5).
        """
        graph = BipartiteMultigraph()
        for flow in self._flows:
            graph.add_edge(
                InputSwitch(flow.source.switch),
                OutputSwitch(flow.dest.switch),
                key=flow,
            )
        return graph

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FlowCollection({len(self._flows)} flows)"
