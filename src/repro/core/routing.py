"""Routings: per-flow path assignments (§2.2).

Given a collection ``F`` of flows, a *routing* assigns each flow ``f`` to
one ``s_f → t_f`` path.  In the macro-switch the routing is unique; in a
Clos network of size ``n`` each flow independently chooses one of ``n``
paths (equivalently, one middle switch), so a routing is fully described
by a flow → middle-switch map.

This module provides the :class:`Routing` container plus the conversions
between the two representations and the link-load bookkeeping used by
feasibility checks and the water-filling algorithm.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import InfeasibleRoutingError, UnknownFlowError
from repro.core.flows import Flow, FlowCollection
from repro.core.nodes import ClosNode, MiddleSwitch
from repro.core.topology import ClosNetwork, MacroSwitch, Path

Link = Tuple[ClosNode, ClosNode]


class Routing:
    """An assignment of each flow in a collection to a path.

    Instances are immutable once built; use :meth:`reassigned` to derive
    a new routing with one flow moved (the primitive step of local
    search over routings).
    """

    def __init__(self, assignment: Mapping[Flow, Path]) -> None:
        self._paths: Dict[Flow, Path] = dict(assignment)
        self._fingerprint: Optional[Tuple[Tuple[Flow, Path], ...]] = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def for_macro_switch(
        cls, network: MacroSwitch, flows: FlowCollection
    ) -> "Routing":
        """The unique routing in a macro-switch."""
        return cls({f: network.path(f.source, f.dest) for f in flows})

    @classmethod
    def from_middles(
        cls,
        network: ClosNetwork,
        flows: FlowCollection,
        middles: Mapping[Flow, int],
    ) -> "Routing":
        """A Clos routing from a flow → middle-switch-index map (1-based)."""
        missing = [f for f in flows if f not in middles]
        if missing:
            raise InfeasibleRoutingError(
                f"no middle switch assigned for flows: {missing!r}"
            )
        return cls(
            {f: network.path_via(f.source, f.dest, middles[f]) for f in flows}
        )

    @classmethod
    def uniform(cls, network: ClosNetwork, flows: FlowCollection, m: int) -> "Routing":
        """All flows through middle switch ``M_m`` (a worst-case baseline)."""
        return cls.from_middles(network, flows, {f: m for f in flows})

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def path(self, flow: Flow) -> Path:
        """The path assigned to ``flow``."""
        try:
            return self._paths[flow]
        except KeyError:
            raise UnknownFlowError(flow) from None

    def __contains__(self, flow: Flow) -> bool:
        return flow in self._paths

    def __len__(self) -> int:
        return len(self._paths)

    def flows(self) -> List[Flow]:
        """The routed flows, in insertion order."""
        return list(self._paths)

    def fingerprint(self) -> Tuple[Tuple[Flow, Path], ...]:
        """A canonical, hashable identity for this routing.

        The sorted tuple of ``(flow, path)`` pairs: two routings of the
        same flows over the same paths produce equal fingerprints no
        matter the order their assignments were built in.  Computed once
        and cached (routings are immutable), so repeated cache lookups
        (:class:`repro.core.cache.AllocationCache`) cost a tuple hash.
        """
        if self._fingerprint is None:
            self._fingerprint = tuple(sorted(self._paths.items()))
        return self._fingerprint

    def middle_of(self, network: ClosNetwork, flow: Flow) -> MiddleSwitch:
        """The middle switch ``flow`` traverses (Clos routings only)."""
        return network.middle_of_path(self._paths[flow])

    def middles(self, network: ClosNetwork) -> Dict[Flow, int]:
        """The flow → middle-switch-index map (Clos routings only)."""
        return {
            flow: self.middle_of(network, flow).index for flow in self._paths
        }

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def reassigned(
        self, network: ClosNetwork, flow: Flow, m: int
    ) -> "Routing":
        """A copy of this routing with ``flow`` moved to middle switch ``M_m``."""
        if flow not in self._paths:
            raise UnknownFlowError(flow)
        paths = dict(self._paths)
        paths[flow] = network.path_via(flow.source, flow.dest, m)
        return Routing(paths)

    # ------------------------------------------------------------------
    # Link occupancy
    # ------------------------------------------------------------------
    def flows_per_link(self) -> Dict[Link, List[Flow]]:
        """Map each traversed link to the flows crossing it."""
        loads: Dict[Link, List[Flow]] = {}
        for flow, path in self._paths.items():
            for link in zip(path, path[1:]):
                loads.setdefault(link, []).append(flow)
        return loads

    def links_of(self, flow: Flow) -> List[Link]:
        """The links along ``flow``'s assigned path."""
        path = self.path(flow)
        return list(zip(path, path[1:]))

    def validate(self, graph) -> None:
        """Check every assigned path exists in ``graph`` and joins its flow's
        endpoints; raises :class:`~repro.errors.InfeasibleRoutingError` on
        the first violation."""
        for flow, path in self._paths.items():
            if path[0] != flow.source or path[-1] != flow.dest:
                raise InfeasibleRoutingError(
                    f"path for {flow!r} does not join its endpoints: {path!r}"
                )
            if not graph.is_path(path):
                raise InfeasibleRoutingError(
                    f"path for {flow!r} is not in the graph: {path!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Routing({len(self._paths)} flows)"


def all_middle_assignments(
    flows: FlowCollection, n: int
) -> Iterable[Dict[Flow, int]]:
    """Yield every flow → middle-switch assignment (``n^|F|`` of them).

    Exhaustive and only suitable for tiny instances; see
    :mod:`repro.search.enumeration` for the symmetry-reduced enumeration
    used by the exact objective solvers.
    """
    flow_list = list(flows)

    def recurse(index: int, partial: Dict[Flow, int]):
        if index == len(flow_list):
            yield dict(partial)
            return
        for m in range(1, n + 1):
            partial[flow_list[index]] = m
            yield from recurse(index + 1, partial)
        del partial[flow_list[index]]

    yield from recurse(0, {})
