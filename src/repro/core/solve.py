"""One front door to every max-min fair solver backend.

``solve_max_min(routing, capacities, backend=...)`` dispatches to:

- ``"reference"`` — :func:`repro.core.maxmin.max_min_fair`; exact
  ``Fraction`` arithmetic by default (``exact=False`` for floats).
- ``"heap"`` — :func:`repro.core.fastmaxmin.max_min_fair_fast`; float,
  lazy-deletion saturation heap, fastest pure-Python option for sparse
  instances.
- ``"vectorized"`` — :func:`repro.core.vectorized.max_min_fair_vectorized`;
  float, NumPy array kernel, fastest for dense instances (thousands of
  flows over few links).  Requires NumPy.
- ``"quotient"`` — :func:`repro.core.quotient.quotient_max_min`; exact
  ``Fraction`` rates via symmetry reduction, the only exact option that
  scales to the n ≥ 64 adversarial constructions.

All four return the same allocation: exactly for the exact backends,
within 1e-12 between the float backends (property-tested in
``tests/test_vectorized_quotient.py``).  See ``docs/PERFORMANCE.md``
("Scaling to large n") for measured crossover points.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.core.allocation import Allocation, Rate
from repro.core.routing import Link, Routing

#: Recognized backend names, in documentation order.
BACKENDS = ("reference", "heap", "vectorized", "quotient")

#: Backends whose rates are exact ``Fraction`` values.
EXACT_BACKENDS = ("reference", "quotient")

__all__ = ["BACKENDS", "EXACT_BACKENDS", "solve_max_min"]


def solve_max_min(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    backend: str = "reference",
    exact: Optional[bool] = None,
) -> Allocation:
    """The max-min fair allocation for ``routing`` via ``backend``.

    ``exact`` is only meaningful for the ``reference`` backend (which
    supports both modes); passing ``exact=True`` for a float backend or
    ``exact=False`` for ``quotient`` raises ``ValueError`` rather than
    silently returning rates of the wrong kind.
    """
    if backend == "reference":
        from repro.core.maxmin import max_min_fair

        return max_min_fair(
            routing, capacities, exact=True if exact is None else exact
        )
    if backend == "heap":
        if exact:
            raise ValueError("backend 'heap' computes float rates only")
        from repro.core.fastmaxmin import max_min_fair_fast

        return max_min_fair_fast(routing, capacities)
    if backend == "vectorized":
        if exact:
            raise ValueError("backend 'vectorized' computes float rates only")
        from repro.core.vectorized import max_min_fair_vectorized

        return max_min_fair_vectorized(routing, capacities)
    if backend == "quotient":
        if exact is not None and not exact:
            raise ValueError("backend 'quotient' computes exact rates only")
        from repro.core.quotient import quotient_max_min

        return quotient_max_min(routing, capacities)
    raise ValueError(
        f"unknown backend {backend!r}; expected one of {BACKENDS}"
    )
