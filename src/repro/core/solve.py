"""One front door to every max-min fair solver backend.

``solve_max_min(routing, capacities, backend=...)`` dispatches to:

- ``"reference"`` — :func:`repro.core.maxmin.max_min_fair`; exact
  ``Fraction`` arithmetic by default (``exact=False`` for floats).
- ``"heap"`` — :func:`repro.core.fastmaxmin.max_min_fair_fast`; float,
  lazy-deletion saturation heap, fastest pure-Python option for sparse
  instances.
- ``"vectorized"`` — :func:`repro.core.vectorized.max_min_fair_vectorized`;
  float, NumPy array kernel, fastest for dense instances (thousands of
  flows over few links).  Requires NumPy.
- ``"quotient"`` — :func:`repro.core.quotient.quotient_max_min`; exact
  ``Fraction`` rates via symmetry reduction, the only exact option that
  scales to the n ≥ 64 adversarial constructions.
- ``"streaming"`` — :func:`repro.core.streaming.streaming_max_min`;
  float by default, ``exact=True`` for ``Fraction`` rates.  One-shot
  solves match the vectorized backend bit-for-bit (float) or the
  reference exactly; the backend exists for
  :class:`repro.core.streaming.StreamingMaxMin` reuse under flow churn,
  where arrivals/departures re-solve only the affected suffix of
  bottleneck rounds.
- ``"auto"`` — a graceful-degradation chain over the above: the fastest
  suitable backend is tried first and the solve *falls back* (counted by
  the ``solver.fallback.*`` metrics) when a backend is unavailable,
  crashes numerically, or — with validation enabled (see
  :mod:`repro.validate`) — returns an allocation that fails its
  certificate.  The exact reference solver is the terminal link and its
  errors propagate.  Certificate failures additionally capture a
  replayable quarantine bundle (:mod:`repro.quarantine`).  Exact
  requests chain ``quotient → reference``; float requests chain
  ``vectorized → heap → reference``.

  Setting ``REPRO_SHADOW`` to a fraction in (0, 1] shadow-checks that
  fraction of successful non-reference ``auto`` solves against the
  exact reference solver; a disagreement is quarantined, counted
  (``solver.shadow.disagreements``), and answered with the reference
  result.

All four concrete backends return the same allocation: exactly for the
exact backends, within 1e-12 between the float backends
(property-tested in ``tests/test_vectorized_quotient.py``).  See
``docs/PERFORMANCE.md`` ("Scaling to large n") for measured crossover
points and ``docs/ROBUSTNESS.md`` for the fallback/quarantine design.
"""

from __future__ import annotations

import hashlib
import itertools
import os
from typing import Mapping, Optional

from repro.errors import BackendUnavailableError, CertificateError
from repro.core.allocation import Allocation, Rate
from repro.core.routing import Link, Routing
from repro.obs import counter, get_logger

#: Recognized concrete backend names, in documentation order.
BACKENDS = ("reference", "heap", "vectorized", "quotient", "streaming")

#: Backends whose rates are exact ``Fraction`` values.
EXACT_BACKENDS = ("reference", "quotient")

#: Fallback chains for ``backend="auto"``, fastest-first; the last
#: entry is terminal (its failures propagate).
AUTO_CHAIN_EXACT = ("quotient", "reference")
AUTO_CHAIN_FLOAT = ("vectorized", "heap", "reference")

#: Environment variable: fraction of ``auto`` solves shadow-checked
#: against the exact reference (0 disables; 1 checks every solve).
SHADOW_ENV = "REPRO_SHADOW"

#: Observability instruments (no-ops unless ``repro.obs`` is enabled).
_AUTO_SOLVES = counter("solver.auto.solves")
_SHADOW_CHECKS = counter("solver.shadow.checks")
_SHADOW_DISAGREEMENTS = counter("solver.shadow.disagreements")

class _ProcessSeq:
    """Monotone per-process sequence of auto solves, driving shadow sampling.

    A bare ``itertools.count(1)`` is inherited at fork, so every worker
    of a ``--jobs N`` sweep would shadow-check the *same* solve ordinals
    — ``REPRO_SHADOW`` coverage clusters on identical positions instead
    of sampling each worker's stream independently.  The counter is
    re-seeded with a pid-derived salt the first time it is consumed in a
    new process, decorrelating the workers' sampled ordinals.
    """

    __slots__ = ("_pid", "_count")

    def __init__(self) -> None:
        self._pid: Optional[int] = None
        self._count = itertools.count(1)

    @staticmethod
    def _salt(pid: int) -> int:
        digest = hashlib.sha256(f"shadow-seq:{pid}".encode("utf-8")).digest()
        return int.from_bytes(digest[:4], "big")

    def __next__(self) -> int:
        pid = os.getpid()
        if pid != self._pid:
            self._pid = pid
            self._count = itertools.count(1 + self._salt(pid))
        return next(self._count)


#: Monotone sequence of auto solves, driving shadow sampling
#: (pid-salted so forked workers sample different ordinals).
_AUTO_SEQ = _ProcessSeq()

__all__ = [
    "AUTO_CHAIN_EXACT",
    "AUTO_CHAIN_FLOAT",
    "BACKENDS",
    "EXACT_BACKENDS",
    "SHADOW_ENV",
    "solve_max_min",
]


def _solve_backend(
    backend: str,
    routing: Routing,
    capacities: Mapping[Link, Rate],
    exact: Optional[bool],
) -> Allocation:
    """Dispatch one concrete backend (the pre-``auto`` semantics)."""
    if backend == "reference":
        from repro.core.maxmin import max_min_fair

        return max_min_fair(
            routing, capacities, exact=True if exact is None else exact
        )
    if backend == "heap":
        if exact:
            raise ValueError("backend 'heap' computes float rates only")
        from repro.core.fastmaxmin import max_min_fair_fast

        return max_min_fair_fast(routing, capacities)
    if backend == "vectorized":
        if exact:
            raise ValueError("backend 'vectorized' computes float rates only")
        from repro.core.vectorized import max_min_fair_vectorized

        return max_min_fair_vectorized(routing, capacities)
    if backend == "quotient":
        if exact is not None and not exact:
            raise ValueError("backend 'quotient' computes exact rates only")
        from repro.core.quotient import quotient_max_min

        return quotient_max_min(routing, capacities)
    if backend == "streaming":
        from repro.core.streaming import streaming_max_min

        return streaming_max_min(routing, capacities, exact=bool(exact))
    raise ValueError(
        f"unknown backend {backend!r}; expected 'auto' or one of {BACKENDS}"
    )


def _shadow_interval() -> int:
    """Shadow every N-th auto solve (0 = shadow checking disabled)."""
    raw = os.environ.get(SHADOW_ENV, "").strip()
    if not raw:
        return 0
    try:
        fraction = float(raw)
    except ValueError:
        raise ValueError(
            f"{SHADOW_ENV} must be a fraction in [0, 1], got {raw!r}"
        ) from None
    if fraction <= 0:
        return 0
    return max(1, round(1.0 / min(fraction, 1.0)))


def _quarantine(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    reason: str,
    backend: str,
    exact: Optional[bool],
    failures,
    rates=None,
) -> None:
    """Best-effort bundle capture (lazy import keeps the hot path lean)."""
    from repro.quarantine import quarantine_failure

    quarantine_failure(
        routing, capacities, reason, backend, exact,
        context=f"solve.auto.{backend}", failures=failures, rates=rates,
    )


def _solve_auto(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    exact: Optional[bool],
) -> Allocation:
    """The graceful-degradation chain behind ``backend="auto"``."""
    _AUTO_SOLVES.inc()
    chain = AUTO_CHAIN_FLOAT if exact is False else AUTO_CHAIN_EXACT
    sequence = next(_AUTO_SEQ)
    log = get_logger("solver")

    allocation: Optional[Allocation] = None
    chosen: str = chain[-1]
    for position, backend in enumerate(chain):
        terminal = position == len(chain) - 1
        try:
            allocation = _solve_backend(backend, routing, capacities, exact)
            chosen = backend
            break
        except CertificateError as error:
            counter(f"solver.fallback.{backend}").inc()
            _quarantine(
                routing, capacities, "certificate", backend, exact,
                error.failures,
            )
            if terminal:
                raise
            log.warning(
                "backend rejected by certificate; falling back",
                backend=backend, next=chain[position + 1],
            )
        except (BackendUnavailableError, ArithmeticError, AssertionError) as error:
            # Unavailable (no NumPy), numerical failure (overflow /
            # division), or a violated water-filling invariant — all
            # recoverable by a stricter backend.
            counter(f"solver.fallback.{backend}").inc()
            if terminal:
                raise
            log.warning(
                "backend failed; falling back",
                backend=backend, error=repr(error),
                next=chain[position + 1],
            )

    interval = _shadow_interval()
    if interval and chosen != "reference" and sequence % interval == 0:
        allocation = _shadow_check(
            routing, capacities, exact, chosen, allocation
        )
    return allocation


def _shadow_check(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    exact: Optional[bool],
    backend: str,
    allocation: Allocation,
) -> Allocation:
    """Compare ``allocation`` against the exact reference solver.

    On disagreement: quarantine the instance, count it, and answer with
    the trustworthy reference result (as floats when the caller asked
    for a float solve) — shadow checking degrades gracefully instead of
    failing the solve.
    """
    from repro.core.maxmin import max_min_fair
    from repro.validate import default_tolerance, rate_disagreements, validation

    _SHADOW_CHECKS.inc()
    with validation("off"):
        reference = max_min_fair(routing, capacities, exact=True)
    rates = allocation.rates()
    tol = 0.0 if default_tolerance(rates) == 0.0 else 1e-6
    diffs = rate_disagreements(rates, reference.rates(), tol=tol)
    if not diffs:
        return allocation
    _SHADOW_DISAGREEMENTS.inc()
    _quarantine(
        routing, capacities, "shadow", backend, exact, diffs, rates=rates
    )
    get_logger("solver").warning(
        "shadow check disagreed with reference; using reference result",
        backend=backend, disagreements=len(diffs),
    )
    return reference.as_float() if exact is False else reference


def solve_max_min(
    routing: Routing,
    capacities: Mapping[Link, Rate],
    backend: str = "reference",
    exact: Optional[bool] = None,
) -> Allocation:
    """The max-min fair allocation for ``routing`` via ``backend``.

    ``exact`` is only meaningful for the ``reference`` backend (which
    supports both modes) and for ``auto`` (where it selects the chain);
    passing ``exact=True`` for a float backend or ``exact=False`` for
    ``quotient`` raises ``ValueError`` rather than silently returning
    rates of the wrong kind.
    """
    if backend == "auto":
        return _solve_auto(routing, capacities, exact)
    return _solve_backend(backend, routing, capacities, exact)
