"""Allocations, throughput, and lexicographic order over sorted vectors (§2.2).

Given a routing, an *allocation* assigns each flow a non-negative rate.
An allocation is *feasible* when the total rate over each link does not
exceed its capacity.  Max-min fairness compares allocations through
their *sorted vectors* (rates sorted ascending) in lexicographic order;
this module provides that comparison both exactly (for ``Fraction``
rates) and with an explicit tolerance (for float rates).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.flows import Flow
from repro.core.routing import Routing

Rate = Union[int, float, Fraction]


class Allocation:
    """A per-flow rate assignment.

    >>> from repro.core.nodes import Source, Destination
    >>> f = Flow(Source(1, 1), Destination(1, 1))
    >>> a = Allocation({f: Fraction(1, 3)})
    >>> a.throughput()
    Fraction(1, 3)
    >>> a.sorted_vector()
    [Fraction(1, 3)]
    """

    def __init__(self, rates: Mapping[Flow, Rate]) -> None:
        for flow, rate in rates.items():
            if rate < 0:
                raise ValueError(f"negative rate {rate!r} for flow {flow!r}")
        self._rates: Dict[Flow, Rate] = dict(rates)
        # Sorted vector and throughput, computed once on demand:
        # allocations are immutable, and the search layers compare the
        # same incumbent's sorted vector against every candidate.
        self._sorted: Optional[Tuple[Rate, ...]] = None
        self._throughput: Optional[Rate] = None

    def rate(self, flow: Flow) -> Rate:
        """The rate assigned to ``flow``."""
        return self._rates[flow]

    def __getitem__(self, flow: Flow) -> Rate:
        return self._rates[flow]

    def __contains__(self, flow: Flow) -> bool:
        return flow in self._rates

    def __len__(self) -> int:
        return len(self._rates)

    def items(self) -> Iterable[Tuple[Flow, Rate]]:
        return self._rates.items()

    def flows(self) -> List[Flow]:
        return list(self._rates)

    def rates(self) -> Dict[Flow, Rate]:
        """A copy of the flow → rate map."""
        return dict(self._rates)

    def throughput(self) -> Rate:
        """Total rate over all flows — ``t(a)`` in the paper."""
        if self._throughput is None:
            self._throughput = sum(self._rates.values())
        return self._throughput

    def sorted_vector(self) -> List[Rate]:
        """Rates sorted from lowest to highest — ``a↑`` in the paper."""
        if self._sorted is None:
            self._sorted = tuple(sorted(self._rates.values()))
        return list(self._sorted)

    def as_float(self) -> "Allocation":
        """A copy with every rate converted to float."""
        return Allocation({f: float(r) for f, r in self._rates.items()})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Allocation({len(self._rates)} flows, t={self.throughput()})"


def lex_compare(
    left: Sequence[Rate], right: Sequence[Rate], tol: float = 0.0
) -> int:
    """Lexicographic three-way comparison of two sorted vectors.

    Returns ``-1`` if ``left < right``, ``0`` if equal, ``1`` if
    ``left > right`` — all in lexicographic order with per-component
    tolerance ``tol`` (use ``tol=0`` with exact ``Fraction`` rates).

    Following the convention for max-min comparisons over allocations of
    different sizes, a missing component compares as *larger* than any
    present one (a strict prefix is lexicographically smaller only if a
    differing component is found first; equal-prefix shorter vectors are
    treated as smaller).
    """
    for a, b in zip(left, right):
        if a < (b - tol if tol else b):
            return -1
        if a > (b + tol if tol else b):
            return 1
    if len(left) == len(right):
        return 0
    return -1 if len(left) < len(right) else 1


def lex_greater_or_equal(
    left: Sequence[Rate], right: Sequence[Rate], tol: float = 0.0
) -> bool:
    """True if ``left ≥ right`` in lexicographic order (``a↑ ⪰ a'↑``)."""
    return lex_compare(left, right, tol=tol) >= 0


def is_feasible(
    routing: Routing,
    allocation: Allocation,
    capacities: Mapping[Tuple, Rate],
    tol: float = 0.0,
) -> bool:
    """Feasibility check: per-link total rate ≤ capacity (+ ``tol``).

    ``capacities`` maps links to capacities (see
    ``DiGraph.capacities()``); infinite capacities always pass.
    """
    loads: Dict[Tuple, Rate] = {}
    for flow in routing.flows():
        rate = allocation.rate(flow)
        for link in routing.links_of(flow):
            loads[link] = loads.get(link, 0) + rate
    for link, load in loads.items():
        capacity = capacities[link]
        if capacity == float("inf"):
            continue
        if load > (capacity + tol if tol else capacity):
            return False
    return True


def link_utilizations(
    routing: Routing,
    allocation: Allocation,
    capacities: Mapping[Tuple, Rate],
) -> Dict[Tuple, Rate]:
    """Per-link load / capacity ratios (finite-capacity links only)."""
    loads: Dict[Tuple, Rate] = {}
    for flow in routing.flows():
        rate = allocation.rate(flow)
        for link in routing.links_of(flow):
            loads[link] = loads.get(link, 0) + rate
    result: Dict[Tuple, Rate] = {}
    for link, load in loads.items():
        capacity = capacities[link]
        if capacity != float("inf"):
            result[link] = load / capacity
    return result
