"""Step-level verification of the paper's proof chains.

The theorem tests elsewhere check *conclusions* (rates, bounds).  This
module instruments the *proofs*: it computes every intermediate quantity
a proof manipulates and checks each inequality link separately, so a
regression pinpoints the exact step that broke — and so the library
doubles as an executable companion to the paper's §3–§5.

Currently instrumented:

- :func:`theorem_3_4_chain` — the §3 argument:
  ``T^MmF ≥ max(Σ τ_{s_f}, Σ τ_{t_f}) ≥ ½ Σ (τ_{s_f} + τ_{t_f}) ≥ ½|F'| = ½ T^MT``
  with ``τ_s``/``τ_t`` the per-source/per-destination max-min rate
  totals and ``F'`` a maximum matching of ``G^MS``.
- :func:`theorem_5_4_chain` — the §5 upper-bound chain:
  ``T(a) ≤ T^{T-MT} = T^MT ≤ 2 T^MmF`` for any per-routing max-min
  allocation ``a`` in the Clos network.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, NamedTuple

from repro.core.allocation import Allocation
from repro.core.bottleneck import bottleneck_links
from repro.core.flows import Flow, FlowCollection
from repro.core.nodes import Destination, Source
from repro.core.objectives import macro_switch_max_min
from repro.core.routing import Routing
from repro.core.throughput import max_throughput_value, maximum_throughput_matching
from repro.core.topology import ClosNetwork, MacroSwitch


class Theorem34Chain(NamedTuple):
    """Every quantity in the §3 lower-bound argument, measured."""

    t_max_min: Fraction  # T^MmF
    t_max_throughput: int  # T^MT = |F'|
    tau_source: Dict[Source, Fraction]  # τ_s per source
    tau_dest: Dict[Destination, Fraction]  # τ_t per destination
    matched_flows: List[Flow]  # F'
    sum_tau_source_matched: Fraction  # Σ_{f∈F'} τ_{s_f}
    sum_tau_dest_matched: Fraction  # Σ_{f∈F'} τ_{t_f}
    #: per matched flow f: τ_{s_f} + τ_{t_f} (each must be ≥ 1)
    matched_pair_totals: Dict[Flow, Fraction]
    #: every link of the chain, as named booleans
    step_flow_conservation: bool  # T^MmF = Σ_s τ_s = Σ_t τ_t
    step_matching_subsums: bool  # Σ_s τ_s ≥ Σ_{F'} τ_{s_f} (and dest side)
    step_bottleneck_pairs: bool  # τ_{s_f} + τ_{t_f} ≥ 1 for all f ∈ F'
    step_final_bound: bool  # T^MmF ≥ |F'| / 2
    all_steps_hold: bool


def theorem_3_4_chain(
    network: MacroSwitch, flows: FlowCollection
) -> Theorem34Chain:
    """Instrument the §3 proof on an arbitrary macro-switch instance.

    Also re-derives the bottleneck fact the proof cites: every matched
    flow is bottlenecked on its source or destination server link.
    """
    allocation = macro_switch_max_min(network, flows)
    routing = Routing.for_macro_switch(network, flows)
    capacities = network.graph.capacities()

    tau_source: Dict[Source, Fraction] = {}
    tau_dest: Dict[Destination, Fraction] = {}
    for flow in flows:
        rate = allocation.rate(flow)
        tau_source[flow.source] = tau_source.get(flow.source, Fraction(0)) + rate
        tau_dest[flow.dest] = tau_dest.get(flow.dest, Fraction(0)) + rate

    t_mmf = allocation.throughput()
    step_conservation = (
        t_mmf == sum(tau_source.values()) == sum(tau_dest.values())
    )

    matched = list(maximum_throughput_matching(flows))
    t_mt = len(matched)

    sum_src = sum((tau_source[f.source] for f in matched), Fraction(0))
    sum_dst = sum((tau_dest[f.dest] for f in matched), Fraction(0))
    # F' uses each source (destination) at most once, so the matched
    # subsums cannot exceed the full sums.
    step_subsums = (
        sum(tau_source.values()) >= sum_src
        and sum(tau_dest.values()) >= sum_dst
    )

    pair_totals: Dict[Flow, Fraction] = {}
    step_pairs = True
    for flow in matched:
        total = tau_source[flow.source] + tau_dest[flow.dest]
        pair_totals[flow] = total
        if total < 1:
            step_pairs = False
        # the cited bottleneck fact: a server link of f is saturated
        links = bottleneck_links(routing, allocation, capacities, flow)
        if not links:
            step_pairs = False

    step_final = 2 * t_mmf >= t_mt

    return Theorem34Chain(
        t_max_min=t_mmf,
        t_max_throughput=t_mt,
        tau_source=tau_source,
        tau_dest=tau_dest,
        matched_flows=matched,
        sum_tau_source_matched=sum_src,
        sum_tau_dest_matched=sum_dst,
        matched_pair_totals=pair_totals,
        step_flow_conservation=step_conservation,
        step_matching_subsums=step_subsums,
        step_bottleneck_pairs=step_pairs,
        step_final_bound=step_final,
        all_steps_hold=(
            step_conservation and step_subsums and step_pairs and step_final
        ),
    )


class Theorem54Chain(NamedTuple):
    """The §5 upper-bound chain for one Clos allocation."""

    t_allocation: Fraction  # T(a) for the given routing's max-min a
    t_max_throughput: int  # T^MT = T^{T-MT} (Lemma 5.2)
    t_macro_max_min: Fraction  # T^MmF
    step_allocation_below_mt: bool  # T(a) ≤ T^MT
    step_mt_below_twice_mmf: bool  # T^MT ≤ 2 T^MmF
    step_conclusion: bool  # T(a) ≤ 2 T^MmF
    all_steps_hold: bool


def theorem_5_4_chain(
    network: ClosNetwork,
    flows: FlowCollection,
    allocation: Allocation,
) -> Theorem54Chain:
    """Instrument the §5 chain for any feasible Clos allocation."""
    t_a = allocation.throughput()
    t_mt = max_throughput_value(flows)
    macro = macro_switch_max_min(MacroSwitch(network.n), flows)
    t_mmf = macro.throughput()
    step_a = t_a <= t_mt
    step_b = t_mt <= 2 * t_mmf
    step_c = t_a <= 2 * t_mmf
    return Theorem54Chain(
        t_allocation=t_a,
        t_max_throughput=t_mt,
        t_macro_max_min=t_mmf,
        step_allocation_below_mt=step_a,
        step_mt_below_twice_mmf=step_b,
        step_conclusion=step_c,
        all_steps_hold=step_a and step_b and step_c,
    )
