"""The paper's core objects: topologies, flows, routings, allocations, fairness."""

from repro.core.allocation import (
    Allocation,
    is_feasible,
    lex_compare,
    lex_greater_or_equal,
    link_utilizations,
)
from repro.core.bottleneck import (
    bottleneck_links,
    certify_max_min_fair,
    flows_without_bottleneck,
    is_max_min_fair,
    link_loads,
)
from repro.core.doom_switch import DoomSwitchResult, doom_switch, doom_switch_routing
from repro.core.flows import Flow, FlowCollection
from repro.core.maxmin import UnboundedRateError, max_min_fair, max_min_fair_for_network
from repro.core.quotient import QuotientInstance, build_quotient, quotient_max_min
from repro.core.nodes import (
    ClosNode,
    Destination,
    InputSwitch,
    MiddleSwitch,
    OutputSwitch,
    Source,
)
from repro.core.objectives import (
    OptimalAllocation,
    lex_max_min_fair,
    macro_switch_max_min,
    throughput_max_min_fair,
)
from repro.core.relative import (
    RelativeAllocation,
    improve_routing_relative,
    ratio_vector,
    relative_max_min_fair,
)
from repro.core.routing import Routing, all_middle_assignments
from repro.core.solve import BACKENDS, EXACT_BACKENDS, solve_max_min
from repro.core.throughput import (
    link_disjoint_routing,
    max_throughput_allocation,
    max_throughput_value,
    maximum_throughput_matching,
    throughput_max_throughput,
)
from repro.core.topology import ClosNetwork, MacroSwitch, Path

from repro.core.vectorized import (
    CompiledRouting,
    compile_routing,
    max_min_fair_vectorized,
)

__all__ = [
    "Allocation",
    "BACKENDS",
    "ClosNetwork",
    "CompiledRouting",
    "EXACT_BACKENDS",
    "QuotientInstance",
    "ClosNode",
    "Destination",
    "DoomSwitchResult",
    "Flow",
    "FlowCollection",
    "InputSwitch",
    "MacroSwitch",
    "MiddleSwitch",
    "OptimalAllocation",
    "OutputSwitch",
    "Path",
    "RelativeAllocation",
    "Routing",
    "Source",
    "UnboundedRateError",
    "all_middle_assignments",
    "bottleneck_links",
    "build_quotient",
    "certify_max_min_fair",
    "compile_routing",
    "doom_switch",
    "doom_switch_routing",
    "flows_without_bottleneck",
    "is_feasible",
    "is_max_min_fair",
    "lex_compare",
    "lex_greater_or_equal",
    "lex_max_min_fair",
    "link_disjoint_routing",
    "link_loads",
    "link_utilizations",
    "improve_routing_relative",
    "macro_switch_max_min",
    "max_min_fair",
    "max_min_fair_for_network",
    "max_min_fair_vectorized",
    "max_throughput_allocation",
    "max_throughput_value",
    "maximum_throughput_matching",
    "quotient_max_min",
    "ratio_vector",
    "relative_max_min_fair",
    "solve_max_min",
    "throughput_max_min_fair",
    "throughput_max_throughput",
]
