"""Maximum-throughput allocations (Definition 3.1, Lemmas 3.2 and 5.2).

**Macro-switch (Lemma 3.2).**  A maximum-throughput allocation in
``MS_n`` assigns rate 1 to the flows of a maximum matching ``F'`` of the
demand multigraph ``G^MS`` and rate 0 to every other flow, so
``T^MT = |F'|``.  This is the admission-control view: matched flows are
admitted at link capacity, the rest are rejected.

**Clos network (Lemma 5.2).**  ``T^{T-MT} = T^MT``: the matched flows
form a multigraph of maximum degree ≤ n over the input/output switches
(each ToR has n servers, so a matching uses each ToR at most n times),
hence König's theorem yields an ``n``-edge-coloring of ``G^C`` restricted
to ``F'``, i.e. a link-disjoint routing through the ``n`` middle
switches that replicates the macro-switch maximum-throughput allocation.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Tuple

from repro.coloring.konig import edge_coloring
from repro.core.allocation import Allocation
from repro.core.flows import Flow, FlowCollection
from repro.core.routing import Routing
from repro.core.topology import ClosNetwork, MacroSwitch
from repro.matching.hopcroft_karp import maximum_matching


def maximum_throughput_matching(flows: FlowCollection) -> Dict[Flow, Tuple]:
    """A maximum matching ``F'`` of ``G^MS`` (matched flow → endpoints)."""
    return maximum_matching(flows.demand_graph_ms())


def max_throughput_value(flows: FlowCollection) -> int:
    """``T^MT``: the maximum throughput across the macro-switch."""
    return len(maximum_throughput_matching(flows))


def max_throughput_allocation(
    flows: FlowCollection, exact: bool = True
) -> Allocation:
    """A maximum-throughput allocation per Lemma 3.2 (0/1 rates).

    >>> from repro.core.topology import MacroSwitch
    >>> ms = MacroSwitch(1)
    >>> flows = FlowCollection.from_pairs(
    ...     [(ms.source(1, 1), ms.destination(1, 1)),
    ...      (ms.source(2, 1), ms.destination(1, 1))])
    >>> max_throughput_allocation(flows).throughput()
    Fraction(1, 1)
    """
    matched = maximum_throughput_matching(flows)
    one = Fraction(1) if exact else 1.0
    zero = Fraction(0) if exact else 0.0
    return Allocation({f: (one if f in matched else zero) for f in flows})


def link_disjoint_routing(
    network: ClosNetwork, matched: FlowCollection
) -> Routing:
    """A link-disjoint Clos routing of a (sub-)collection of flows.

    Requires the demand multigraph ``G^C`` of ``matched`` to have maximum
    degree at most ``n``; raises
    :class:`repro.coloring.konig.ColoringError` otherwise.  Color ``c``
    maps to middle switch ``M_{c+1}`` (footnote 5's correspondence).
    """
    colors = edge_coloring(
        matched.demand_graph_clos(), num_colors=network.num_middles
    )
    middles = {flow: color + 1 for flow, color in colors.items()}
    return Routing.from_middles(network, matched, middles)


def throughput_max_throughput(
    network: ClosNetwork, flows: FlowCollection, exact: bool = True
) -> Tuple[Routing, Allocation]:
    """A throughput-maximum-throughput pair ``(routing, allocation)``.

    Constructive Lemma 5.2: route a maximum matching link-disjointly via
    König coloring (rate 1 each) and route every unmatched flow anywhere
    (middle switch 1) at rate 0.  The returned allocation is feasible for
    the returned routing and achieves ``T^{T-MT} = T^MT``.
    """
    matched_map = maximum_throughput_matching(flows)
    matched = FlowCollection(f for f in flows if f in matched_map)
    disjoint = link_disjoint_routing(network, matched)

    one = Fraction(1) if exact else 1.0
    zero = Fraction(0) if exact else 0.0
    paths = {f: disjoint.path(f) for f in matched}
    rates: Dict[Flow, object] = {}
    for flow in flows:
        if flow in matched_map:
            rates[flow] = one
        else:
            rates[flow] = zero
            paths[flow] = network.path_via(flow.source, flow.dest, 1)
    return Routing(paths), Allocation(rates)
