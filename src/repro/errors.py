"""The library-wide typed exception hierarchy.

Every failure a solver, router, or experiment driver can signal derives
from :class:`ReproError`, so ``except ReproError`` catches "the library
rejected this input or could not produce an answer" without also
swallowing programming errors.  Subclasses additionally derive from the
builtin exception the pre-typed code raised (``ValueError``,
``KeyError``), so code written against the old behavior keeps working.

The hierarchy::

    ReproError
    ├── CapacityValidationError (ValueError)   malformed capacity maps
    │   ├── UnknownLinkError (KeyError)        links absent from the map
    │   └── UnboundedRateError                 flow sees no finite link
    ├── InfeasibleRoutingError (ValueError)    routing cannot be realized
    │   ├── UnknownFlowError (KeyError)        flow not in the routing
    │   └── DisconnectedFlowError              no surviving path at all
    ├── BackendUnavailableError (RuntimeError) solver backend cannot run here
    ├── CertificateError                       solver output failed validation
    │   └── SolverDisagreementError            backends returned different rates
    └── ExperimentError                        resilient-runner failures
        ├── StepTimeoutError                   per-step wall clock blown
        └── StepFailedError                    retries exhausted

This module intentionally imports nothing from the rest of the library
so any module — ``core``, ``sim``, ``routers``, the CLI — can raise
typed errors without import cycles.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error this library raises deliberately."""


class CapacityValidationError(ReproError, ValueError):
    """A capacity map is malformed: wrong links, negative or non-numeric
    capacities, or an impossible degradation request."""


class UnknownLinkError(CapacityValidationError, KeyError):
    """One or more links are absent from a capacity map.

    ``links`` carries *every* offending link, not just the first, so a
    caller can fix a whole batch of typos in one round trip.
    """

    def __init__(self, links) -> None:
        self.links = list(links)
        super().__init__(f"unknown links: {self.links!r}")

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]


class UnboundedRateError(CapacityValidationError):
    """Raised when some flow crosses only infinite-capacity links."""


class InfeasibleRoutingError(ReproError, ValueError):
    """A routing request cannot be realized in the given network:
    unassigned flows, invalid middle-switch indices, endpoints outside
    the topology, or paths that do not exist in the graph."""


class UnknownFlowError(InfeasibleRoutingError, KeyError):
    """A flow is absent from the routing or collection being queried."""

    def __init__(self, flow) -> None:
        self.flow = flow
        super().__init__(f"unknown flow: {flow!r}")

    def __str__(self) -> str:  # KeyError.__str__ would repr() the message
        return self.args[0]


class DisconnectedFlowError(InfeasibleRoutingError):
    """Flows have *no* usable path at all (every candidate crosses a
    failed component).  ``flows`` lists every disconnected flow."""

    def __init__(self, flows, message: str = "") -> None:
        self.flows = list(flows)
        super().__init__(
            message or f"no surviving path for flows: {self.flows!r}"
        )


class BackendUnavailableError(ReproError, RuntimeError):
    """A requested solver backend cannot run in this environment (e.g.
    the ``vectorized`` backend without NumPy installed)."""


class CertificateError(ReproError):
    """A computed allocation failed an invariant certificate.

    Raised by :mod:`repro.validate` when a solver result is infeasible,
    numerically corrupt, or not max-min fair (no bottleneck link for
    some flow).  ``failures`` lists every violated invariant;
    ``context`` names the solver path that produced the allocation.
    """

    def __init__(self, context: str, failures) -> None:
        self.context = context
        self.failures = list(failures)
        detail = "; ".join(self.failures[:3])
        more = len(self.failures) - 3
        if more > 0:
            detail += f" (+{more} more)"
        super().__init__(f"certificate failure in {context}: {detail}")


class SolverDisagreementError(CertificateError):
    """Two solver backends disagreed on the same instance's rates."""


class ExperimentError(ReproError):
    """Base class for resilient-runner failures (see :mod:`repro.runner`)."""


class StepTimeoutError(ExperimentError):
    """A runner step exceeded its wall-clock budget."""

    def __init__(self, step: str, timeout: float) -> None:
        self.step = step
        self.timeout = timeout
        super().__init__(f"step {step!r} exceeded {timeout:g}s wall clock")


class StepFailedError(ExperimentError):
    """A runner step failed on every attempt; ``cause`` is the last error."""

    def __init__(self, step: str, attempts: int, cause: BaseException) -> None:
        self.step = step
        self.attempts = attempts
        self.cause = cause
        super().__init__(
            f"step {step!r} failed after {attempts} attempt(s): {cause}"
        )
