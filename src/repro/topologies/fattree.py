"""k-ary fat-trees — the deployed folded-Clos fabric (Al-Fares et al.).

The paper's model is the 3-stage Clos ``C_n``; production data-centers
deploy its folded cousin, the k-ary fat-tree (the paper's reference [2]):

- ``k`` pods, each with ``k/2`` edge switches and ``k/2`` aggregation
  switches;
- ``(k/2)²`` core switches, core ``(i, j)`` attached to aggregation
  switch ``j`` of every pod;
- ``k/2`` hosts per edge switch — ``k³/4`` hosts total;
- every link has unit capacity, in both directions (we model each
  direction as its own directed link).

The fat-tree exposes multiple equal-length paths per host pair —
``(k/2)²`` across pods, ``k/2`` within a pod, 1 within an edge switch —
and the library's generic machinery (water-filling, bottleneck
certificates, feasibility) works on it unchanged, because a
:class:`~repro.core.routing.Routing` is just a per-flow path.

§7's R1 claim is stated "for every interconnection network connecting
sources to destinations"; :mod:`repro.experiments.fattree_generality`
uses this module to check the paper's phenomena beyond ``C_n``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, NamedTuple, Tuple

from repro.graph.digraph import INFINITE_CAPACITY, DiGraph


class Host(NamedTuple):
    """Host ``h`` of edge switch ``edge`` in pod ``pod`` (all 0-based)."""

    pod: int
    edge: int
    index: int
    kind: str = "host"

    def __repr__(self) -> str:
        return f"h{self.pod}.{self.edge}.{self.index}"


class EdgeSwitch(NamedTuple):
    pod: int
    index: int
    kind: str = "edge"

    def __repr__(self) -> str:
        return f"e{self.pod}.{self.index}"


class AggSwitch(NamedTuple):
    pod: int
    index: int
    kind: str = "agg"

    def __repr__(self) -> str:
        return f"a{self.pod}.{self.index}"


class CoreSwitch(NamedTuple):
    """Core switch ``(group, index)``: attached to aggregation switch
    ``group`` of every pod."""

    group: int
    index: int
    kind: str = "core"

    def __repr__(self) -> str:
        return f"c{self.group}.{self.index}"


FatTreePath = Tuple


class FatTree:
    """The k-ary fat-tree (``k`` even, ``k ≥ 2``).

    >>> ft = FatTree(4)
    >>> len(ft.hosts)
    16
    >>> len(ft.core_switches)
    4
    >>> len(ft.paths(ft.hosts[0], ft.hosts[-1]))  # cross-pod: (k/2)^2
    4
    """

    def __init__(self, k: int) -> None:
        if k < 2 or k % 2:
            raise ValueError(f"fat-tree arity must be even and >= 2, got {k}")
        self.k = k
        half = k // 2
        self.half = half
        self.graph = DiGraph()

        self.hosts: List[Host] = [
            Host(p, e, h)
            for p in range(k)
            for e in range(half)
            for h in range(half)
        ]
        self.edge_switches: List[EdgeSwitch] = [
            EdgeSwitch(p, e) for p in range(k) for e in range(half)
        ]
        self.agg_switches: List[AggSwitch] = [
            AggSwitch(p, a) for p in range(k) for a in range(half)
        ]
        self.core_switches: List[CoreSwitch] = [
            CoreSwitch(g, i) for g in range(half) for i in range(half)
        ]
        self._build_links()

    def _build_links(self) -> None:
        for host in self.hosts:
            edge = EdgeSwitch(host.pod, host.edge)
            self.graph.add_link(host, edge, capacity=1)
            self.graph.add_link(edge, host, capacity=1)
        for edge in self.edge_switches:
            for a in range(self.half):
                agg = AggSwitch(edge.pod, a)
                self.graph.add_link(edge, agg, capacity=1)
                self.graph.add_link(agg, edge, capacity=1)
        for agg in self.agg_switches:
            for i in range(self.half):
                core = CoreSwitch(agg.index, i)
                self.graph.add_link(agg, core, capacity=1)
                self.graph.add_link(core, agg, capacity=1)

    # ------------------------------------------------------------------
    # Path enumeration
    # ------------------------------------------------------------------
    def paths(self, src: Host, dst: Host) -> List[FatTreePath]:
        """All shortest ``src → dst`` paths.

        1 path within an edge switch, ``k/2`` within a pod, ``(k/2)²``
        across pods (one per (aggregation choice, core choice)).
        """
        if src == dst:
            raise ValueError("source and destination hosts coincide")
        src_edge = EdgeSwitch(src.pod, src.edge)
        dst_edge = EdgeSwitch(dst.pod, dst.edge)
        if src_edge == dst_edge:
            return [(src, src_edge, dst)]
        if src.pod == dst.pod:
            return [
                (src, src_edge, AggSwitch(src.pod, a), dst_edge, dst)
                for a in range(self.half)
            ]
        return [
            (
                src,
                src_edge,
                AggSwitch(src.pod, a),
                CoreSwitch(a, i),
                AggSwitch(dst.pod, a),
                dst_edge,
                dst,
            )
            for a in range(self.half)
            for i in range(self.half)
        ]

    def num_paths(self, src: Host, dst: Host) -> int:
        if EdgeSwitch(src.pod, src.edge) == EdgeSwitch(dst.pod, dst.edge):
            return 1
        if src.pod == dst.pod:
            return self.half
        return self.half * self.half

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FatTree(k={self.k})"


def host_macro_graph(tree: FatTree) -> Tuple[DiGraph, Dict]:
    """The macro-switch abstraction of a fat-tree's host population.

    A star: every source host has a unit link into a hub of infinite
    interior capacity, every destination host a unit link out — the same
    "only access links bind" idealization the paper's macro-switch
    formalizes.  Returns ``(graph, path_map_factory)`` where paths are
    ``(("src", host), HUB, ("dst", host))`` triples; source and
    destination roles are distinct nodes so that a host appearing as
    both (as in any host-to-host workload) contributes one unit of
    send capacity and one unit of receive capacity, matching full-duplex
    access links.
    """
    graph = DiGraph()
    hub = ("HUB",)
    for host in tree.hosts:
        graph.add_link(("src", host), hub, capacity=1)
        graph.add_link(hub, ("dst", host), capacity=1)

    def macro_path(src: Host, dst: Host) -> FatTreePath:
        return (("src", src), hub, ("dst", dst))

    return graph, macro_path


def ecmp_fat_tree_routing(
    tree: FatTree, flows: List[Tuple[Host, Host, int]], seed: int = 0
):
    """Hash-based ECMP over a fat-tree: each flow picks one of its
    shortest paths by hashing its identity.

    ``flows`` are ``(src, dst, tag)`` triples; returns ``{flow_triple:
    path}`` suitable for :class:`repro.core.routing.Routing` via a plain
    dict (fat-tree flows are not ``repro.core.flows.Flow`` objects —
    those are Clos-specific)."""
    assignment = {}
    for src, dst, tag in flows:
        options = tree.paths(src, dst)
        payload = repr((src, dst, tag, seed)).encode()
        digest = int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")
        assignment[(src, dst, tag)] = options[digest % len(options)]
    return assignment
