"""Additional data-center topologies (beyond the paper's C_n)."""

from repro.topologies.fattree import (
    AggSwitch,
    CoreSwitch,
    EdgeSwitch,
    FatTree,
    Host,
    ecmp_fat_tree_routing,
    host_macro_graph,
)

__all__ = [
    "AggSwitch",
    "CoreSwitch",
    "EdgeSwitch",
    "FatTree",
    "Host",
    "ecmp_fat_tree_routing",
    "host_macro_graph",
]
