"""Process-parallel execution of sweep experiments.

The k/n-sweep experiments are embarrassingly parallel: each sweep point
is an independent, deterministic computation.  :func:`parallel_map` runs
a picklable point function over the points with a stdlib
:class:`~concurrent.futures.ProcessPoolExecutor` and returns results in
input order, so a parallel sweep's result list is *identical* to the
sequential one (tested in ``tests/test_parallel.py``).

Design rules the experiment refactors follow:

- Point functions are **module-level** (or :func:`functools.partial` of
  module-level functions) so they pickle; each takes one task argument
  — a primitive or a tuple of primitives — and rebuilds whatever
  networks/workloads it needs from it.  Rebuilding is deterministic, so
  results do not depend on which process computed them.
- ``jobs=1`` (every caller's default) short-circuits to a plain
  sequential loop in the calling process: no executor, no pickling, no
  behavior change — sequential runs stay byte-identical, manifests and
  checkpoint/resume included.
- Randomized tasks carry their seed *in the task description*
  (:func:`derive_seed` derives stable per-task seeds from a base seed),
  never in shared mutable state.

When observability is on (``REPRO_OBS=1``), worker instrumentation is
*not* lost: each worker runs its task under a fresh obs session and
ships a :class:`repro.obs.pipeline.TelemetryPayload` (metrics state,
span forest, peak memory) back with its result, and the parent merges
and absorbs all payloads — so counter totals from a ``--jobs N`` run
match the sequential run exactly, and worker spans appear under
synthetic ``worker:<i>`` roots in traces.  With observability off the
shipping layer is skipped entirely and workers return bare results,
byte-identical to before.
"""

from __future__ import annotations

import functools
import hashlib
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, TypeVar

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")

__all__ = ["derive_seed", "parallel_map", "resolve_jobs"]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` mean "all cores"."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


def parallel_map(
    fn: Callable[[_Task], _Result],
    tasks: Iterable[_Task],
    jobs: int = 1,
) -> List[_Result]:
    """``[fn(t) for t in tasks]``, optionally across processes.

    With ``jobs <= 1`` (or fewer than two tasks) this is exactly the
    sequential list comprehension, run in-process.  Otherwise ``fn`` must
    be picklable (module-level, or a ``functools.partial`` of one) and
    the tasks are distributed over ``min(jobs, len(tasks))`` worker
    processes.  Results are returned in task order either way; a worker
    exception propagates to the caller.

    When observability is enabled, multi-process runs wrap each task in
    :func:`repro.obs.pipeline.run_with_telemetry`: workers ship their
    instrumentation home with each result, and the merged telemetry is
    absorbed into this process's registry and tracer before returning.
    """
    task_list = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(task_list) <= 1:
        return [fn(task) for task in task_list]

    from repro.obs.state import STATE

    workers = min(jobs, len(task_list))
    if not STATE.enabled:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(fn, task_list))

    from repro.obs import pipeline

    call = functools.partial(
        pipeline.run_with_telemetry, fn, pipeline.worker_config()
    )
    with ProcessPoolExecutor(max_workers=workers) as pool:
        shipped = list(pool.map(call, task_list))
    results = [result for result, _ in shipped]
    payloads = [
        pipeline.TelemetryPayload.from_dict(document)
        for _, document in shipped
    ]
    pipeline.merge_payloads(payloads).absorb()
    return results


def derive_seed(base: int, *components) -> int:
    """A stable 64-bit seed for the task identified by ``components``.

    Hashes ``(base, components)`` with SHA-256, so per-task seeds are
    reproducible across runs, machines, and worker assignments, and
    changing the base seed or any component decorrelates the stream.

    >>> derive_seed(0, "uniform", 3) == derive_seed(0, "uniform", 3)
    True
    >>> derive_seed(0, "uniform", 3) != derive_seed(1, "uniform", 3)
    True
    """
    payload = repr((base, components)).encode("utf-8")
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big")
