"""Process-parallel execution of sweep experiments.

The k/n-sweep experiments are embarrassingly parallel: each sweep point
is an independent, deterministic computation.  :func:`parallel_map` runs
a picklable point function over the points with a stdlib
:class:`~concurrent.futures.ProcessPoolExecutor` and returns results in
input order, so a parallel sweep's result list is *identical* to the
sequential one (tested in ``tests/test_parallel.py``).

Design rules the experiment refactors follow:

- Point functions are **module-level** (or :func:`functools.partial` of
  module-level functions) so they pickle; each takes one task argument
  — a primitive or a tuple of primitives — and rebuilds whatever
  networks/workloads it needs from it.  Rebuilding is deterministic, so
  results do not depend on which process computed them.
- ``jobs=1`` (every caller's default) short-circuits to a plain
  sequential loop in the calling process: no executor, no pickling, no
  behavior change — sequential runs stay byte-identical, manifests and
  checkpoint/resume included.
- Randomized tasks carry their seed *in the task description*
  (:func:`derive_seed` derives stable per-task seeds from a base seed),
  never in shared mutable state.
- Bulk array payloads never cross the pipe: callers that share large
  NumPy arrays with workers pack them once into a
  :class:`multiprocessing.shared_memory` block via
  :func:`shared_arrays`; workers attach zero-copy through
  :func:`shared_array` and only small index tasks are pickled.  An
  explicit ``chunksize`` batches thousands of sub-millisecond tasks per
  pickle round-trip (default: about four chunks per worker).

When observability is on (``REPRO_OBS=1``), worker instrumentation is
*not* lost: each worker runs its task under a fresh obs session and
ships a :class:`repro.obs.pipeline.TelemetryPayload` (metrics state,
span forest, peak memory) back with its result, and the parent merges
and absorbs all payloads — so counter totals from a ``--jobs N`` run
match the sequential run exactly, and worker spans appear under
synthetic ``worker:<i>`` roots in traces.  If a task raises, telemetry
from the tasks that *did* complete is still absorbed before the
exception propagates, and the number of lost payloads is counted on
``obs.workers_failed``.  With observability off the shipping layer is
skipped entirely and workers return bare results, byte-identical to
before.
"""

from __future__ import annotations

import contextlib
import functools
import hashlib
import os
import re
from concurrent.futures import ProcessPoolExecutor
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    TypeVar,
)

_Task = TypeVar("_Task")
_Result = TypeVar("_Result")

#: ``repr`` fragment of objects without a stable value representation
#: (``<object object at 0x7f...>``) — such components make seeds
#: irreproducible across runs, so :func:`derive_seed` rejects them.
_ADDRESS_RE = re.compile(r" at 0x[0-9a-fA-F]+")

__all__ = [
    "SharedArrays",
    "derive_seed",
    "parallel_map",
    "resolve_jobs",
    "shared_array",
    "shared_arrays",
]


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` mean "all cores".

    Negative values are rejected *before* the all-cores short-circuit so
    a bad value from a config file fails loudly with the real contract
    in the message, instead of silently resolving.
    """
    if jobs is not None and jobs < 0:
        raise ValueError(
            "jobs must be a non-negative integer "
            f"(0 or None = all cores), got {jobs}"
        )
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    return jobs


# ----------------------------------------------------------------------
# Shared-memory array transport
# ----------------------------------------------------------------------
class SharedArrays:
    """Named NumPy arrays packed into one shared-memory block.

    The parent packs its arrays once (:func:`shared_arrays`); the pool
    initializer attaches every worker to the same block, and workers
    read (or write disjoint slices of) the arrays zero-copy via
    :func:`shared_array`.  Only the block *name* and a small layout spec
    cross the process boundary — never the array bytes.

    Layout: each array is copied to a 16-byte-aligned offset of a
    single :class:`multiprocessing.shared_memory.SharedMemory` segment;
    the spec is ``[(name, dtype_str, shape, offset), ...]``.  The owner
    must :meth:`close` (parent: also unlinks); views are dropped first
    so the exported buffer releases cleanly.
    """

    _ALIGN = 16

    def __init__(self, shm, spec, owner: bool) -> None:
        self._shm = shm
        self._spec = list(spec)
        self._owner = owner
        self._views: Dict[str, object] = {}

    @classmethod
    def pack(cls, arrays: Mapping[str, object]) -> "SharedArrays":
        """Copy ``arrays`` into a fresh shared-memory block (parent)."""
        import numpy as np
        from multiprocessing import shared_memory

        prepared = {
            name: np.ascontiguousarray(array)
            for name, array in arrays.items()
        }
        spec = []
        offset = 0
        for name, array in prepared.items():
            offset = -(-offset // cls._ALIGN) * cls._ALIGN
            spec.append((name, array.dtype.str, array.shape, offset))
            offset += array.nbytes
        shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        block = cls(shm, spec, owner=True)
        for name, array in prepared.items():
            block[name][...] = array
        return block

    @classmethod
    def attach(cls, descriptor) -> "SharedArrays":
        """Attach to an existing block from its :meth:`descriptor`."""
        from multiprocessing import shared_memory

        shm_name, spec = descriptor
        shm = shared_memory.SharedMemory(name=shm_name)
        return cls(shm, spec, owner=False)

    def descriptor(self):
        """The picklable ``(block_name, layout_spec)`` handle."""
        return (self._shm.name, self._spec)

    def __getitem__(self, name: str):
        view = self._views.get(name)
        if view is None:
            import numpy as np

            for spec_name, dtype, shape, offset in self._spec:
                if spec_name == name:
                    view = np.ndarray(
                        shape, dtype=np.dtype(dtype),
                        buffer=self._shm.buf, offset=offset,
                    )
                    self._views[name] = view
                    break
            else:
                raise KeyError(name)
        return view

    def names(self) -> List[str]:
        return [name for name, _, _, _ in self._spec]

    def close(self) -> None:
        """Drop views and release the segment (owner also unlinks)."""
        self._views.clear()
        with contextlib.suppress(BufferError):
            self._shm.close()
        if self._owner:
            with contextlib.suppress(FileNotFoundError):
                self._shm.unlink()

    def __enter__(self) -> "SharedArrays":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def shared_arrays(arrays: Mapping[str, object]) -> SharedArrays:
    """Pack named arrays for zero-copy sharing with pool workers.

    Use as a context manager; pass the block to
    ``parallel_map(..., shared=block)`` so workers can fetch the arrays
    with :func:`shared_array`.
    """
    return SharedArrays.pack(arrays)


#: Worker-side attachment, installed by the pool initializer (or by the
#: sequential fallback, which points it at the parent's own block).
_ATTACHED: Optional[SharedArrays] = None


def _attach_shared(descriptor) -> None:
    """Pool initializer: attach this worker to the parent's block."""
    global _ATTACHED
    _ATTACHED = SharedArrays.attach(descriptor)


def shared_array(name: str):
    """The named array from the block the current process is attached to.

    Valid inside tasks dispatched by ``parallel_map(..., shared=block)``
    — in workers (zero-copy shared-memory view) and under the
    sequential ``jobs=1`` fallback (the parent's own view) alike.
    """
    if _ATTACHED is None:
        raise RuntimeError(
            "no shared-memory block attached; pass shared= to parallel_map"
        )
    return _ATTACHED[name]


@contextlib.contextmanager
def _parent_attached(block: SharedArrays):
    """Route ``shared_array`` to the parent's block for sequential runs."""
    global _ATTACHED
    previous = _ATTACHED
    _ATTACHED = block
    try:
        yield
    finally:
        _ATTACHED = previous


def _default_chunksize(n_tasks: int, workers: int) -> int:
    """About four chunks per worker: amortizes per-task pickle dispatch
    while keeping enough chunks to absorb uneven task durations."""
    return max(1, n_tasks // (workers * 4))


def parallel_map(
    fn: Callable[[_Task], _Result],
    tasks: Iterable[_Task],
    jobs: int = 1,
    chunksize: Optional[int] = None,
    shared: Optional[SharedArrays] = None,
) -> List[_Result]:
    """``[fn(t) for t in tasks]``, optionally across processes.

    With ``jobs <= 1`` (or fewer than two tasks) this is exactly the
    sequential list comprehension, run in-process.  Otherwise ``fn`` must
    be picklable (module-level, or a ``functools.partial`` of one) and
    the tasks are distributed over ``min(jobs, len(tasks))`` worker
    processes, ``chunksize`` tasks per dispatch (default: about four
    chunks per worker).  Results are returned in task order either way;
    a worker exception propagates to the caller.

    ``shared`` attaches every worker to a :func:`shared_arrays` block
    before any task runs, so tasks can read large arrays zero-copy via
    :func:`shared_array` instead of pickling them.  The sequential
    fallback attaches the calling process to the same block, so
    ``jobs=1`` results stay identical.

    When observability is enabled, multi-process runs wrap each task in
    :func:`repro.obs.pipeline.run_with_telemetry`: workers ship their
    instrumentation home with each result, and the merged telemetry is
    absorbed into this process's registry and tracer before returning.
    If a task raises, payloads from tasks that completed are still
    absorbed (the loss is counted on ``obs.workers_failed``) before the
    first exception, in task order, is re-raised.
    """
    task_list = list(tasks)
    jobs = resolve_jobs(jobs)
    if jobs <= 1 or len(task_list) <= 1:
        if shared is not None:
            with _parent_attached(shared):
                return [fn(task) for task in task_list]
        return [fn(task) for task in task_list]

    from repro.obs.state import STATE

    workers = min(jobs, len(task_list))
    if chunksize is None:
        chunksize = _default_chunksize(len(task_list), workers)
    pool_kwargs = {"max_workers": workers}
    if shared is not None:
        pool_kwargs["initializer"] = _attach_shared
        pool_kwargs["initargs"] = (shared.descriptor(),)

    if not STATE.enabled:
        with ProcessPoolExecutor(**pool_kwargs) as pool:
            return list(pool.map(fn, task_list, chunksize=chunksize))

    from repro.obs import counter, pipeline

    call = functools.partial(
        pipeline.run_with_telemetry, fn, pipeline.worker_config()
    )
    # Per-future collection (not pool.map): an exception in one task
    # must not discard the telemetry the other workers already shipped.
    results: List[_Result] = []
    payloads = []
    first_error: Optional[BaseException] = None
    failed = 0
    with ProcessPoolExecutor(**pool_kwargs) as pool:
        futures = [pool.submit(call, task) for task in task_list]
        for future in futures:
            try:
                result, document = future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                failed += 1
                if first_error is None:
                    first_error = exc
                continue
            results.append(result)
            payloads.append(pipeline.TelemetryPayload.from_dict(document))
    if payloads:
        pipeline.merge_payloads(payloads).absorb()
    if first_error is not None:
        counter("obs.workers_failed").inc(failed)
        raise first_error
    return results


def derive_seed(base: int, *components) -> int:
    """A stable 64-bit seed for the task identified by ``components``.

    Hashes ``(base, components)`` with SHA-256, so per-task seeds are
    reproducible across runs, machines, and worker assignments, and
    changing the base seed or any component decorrelates the stream.
    Components whose ``repr`` embeds a memory address (objects without
    a value ``repr``) are rejected — such seeds would differ on every
    run, silently breaking reproducibility.

    >>> derive_seed(0, "uniform", 3) == derive_seed(0, "uniform", 3)
    True
    >>> derive_seed(0, "uniform", 3) != derive_seed(1, "uniform", 3)
    True
    """
    payload = repr((base, components))
    if _ADDRESS_RE.search(payload):
        raise ValueError(
            "derive_seed components must have value-based reprs; "
            f"got a memory-address repr in {payload!r}"
        )
    return int.from_bytes(
        hashlib.sha256(payload.encode("utf-8")).digest()[:8], "big"
    )
