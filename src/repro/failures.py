"""Failure injection: degraded Clos fabrics.

The paper analyzes pristine fabrics; operators live with failed links
and switches.  Because every solver in this library takes an explicit
``capacities`` mapping, failures are just capacity overrides — these
helpers produce them, and :mod:`repro.experiments.failure_degradation`
measures how throughput and fairness degrade as the middle stage loses
capacity (where the paper's interior-bottleneck phenomena say the pain
concentrates).

A failed link keeps its key with capacity 0 (flows routed across it
water-fill to rate 0) — modeling the window between a failure and
rerouting.  Routers can instead avoid failed components by routing in a
:func:`surviving_network`.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.nodes import InputSwitch, MiddleSwitch, OutputSwitch
from repro.core.routing import Link
from repro.core.topology import ClosNetwork

Capacities = Dict[Link, object]


def fail_links(capacities: Capacities, failed: Iterable[Link]) -> Capacities:
    """A copy of ``capacities`` with the given links' capacity set to 0."""
    degraded = dict(capacities)
    for link in failed:
        if link not in degraded:
            raise KeyError(f"unknown link: {link!r}")
        degraded[link] = 0
    return degraded


def middle_switch_links(network: ClosNetwork, m: int) -> List[Link]:
    """All interior links incident to middle switch ``M_m``."""
    middle = network.middle(m)
    links: List[Link] = []
    for inp in network.input_switches:
        links.append((inp, middle))
    for out in network.output_switches:
        links.append((middle, out))
    return links


def fail_middle_switch(
    network: ClosNetwork, capacities: Capacities, m: int
) -> Capacities:
    """Zero every link of middle switch ``M_m`` (a whole-switch failure)."""
    return fail_links(capacities, middle_switch_links(network, m))


def random_link_failures(
    network: ClosNetwork,
    capacities: Capacities,
    count: int,
    seed: int = 0,
    interior_only: bool = True,
) -> Tuple[Capacities, List[Link]]:
    """Fail ``count`` uniformly random links; returns (capacities, failed).

    ``interior_only`` restricts failures to ToR–middle links (server
    links failing disconnect a host outright, a less interesting mode).
    """
    if interior_only:
        candidates = [
            link
            for link in capacities
            if isinstance(link[0], (InputSwitch, MiddleSwitch))
            and isinstance(link[1], (MiddleSwitch, OutputSwitch))
        ]
    else:
        candidates = list(capacities)
    if count > len(candidates):
        raise ValueError(
            f"cannot fail {count} of {len(candidates)} candidate links"
        )
    rng = random.Random(seed)
    failed = rng.sample(candidates, count)
    return fail_links(capacities, failed), failed


def surviving_network(
    network: ClosNetwork, failed_middles: Iterable[int]
) -> Tuple[ClosNetwork, Dict[int, int]]:
    """A Clos network with the failed middle switches removed.

    Routers that are failure-aware route in the surviving network; the
    returned map sends surviving middle indices (1-based, contiguous)
    back to the original indices so routings can be translated.
    """
    dead = set(failed_middles)
    survivors = [
        m for m in range(1, network.num_middles + 1) if m not in dead
    ]
    if not survivors:
        raise ValueError("all middle switches failed")
    smaller = ClosNetwork(network.n, middle_count=len(survivors))
    index_map = {new: old for new, old in enumerate(survivors, start=1)}
    return smaller, index_map
