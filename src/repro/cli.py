"""Command-line driver: regenerate any experiment from a terminal.

Usage::

    python -m repro list                 # show available experiments
    python -m repro run e1               # Figure 1 / Example 2.3 (e1..e16)
    python -m repro run e2 --ks 1,2,4,8  # R1 sweep with custom k values
    python -m repro run e4 --jobs 4      # sweep points across 4 processes
    python -m repro run all              # everything (minutes)
    python -m repro bench --against BENCH_baseline.json  # perf gate

``--jobs N`` computes sweep points in ``N`` worker processes
(``--jobs 0`` = all cores).  Results — tables, manifests, exit codes —
are identical to a sequential run; see :mod:`repro.parallel`.

Each experiment prints the same measured-vs-paper table its benchmark
target prints, so the CLI is the interactive face of the harness.

``run`` is resilient (see :mod:`repro.runner`): ``run all`` continues
past failing experiments, prints a pass/fail summary table, and exits
non-zero if anything failed.  ``--timeout`` bounds each experiment's
wall clock, ``--retries``/``--backoff`` retry transient failures with
the same seeds, ``--manifest sweep.json`` checkpoints progress after
every experiment, and ``--resume sweep.json`` finishes a killed sweep
without recomputing (or re-printing differently) what already ran.

``profile`` runs one experiment under :mod:`repro.obs` tracing and
prints the span tree (wall time, share of total, peak memory) plus
every counter the hot paths incremented; ``--export chrome`` /
``prom`` / ``jsonl`` writes the trace for ``chrome://tracing`` /
Perfetto, the metrics in Prometheus text format, or the raw span-tree
JSONL (``--trace out.jsonl`` remains the JSONL shorthand).  Profiling
with ``--jobs N`` works: worker telemetry is shipped back and merged
(see :mod:`repro.obs.pipeline`), with each worker on its own process
track in the Chrome export.  ``stats`` renders the same summary from a
manifest written by a sweep that ran with ``REPRO_OBS=1``, and ``top``
ranks spans in an exported JSONL trace by self time::

    python -m repro profile e2 --export chrome --export prom
    REPRO_OBS=1 python -m repro run all --manifest sweep.json
    python -m repro stats sweep.json
    python -m repro profile e4 --jobs 4 --trace e4.jsonl
    python -m repro top e4.jsonl

``bench`` gains regression *attribution*: ``repro bench diff A.json
B.json`` explains per-scenario wall-clock movement span by span
(self-time deltas and their share of the total delta).

Self-checking runtime (see :mod:`repro.validate` and
``docs/ROBUSTNESS.md``): the global ``--validate {off,cheap,full}``
flag certifies every solver result produced by any subcommand;
``fuzz`` cross-checks all backends on adversarial instances and
quarantines disagreements as replayable bundles; ``replay`` re-runs a
bundle and delta-debugs it down to a minimal reproducer::

    python -m repro --validate full run e4
    python -m repro fuzz --seeds 200
    python -m repro replay quarantine/q-shadow-0123abcd4567.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis import format_series, format_table


def _parse_ints(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part]


# ----------------------------------------------------------------------
# Experiment runners (thin printing wrappers over repro.experiments)
# ----------------------------------------------------------------------
def run_e1(args: argparse.Namespace) -> None:
    from repro.experiments.example_2_3 import run

    result = run()
    print(
        format_table(
            ["allocation", "sorted vector"],
            [
                ["macro-switch", [str(r) for r in result.macro_vector]],
                ["routing A", [str(r) for r in result.routing_a_vector]],
                ["routing B", [str(r) for r in result.routing_b_vector]],
                ["lex optimum", [str(r) for r in result.lex_optimum_vector]],
            ],
            title="E1 — Figure 1 / Example 2.3",
        )
    )
    print(f"matches paper: {result.matches_paper}")


def run_e2(args: argparse.Namespace) -> None:
    from repro.experiments.r1_price_of_fairness import sweep

    ks = _parse_ints(args.ks) if args.ks else [1, 2, 4, 8, 16, 32, 64]
    rows = sweep(ks, jobs=getattr(args, "jobs", 1))
    print(
        format_series(
            "k",
            [row.k for row in rows],
            {
                "T^MT": [row.t_max_throughput for row in rows],
                "T^MmF": [row.t_max_min for row in rows],
                "ratio": [row.ratio for row in rows],
                "paper": [row.predicted_ratio for row in rows],
            },
            title="E2 — Theorem 3.4 price of fairness",
        )
    )


def run_e3(args: argparse.Namespace) -> None:
    from repro.experiments.r2_starvation import infeasibility_sweep

    sizes = _parse_ints(args.sizes) if args.sizes else [3]
    rows = infeasibility_sweep(sizes, jobs=getattr(args, "jobs", 1))
    print(
        format_table(
            ["n", "flows", "splittable", "unsplittable"],
            [
                [
                    row.n,
                    row.num_flows,
                    row.splittable_feasible,
                    row.unsplittable_feasible,
                ]
                for row in rows
            ],
            title="E3 — Theorem 4.2 infeasibility",
        )
    )


def run_e4(args: argparse.Namespace) -> None:
    from repro.experiments.r2_starvation import starvation_sweep

    sizes = _parse_ints(args.sizes) if args.sizes else [3, 4, 5, 6]
    backend = getattr(args, "backend", None)
    rows = starvation_sweep(
        sizes,
        check_local_optimality=False,
        jobs=getattr(args, "jobs", 1),
        backend=backend,
        # The O(F·P) bottleneck certificate is fine at the default sizes
        # but dominates the quotient solve at n ≥ 64.
        certify=backend != "quotient" or max(sizes) < 32,
    )
    print(
        format_series(
            "n",
            [row.n for row in rows],
            {
                "macro rate": [row.macro_type3_rate for row in rows],
                "lex rate": [row.lex_type3_rate for row in rows],
                "factor": [row.starvation_factor for row in rows],
            },
            title="E4 — Theorem 4.3 starvation",
        )
    )


def run_e5(args: argparse.Namespace) -> None:
    from repro.experiments.r3_doom_switch import sweep

    rows = sweep(
        jobs=getattr(args, "jobs", 1),
        backend=getattr(args, "backend", None),
    )
    print(
        format_series(
            "(n,k)",
            [f"({row.n},{row.k})" for row in rows],
            {
                "T^MmF": [row.t_macro_max_min for row in rows],
                "T doom": [row.t_doom for row in rows],
                "gain": [row.gain for row in rows],
                "paper": [row.predicted_gain for row in rows],
            },
            title="E5 — Theorem 5.4 Doom-Switch",
        )
    )


def run_e6(args: argparse.Namespace) -> None:
    from repro.experiments.ecmp_simulation import stochastic_comparison

    rows = stochastic_comparison(
        n=args.n or 3,
        num_flows=30,
        seeds=range(3),
        backend=getattr(args, "backend", None),
    )
    print(
        format_table(
            ["workload", "router", "seed", "throughput frac", "worst ratio"],
            [
                [
                    row.workload,
                    row.router,
                    row.seed,
                    row.throughput_fraction,
                    row.min_rate_ratio,
                ]
                for row in rows
            ],
            title="E6 — §6 router simulation",
        )
    )


def run_e7(args: argparse.Namespace) -> None:
    from repro.experiments.konig_equivalence import equivalence_checks

    rows = equivalence_checks()
    print(
        format_table(
            ["workload", "T^MT", "T^T-MT", "equal"],
            [[row.workload, row.t_mt_macro, row.t_mt_clos, row.equal] for row in rows],
            title="E7 — Lemma 5.2 equivalence",
        )
    )


def run_e8(args: argparse.Namespace) -> None:
    from repro.experiments.fct_scheduling import incast_comparison, load_sweep

    rows = incast_comparison(fan_in=8)
    print(
        format_table(
            ["policy", "mean FCT", "p99 FCT"],
            [[row.policy, row.stats.mean_fct, row.stats.p99_fct] for row in rows],
            title="E8 — §7 scheduling vs congestion control (incast)",
        )
    )
    sweep_rows = load_sweep(rates=(0.5, 1.5, 3.0))
    print(
        format_series(
            "load",
            [row.rate for row in sweep_rows],
            {
                "max-min FCT": [row.maxmin_mean_fct for row in sweep_rows],
                "scheduler FCT": [row.scheduler_mean_fct for row in sweep_rows],
                "speedup": [row.speedup for row in sweep_rows],
            },
        )
    )


def run_e9(args: argparse.Namespace) -> None:
    from repro.experiments.relative_fairness import (
        exact_objective_comparison,
        theorem_4_3_floor_probe,
    )

    rows = exact_objective_comparison()
    print(
        format_table(
            ["instance", "lex floor", "throughput floor", "relative floor"],
            [
                [row.instance, row.lex_floor, row.throughput_floor, row.relative_floor]
                for row in rows
            ],
            title="E9 — §7 relative-max-min fairness",
        )
    )
    probe = theorem_4_3_floor_probe(sizes=(3,))
    print(
        format_table(
            ["n", "lex floor", "relative floor (local search)"],
            [[row.n, row.lex_floor, row.relative_local_floor] for row in probe],
        )
    )


def run_e11(args: argparse.Namespace) -> None:
    from repro.experiments.convergence import paper_instances

    rows = paper_instances(jobs=getattr(args, "jobs", 1))
    print(
        format_table(
            ["instance", "flows", "levels", "rounds", "max error"],
            [
                [row.instance, row.num_flows, row.distinct_levels, row.rounds,
                 f"{row.max_error:.1e}"]
                for row in rows
            ],
            title="E11 — distributed convergence to max-min fairness",
        )
    )


def run_e12(args: argparse.Namespace) -> None:
    from repro.experiments.fattree_generality import (
        r1_on_fat_tree,
        r2_leakage_on_fat_tree,
    )

    rows = r1_on_fat_tree()
    print(
        format_table(
            ["workload", "T^MmF", "T^MT", "bound holds"],
            [[row.workload, row.t_max_min, row.t_max_throughput, row.bound_holds]
             for row in rows],
            title="E12 — R1 on the k-ary fat-tree",
        )
    )
    leak = r2_leakage_on_fat_tree()
    print(
        format_table(
            ["seed", "below macro", "worst ratio", "interior-bottlenecked"],
            [[row.seed, f"{row.num_below_macro}/{row.num_flows}",
              row.min_ratio, row.interior_bottlenecked] for row in leak],
        )
    )


def run_e13(args: argparse.Namespace) -> None:
    from repro.experiments.planted_gadgets import planted_starvation

    rows = planted_starvation()
    print(
        format_table(
            ["router", "background", "type-3 rate", "ratio"],
            [[row.router, row.num_background, row.network_rate, row.ratio]
             for row in rows],
            title="E13 — Theorem 4.3 gadget in background traffic",
        )
    )


def run_e14(args: argparse.Namespace) -> None:
    from repro.experiments.failure_degradation import middle_failure_sweep

    rows = middle_failure_sweep()
    print(
        format_table(
            ["failed", "pinned T", "pinned min", "rerouted T", "rerouted min"],
            [[row.failed_middles, row.pinned_throughput, row.pinned_min_rate,
              row.rerouted_throughput, row.rerouted_min_rate] for row in rows],
            title="E14 — middle-switch failure degradation",
        )
    )


def run_e15(args: argparse.Namespace) -> None:
    from repro.experiments.oversubscription import sweep

    rows = sweep(jobs=getattr(args, "jobs", 1))
    print(
        format_table(
            ["c", "oversub", "T^MT", "T Clos", "Lemma 5.2", "tput frac", "worst ratio"],
            [
                [
                    row.interior_capacity,
                    row.oversubscription,
                    row.t_mt_macro,
                    row.t_clos_lp,
                    row.lemma_5_2_equality,
                    row.throughput_fraction,
                    row.min_rate_ratio,
                ]
                for row in rows
            ],
            title="E15 — oversubscription: breaking full bisection",
        )
    )


def run_e16(args: argparse.Namespace) -> None:
    from repro.experiments.splittable_equivalence import (
        random_equivalence,
        starvation_reversal,
    )

    rows = random_equivalence()
    print(
        format_table(
            ["instance", "worst |gap|", "equivalent"],
            [[row.instance, f"{row.worst_gap:.2e}", row.equivalent] for row in rows],
            title="E16 — splittable C_n max-min vs macro-switch",
        )
    )
    reversal = starvation_reversal()
    print(
        format_table(
            ["n", "macro", "unsplittable (Thm 4.3)", "splittable"],
            [
                [row.n, row.macro_rate, row.unsplittable_rate, row.splittable_rate]
                for row in reversal
            ],
        )
    )


def run_e10(args: argparse.Namespace) -> None:
    from repro.experiments.rearrangeability import theorem_4_2_repair

    rows = theorem_4_2_repair()
    print(
        format_table(
            ["instance", "exact m*", "heuristic m", "2n-1", "⌈20n/9⌉"],
            [
                [row.instance, row.exact_m, row.heuristic_m, row.conjecture_m, row.proven_m]
                for row in rows
            ],
            title="E10 — middle switches needed to repair Theorem 4.2",
        )
    )


def run_churn(args: argparse.Namespace) -> None:
    from repro.experiments.churn import churn_comparison

    rows = churn_comparison(
        n=args.n or 4,
        rate=getattr(args, "rate", None) or 100.0,
        horizon=getattr(args, "horizon", None) or 1.5,
        batch_window=getattr(args, "window", None) or 0.05,
        pods=getattr(args, "pods", None) or 1,
        engine=getattr(args, "engine", None) or "auto",
        jobs=getattr(args, "jobs", None) or 1,
    )
    print(
        format_table(
            ["config", "jobs", "events", "wall s", "events/s", "patched", "full"],
            [
                [
                    row.config,
                    row.jobs,
                    row.flow_events,
                    f"{row.wall_s:.3f}",
                    f"{row.events_per_sec:,.0f}",
                    "-" if row.patched is None else row.patched,
                    "-" if row.fullsolve is None else row.fullsolve,
                ]
                for row in rows
            ],
            title="churn — streaming allocation under flow churn",
        )
    )


EXPERIMENTS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "e1": run_e1,
    "e2": run_e2,
    "e3": run_e3,
    "e4": run_e4,
    "e5": run_e5,
    "e6": run_e6,
    "e7": run_e7,
    "e8": run_e8,
    "e9": run_e9,
    "e10": run_e10,
    "e11": run_e11,
    "e12": run_e12,
    "e13": run_e13,
    "e14": run_e14,
    "e15": run_e15,
    "e16": run_e16,
    "churn": run_churn,
}

DESCRIPTIONS: Dict[str, str] = {
    "e1": "Figure 1 / Example 2.3 — routing sensitivity in C_2",
    "e2": "Figure 2 / Theorem 3.4 (R1) — price of fairness",
    "e3": "Figure 3 / Theorem 4.2 — macro rates unroutable",
    "e4": "Figure 3 / Theorem 4.3 (R2) — 1/n starvation",
    "e5": "Figure 4 / Theorem 5.4 (R3) — Doom-Switch",
    "e6": "§6 — ECMP vs congestion-aware routers",
    "e7": "Lemma 5.2 — König throughput equivalence",
    "e8": "§7 R1 — scheduling vs congestion control (FCT)",
    "e9": "§7 R2 — relative-max-min fairness",
    "e10": "§6 related work — multirate rearrangeability",
    "e11": "§2.2 — distributed convergence to max-min fairness",
    "e12": "§7 — the paper's phenomena on k-ary fat-trees",
    "e13": "extension — adversarial gadgets in background traffic",
    "e14": "extension — middle-switch failure degradation",
    "e15": "extension — oversubscription (breaking full bisection)",
    "e16": "§1 premise — splittability restores the macro-switch",
    "churn": "extension — streaming max-min allocation under flow churn",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's experiments from the terminal.",
    )
    parser.add_argument(
        "--validate",
        choices=["off", "cheap", "full"],
        help="certify every solver result at this level "
        "(overrides REPRO_VALIDATE; see docs/ROBUSTNESS.md)",
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list available experiments")

    report = sub.add_parser(
        "report", help="run experiments and write a markdown report"
    )
    report.add_argument(
        "-o", "--output", default="REPORT.md", help="output path"
    )
    report.add_argument(
        "--only", help="comma-separated experiment ids (default: all)"
    )

    profile = sub.add_parser(
        "profile",
        help="run one experiment under tracing; print spans and counters",
    )
    profile.add_argument("experiment", help="e1..e16")
    profile.add_argument("--ks", help="comma-separated k values (e2)")
    profile.add_argument(
        "--sizes", help="comma-separated network sizes (e3/e4)"
    )
    profile.add_argument("--n", type=int, help="network size (e6)")
    profile.add_argument(
        "--backend",
        choices=[
            "reference", "heap", "vectorized", "quotient", "streaming",
            "batched",
        ],
        help="max-min solver backend for e4/e5/e6 "
        "(quotient = exact symmetry reduction, scales to n >= 64; "
        "streaming = incremental under churn; batched = all sweep "
        "points stacked into one block-diagonal float batch)",
    )
    profile.add_argument(
        "--trace", help="write the span trees to this JSONL file"
    )
    profile.add_argument(
        "--export",
        action="append",
        choices=["chrome", "prom", "jsonl"],
        default=None,
        help="also write the telemetry in this format (repeatable): "
        "chrome = trace_event JSON for chrome://tracing / Perfetto, "
        "prom = Prometheus text metrics, jsonl = raw span trees",
    )
    profile.add_argument(
        "--export-prefix",
        help="path prefix for --export files "
        "(default: profile-<experiment>)",
    )
    profile.add_argument(
        "--no-memory",
        dest="memory",
        action="store_false",
        default=True,
        help="skip tracemalloc peak-memory accounting (faster)",
    )
    profile.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep points (non-negative; 0 means "
        "all cores; worker telemetry is shipped back and merged)",
    )

    stats = sub.add_parser(
        "stats",
        help="summarize timings/counters from a traced run manifest",
    )
    stats.add_argument("manifest", help="manifest JSON written by 'run'")

    top = sub.add_parser(
        "top",
        help="rank spans in a JSONL trace by self time",
    )
    top.add_argument("trace", help="JSONL trace written by 'profile'")
    top.add_argument(
        "--limit", type=int, default=20, help="rows to print (default 20)"
    )
    top.add_argument(
        "--sort",
        choices=["self", "cum", "count"],
        default="self",
        help="sort column (default self time)",
    )

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="e1..e16, 'churn', or 'all'")
    run.add_argument("--ks", help="comma-separated k values (e2)")
    run.add_argument("--sizes", help="comma-separated network sizes (e3/e4)")
    run.add_argument("--n", type=int, help="network size (e6/churn)")
    run.add_argument(
        "--rate", type=float, help="mean arrivals per time unit (churn)"
    )
    run.add_argument(
        "--horizon", type=float, help="arrival horizon in time units (churn)"
    )
    run.add_argument(
        "--window",
        type=float,
        help="micro-batch window in simulated time units (churn; "
        "0 = re-solve per event)",
    )
    run.add_argument(
        "--pods",
        type=int,
        help="shard the churn workload into this many independent pods",
    )
    run.add_argument(
        "--engine",
        choices=["auto", "object", "array"],
        default="auto",
        help="simulator event-loop implementation (churn): 'array' = "
        "NumPy slot-store fast core, 'object' = per-job dict loop, "
        "'auto' = array for large workloads (identical results either "
        "way; REPRO_SHADOW cross-checks sampled array runs)",
    )
    run.add_argument(
        "--backend",
        choices=[
            "reference", "heap", "vectorized", "quotient", "streaming",
            "batched",
        ],
        help="max-min solver backend for e4/e5/e6 "
        "(quotient = exact symmetry reduction, scales to n >= 64; "
        "streaming = incremental under churn; batched = all sweep "
        "points stacked into one block-diagonal float batch)",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for sweep points (non-negative; 0 means "
        "all cores; results are identical to --jobs 1, just faster)",
    )
    run.add_argument(
        "--timeout",
        type=float,
        help="per-experiment wall-clock limit in seconds",
    )
    run.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry a failing experiment this many times (same seeds)",
    )
    run.add_argument(
        "--backoff",
        type=float,
        default=0.5,
        help="base seconds between retries (doubles per attempt)",
    )
    run.add_argument(
        "--manifest",
        help="checkpoint run state to this JSON file after every step",
    )
    run.add_argument(
        "--resume",
        metavar="MANIFEST",
        help="resume a checkpointed run; finished steps replay verbatim",
    )
    keep = run.add_mutually_exclusive_group()
    keep.add_argument(
        "--keep-going",
        dest="keep_going",
        action="store_true",
        default=True,
        help="continue past failing experiments (default)",
    )
    keep.add_argument(
        "--fail-fast",
        dest="keep_going",
        action="store_false",
        help="stop at the first failing experiment",
    )

    bench = sub.add_parser(
        "bench",
        help="run the micro-benchmark suite; optionally gate on a baseline",
    )
    bench.add_argument(
        "-o", "--output", help="write results to this JSON file"
    )
    bench.add_argument(
        "--repeat", type=int, default=5, help="timed runs per scenario"
    )
    bench.add_argument(
        "--against",
        metavar="BASELINE",
        help="compare against a baseline JSON; exit 1 on regression",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed median slowdown vs the baseline (0.25 = 25%%)",
    )
    bench_sub = bench.add_subparsers(dest="bench_action")
    bench_diff = bench_sub.add_parser(
        "diff",
        help="attribute wall-clock deltas between two bench documents "
        "to the spans that moved",
    )
    bench_diff.add_argument("baseline", help="older BENCH_*.json")
    bench_diff.add_argument("current", help="newer BENCH_*.json")
    bench_diff.add_argument(
        "--top",
        type=int,
        default=3,
        help="span movements itemized per scenario (default 3)",
    )

    fuzz = sub.add_parser(
        "fuzz",
        help="chaos-fuzz the solver backends; quarantine any disagreement",
    )
    fuzz.add_argument(
        "--seeds",
        type=int,
        default=50,
        help="number of deterministic fuzz seeds to explore (default 50)",
    )
    fuzz.add_argument(
        "--backends",
        help="comma-separated backends to cross-check "
        "(default: every non-reference backend)",
    )
    fuzz.add_argument(
        "--quarantine-dir",
        help="write failure bundles here (default: REPRO_QUARANTINE_DIR "
        "or ./quarantine)",
    )
    fuzz.add_argument(
        "--no-churn",
        dest="churn",
        action="store_false",
        default=True,
        help="skip the flowsim churn-snapshot instances (static only)",
    )

    replay = sub.add_parser(
        "replay",
        help="re-run a quarantine bundle; minimize it if it reproduces",
    )
    replay.add_argument("bundle", help="path to a q-*.json bundle")
    replay.add_argument(
        "--no-minimize",
        dest="minimize",
        action="store_false",
        default=True,
        help="skip delta-debugging the flow set of a reproducing bundle",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.validate:
        from repro.validate import set_validation_level

        set_validation_level(args.validate)

    if args.command == "list" or args.command is None:
        print(
            format_table(
                ["id", "experiment"],
                [[key, DESCRIPTIONS[key]] for key in EXPERIMENTS],
                title="available experiments (python -m repro run <id>)",
            )
        )
        return 0

    if args.command == "report":
        from repro.report import write_report

        ids = args.only.split(",") if args.only else None
        path = write_report(args.output, ids)
        print(f"wrote {path}")
        return 0

    if args.command == "run":
        return _run_command(args)

    if args.command == "profile":
        return _profile_command(args)

    if args.command == "stats":
        return _stats_command(args)

    if args.command == "top":
        return _top_command(args)

    if args.command == "bench":
        if getattr(args, "bench_action", None) == "diff":
            from repro.bench import diff_command

            return diff_command(args.baseline, args.current, top=args.top)

        from repro.bench import bench_command

        return bench_command(
            output=args.output,
            repeat=args.repeat,
            against=args.against,
            tolerance=args.tolerance,
        )

    if args.command == "fuzz":
        return _fuzz_command(args)

    if args.command == "replay":
        return _replay_command(args)

    parser.print_help()
    return 2


def _fuzz_command(args: argparse.Namespace) -> int:
    """The ``fuzz`` subcommand: cross-check all backends on adversarial
    instances; exit 1 if any disagreement or certificate failure."""
    from repro.chaos import fuzz

    backends = (
        [b.strip() for b in args.backends.split(",") if b.strip()]
        if args.backends
        else None
    )
    report = fuzz(
        args.seeds,
        backends=backends,
        directory=args.quarantine_dir,
        churn_every=5 if args.churn else 0,
    )
    print(
        f"fuzz: {report.seeds} seeds, {report.instances} instances, "
        f"{len(report.failures)} failure(s)"
    )
    if not report.failures:
        return 0
    print(
        format_table(
            ["seed", "instance", "backend", "kind", "bundle"],
            [
                [f["seed"], f["instance"], f["backend"], f["kind"],
                 f["bundle"] or "(write failed)"]
                for f in report.failures
            ],
            title="fuzz failures (each quarantined for replay)",
        ),
        file=sys.stderr,
    )
    return 1


def _replay_command(args: argparse.Namespace) -> int:
    """The ``replay`` subcommand: re-run a bundle; exit 1 if it still
    reproduces on this machine."""
    from repro.io.serialize import ScenarioError
    from repro.quarantine import load_bundle, replay

    try:
        bundle = load_bundle(args.bundle)
    except (OSError, ScenarioError) as error:
        print(f"cannot load bundle: {error}", file=sys.stderr)
        return 2

    print(
        f"replaying {args.bundle}: reason={bundle.reason!r} "
        f"backend={bundle.backend!r} flows={len(bundle.routing)}"
    )
    result = replay(bundle, minimize=args.minimize)
    if result.stored_failures:
        print("stored rates fail their certificate:")
        for failure in result.stored_failures:
            print(f"  - {failure}")
    if not result.reproduced:
        print("live re-run is healthy: failure does not reproduce here")
        return 0
    print("live re-run still fails:")
    for failure in result.live_failures:
        print(f"  - {failure}")
    if result.minimized_path is not None:
        print(
            f"minimized to {result.minimized_flows} flow(s): "
            f"{result.minimized_path}"
        )
    else:
        print(f"reproducer has {result.minimized_flows} flow(s)")
    return 1


# ----------------------------------------------------------------------
# Observability commands (see repro.obs and docs/OBSERVABILITY.md)
# ----------------------------------------------------------------------
class _SpanGroup:
    """Sibling spans of the same name, merged for compact display."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.duration = 0.0
        self.mem_peak: Optional[int] = None
        self.children: Dict[str, "_SpanGroup"] = {}

    def absorb(self, span) -> None:
        self.count += 1
        self.duration += span.duration
        if span.mem_peak_bytes is not None:
            self.mem_peak = max(self.mem_peak or 0, span.mem_peak_bytes)
        for child in span.children:
            group = self.children.get(child.name)
            if group is None:
                group = self.children[child.name] = _SpanGroup(child.name)
            group.absorb(child)


def _span_rows(roots, total: float):
    """Aggregate span trees (siblings merged by name) into table rows."""
    from repro.runner import format_bytes

    groups: Dict[str, _SpanGroup] = {}
    for root in roots:
        group = groups.get(root.name)
        if group is None:
            group = groups[root.name] = _SpanGroup(root.name)
        group.absorb(root)

    rows = []

    def emit(group: _SpanGroup, depth: int) -> None:
        share = (group.duration / total) if total > 0 else 0.0
        label = group.name if group.count == 1 else (
            f"{group.name} ×{group.count}"
        )
        rows.append(
            [
                "  " * depth + label,
                f"{group.duration * 1000:.3f}ms",
                f"{share * 100:.1f}%",
                "-" if group.mem_peak is None else format_bytes(group.mem_peak),
            ]
        )
        for child in group.children.values():
            emit(child, depth + 1)

    for group in groups.values():
        emit(group, 0)
    return rows


def _print_metric_table(snapshot, title: str) -> None:
    if not snapshot:
        print(f"{title}: no metric activity recorded")
        return
    rows = []
    for name, value in sorted(snapshot.items()):
        if isinstance(value, dict):
            value = ", ".join(f"{k}={v}" for k, v in sorted(value.items()))
        rows.append([name, value])
    print(format_table(["metric", "value"], rows, title=title))


def _profile_command(args: argparse.Namespace) -> int:
    """The ``profile`` subcommand: one experiment under full tracing."""
    from repro import obs

    name = args.experiment.lower()
    if name not in EXPERIMENTS:
        print(f"unknown experiment: {name!r} (try 'list')", file=sys.stderr)
        return 2

    was_enabled = obs.enabled()
    obs.enable(memory=args.memory)
    obs.reset()
    try:
        with obs.trace_span(f"profile:{name}"):
            EXPERIMENTS[name](args)
        roots = obs.tracer().collect()
        snapshot = obs.metrics_snapshot()
    finally:
        if not was_enabled:
            obs.disable()

    total = sum(span.duration for span in roots)
    print()
    print(
        format_table(
            ["span", "wall", "share", "peak mem"],
            _span_rows(roots, total),
            title=f"profile — {name} span tree (siblings merged by name)",
        )
    )
    print()
    _print_metric_table(snapshot, f"profile — {name} counters")

    if args.trace:
        path = obs.write_trace_jsonl(args.trace, roots)
        print(f"\nwrote {path}")

    prefix = args.export_prefix or f"profile-{name}"
    for fmt in dict.fromkeys(args.export or []):
        if fmt == "chrome":
            path = obs.write_chrome_trace(
                f"{prefix}.trace.json", roots, process_name=f"repro {name}"
            )
        elif fmt == "prom":
            path = f"{prefix}.prom"
            with open(path, "w", encoding="utf-8") as handle:
                handle.write(
                    obs.prometheus_text(snapshot, obs.metrics().kinds())
                )
        else:  # jsonl
            path = obs.write_trace_jsonl(f"{prefix}.jsonl", roots)
        print(f"wrote {path}")
    return 0


def _top_command(args: argparse.Namespace) -> int:
    """The ``top`` subcommand: self/cumulative time per span name."""
    from repro import obs
    from repro.io.serialize import ScenarioError, read_jsonl

    try:
        documents = read_jsonl(args.trace)
    except (OSError, ScenarioError) as error:
        print(f"cannot read trace: {error}", file=sys.stderr)
        return 2

    roots = [obs.span_from_dict(document) for document in documents]
    table = obs.aggregate_spans(roots)
    if not table:
        print("trace contains no spans")
        return 0

    key = {"self": "self_s", "cum": "cum_s", "count": "count"}[args.sort]
    total_self = sum(entry["self_s"] for entry in table.values())
    ranked = sorted(table.items(), key=lambda item: -item[1][key])
    rows = []
    for span_name, entry in ranked[: args.limit]:
        share = (entry["self_s"] / total_self) if total_self > 0 else 0.0
        rows.append(
            [
                span_name,
                entry["count"],
                f"{entry['self_s'] * 1000:.3f}ms",
                f"{share * 100:.1f}%",
                f"{entry['cum_s'] * 1000:.3f}ms",
            ]
        )
    print(
        format_table(
            ["span", "count", "self", "self %", "cumulative"],
            rows,
            title=f"top — {args.trace} ({len(roots)} root span(s), "
            f"sorted by {args.sort})",
        )
    )
    return 0


def _stats_command(args: argparse.Namespace) -> int:
    """The ``stats`` subcommand: timings/counters from a traced manifest."""
    from repro.errors import ExperimentError
    from repro.runner import RunManifest, format_bytes

    try:
        manifest = RunManifest.load(args.manifest)
    except (OSError, ExperimentError) as error:
        print(f"cannot read manifest: {error}", file=sys.stderr)
        return 2

    rows = []
    metrics_rows = []
    aggregated: Dict[str, int] = {}
    traced_steps = 0
    metric_steps = 0
    for record in manifest.steps.values():
        span_wall = record.span_wall_seconds()
        peak = record.peak_memory_bytes()
        if record.trace is not None:
            traced_steps += 1
        if record.metrics:
            metric_steps += 1
        rows.append(
            [
                record.name,
                record.status.upper(),
                f"{record.duration:.2f}s",
                "-" if span_wall is None else f"{span_wall:.3f}s",
                "-" if peak is None else format_bytes(peak),
            ]
        )
        metrics_rows.append([record.name, record.status.upper(),
                             f"{record.duration:.2f}s"])
        for metric, value in (record.metrics or {}).items():
            if isinstance(value, int):
                aggregated[metric] = aggregated.get(metric, 0) + value

    if traced_steps == 0:
        # Manifests from REPRO_OBS=0 sweeps (or pre-observability runs)
        # carry no spans; degrade to the columns that exist instead of
        # printing a table of dashes.
        print(
            format_table(
                ["step", "status", "duration"],
                metrics_rows,
                title=f"stats — {args.manifest}",
            )
        )
        print()
        print(
            "no span traces embedded in this manifest "
            "(re-run the sweep with REPRO_OBS=1 to record them)"
        )
        if aggregated:
            print()
            _print_metric_table(aggregated, "aggregated counters")
        return 0

    print(
        format_table(
            ["step", "status", "duration", "wall (span)", "peak mem"],
            rows,
            title=f"stats — {args.manifest}",
        )
    )
    print()
    if metric_steps == 0:
        print("no metric deltas embedded in this manifest")
    else:
        _print_metric_table(aggregated, "aggregated counters")
    return 0


def _wants_runner(args: argparse.Namespace) -> bool:
    """Did the user ask for any resilience feature on a single run?"""
    return bool(
        args.timeout or args.retries or args.manifest or args.resume
    )


def _run_command(args: argparse.Namespace) -> int:
    """The ``run`` subcommand: direct for one experiment, resilient
    (keep-going, summary table, checkpoint/resume) for sweeps."""
    import functools
    import os

    name = args.experiment.lower()
    if name != "all" and name not in EXPERIMENTS:
        print(f"unknown experiment: {name!r} (try 'list')", file=sys.stderr)
        return 2
    names = list(EXPERIMENTS) if name == "all" else [name]

    if name != "all" and not _wants_runner(args):
        EXPERIMENTS[name](args)
        return 0

    from repro.errors import ExperimentError
    from repro.runner import ResilientRunner, RunManifest

    manifest = None
    manifest_path = args.resume or args.manifest
    if args.resume and os.path.exists(args.resume):
        try:
            manifest = RunManifest.load(args.resume)
        except ExperimentError as error:
            print(f"cannot resume: {error}", file=sys.stderr)
            return 2
        names = manifest.experiments or names
    elif manifest_path:
        params = {
            "ks": args.ks,
            "sizes": args.sizes,
            "n": args.n,
            "timeout": args.timeout,
            "retries": args.retries,
        }
        # Only record a non-default --jobs: parallelism does not change
        # results, and default-run manifests stay byte-identical to
        # manifests written before the knob existed.
        jobs = getattr(args, "jobs", 1)
        if jobs != 1:
            params["jobs"] = jobs
        manifest = RunManifest(
            manifest_path, experiments=names, params=params
        )

    def step(key: str) -> None:
        EXPERIMENTS[key](args)
        if name == "all":
            print()  # the separator a plain sweep always printed

    runner = ResilientRunner(
        manifest=manifest,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        keep_going=args.keep_going,
    )
    runner.run({key: functools.partial(step, key) for key in names})

    if name == "all":
        print(runner.summary_table())
    for record in runner.failed_steps():
        print(
            f"{record.name}: {record.status} — {record.error}",
            file=sys.stderr,
        )
    return runner.exit_code()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
