"""Cross-process telemetry: ship worker instrumentation to the parent.

:mod:`repro.parallel` fans sweep points out over worker processes; the
instruments those workers bump live in *their* process-wide registries
and would be silently lost when the pool shuts down.  This module
closes that gap:

1. Each worker runs its task under a fresh obs session and returns a
   serialized :class:`TelemetryPayload` — metrics state (typed, with
   exact histogram buckets), the span forest, and the peak-memory
   figure — alongside its result.
2. The parent merges payloads into a :class:`MergedTelemetry` view:
   counters summed exactly, gauges last-write-wins (tagged with the
   writing worker), histogram buckets added, and every worker's span
   forest re-parented under a synthetic ``worker:<i>`` root.
3. :meth:`MergedTelemetry.absorb` folds the merged telemetry into the
   parent's global registry and tracer, so ``repro profile --jobs 4``
   and traced manifests report the same counter totals a sequential
   run would.

Everything here is plain JSON (exact rationals as ``"p/q"`` strings),
so payloads survive pickling between processes and can be archived
next to manifests.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.state import STATE
from repro.obs.trace import TRACER, Span, span_from_dict

PAYLOAD_FORMAT = "repro-telemetry"
PAYLOAD_VERSION = 1

__all__ = [
    "MergedTelemetry",
    "TelemetryPayload",
    "capture_payload",
    "merge_payloads",
    "run_with_telemetry",
    "worker_config",
]


class TelemetryPayload:
    """One process's observability state, serialized for shipping."""

    __slots__ = ("pid", "metrics", "spans", "sampled_out", "ring_dropped")

    def __init__(
        self,
        pid: int,
        metrics: Dict[str, Any],
        spans: List[Dict[str, Any]],
        sampled_out: int = 0,
        ring_dropped: int = 0,
    ) -> None:
        self.pid = pid
        #: Typed metrics state (``MetricsRegistry.export_state`` form).
        self.metrics = metrics
        #: Root span trees as ``Span.to_dict`` documents.
        self.spans = spans
        self.sampled_out = sampled_out
        self.ring_dropped = ring_dropped

    def to_dict(self) -> Dict[str, Any]:
        document: Dict[str, Any] = {
            "format": PAYLOAD_FORMAT,
            "version": PAYLOAD_VERSION,
            "pid": self.pid,
            "metrics": self.metrics,
            "spans": self.spans,
        }
        if self.sampled_out:
            document["sampled_out"] = self.sampled_out
        if self.ring_dropped:
            document["ring_dropped"] = self.ring_dropped
        return document

    @classmethod
    def from_dict(cls, document: Dict[str, Any]) -> "TelemetryPayload":
        if document.get("format") != PAYLOAD_FORMAT:
            raise ValueError(
                f"not a {PAYLOAD_FORMAT} document: "
                f"format={document.get('format')!r}"
            )
        return cls(
            pid=int(document.get("pid", 0)),
            metrics=dict(document.get("metrics", {})),
            spans=list(document.get("spans", [])),
            sampled_out=int(document.get("sampled_out", 0)),
            ring_dropped=int(document.get("ring_dropped", 0)),
        )

    def mem_peak_bytes(self) -> Optional[int]:
        """The largest root-span memory peak shipped, if any."""
        peaks = [
            span["mem_peak_bytes"]
            for span in self.spans
            if span.get("mem_peak_bytes") is not None
        ]
        return max(peaks) if peaks else None


def capture_payload() -> TelemetryPayload:
    """Drain this process's obs state into a shippable payload.

    Collects (and thereby removes) the tracer's finished root spans and
    exports the registry's typed state; the registry itself keeps its
    values — callers that want a per-task attribution reset around the
    task (:func:`run_with_telemetry` does).
    """
    spans = [span.to_dict() for span in TRACER.collect()]
    return TelemetryPayload(
        pid=os.getpid(),
        metrics=REGISTRY.export_state(),
        spans=spans,
        sampled_out=TRACER.sampled_out,
        ring_dropped=TRACER.ring_dropped,
    )


class MergedTelemetry:
    """The parent-side view over a batch of worker payloads."""

    def __init__(
        self,
        registry: MetricsRegistry,
        worker_roots: List[Span],
        gauge_sources: Dict[str, int],
        sampled_out: int,
        ring_dropped: int,
        payloads: List[TelemetryPayload],
    ) -> None:
        #: A private registry holding the exact merged metrics.
        self.registry = registry
        #: One synthetic ``worker:<i>`` root span per worker process.
        self.worker_roots = worker_roots
        #: gauge name -> index of the worker whose write won.
        self.gauge_sources = gauge_sources
        self.sampled_out = sampled_out
        self.ring_dropped = ring_dropped
        self.payloads = payloads

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe merged metrics (same shape as ``metrics_snapshot``)."""
        return self.registry.snapshot()

    def absorb(self) -> None:
        """Fold the merged telemetry into the process-wide registry and
        tracer, as if the workers' instruments had fired here.

        Worker span forests attach under the innermost open span (the
        profiling or manifest-step span that wraps the sweep) or become
        tracer roots when none is open.
        """
        REGISTRY.absorb_state(self.registry.export_state())
        for root in self.worker_roots:
            TRACER.adopt(root)
        TRACER.sampled_out += self.sampled_out
        TRACER.ring_dropped += self.ring_dropped


def merge_payloads(payloads: List[TelemetryPayload]) -> MergedTelemetry:
    """Merge worker payloads: exact counter sums, bucket-merged
    histograms, last-write-wins gauges, re-parented span forests.

    Payloads arrive in *task order* (what :func:`repro.parallel
    .parallel_map` preserves), so "last write" matches what the same
    sweep run sequentially would leave in each gauge.  Payloads from
    the same worker process collapse onto one ``worker:<i>`` root,
    indexed by first appearance.
    """
    registry = MetricsRegistry()
    gauge_sources: Dict[str, int] = {}
    worker_index: Dict[int, int] = {}
    worker_roots: List[Span] = []
    sampled_out = ring_dropped = 0

    for payload in payloads:
        index = worker_index.setdefault(payload.pid, len(worker_index))
        registry.absorb_state(payload.metrics)
        for name in payload.metrics.get("gauges", {}):
            gauge_sources[name] = index
        sampled_out += payload.sampled_out
        ring_dropped += payload.ring_dropped

        if len(worker_roots) <= index:
            root = Span(f"worker:{index}", {"pid": payload.pid, "tasks": 0})
            worker_roots.append(root)
        root = worker_roots[index]
        root.attrs["tasks"] += 1
        for document in payload.spans:
            child = span_from_dict(document)
            root.children.append(child)
            root.duration += child.duration
            if child.mem_peak_bytes is not None:
                root.mem_peak_bytes = max(
                    root.mem_peak_bytes or 0, child.mem_peak_bytes
                )

    return MergedTelemetry(
        registry=registry,
        worker_roots=worker_roots,
        gauge_sources=gauge_sources,
        sampled_out=sampled_out,
        ring_dropped=ring_dropped,
        payloads=payloads,
    )


# ----------------------------------------------------------------------
# Worker-side entry point (module-level: picklable)
# ----------------------------------------------------------------------
def worker_config() -> Tuple[bool, bool, float, int]:
    """The parent's obs switches, to be replayed inside a worker.

    Workers normally inherit them via fork, but runtime ``enable()``
    calls and spawn-based pools would otherwise be lost — so the
    parallel layer ships the switches explicitly with every task.
    """
    return (STATE.enabled, STATE.memory, STATE.sample, STATE.ring)


def run_with_telemetry(
    fn: Callable[[Any], Any],
    config: Tuple[bool, bool, float, int],
    task: Any,
) -> Tuple[Any, Dict[str, Any]]:
    """Run one task under a fresh obs session; return ``(result,
    payload_dict)``.

    The session is reset before the task so the payload attributes
    exactly this task's activity, even when a pooled worker process
    serves many tasks back to back.
    """
    STATE.enabled, STATE.memory, STATE.sample, STATE.ring = config
    REGISTRY.reset()
    TRACER.reset()
    result = fn(task)
    return result, capture_payload().to_dict()
