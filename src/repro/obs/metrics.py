"""Named counters, gauges, and Fraction-safe histograms.

A process-wide :class:`MetricsRegistry` holds every instrument by name;
modules create their instruments once at import time (``_ROUNDS =
counter("maxmin.rounds")``) and bump them from hot loops.  When
observability is disabled (the default) every mutation is a single
flag check and an early return, so instrumented code pays nothing
measurable.

Instruments are Fraction-safe: the exact solvers naturally observe
:class:`fractions.Fraction` values, and those are accumulated exactly —
no silent float coercion.  :meth:`MetricsRegistry.snapshot` renders
values JSON-safely (Fractions become ``"p/q"`` strings, matching the
scenario file convention in :mod:`repro.io.serialize`).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Optional, Union

from repro.obs.state import STATE

Number = Union[int, float, Fraction]


def _json_value(value: Number) -> Any:
    """Render a metric value JSON-safely; exact rationals become 'p/q'."""
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return int(value)
        return f"{value.numerator}/{value.denominator}"
    return value


class Counter:
    """A monotonically increasing count (rounds, events, moves...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if not STATE.enabled:
            return
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> Any:
        return _json_value(self.value)


class Gauge:
    """A point-in-time value (water level, temperature, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        if not STATE.enabled:
            return
        self.value = value

    def reset(self) -> None:
        self.value = None

    def snapshot(self) -> Any:
        return None if self.value is None else _json_value(self.value)


class Histogram:
    """Streaming summary of observed values: count / sum / min / max.

    Fraction-safe: observing Fractions keeps the sum exact, so the mean
    of exact observations is an exact rational.
    """

    __slots__ = ("name", "count", "total", "minimum", "maximum")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.minimum: Optional[Number] = None
        self.maximum: Optional[Number] = None

    def observe(self, value: Number) -> None:
        if not STATE.enabled:
            return
        self.count += 1
        self.total = self.total + value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def mean(self) -> Optional[Number]:
        if self.count == 0:
            return None
        total = self.total
        if isinstance(total, Fraction):
            return total / self.count
        return total / self.count

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None

    def snapshot(self) -> Any:
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "sum": _json_value(self.total),
            "min": _json_value(self.minimum),
            "max": _json_value(self.maximum),
            "mean": _json_value(self.mean()),
        }


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Every named instrument in the process, by name.

    Instruments are created on first request and live for the process;
    ``reset()`` zeroes them without invalidating module-level handles.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, kind: type) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
            return instrument
        if not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def reset(self) -> None:
        for instrument in self._instruments.values():
            instrument.reset()

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe name → value map, zero-valued instruments omitted."""
        out: Dict[str, Any] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            value = instrument.snapshot()
            if isinstance(instrument, Counter) and value == 0:
                continue
            if isinstance(instrument, Gauge) and value is None:
                continue
            if isinstance(instrument, Histogram) and instrument.count == 0:
                continue
            out[name] = value
        return out


#: The process-wide registry every module-level instrument lives in.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """Get-or-create the named counter in the global registry."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create the named gauge in the global registry."""
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """Get-or-create the named histogram in the global registry."""
    return REGISTRY.histogram(name)


def snapshot_delta(
    before: Dict[str, Any], after: Dict[str, Any]
) -> Dict[str, Any]:
    """The counters/gauges that changed between two snapshots.

    Counter-like integer values are differenced; everything else (gauges,
    histogram summaries) is reported at its ``after`` value.  Used by the
    runner to attribute metric activity to individual steps.
    """
    delta: Dict[str, Any] = {}
    for name, value in after.items():
        previous = before.get(name)
        if value == previous:
            continue
        if isinstance(value, int) and isinstance(previous, int):
            delta[name] = value - previous
        elif isinstance(value, int) and previous is None:
            delta[name] = value
        else:
            delta[name] = value
    return delta
