"""Named counters, gauges, and Fraction-safe histograms.

A process-wide :class:`MetricsRegistry` holds every instrument by name;
modules create their instruments once at import time (``_ROUNDS =
counter("maxmin.rounds")``) and bump them from hot loops.  When
observability is disabled (the default) every mutation is a single
flag check and an early return, so instrumented code pays nothing
measurable.

Instruments are Fraction-safe: the exact solvers naturally observe
:class:`fractions.Fraction` values, and those are accumulated exactly —
no silent float coercion.  :meth:`MetricsRegistry.snapshot` renders
values JSON-safely (Fractions become ``"p/q"`` strings, matching the
scenario file convention in :mod:`repro.io.serialize`).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Any, Dict, List, Optional, Union

from repro.obs.state import STATE

Number = Union[int, float, Fraction]


def _json_value(value: Number) -> Any:
    """Render a metric value JSON-safely; exact rationals become 'p/q'."""
    if isinstance(value, Fraction):
        if value.denominator == 1:
            return int(value)
        return f"{value.numerator}/{value.denominator}"
    return value


def _parse_value(value: Any) -> Number:
    """Invert :func:`_json_value`: ``"p/q"`` strings become Fractions.

    The telemetry pipeline round-trips metric values through JSON when
    shipping them across process boundaries; exact rationals must come
    back exact.
    """
    if isinstance(value, str):
        return Fraction(value)
    return value


class Counter:
    """A monotonically increasing count (rounds, events, moves...)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if not STATE.enabled:
            return
        self.value += amount

    def reset(self) -> None:
        self.value = 0

    def snapshot(self) -> Any:
        return _json_value(self.value)


class Gauge:
    """A point-in-time value (water level, temperature, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Optional[Number] = None

    def set(self, value: Number) -> None:
        if not STATE.enabled:
            return
        self.value = value

    def reset(self) -> None:
        self.value = None

    def snapshot(self) -> Any:
        return None if self.value is None else _json_value(self.value)


#: Distinct-value cap per histogram.  The instruments observe exact
#: rationals and small integers (water levels, active-job counts), so
#: the bucket map stays tiny; runaway float streams stop allocating at
#: the cap and are tallied in ``bucket_overflow`` instead.
MAX_BUCKETS = 4096


class Histogram:
    """Streaming summary of observed values, bucketed by exact value.

    Fraction-safe: observing Fractions keeps the sum exact, so the mean
    of exact observations is an exact rational — and because every
    distinct value keeps its own bucket (up to :data:`MAX_BUCKETS`),
    percentiles are exact too, and two histograms merge losslessly by
    summing buckets (the cross-process telemetry pipeline relies on
    this; see :mod:`repro.obs.pipeline`).
    """

    __slots__ = (
        "name", "count", "total", "minimum", "maximum", "buckets",
        "overflow",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total: Number = 0
        self.minimum: Optional[Number] = None
        self.maximum: Optional[Number] = None
        #: observed value -> occurrence count (exact keys, never floats
        #: of Fractions).
        self.buckets: Dict[Number, int] = {}
        #: Observations whose *distinct* value arrived after the bucket
        #: cap; counted in ``count``/``sum`` but absent from percentiles.
        self.overflow = 0

    def observe(self, value: Number) -> None:
        if not STATE.enabled:
            return
        self._absorb(value, 1)

    def _absorb(self, value: Number, occurrences: int) -> None:
        self.count += occurrences
        self.total = self.total + value * occurrences
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value
        buckets = self.buckets
        if value in buckets:
            buckets[value] += occurrences
        elif len(buckets) < MAX_BUCKETS:
            buckets[value] = occurrences
        else:
            self.overflow += occurrences

    def mean(self) -> Optional[Number]:
        """The exact mean: a Fraction unless a float was ever observed.

        Integer observations divide exactly (``Fraction(3, 2)``), never
        through float division, so JSON snapshots of exact runs carry
        no floats.
        """
        if self.count == 0:
            return None
        total = self.total
        if isinstance(total, float):
            return total / self.count
        return Fraction(total) / self.count

    def percentile(self, q: Fraction) -> Optional[Number]:
        """Exact nearest-rank percentile over the bucketed values.

        ``q`` is a fraction in (0, 1]; the result is the smallest
        observed value whose cumulative count reaches ``ceil(q * N)``.
        Returns ``None`` when empty.  With bucket overflow the rank is
        taken over the bucketed subset (flagged in the snapshot).
        """
        bucketed = self.count - self.overflow
        if bucketed <= 0:
            return None
        rank = math.ceil(q * bucketed)
        cumulative = 0
        for value in sorted(self.buckets):
            cumulative += self.buckets[value]
            if cumulative >= rank:
                return value
        return self.maximum  # pragma: no cover - rank <= bucketed total

    def reset(self) -> None:
        self.count = 0
        self.total = 0
        self.minimum = None
        self.maximum = None
        self.buckets = {}
        self.overflow = 0

    def snapshot(self) -> Any:
        if self.count == 0:
            return {"count": 0}
        out = {
            "count": self.count,
            "sum": _json_value(self.total),
            "min": _json_value(self.minimum),
            "max": _json_value(self.maximum),
            "mean": _json_value(self.mean()),
            "p50": _json_value(self.percentile(Fraction(1, 2))),
            "p90": _json_value(self.percentile(Fraction(9, 10))),
            "p99": _json_value(self.percentile(Fraction(99, 100))),
        }
        if self.overflow:
            out["bucket_overflow"] = self.overflow
        return out


Instrument = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Every named instrument in the process, by name.

    Instruments are created on first request and live for the process;
    ``reset()`` zeroes them without invalidating module-level handles.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, Instrument] = {}

    def _get(self, name: str, kind: type) -> Instrument:
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
            return instrument
        if not isinstance(instrument, kind):
            raise TypeError(
                f"metric {name!r} is a {type(instrument).__name__}, "
                f"not a {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def kinds(self) -> Dict[str, str]:
        """name → ``"counter"`` / ``"gauge"`` / ``"histogram"`` map."""
        return {
            name: type(instrument).__name__.lower()
            for name, instrument in self._instruments.items()
        }

    def reset(self) -> None:
        for instrument in self._instruments.values():
            instrument.reset()

    # ------------------------------------------------------------------
    # Cross-process state shipping (see repro.obs.pipeline)
    # ------------------------------------------------------------------
    def export_state(self) -> Dict[str, Any]:
        """Lossless, JSON-safe, *typed* dump of every active instrument.

        Unlike :meth:`snapshot` (a display rendering), this keeps enough
        structure to merge exactly in another process: instruments are
        grouped by kind, and histograms ship their full value→count
        bucket map alongside the summary fields.
        """
        counters: Dict[str, Any] = {}
        gauges: Dict[str, Any] = {}
        histograms: Dict[str, Any] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            if isinstance(instrument, Counter):
                if instrument.value != 0:
                    counters[name] = _json_value(instrument.value)
            elif isinstance(instrument, Gauge):
                if instrument.value is not None:
                    gauges[name] = _json_value(instrument.value)
            elif instrument.count > 0:
                histograms[name] = {
                    "count": instrument.count,
                    "sum": _json_value(instrument.total),
                    "min": _json_value(instrument.minimum),
                    "max": _json_value(instrument.maximum),
                    "buckets": [
                        [_json_value(value), instrument.buckets[value]]
                        for value in sorted(instrument.buckets)
                    ],
                    "overflow": instrument.overflow,
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def absorb_state(self, state: Dict[str, Any]) -> None:
        """Merge an :meth:`export_state` document into this registry.

        Counters sum exactly, gauges take the incoming value (callers
        order payloads so the semantics are last-write-wins), histogram
        buckets add.  Values round-trip through
        :func:`_parse_value`, so exact rationals stay exact.
        """
        for name, value in state.get("counters", {}).items():
            counter = self.counter(name)
            counter.value = counter.value + _parse_value(value)
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).value = _parse_value(value)
        for name, entry in state.get("histograms", {}).items():
            histogram = self.histogram(name)
            bucket_sum: Number = 0
            for value, occurrences in entry.get("buckets", []):
                parsed = _parse_value(value)
                histogram._absorb(parsed, int(occurrences))
                bucket_sum = bucket_sum + parsed * int(occurrences)
            overflow = int(entry.get("overflow", 0))
            if overflow:
                # Overflowed observations lost their individual values;
                # fold their count/sum (and the shipped min/max, which
                # may live in the overflow) in without inventing buckets.
                histogram.count += overflow
                histogram.overflow += overflow
                histogram.total = (
                    histogram.total + _parse_value(entry["sum"]) - bucket_sum
                )
                for key, pick in (("min", min), ("max", max)):
                    shipped = _parse_value(entry[key])
                    current = getattr(histogram, f"{key}imum")
                    setattr(
                        histogram,
                        f"{key}imum",
                        shipped if current is None else pick(current, shipped),
                    )

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe name → value map, zero-valued instruments omitted."""
        out: Dict[str, Any] = {}
        for name in sorted(self._instruments):
            instrument = self._instruments[name]
            value = instrument.snapshot()
            if isinstance(instrument, Counter) and value == 0:
                continue
            if isinstance(instrument, Gauge) and value is None:
                continue
            if isinstance(instrument, Histogram) and instrument.count == 0:
                continue
            out[name] = value
        return out


#: The process-wide registry every module-level instrument lives in.
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    """Get-or-create the named counter in the global registry."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get-or-create the named gauge in the global registry."""
    return REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    """Get-or-create the named histogram in the global registry."""
    return REGISTRY.histogram(name)


def snapshot_delta(
    before: Dict[str, Any], after: Dict[str, Any]
) -> Dict[str, Any]:
    """The counters/gauges that changed between two snapshots.

    Counter-like integer values are differenced; everything else (gauges,
    histogram summaries) is reported at its ``after`` value.  Used by the
    runner to attribute metric activity to individual steps.
    """
    delta: Dict[str, Any] = {}
    for name, value in after.items():
        previous = before.get(name)
        if value == previous:
            continue
        if isinstance(value, int) and isinstance(previous, int):
            delta[name] = value - previous
        elif isinstance(value, int) and previous is None:
            delta[name] = value
        else:
            delta[name] = value
    return delta
